"""Seeded synthetic field generators mimicking the SDRBench datasets.

Each generator produces a float32 field whose *compressibility profile*
under SZ tracks the corresponding real dataset (paper Table II /
Fig. 2):

=============  ==========================================================
cloudf48       cloud moisture mixing ratio — mostly (near-)zero with
               sparse smooth cloud blobs; very easy to compress
               (paper CR 18–2381 across bounds).
wf48           hurricane wind speed — smooth vortex flow plus
               turbulence; moderately compressible.
nyx            dark-matter density — log-normal field with a steep
               power spectrum and multiplicative small-scale noise;
               *hard* to compress (paper CR 1.1–3.1).
q2             2 m specific humidity — thin vertical stack of smooth
               layers; easy-to-moderate (paper CR 4.3–89).
height         height above ground — terrain plus nearly-uniform level
               offsets with weak perturbations; moderate (CR 2.8–12.7).
qi             cloud-ice mixing ratio — overwhelmingly exact zeros with
               a few thin anvils; the easiest field (CR 68–3654).
t              temperature — smooth lapse-rate profile plus weather
               noise; hard-to-moderate (CR 3.1–10).
=============  ==========================================================

All generators take an explicit ``dims`` (so experiments can scale) and
``seed`` (so every number in EXPERIMENTS.md is reproducible).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import ndimage

__all__ = ["generate", "GENERATORS"]


def _smooth_noise(rng: np.random.Generator, dims: tuple[int, ...],
                  sigma: float) -> np.ndarray:
    """Gaussian-filtered white noise, renormalized to unit std."""
    field = ndimage.gaussian_filter(rng.standard_normal(dims), sigma=sigma)
    std = field.std()
    return field / std if std > 0 else field


def _axis_profile(n: int, lo: float, hi: float, curve: float = 1.0) -> np.ndarray:
    """A monotone vertical profile from ``lo`` to ``hi``."""
    x = np.linspace(0.0, 1.0, n) ** curve
    return lo + (hi - lo) * x


def cloudf48(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Cloud moisture mixing ratio (kg/kg): sparse smooth blobs on zero."""
    rng = np.random.default_rng(seed)
    blobs = _smooth_noise(rng, dims, sigma=3.0)
    # Keep only the strongest ~8% of the smooth field as "cloud".
    threshold = np.quantile(blobs, 0.92)
    cloud = np.clip(blobs - threshold, 0.0, None)
    cloud /= max(cloud.max(), 1e-12)
    return (2.5e-3 * cloud).astype(np.float32)


def wf48(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Hurricane vertical wind speed (m/s): vortex plus turbulence."""
    rng = np.random.default_rng(seed)
    z, y, x = np.meshgrid(
        *[np.linspace(-1.0, 1.0, d) for d in dims], indexing="ij"
    )
    r2 = y**2 + x**2 + 0.05
    vortex = 12.0 * np.exp(-3.0 * r2) * (1.0 - z**2)
    turbulence = 1.5 * _smooth_noise(rng, dims, sigma=1.5)
    return (vortex + turbulence).astype(np.float32)


def nyx(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Dark-matter density: log-normal, high dynamic range, noisy."""
    rng = np.random.default_rng(seed)
    # Steep-spectrum Gaussian field -> log-normal density contrast.
    delta = (
        1.0 * _smooth_noise(rng, dims, sigma=4.0)
        + 0.6 * _smooth_noise(rng, dims, sigma=1.5)
        # Particle shot noise: white in log-density.  It makes the
        # mantissas effectively random, which is what defeats SZ at
        # tight absolute bounds on the real dark_matter_density field,
        # while staying proportional to the local density so loose
        # bounds still predict the low-density bulk.
        + 0.45 * rng.standard_normal(dims)
    )
    rho = np.exp(1.8 * delta)
    rho = rho / rho.mean()
    return rho.astype(np.float32)


def q2(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """2 m specific humidity (kg/kg): smooth layered field, small values."""
    rng = np.random.default_rng(seed)
    profile = _axis_profile(dims[0], 1.6e-2, 2.0e-3, curve=1.4)
    horizontal = 4.0e-3 * _smooth_noise(rng, dims, sigma=4.0)
    ripple = 2.0e-5 * _smooth_noise(rng, dims, sigma=1.0)
    field = profile.reshape(-1, *([1] * (len(dims) - 1))) + horizontal + ripple
    return np.clip(field, 0.0, None).astype(np.float32)


def height(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Height above ground (m): level offsets + terrain + perturbations."""
    rng = np.random.default_rng(seed)
    levels = _axis_profile(dims[0], 20.0, 2.1e4, curve=2.0)
    terrain = 600.0 * np.abs(_smooth_noise(rng, dims[1:], sigma=5.0))
    rough = 0.08 * _smooth_noise(rng, dims, sigma=1.2)
    field = (
        levels.reshape(-1, *([1] * (len(dims) - 1)))
        + terrain[np.newaxis]
        + rough
    )
    return field.astype(np.float32)


def qi(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Cloud-ice mixing ratio (kg/kg): overwhelmingly exact zeros."""
    rng = np.random.default_rng(seed)
    blobs = _smooth_noise(rng, dims, sigma=2.5)
    threshold = np.quantile(blobs, 0.985)
    ice = np.clip(blobs - threshold, 0.0, None)
    ice /= max(ice.max(), 1e-12)
    return (8.0e-4 * ice).astype(np.float32)


def t(dims: tuple[int, ...], seed: int) -> np.ndarray:
    """Temperature (K): lapse-rate profile plus multi-scale weather.

    The real *T* field is 4-D (ensemble member, z, y, x); the lapse
    rate runs along the *vertical* axis, which is axis 1 when four
    dimensions are given and axis 0 otherwise.
    """
    rng = np.random.default_rng(seed)
    vertical_axis = 1 if len(dims) == 4 else 0
    profile = _axis_profile(dims[vertical_axis], 301.0, 205.0, curve=1.1)
    shape = [1] * len(dims)
    shape[vertical_axis] = -1
    synoptic = 6.0 * _smooth_noise(rng, dims, sigma=4.0)
    fine = 0.12 * _smooth_noise(rng, dims, sigma=0.8)
    field = profile.reshape(shape) + synoptic + fine
    return field.astype(np.float32)


GENERATORS: dict[str, Callable[[tuple[int, ...], int], np.ndarray]] = {
    "cloudf48": cloudf48,
    "wf48": wf48,
    "nyx": nyx,
    "q2": q2,
    "height": height,
    "qi": qi,
    "t": t,
}


def generate(name: str, dims: tuple[int, ...] | None = None,
             *, seed: int = 2022, size: str = "small") -> np.ndarray:
    """Generate a named synthetic field.

    Parameters
    ----------
    name:
        One of :data:`GENERATORS` (``cloudf48``, ``wf48``, ``nyx``,
        ``q2``, ``height``, ``qi``, ``t``).
    dims:
        Explicit grid dimensions; when omitted, the registry's preset
        for ``size`` is used.
    seed:
        RNG seed; the default (2022, the paper's year) is what all
        recorded experiments use.
    size:
        Registry preset name (``tiny`` / ``small`` / ``medium``) used
        when ``dims`` is None.
    """
    try:
        gen = GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(GENERATORS)}"
        ) from None
    if dims is None:
        from repro.datasets.registry import get_spec

        dims = get_spec(name).preset_dims(size)
    return gen(tuple(int(d) for d in dims), seed)
