"""Dataset registry — the reproduction's version of the paper's Table I.

Each :class:`DatasetSpec` records the real dataset's provenance
(dimensions, size, description, exactly as Table I lists them) plus the
scaled synthetic presets the experiments here actually run.  Preset
dimensions preserve each field's aspect character (thin atmospheric
stacks stay thin, cubic cosmology boxes stay cubic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one evaluation field."""

    name: str
    description: str
    paper_dims: tuple[int, ...]
    paper_size: str
    source: str
    presets: dict[str, tuple[int, ...]]

    def preset_dims(self, size: str) -> tuple[int, ...]:
        """Grid dimensions for a named preset (tiny/small/medium)."""
        try:
            return self.presets[size]
        except KeyError:
            raise ValueError(
                f"dataset {self.name!r} has no preset {size!r}; "
                f"choose from {sorted(self.presets)}"
            ) from None

    def n_elements(self, size: str) -> int:
        """Element count of a preset."""
        return int(np.prod(self.preset_dims(size)))


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="cloudf48",
            description="Cloud moisture mixing ratio",
            paper_dims=(100, 500, 500),
            paper_size="95.37MB",
            source="Hurricane Isabel (SDRBench)",
            presets={
                "tiny": (16, 48, 48),
                "small": (24, 100, 100),
                "medium": (48, 220, 220),
            },
        ),
        DatasetSpec(
            name="wf48",
            description="Hurricane wind speed",
            paper_dims=(100, 500, 500),
            paper_size="95.37MB",
            source="Hurricane Isabel (SDRBench)",
            presets={
                "tiny": (16, 48, 48),
                "small": (24, 100, 100),
                "medium": (48, 220, 220),
            },
        ),
        DatasetSpec(
            name="nyx",
            description="Dark matter density",
            paper_dims=(512, 512, 512),
            paper_size="527MB",
            source="Nyx cosmology (SDRBench)",
            presets={
                "tiny": (32, 32, 32),
                "small": (64, 64, 64),
                "medium": (128, 128, 128),
            },
        ),
        DatasetSpec(
            name="q2",
            description="2m Specific humidity",
            paper_dims=(11, 1200, 1200),
            paper_size="61MB",
            source="SCALE-LetKF (SDRBench)",
            presets={
                "tiny": (11, 56, 56),
                "small": (11, 160, 160),
                "medium": (11, 440, 440),
            },
        ),
        DatasetSpec(
            name="height",
            description="Height above ground",
            paper_dims=(98, 1200, 1200),
            paper_size="1.1GB",
            source="SCALE-LetKF (SDRBench)",
            presets={
                "tiny": (20, 40, 40),
                "small": (49, 75, 75),
                "medium": (98, 150, 150),
            },
        ),
        DatasetSpec(
            name="qi",
            description="Cloud Ice mixing ratio",
            paper_dims=(11, 98, 1200, 1200),
            paper_size="5.8GB",
            source="SCALE-LetKF (SDRBench)",
            presets={
                "tiny": (4, 10, 30, 30),
                "small": (6, 16, 52, 52),
                "medium": (11, 24, 90, 90),
            },
        ),
        DatasetSpec(
            name="t",
            description="Temperature",
            paper_dims=(11, 98, 1200, 1200),
            paper_size="5.8GB",
            source="SCALE-LetKF (SDRBench)",
            presets={
                "tiny": (4, 10, 30, 30),
                "small": (6, 16, 52, 52),
                "medium": (11, 24, 90, 90),
            },
        ),
    )
}


def dataset_names() -> tuple[str, ...]:
    """All registered dataset names, Table I order."""
    return tuple(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
