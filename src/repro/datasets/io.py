"""Raw binary field I/O in the SDRBench convention.

SDRBench distributes fields as headerless little-endian float32 ``.bin``
files (C order); shape lives in the file name / docs.  These helpers
read and write that format so the library can also run on the *real*
datasets when a user has them (``load_field("CLOUDf48.bin.f32",
shape=(100, 500, 500))``).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["load_field", "save_field"]


def load_field(path: str | os.PathLike, shape: tuple[int, ...],
               dtype: np.dtype | str = np.float32) -> np.ndarray:
    """Load a headerless binary field and reshape it.

    Raises
    ------
    ValueError
        If the file size does not match ``shape``/``dtype`` exactly —
        the most common sign of a wrong shape argument.
    """
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise ValueError(
            f"{path}: file is {actual} bytes but shape {shape} with dtype "
            f"{dtype} needs {expected}"
        )
    data = np.fromfile(path, dtype=dtype)
    return data.reshape(shape)


def save_field(path: str | os.PathLike, data: np.ndarray) -> None:
    """Write a field as headerless C-order binary (SDRBench layout)."""
    np.ascontiguousarray(data).tofile(path)
