"""Synthetic stand-ins for the paper's SDRBench evaluation fields.

The paper evaluates on seven fields (Table I): *CLOUDf48* and *Wf48*
from Hurricane Isabel, *dark_matter_density* from Nyx, and *Q2*,
*Height*, *QI*, *T* from SCALE-LetKF.  Those multi-GB files are not
redistributable here, so :mod:`repro.datasets.generators` synthesizes
seeded fields with the same *statistical character* — which is what
every experiment actually depends on: the fraction of
SZ-predictable points, the Huffman-tree share, and the compression-
ratio ordering (QI/CLOUDf48 easy ≫ Q2 > Height/T > Nyx hard).

See DESIGN.md §2 for the substitution rationale and EXPERIMENTS.md for
measured-vs-paper profiles.
"""

from repro.datasets.generators import generate
from repro.datasets.io import load_field, save_field
from repro.datasets.registry import DATASETS, DatasetSpec, dataset_names, get_spec

__all__ = [
    "generate",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_field",
    "save_field",
]
