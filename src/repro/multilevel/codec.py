"""The multilevel codec: decomposition + budgeted quantization +
canonical Huffman, emitting the standard scheme-compatible sections.

Error-budget accounting (the codec's central guarantee): each detail
pass quantizes residuals to within ``b``; by the non-expansiveness of
the interpolation predictor, reconstruction error grows by at most
``b`` per pass, and the quantized coarsest grid adds one more ``b``.
With ``P = levels x ndim`` passes and budget ``b = eb / (P + 1)``, the
decoded field satisfies ``|u' - u| <= eb`` everywhere.  (This uniform
allocation is deliberately simple; MGARD's norm-aware allocation is
sharper but the guarantee is the same.)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.multilevel import transform
from repro.sz import huffman, intcodec, quantizer
from repro.sz.bitstream import PackedBits

__all__ = ["MultilevelCodec", "MultilevelStats"]

_META = struct.Struct("<4sBBBddQQ")  # magic, ver, ndim, levels, eb, budget, ntot, nbits
_META_MAGIC = b"MLfr"
_META_VERSION = 1


@dataclass
class MultilevelStats:
    """Encoder statistics for one multilevel compression."""

    shape: tuple[int, ...]
    levels: int
    n_details: int
    eb: float
    section_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def quant_array_bytes(self) -> int:
        """Huffman tree + coefficient bitstream."""
        return self.section_bytes["tree"] + self.section_bytes["codes"]

    @property
    def tree_fraction_of_quant(self) -> float:
        denom = self.quant_array_bytes
        return self.section_bytes["tree"] / denom if denom else 0.0


class MultilevelCodec:
    """MGARD-style error-bounded multilevel compressor.

    Parameters
    ----------
    error_bound:
        Absolute (L-infinity) bound on the reconstruction.
    max_levels:
        Cap on decomposition depth (the data's shape may allow fewer).

    Examples
    --------
    >>> import numpy as np
    >>> codec = MultilevelCodec(1e-3)
    >>> u = np.sin(np.linspace(0, 6, 64)).reshape(8, 8)
    >>> sections, stats = codec.encode(u)
    >>> err = np.abs(codec.decode(sections) - u).max()
    >>> bool(err <= 1e-3)
    True
    """

    def __init__(self, error_bound: float = 1e-3, *, max_levels: int = 8) -> None:
        if not error_bound > 0:
            raise ValueError("error bound must be positive")
        self.error_bound = float(error_bound)
        self.max_levels = int(max_levels)

    # ------------------------------------------------------------------

    def encode(self, data: np.ndarray) -> tuple[dict[str, bytes], MultilevelStats]:
        """Decompose, quantize and entropy-code ``data``."""
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError("multilevel codec expects float32/float64 data")
        if data.ndim < 1 or data.ndim > 4 or data.size == 0:
            raise ValueError("expected non-empty 1-4 dimensional data")
        levels = transform.plan_levels(data.shape, max_levels=self.max_levels)
        n_passes = levels * data.ndim
        # Uniform per-pass budget.  The final cast back to the input
        # dtype can add up to half a ulp of the largest magnitude, so
        # that margin is carved out of the user's bound up front (and
        # the bound is rejected when it is below the representable
        # resolution, as any codec must).
        peak = float(np.abs(data).max()) + self.error_bound
        margin = 0.5 * float(np.spacing(np.asarray(peak, dtype=data.dtype)))
        if margin >= 0.5 * self.error_bound:
            raise ValueError(
                f"error bound {self.error_bound:g} is at or below the "
                f"{data.dtype} resolution ({2 * margin:g}) of this data"
            )
        budget = (self.error_bound - margin) / (n_passes + 1)

        # Even samples pass through every split *exactly* (only the
        # coarsest grid and the details are quantized), so each point's
        # reconstruction error telescopes to at most one budget unit
        # per pass plus one for the coarsest grid — see module docs.
        current = data.astype(np.float64)
        detail_codes: list[np.ndarray] = []
        for _ in range(levels):
            for axis in range(data.ndim):
                current, detail = transform.split_axis(current, axis)
                q = quantizer.grid_quantize(detail, budget)
                detail_codes.append(np.ravel(q))
        all_codes = (
            np.concatenate(detail_codes) if detail_codes
            else np.empty(0, np.int64)
        )
        coarse_q = quantizer.grid_quantize(current, budget)

        if all_codes.size:
            symbols, counts = np.unique(all_codes, return_counts=True)
            code = huffman.build_code(symbols, counts)
            packed = huffman.encode(all_codes, code)
            tree_bytes = huffman.serialize_tree(code)
        else:
            packed = PackedBits(data=b"", n_bits=0)
            tree_bytes = huffman.serialize_tree(
                huffman.build_code(np.empty(0, np.int64), np.empty(0, np.int64))
            )

        dims = struct.pack(f"<{data.ndim}Q", *data.shape)
        meta = _META.pack(
            _META_MAGIC, _META_VERSION, data.ndim, levels,
            self.error_bound, budget, all_codes.size, packed.n_bits,
        ) + dims + struct.pack("<B", 0 if data.dtype == np.float32 else 1)
        sections = {
            "meta": meta,
            "tree": tree_bytes,
            "codes": packed.data,
            "unpred": intcodec.byteplane_encode(np.ravel(coarse_q)),
            "coeffs": b"",
            "exact": b"",
            "aux": b"",
        }
        stats = MultilevelStats(
            shape=data.shape,
            levels=levels,
            n_details=int(all_codes.size),
            eb=self.error_bound,
            section_bytes={k: len(v) for k, v in sections.items()},
        )
        return sections, stats

    def decode(self, sections: dict[str, bytes]) -> np.ndarray:
        """Invert :meth:`encode` within the error bound."""
        info = self.parse_meta(sections["meta"])
        shape = info["shape"]
        ndim = len(shape)
        levels = info["levels"]
        n_passes = levels * ndim
        # The exact grid scale the encoder used travels in the meta.
        budget = info["budget"]
        if not budget > 0:
            raise ValueError("corrupt multilevel budget")

        # Replay the decomposition's shape bookkeeping.
        pass_shapes: list[tuple[int, ...]] = []
        dims = list(shape)
        for _ in range(levels):
            for axis in range(ndim):
                coarse_len = (dims[axis] + 1) // 2
                detail_dims = tuple(
                    dims[i] - coarse_len if i == axis else dims[i]
                    for i in range(ndim)
                )
                pass_shapes.append(detail_dims)
                dims[axis] = coarse_len

        code = huffman.deserialize_tree(sections["tree"])
        packed = PackedBits(data=sections["codes"], n_bits=info["n_bits"])
        all_codes = (
            huffman.decode(packed, code, info["n_details"])
            if info["n_details"]
            else np.empty(0, np.int64)
        )
        coarse_q = intcodec.byteplane_decode(sections["unpred"])
        if coarse_q.size != int(np.prod(dims)):
            raise ValueError("coarse grid does not match the meta shape")
        current = quantizer.grid_reconstruct(
            coarse_q, budget, np.float64
        ).reshape(dims)

        offsets = np.cumsum([int(np.prod(s)) for s in pass_shapes])
        if info["n_details"] != (offsets[-1] if len(offsets) else 0):
            raise ValueError("detail stream does not match the meta shape")
        for pass_idx in range(n_passes - 1, -1, -1):
            detail_shape = pass_shapes[pass_idx]
            start = offsets[pass_idx] - int(np.prod(detail_shape))
            q = all_codes[start : offsets[pass_idx]].reshape(detail_shape)
            detail = quantizer.grid_reconstruct(q, budget, np.float64)
            axis = pass_idx % ndim
            current = transform.merge_axis(current, detail, axis)
        return current.astype(info["dtype"])

    @staticmethod
    def parse_meta(meta: bytes) -> dict:
        """Decode the multilevel codec's ``meta`` section."""
        if len(meta) < _META.size + 1:
            raise ValueError("multilevel meta section too short")
        magic, version, ndim, levels, eb, budget, n_details, n_bits = (
            _META.unpack_from(meta)
        )
        if magic != _META_MAGIC:
            raise ValueError("bad frame magic; not a multilevel frame")
        if version != _META_VERSION:
            raise ValueError(f"unsupported multilevel version {version}")
        if not 1 <= ndim <= 4:
            raise ValueError(f"corrupt ndim {ndim}")
        expect = _META.size + 8 * ndim + 1
        if len(meta) != expect:
            raise ValueError("multilevel meta section length mismatch")
        shape = struct.unpack_from(f"<{ndim}Q", meta, _META.size)
        dtype_code = meta[-1]
        if dtype_code not in (0, 1):
            raise ValueError(f"corrupt dtype code {dtype_code}")
        return {
            "shape": tuple(int(s) for s in shape),
            "levels": levels,
            "eb": eb,
            "budget": budget,
            "n_details": int(n_details),
            "n_bits": int(n_bits),
            "dtype": np.float32 if dtype_code == 0 else np.float64,
        }
