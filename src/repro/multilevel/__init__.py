"""An MGARD-like multilevel error-bounded codec (third substrate).

MGARD (paper ref. [53]) compresses scientific data by a multigrid
decomposition: the field is recursively coarsened, the detail the
coarse grid cannot represent is quantized under an error budget, and
the quantized multilevel coefficients are entropy-coded.  This package
implements that structure — separable dyadic coarsening with linear
interpolation prediction, per-pass error-budget allocation that
guarantees a global L-infinity bound, and the same canonical-Huffman /
section machinery as the SZ pipeline — so the paper's Encr-Huffman /
Encr-Quant ideas demonstrably apply to a *third* Huffman-leveraging
compressor family.
"""

from repro.multilevel.codec import MultilevelCodec, MultilevelStats
from repro.multilevel.pipeline import SecureMultilevelCompressor

__all__ = ["MultilevelCodec", "MultilevelStats", "SecureMultilevelCompressor"]
