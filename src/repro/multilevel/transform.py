"""Separable dyadic multilevel decomposition with interpolation
prediction.

One 1-D *pass* along an axis splits the signal into its even samples
(the coarse grid) and the residuals of the odd samples against linear
interpolation of their coarse neighbours (the details):

    coarse[i]  = u[2i]
    detail[i]  = u[2i+1] - (coarse[i] + coarse[i+1]) / 2      (interior)
    detail[-1] = u[2i+1] - coarse[i]                          (odd tail)

The inverse is exact.  Crucially for the error analysis, linear
interpolation is max-norm non-expansive: perturbing the coarse samples
by at most ``e`` perturbs every interpolated value by at most ``e``,
so each quantized detail pass adds at most its own quantization error
to the running L-infinity error (see ``codec.MultilevelCodec``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_axis", "merge_axis", "plan_levels"]


def split_axis(u: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """One coarsening pass along ``axis``; returns (coarse, detail)."""
    u = np.moveaxis(u, axis, 0)
    coarse = u[0::2]
    odd = u[1::2]
    if odd.shape[0] == 0:
        detail = odd
    else:
        pred = coarse[: odd.shape[0]].astype(np.float64).copy()
        # Interior odd samples interpolate their two even neighbours;
        # a trailing odd sample (even input length) only has the left.
        n_interior = min(odd.shape[0], coarse.shape[0] - 1)
        if n_interior > 0:
            pred[:n_interior] = 0.5 * (
                coarse[:n_interior].astype(np.float64)
                + coarse[1 : n_interior + 1].astype(np.float64)
            )
        detail = odd.astype(np.float64) - pred
    return (
        np.moveaxis(coarse, 0, axis),
        np.moveaxis(detail, 0, axis),
    )


def merge_axis(coarse: np.ndarray, detail: np.ndarray, axis: int) -> np.ndarray:
    """Invert :func:`split_axis`."""
    coarse = np.moveaxis(coarse, axis, 0)
    detail = np.moveaxis(detail, axis, 0)
    n = coarse.shape[0] + detail.shape[0]
    out = np.empty((n, *coarse.shape[1:]), dtype=np.float64)
    out[0::2] = coarse
    if detail.shape[0]:
        pred = coarse[: detail.shape[0]].astype(np.float64).copy()
        n_interior = min(detail.shape[0], coarse.shape[0] - 1)
        if n_interior > 0:
            pred[:n_interior] = 0.5 * (
                coarse[:n_interior].astype(np.float64)
                + coarse[1 : n_interior + 1].astype(np.float64)
            )
        out[1::2] = detail + pred
    return np.moveaxis(out, 0, axis)


def plan_levels(shape: tuple[int, ...], *, min_size: int = 4,
                max_levels: int = 8) -> int:
    """How many full decomposition levels the shape supports.

    Every axis must stay at least ``min_size`` long at the coarsest
    level (shorter axes stop contributing information to predict from).
    """
    levels = 0
    dims = list(shape)
    while levels < max_levels:
        if any((d + 1) // 2 < min_size for d in dims):
            break
        dims = [(d + 1) // 2 for d in dims]
        levels += 1
    return levels
