"""Secure multilevel compression via the generic protect helpers."""

from __future__ import annotations

import numpy as np

from repro.core.protect import protect_sections, unprotect_container
from repro.multilevel.codec import MultilevelCodec, MultilevelStats

__all__ = ["SecureMultilevelCompressor"]


class SecureMultilevelCompressor:
    """The scheme layer over the MGARD-like codec.

    Examples
    --------
    >>> import numpy as np
    >>> smc = SecureMultilevelCompressor("encr_huffman", 1e-3,
    ...                                  key=bytes(16))
    >>> u = np.sin(np.linspace(0, 6, 4096)).reshape(16, 16, 16)
    >>> blob = smc.compress(u)
    >>> bool(np.abs(smc.decompress(blob) - u).max() <= 1e-3)
    True
    """

    def __init__(
        self,
        scheme: str = "encr_huffman",
        error_bound: float = 1e-3,
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        authenticate: bool = False,
        random_state: np.random.Generator | None = None,
    ) -> None:
        self.scheme = scheme
        self._codec = MultilevelCodec(error_bound)
        self._key = key
        self._cipher_mode = cipher_mode
        self._authenticate = authenticate
        self._random_state = random_state
        self.last_stats: MultilevelStats | None = None

    @property
    def codec(self) -> MultilevelCodec:
        """The inner multilevel codec."""
        return self._codec

    def compress(self, data: np.ndarray) -> bytes:
        """Encode and protect ``data``; stats land in ``last_stats``."""
        sections, stats = self._codec.encode(data)
        self.last_stats = stats
        return protect_sections(
            sections,
            self.scheme,
            key=self._key,
            cipher_mode=self._cipher_mode,
            authenticate=self._authenticate,
            random_state=self._random_state,
        )

    def decompress(self, blob: bytes) -> np.ndarray:
        """Invert :meth:`compress` within the codec's error bound."""
        sections = unprotect_container(
            blob, key=self._key, expected_scheme=self.scheme
        )
        return self._codec.decode(sections)
