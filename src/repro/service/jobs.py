"""Job lifecycle: states, legal transitions, and the priority queue.

A job moves ``queued -> running -> done | failed | cancelled``; the
only other legal edge is ``queued -> cancelled`` (a cancel or a client
disconnect before any worker picked the job up).  Cancelling a
*running* job is cooperative: the worker checks ``cancel_requested``
when the compression returns and discards the result, so the state
machine's ``running -> cancelled`` edge is honored at completion time
(docs/SERVICE.md §5 documents the same automaton for clients).

The queue is an ``asyncio.PriorityQueue`` over ``(priority, seq)``
pairs: lower priority values dequeue first, ties dequeue in submission
order.  Only job ids travel through the queue — payloads stay in the
sqlite store so queued bytes never accumulate in process memory.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "STATE_NAMES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "Job",
    "JobQueue",
    "TransitionError",
]

# -- state codes (docs/SERVICE.md §5) ----------------------------------

QUEUED = 0
RUNNING = 1
DONE = 2
FAILED = 3
CANCELLED = 4

STATE_NAMES = {
    QUEUED: "queued",
    RUNNING: "running",
    DONE: "done",
    FAILED: "failed",
    CANCELLED: "cancelled",
}

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The complete automaton; anything else is a bug, not a race.
LEGAL_TRANSITIONS = frozenset({
    (QUEUED, RUNNING),
    (QUEUED, CANCELLED),
    (RUNNING, DONE),
    (RUNNING, FAILED),
    (RUNNING, CANCELLED),
})


class TransitionError(RuntimeError):
    """An illegal job state transition was attempted."""


@dataclass
class Job:
    """In-memory view of one submitted job (payload lives in the store).

    ``done_event`` fires on entry into any terminal state — WAIT verbs
    and the drain logic block on it.  ``owner`` is an opaque connection
    token for non-detached jobs (a disconnect cancels them while they
    are still cancellable).
    """

    job_id: bytes
    priority: int
    scheme: str
    eb: float
    dtype: str
    shape: tuple[int, ...]
    detached: bool = False
    owner: object | None = None
    state: int = QUEUED
    error: str = ""
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    cancel_requested: bool = False
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def transition(self, new_state: int) -> None:
        """Move to ``new_state``, enforcing the documented automaton."""
        if (self.state, new_state) not in LEGAL_TRANSITIONS:
            raise TransitionError(
                f"job {self.job_id.hex()}: illegal transition "
                f"{STATE_NAMES[self.state]} -> {STATE_NAMES[new_state]}"
            )
        self.state = new_state
        if new_state in TERMINAL_STATES:
            self.done_event.set()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def state_name(self) -> str:
        return STATE_NAMES[self.state]


class JobQueue:
    """Priority queue of job ids with a hard depth bound.

    ``put_nowait`` raises ``asyncio.QueueFull`` at ``limit`` entries —
    the server maps that to ``ERR_QUEUE_FULL`` so memory stays bounded
    under submission bursts.  Cancelled jobs are *not* removed from the
    queue (that would be O(n) on every cancel); workers skip ids whose
    job is already terminal when they dequeue.
    """

    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ValueError("queue limit must be positive")
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue(limit)
        self._seq = itertools.count()

    def put_nowait(self, job: Job) -> None:
        self._queue.put_nowait((job.priority, next(self._seq), job.job_id))

    async def get(self) -> bytes:
        """Dequeue the next job id (lowest priority value first)."""
        _, _, job_id = await self._queue.get()
        return job_id

    def get_nowait(self) -> bytes | None:
        """Dequeue without blocking; ``None`` when the queue is empty."""
        try:
            _, _, job_id = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        return job_id

    def qsize(self) -> int:
        return self._queue.qsize()
