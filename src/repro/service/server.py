"""The asyncio compression daemon behind ``secz serve``.

One event loop owns everything except the compression itself: a
stream server (unix socket or TCP) parses SECP frames and routes
verbs, a bounded :class:`~repro.service.jobs.JobQueue` orders work by
priority, ``workers`` asyncio tasks pull jobs, drain compatible
neighbors into batches, and run them on a thread-pool executor through
the shared :class:`~repro.service.pool.CompressorPool`.  The sqlite
:class:`~repro.service.store.JobStore` is written before a SUBMIT is
acknowledged, so every accepted job survives a crash, a SIGTERM, or a
restart — a second daemon on the same store re-queues whatever was
``queued`` or interrupted ``running``.

Lifecycle guarantees (tested by ``tests/service/test_shutdown.py``):

* SIGTERM/SIGINT stop the listener, let running jobs drain to a
  terminal state, leave queued jobs persisted as ``queued``, and exit.
* A client disconnect cancels its non-detached jobs while they are
  cancellable; the cooperative running→cancelled edge discards the
  result at completion, and the compressor's own ``finally`` always
  joins the CTR keystream prefetcher — no thread outlives its job.
* ``workers=0`` is ingest-only mode: accept, persist and answer
  STATUS/STAT, but never start a job (useful for tests and staged
  restarts).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core import trace
from repro.core.schemes import SCHEMES, get_scheme
from repro.service import jobs as jobstates
from repro.service import protocol
from repro.service.jobs import Job, JobQueue
from repro.service.pool import BatchItem, CompressorPool
from repro.service.store import JobStore

__all__ = ["ServiceConfig", "CompressionService", "STAT_SCHEMA"]

#: Schema identifier stamped into every STAT response document.
STAT_SCHEMA = "secp-stat/1"

_SCHEME_BY_ID = {scheme.scheme_id: name for name, scheme in SCHEMES.items()}


@dataclass(frozen=True)
class ServiceConfig:
    """Server-side policy: scheme, key handling, and resource bounds.

    The protocol deliberately lets SUBMIT omit scheme and error bound —
    they default to this config, which is where a deployment pins its
    policy (the per-job override exists for mixed workloads).  ``seed``
    makes IVs deterministic for reproducible experiments (use with
    ``workers=1``; CTR additionally needs ``allow_nonce_reuse``, same
    rule as the library).  ``job_timeout`` bounds one *batch* of jobs
    on the executor; timed-out jobs fail, their executor thread is left
    to finish cooperatively (pure-Python compression cannot be killed
    mid-kernel) and its result is discarded.
    """

    scheme: str = "encr_huffman"
    error_bound: float = 1e-3
    key: bytes | None = None
    cipher_mode: str = "cbc"
    workers: int = 2
    queue_limit: int = 256
    batch_limit: int = 8
    job_timeout: float | None = None
    max_payload: int = 64 * 1024 * 1024
    encode_workers: int = 1
    depth_limit: int | None = None
    seed: int | None = None
    allow_nonce_reuse: bool = False
    chunk_axis_min: int = 0
    n_chunks: int = 4


class CompressionService:
    """The daemon: router + queue + workers + store, one event loop."""

    def __init__(
        self,
        config: ServiceConfig,
        store_path: str,
        *,
        pool: CompressorPool | None = None,
    ) -> None:
        if config.workers < 0:
            raise ValueError("workers must be >= 0")
        if config.batch_limit < 1:
            raise ValueError("batch_limit must be positive")
        if config.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {config.scheme!r}")
        if get_scheme(config.scheme).requires_key and config.key is None:
            raise ValueError(
                f"scheme {config.scheme!r} requires a 16-byte key"
            )
        self.config = config
        self.store = JobStore(store_path)
        self.pool = pool if pool is not None else CompressorPool(
            scheme=config.scheme,
            error_bound=config.error_bound,
            key=config.key,
            cipher_mode=config.cipher_mode,
            encode_workers=config.encode_workers,
            depth_limit=config.depth_limit,
            seed=config.seed,
            allow_nonce_reuse=config.allow_nonce_reuse,
            chunk_axis_min=config.chunk_axis_min,
            n_chunks=config.n_chunks,
        )
        self.jobs: dict[bytes, Job] = {}
        self.queue = JobQueue(config.queue_limit)
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []
        self._running_batches = 0
        self._stopping = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = 0.0
        self._counters0: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    async def serve(
        self,
        *,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        ready: "asyncio.Event | None" = None,
        install_signal_handlers: bool = False,
    ) -> None:
        """Run until shutdown is requested; binds exactly one endpoint."""
        if (socket_path is None) == (host is None):
            raise ValueError("pass exactly one of socket_path or host/port")
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        self._counters0 = trace.counters_snapshot()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_shutdown)
        self._resume_persisted()
        if self.config.workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="secz-serve",
            )
            self._workers = [
                asyncio.ensure_future(self._worker(i))
                for i in range(self.config.workers)
            ]
        if socket_path is not None:
            if os.path.exists(socket_path):
                os.unlink(socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
        if ready is not None:
            ready.set()
        try:
            await self._stopping.wait()
        finally:
            await self._drain_and_close(socket_path)

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handlers land here)."""
        self._stopping.set()

    def shutdown_threadsafe(self) -> None:
        """Request shutdown from another thread (tests, embedders)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def _drain_and_close(self, socket_path: str | None) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let running batches reach a terminal state; queued jobs are
        # already persisted as `queued` and will resume on restart.
        while self._running_batches > 0:
            await asyncio.sleep(0.01)
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.store.close()
        if socket_path is not None and os.path.exists(socket_path):
            os.unlink(socket_path)

    def _resume_persisted(self) -> None:
        """Re-queue jobs a previous daemon left behind in this store."""
        self.store.requeue_interrupted()
        for job in self.store.queued_jobs():
            # Resumed jobs have lost their submitting connection; they
            # must survive like detached ones.
            job.detached = True
            self.jobs[job.job_id] = job
            self.queue.put_nowait(job)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_token = object()
        try:
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, max_payload=self.config.max_payload
                    )
                except protocol.ProtocolError as exc:
                    await protocol.write_frame(
                        writer, protocol.VERB_PING, status=exc.code,
                        payload=str(exc).encode(),
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if frame is None:
                    break
                try:
                    await self._dispatch(frame, writer, conn_token)
                except ConnectionError:
                    break
        finally:
            self._cancel_owned(conn_token)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _cancel_owned(self, conn_token: object) -> None:
        """A disconnect cancels the connection's non-detached jobs."""
        for job in self.jobs.values():
            if job.owner is not conn_token or job.detached:
                continue
            if job.state == jobstates.QUEUED:
                self._finish_job(job, jobstates.CANCELLED, None,
                                 "client disconnected")
            elif job.state == jobstates.RUNNING:
                job.cancel_requested = True

    async def _dispatch(
        self,
        frame: protocol.Frame,
        writer: asyncio.StreamWriter,
        conn_token: object,
    ) -> None:
        verb = frame.verb
        if verb == protocol.VERB_PING:
            await protocol.write_frame(writer, verb)
        elif verb == protocol.VERB_SUBMIT:
            await self._handle_submit(frame, writer, conn_token)
        elif verb == protocol.VERB_STATUS:
            await self._handle_status(frame, writer)
        elif verb == protocol.VERB_FETCH:
            await self._handle_fetch(frame, writer)
        elif verb == protocol.VERB_WAIT:
            await self._handle_wait(frame, writer)
        elif verb == protocol.VERB_CANCEL:
            await self._handle_cancel(frame, writer)
        elif verb == protocol.VERB_STAT:
            await protocol.write_frame(
                writer, verb,
                payload=json.dumps(self.stats(), sort_keys=True).encode(),
            )
        else:
            await protocol.write_frame(
                writer, verb, status=protocol.ERR_VERB,
                payload=f"unknown verb {verb}".encode(),
            )

    # -- verb handlers -------------------------------------------------

    async def _handle_submit(
        self,
        frame: protocol.Frame,
        writer: asyncio.StreamWriter,
        conn_token: object,
    ) -> None:
        if self._stopping.is_set():
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_SHUTTING_DOWN,
                payload=b"server is shutting down",
            )
            return
        try:
            spec = protocol.unpack_submit(frame.payload)
        except protocol.ProtocolError as exc:
            await protocol.write_frame(
                writer, frame.verb, status=exc.code,
                payload=str(exc).encode(),
            )
            return
        scheme_id = spec["scheme_id"]
        if scheme_id == protocol.SCHEME_DEFAULT:
            scheme_name = None
        elif scheme_id in _SCHEME_BY_ID:
            scheme_name = _SCHEME_BY_ID[scheme_id]
        else:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_PAYLOAD,
                payload=f"unknown scheme id {scheme_id}".encode(),
            )
            return
        scheme, eb = self.pool.resolve(scheme_name, spec["eb"])
        if get_scheme(scheme).requires_key and self.config.key is None:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_PAYLOAD,
                payload=f"server holds no key for scheme {scheme!r}".encode(),
            )
            return
        job = Job(
            job_id=os.urandom(protocol.JOB_ID_BYTES),
            priority=spec["priority"],
            scheme=scheme,
            eb=eb,
            dtype=spec["dtype"],
            shape=spec["shape"],
            detached=bool(spec["flags"] & protocol.FLAG_DETACHED),
            owner=conn_token,
            submitted_at=time.time(),
        )
        try:
            self.queue.put_nowait(job)
        except asyncio.QueueFull:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_QUEUE_FULL,
                payload=f"queue limit {self.config.queue_limit} reached"
                .encode(),
            )
            return
        self.jobs[job.job_id] = job
        self.store.insert(job, spec["field"])
        trace.count("service.jobs_submitted")
        await protocol.write_frame(writer, frame.verb, job_id=job.job_id)

    def _lookup(self, job_id: bytes) -> Job | None:
        job = self.jobs.get(job_id)
        if job is None:
            # Jobs from a previous daemon generation are only on disk.
            job = self.store.load(job_id)
            if job is not None:
                self.jobs[job_id] = job
        return job

    async def _handle_status(
        self, frame: protocol.Frame, writer: asyncio.StreamWriter
    ) -> None:
        job = self._lookup(frame.job_id)
        if job is None:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_UNKNOWN_JOB,
                payload=frame.job_id.hex().encode(),
            )
            return
        await protocol.write_frame(
            writer, frame.verb, job_id=job.job_id,
            payload=bytes([job.state]),
        )

    async def _handle_fetch(
        self, frame: protocol.Frame, writer: asyncio.StreamWriter
    ) -> None:
        job = self._lookup(frame.job_id)
        if job is None:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_UNKNOWN_JOB,
                payload=frame.job_id.hex().encode(),
            )
            return
        await self._send_result(frame.verb, job, writer)

    async def _handle_wait(
        self, frame: protocol.Frame, writer: asyncio.StreamWriter
    ) -> None:
        job = self._lookup(frame.job_id)
        if job is None:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_UNKNOWN_JOB,
                payload=frame.job_id.hex().encode(),
            )
            return
        await job.done_event.wait()
        await self._send_result(frame.verb, job, writer)

    async def _send_result(
        self, verb: int, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        if job.state == jobstates.DONE:
            container = self.store.container(job.job_id)
            if container is None:
                await protocol.write_frame(
                    writer, verb, status=protocol.ERR_JOB_FAILED,
                    job_id=job.job_id, payload=b"result expired from store",
                )
                return
            await protocol.write_frame(
                writer, verb, job_id=job.job_id, payload=container
            )
        elif job.state == jobstates.FAILED:
            await protocol.write_frame(
                writer, verb, status=protocol.ERR_JOB_FAILED,
                job_id=job.job_id, payload=job.error.encode(),
            )
        elif job.state == jobstates.CANCELLED:
            await protocol.write_frame(
                writer, verb, status=protocol.ERR_CANCELLED,
                job_id=job.job_id, payload=job.error.encode(),
            )
        else:
            await protocol.write_frame(
                writer, verb, status=protocol.ERR_NOT_DONE,
                job_id=job.job_id, payload=bytes([job.state]),
            )

    async def _handle_cancel(
        self, frame: protocol.Frame, writer: asyncio.StreamWriter
    ) -> None:
        job = self._lookup(frame.job_id)
        if job is None:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_UNKNOWN_JOB,
                payload=frame.job_id.hex().encode(),
            )
            return
        if job.state == jobstates.QUEUED:
            self._finish_job(job, jobstates.CANCELLED, None,
                             "cancelled by client")
            await protocol.write_frame(writer, frame.verb,
                                       job_id=job.job_id)
        elif job.state == jobstates.RUNNING:
            job.cancel_requested = True
            await protocol.write_frame(writer, frame.verb,
                                       job_id=job.job_id)
        else:
            await protocol.write_frame(
                writer, frame.verb, status=protocol.ERR_UNCANCELLABLE,
                job_id=job.job_id, payload=job.state_name.encode(),
            )

    # -- workers -------------------------------------------------------

    async def _worker(self, index: int) -> None:
        while True:
            job_id = await self.queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.state != jobstates.QUEUED:
                continue  # cancelled while queued; the row is terminal
            batch = [job]
            while len(batch) < self.config.batch_limit:
                extra_id = self.queue.get_nowait()
                if extra_id is None:
                    break
                extra = self.jobs.get(extra_id)
                if extra is None or extra.state != jobstates.QUEUED:
                    continue
                if (extra.scheme, extra.eb) != (job.scheme, job.eb):
                    # Not batchable with this group; run it next round.
                    self.queue.put_nowait(extra)
                    break
                batch.append(extra)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[Job]) -> None:
        items = []
        now = time.time()
        for job in batch:
            payload = self.store.payload(job.job_id)
            job.started_at = now
            job.transition(jobstates.RUNNING)
            self.store.mark_running(job)
            trace.count(
                "service.queue_wait_ms",
                max(1, round((job.started_at - job.submitted_at) * 1e3)),
            )
            if payload is None:
                self._finish_job(job, jobstates.FAILED, None,
                                 "payload missing from store")
                continue
            dtype = np.float32 if job.dtype == "float32" else np.float64
            field = np.frombuffer(payload, dtype=dtype).reshape(job.shape)
            items.append(BatchItem(job.job_id, field, job.scheme, job.eb))
        if not items:
            return
        live = {job.job_id: job for job in batch if not job.terminal}
        self._running_batches += 1
        try:
            future = asyncio.get_running_loop().run_in_executor(
                self._executor, self.pool.compress_many, items
            )
            if self.config.job_timeout is not None:
                results = await asyncio.wait_for(
                    asyncio.shield(future), self.config.job_timeout
                )
            else:
                results = await future
        except asyncio.TimeoutError:
            for job in live.values():
                self._finish_job(
                    job, jobstates.FAILED, None,
                    f"job timed out after {self.config.job_timeout}s",
                )
            return
        except Exception as exc:  # compression errors fail the batch
            for job in live.values():
                self._finish_job(job, jobstates.FAILED, None,
                                 f"{type(exc).__name__}: {exc}")
            return
        finally:
            self._running_batches -= 1
        for result in results:
            job = live.get(result.job_id)
            if job is None:
                continue
            if job.cancel_requested:
                self._finish_job(job, jobstates.CANCELLED, None,
                                 "cancelled while running")
            else:
                self._finish_job(job, jobstates.DONE, result.container, "")

    def _finish_job(
        self,
        job: Job,
        state: int,
        container: bytes | None,
        error: str,
    ) -> None:
        job.error = error
        job.finished_at = time.time()
        job.transition(state)
        if state == jobstates.FAILED:
            trace.count("service.jobs_failed")
        self.store.finish(job, container)

    # -- STAT ----------------------------------------------------------

    def stats(self) -> dict:
        """The STAT document (docs/SERVICE.md §7): queue, counters,
        codec cache, keystream overlap."""
        now = trace.counters_snapshot()
        delta = {
            name: now[name] - self._counters0.get(name, 0)
            for name in sorted(now)
            if now[name] != self._counters0.get(name, 0)
        }
        in_memory = {name: 0 for name in jobstates.STATE_NAMES.values()}
        for job in self.jobs.values():
            in_memory[job.state_name] += 1
        return {
            "schema": STAT_SCHEMA,
            "uptime_s": round(time.time() - self._started_at, 3),
            "workers": self.config.workers,
            "queue_depth": self.queue.qsize(),
            "jobs": in_memory,
            "store": {"path": self.store.path,
                      "jobs": self.store.counts_by_state()},
            "counters": delta,
            "codec_cache": self.pool.codec_cache_stats(),
            "pool": self.pool.stats(),
        }
