"""Sqlite-backed job/result store for ``secz serve``.

The store is the daemon's durability layer: every submitted job is
written before it is acknowledged, raw field payloads live here (not
in process memory) until a worker picks them up, and finished
containers stay fetchable until expired.  Because the full lifecycle
is on disk, a second ``secz serve`` on the same store resumes exactly
where the first stopped: jobs found ``running`` at startup were
interrupted mid-flight and are re-queued, jobs found ``queued`` are
simply re-enqueued in (priority, submission) order.

All access happens on the event-loop thread (the executor only ever
runs compression), so one connection with no locking suffices; the
sqlite file itself uses WAL so an operator can inspect a live store
read-only.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.service import jobs as jobstates

__all__ = ["JobStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id      TEXT PRIMARY KEY,
    state       INTEGER NOT NULL,
    priority    INTEGER NOT NULL,
    detached    INTEGER NOT NULL,
    scheme      TEXT NOT NULL,
    eb          REAL NOT NULL,
    dtype       TEXT NOT NULL,
    shape       TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    payload     BLOB,
    container   BLOB,
    error       TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
"""


class JobStore:
    """One sqlite file holding the daemon's complete job lifecycle."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        # The service may be constructed on one thread and run its loop
        # on another (serve_in_background); all *concurrent* access
        # still happens on the single event-loop thread.
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    # -- lifecycle writes ----------------------------------------------

    def insert(self, job: jobstates.Job, payload: bytes) -> None:
        """Persist a freshly submitted job with its raw field bytes."""
        self._db.execute(
            "INSERT INTO jobs (job_id, state, priority, detached, scheme,"
            " eb, dtype, shape, submitted_at, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job.job_id.hex(), job.state, job.priority,
                int(job.detached), job.scheme, job.eb, job.dtype,
                json.dumps(list(job.shape)), job.submitted_at,
                sqlite3.Binary(payload),
            ),
        )
        self._db.commit()

    def mark_running(self, job: jobstates.Job) -> None:
        self._db.execute(
            "UPDATE jobs SET state = ?, started_at = ? WHERE job_id = ?",
            (jobstates.RUNNING, job.started_at, job.job_id.hex()),
        )
        self._db.commit()

    def finish(self, job: jobstates.Job, container: bytes | None) -> None:
        """Record a terminal state; the payload is dropped either way."""
        self._db.execute(
            "UPDATE jobs SET state = ?, finished_at = ?, container = ?,"
            " error = ?, payload = NULL WHERE job_id = ?",
            (
                job.state, job.finished_at,
                sqlite3.Binary(container) if container is not None else None,
                job.error, job.job_id.hex(),
            ),
        )
        self._db.commit()

    def requeue_interrupted(self) -> int:
        """Reset ``running`` rows to ``queued`` (a previous daemon died
        or was terminated mid-job); returns how many were reset."""
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, started_at = NULL WHERE state = ?",
            (jobstates.QUEUED, jobstates.RUNNING),
        )
        self._db.commit()
        return cur.rowcount

    # -- reads ---------------------------------------------------------

    def payload(self, job_id: bytes) -> bytes | None:
        row = self._db.execute(
            "SELECT payload FROM jobs WHERE job_id = ?", (job_id.hex(),)
        ).fetchone()
        return None if row is None or row[0] is None else bytes(row[0])

    def container(self, job_id: bytes) -> bytes | None:
        row = self._db.execute(
            "SELECT container FROM jobs WHERE job_id = ?", (job_id.hex(),)
        ).fetchone()
        return None if row is None or row[0] is None else bytes(row[0])

    def load(self, job_id: bytes) -> jobstates.Job | None:
        """Rebuild a :class:`~repro.service.jobs.Job` from its row."""
        row = self._db.execute(
            "SELECT job_id, state, priority, detached, scheme, eb, dtype,"
            " shape, submitted_at, started_at, finished_at, error"
            " FROM jobs WHERE job_id = ?",
            (job_id.hex(),),
        ).fetchone()
        return None if row is None else self._job_from_row(row)

    def queued_jobs(self) -> list[jobstates.Job]:
        """Every ``queued`` job, in (priority, submission) order."""
        rows = self._db.execute(
            "SELECT job_id, state, priority, detached, scheme, eb, dtype,"
            " shape, submitted_at, started_at, finished_at, error"
            " FROM jobs WHERE state = ?"
            " ORDER BY priority ASC, submitted_at ASC",
            (jobstates.QUEUED,),
        ).fetchall()
        return [self._job_from_row(row) for row in rows]

    def counts_by_state(self) -> dict[str, int]:
        """``{state name: row count}`` over the whole store."""
        counts = {name: 0 for name in jobstates.STATE_NAMES.values()}
        for state, n in self._db.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            counts[jobstates.STATE_NAMES[state]] = n
        return counts

    @staticmethod
    def _job_from_row(row: tuple) -> jobstates.Job:
        (job_id, state, priority, detached, scheme, eb, dtype, shape,
         submitted_at, started_at, finished_at, error) = row
        job = jobstates.Job(
            job_id=bytes.fromhex(job_id),
            priority=priority,
            scheme=scheme,
            eb=eb,
            dtype=dtype,
            shape=tuple(json.loads(shape)),
            detached=bool(detached),
            submitted_at=submitted_at,
            started_at=started_at or 0.0,
            finished_at=finished_at or 0.0,
            error=error,
        )
        # Bypass the transition automaton: the row already holds a
        # validated state, possibly terminal.
        job.state = state
        if job.terminal:
            job.done_event.set()
        return job
