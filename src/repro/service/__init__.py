"""``repro.service`` — the ``secz serve`` compression daemon.

The package splits the daemon along its natural seams:

* :mod:`repro.service.protocol` — SECP/1 framing (docs/SERVICE.md is
  the normative byte spec).
* :mod:`repro.service.jobs` — the job state machine and the bounded
  priority queue.
* :mod:`repro.service.store` — the sqlite durability layer (payloads,
  results, restart/resume).
* :mod:`repro.service.pool` — the warm compressor pool and the
  ``compress_many`` batcher.
* :mod:`repro.service.server` — the asyncio daemon tying them together.
* :mod:`repro.service.client` — the blocking client used by examples,
  tests, and the README quickstart.

:func:`serve_in_background` runs a daemon on a private event loop in a
daemon thread — the embedding pattern used by the docs examples and the
test-suite; production deployments run ``secz serve`` as a process and
get signal-driven graceful shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

from repro.service.client import JobPending, ServiceClient, ServiceError
from repro.service.server import CompressionService, ServiceConfig

__all__ = [
    "CompressionService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "JobPending",
    "serve_in_background",
]


@contextlib.contextmanager
def serve_in_background(
    config: ServiceConfig,
    store_path: str,
    *,
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
):
    """Run a :class:`CompressionService` in a daemon thread.

    Yields the service once its listener is bound; on exit requests a
    graceful shutdown and joins the thread (running jobs drain, queued
    jobs stay persisted in the store).  Signal handlers are *not*
    installed — they belong to the main thread and the CLI path.
    """
    service = CompressionService(config, store_path)
    ready = threading.Event()
    errors: list[BaseException] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        async_ready = asyncio.Event()

        async def main() -> None:
            serve_task = asyncio.ensure_future(service.serve(
                socket_path=socket_path, host=host, port=port,
                ready=async_ready,
            ))
            waiter = asyncio.ensure_future(async_ready.wait())
            await asyncio.wait({serve_task, waiter},
                               return_when=asyncio.FIRST_COMPLETED)
            if serve_task.done() and serve_task.exception() is not None:
                waiter.cancel()
                raise serve_task.exception()
            ready.set()
            await serve_task

        try:
            loop.run_until_complete(main())
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
            ready.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="secz-serve-loop",
                              daemon=True)
    thread.start()
    ready.wait()
    if errors:
        raise errors[0]
    try:
        yield service
    finally:
        service.shutdown_threadsafe()
        thread.join(timeout=30)
        if errors:
            raise errors[0]
