"""SECP/1 — the ``secz serve`` wire protocol.

One frame shape serves every exchange: a fixed 20-byte header
(magic, version, verb, status, job id, payload length) followed by the
payload.  docs/SERVICE.md is the normative byte-level spec — the
constants here are cross-checked against its tables by
``tests/service/test_service_spec.py`` the same way
``tests/test_format_spec.py`` pins docs/FORMAT.md, so the two cannot
drift apart.

Requests travel client → server with ``status == 0``; every response
echoes the request verb and carries either ``STATUS_OK`` or an error
code from the table below (error payloads are UTF-8 diagnostics).
Helpers here are transport-agnostic: :func:`pack_frame` /
:func:`unpack_header` for raw bytes, :func:`read_frame` /
:func:`write_frame` for asyncio streams, and
:func:`recv_frame_blocking` for plain sockets (the sync client).
"""

from __future__ import annotations

import asyncio
import socket
import struct
from dataclasses import dataclass

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "FRAME_HEADER",
    "SUBMIT_HEAD",
    "JOB_ID_BYTES",
    "MAX_PAYLOAD",
    "VERBS",
    "VERB_SUBMIT",
    "VERB_STATUS",
    "VERB_FETCH",
    "VERB_CANCEL",
    "VERB_STAT",
    "VERB_PING",
    "VERB_WAIT",
    "STATUS_OK",
    "ERRORS",
    "FLAG_DETACHED",
    "SCHEME_DEFAULT",
    "DTYPE_CODES",
    "Frame",
    "ProtocolError",
    "pack_frame",
    "unpack_header",
    "pack_submit",
    "unpack_submit",
    "read_frame",
    "write_frame",
    "recv_frame_blocking",
    "send_frame_blocking",
]

#: ASCII ``SECP`` — the frame magic (docs/SERVICE.md §2).
PROTOCOL_MAGIC = b"SECP"
PROTOCOL_VERSION = 1

#: Frame header: magic, version, verb, status, job id, payload length.
FRAME_HEADER = struct.Struct("<4sBBH8sI")
#: SUBMIT payload head: priority, flags, scheme id, dtype code, eb, ndim.
SUBMIT_HEAD = struct.Struct("<BBBBdB")

JOB_ID_BYTES = 8
NULL_JOB_ID = b"\x00" * JOB_ID_BYTES

#: Hard ceiling on a frame payload; servers may configure a lower one.
MAX_PAYLOAD = 1 << 30

# -- verbs (docs/SERVICE.md §3) ----------------------------------------

VERB_SUBMIT = 1
VERB_STATUS = 2
VERB_FETCH = 3
VERB_CANCEL = 4
VERB_STAT = 5
VERB_PING = 6
VERB_WAIT = 7

VERBS = {
    VERB_SUBMIT: "SUBMIT",
    VERB_STATUS: "STATUS",
    VERB_FETCH: "FETCH",
    VERB_CANCEL: "CANCEL",
    VERB_STAT: "STAT",
    VERB_PING: "PING",
    VERB_WAIT: "WAIT",
}

# -- status / error codes (docs/SERVICE.md §6) -------------------------

STATUS_OK = 0

ERRORS = {
    1: "ERR_MAGIC",
    2: "ERR_VERSION",
    3: "ERR_VERB",
    4: "ERR_PAYLOAD",
    5: "ERR_UNKNOWN_JOB",
    6: "ERR_NOT_DONE",
    7: "ERR_JOB_FAILED",
    8: "ERR_CANCELLED",
    9: "ERR_QUEUE_FULL",
    10: "ERR_UNCANCELLABLE",
    11: "ERR_SHUTTING_DOWN",
    12: "ERR_TOO_LARGE",
}

ERR_MAGIC = 1
ERR_VERSION = 2
ERR_VERB = 3
ERR_PAYLOAD = 4
ERR_UNKNOWN_JOB = 5
ERR_NOT_DONE = 6
ERR_JOB_FAILED = 7
ERR_CANCELLED = 8
ERR_QUEUE_FULL = 9
ERR_UNCANCELLABLE = 10
ERR_SHUTTING_DOWN = 11
ERR_TOO_LARGE = 12

# -- SUBMIT payload registries (docs/SERVICE.md §4) --------------------

#: SUBMIT flags bit 0: the job survives its submitting connection.
FLAG_DETACHED = 0x01
#: Scheme id 255 in a SUBMIT defers to the server's configured scheme.
SCHEME_DEFAULT = 0xFF

#: dtype codes shared with the SZ frame meta (FORMAT.md §3).
DTYPE_CODES = {0: "float32", 1: "float64"}
DTYPE_IDS = {name: code for code, name in DTYPE_CODES.items()}

MAX_NDIM = 4


class ProtocolError(ValueError):
    """A malformed SECP frame or payload; carries the wire error code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Frame:
    """One decoded SECP frame (header fields + payload bytes)."""

    verb: int
    status: int
    job_id: bytes
    payload: bytes

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def error_name(self) -> str:
        return ERRORS.get(self.status, f"ERR_{self.status}")


def pack_frame(
    verb: int,
    *,
    status: int = STATUS_OK,
    job_id: bytes = NULL_JOB_ID,
    payload: bytes = b"",
) -> bytes:
    """Serialize one frame: header then payload."""
    if len(job_id) != JOB_ID_BYTES:
        raise ValueError(f"job id must be {JOB_ID_BYTES} bytes")
    if len(payload) > MAX_PAYLOAD:
        raise ValueError("frame payload exceeds the protocol ceiling")
    return FRAME_HEADER.pack(
        PROTOCOL_MAGIC, PROTOCOL_VERSION, verb, status, job_id, len(payload)
    ) + payload


def unpack_header(header: bytes) -> tuple[int, int, bytes, int]:
    """Decode and validate a 20-byte frame header.

    Returns ``(verb, status, job_id, payload_length)``; raises
    :class:`ProtocolError` with the documented error code on a bad
    magic, unsupported version, or oversized payload.
    """
    if len(header) != FRAME_HEADER.size:
        raise ProtocolError(
            ERR_PAYLOAD,
            f"frame header is {len(header)} bytes, expected "
            f"{FRAME_HEADER.size}",
        )
    magic, version, verb, status, job_id, length = FRAME_HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(ERR_MAGIC, f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_VERSION, f"unsupported SECP version {version}"
        )
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            ERR_TOO_LARGE, f"frame payload of {length} bytes exceeds ceiling"
        )
    return verb, status, job_id, length


def pack_submit(
    field_bytes: bytes,
    shape: tuple[int, ...],
    dtype: str,
    *,
    eb: float = 0.0,
    scheme_id: int = SCHEME_DEFAULT,
    priority: int = 16,
    flags: int = 0,
) -> bytes:
    """Build a SUBMIT payload: spec head, dims, then the raw field.

    ``eb == 0.0`` and ``scheme_id == SCHEME_DEFAULT`` defer to the
    server's configured policy (docs/SERVICE.md §4).
    """
    if dtype not in DTYPE_IDS:
        raise ValueError(f"unsupported dtype {dtype!r} (float32/float64)")
    ndim = len(shape)
    if not 1 <= ndim <= MAX_NDIM:
        raise ValueError(f"shape must have 1..{MAX_NDIM} dims, got {ndim}")
    head = SUBMIT_HEAD.pack(
        priority, flags, scheme_id, DTYPE_IDS[dtype], float(eb), ndim
    )
    dims = struct.pack(f"<{ndim}Q", *shape)
    return head + dims + field_bytes


def unpack_submit(payload: bytes) -> dict:
    """Decode a SUBMIT payload into its job-spec dict.

    Raises :class:`ProtocolError` (``ERR_PAYLOAD``) when the head is
    truncated, the dims are invalid, or the field byte count does not
    match ``prod(shape) * itemsize``.
    """
    if len(payload) < SUBMIT_HEAD.size:
        raise ProtocolError(ERR_PAYLOAD, "SUBMIT payload shorter than head")
    priority, flags, scheme_id, dtype_code, eb, ndim = SUBMIT_HEAD.unpack_from(
        payload
    )
    if dtype_code not in DTYPE_CODES:
        raise ProtocolError(ERR_PAYLOAD, f"unknown dtype code {dtype_code}")
    if not 1 <= ndim <= MAX_NDIM:
        raise ProtocolError(ERR_PAYLOAD, f"ndim must be 1..{MAX_NDIM}")
    offset = SUBMIT_HEAD.size
    if len(payload) < offset + 8 * ndim:
        raise ProtocolError(ERR_PAYLOAD, "SUBMIT payload truncated in dims")
    shape = struct.unpack_from(f"<{ndim}Q", payload, offset)
    offset += 8 * ndim
    if any(d < 1 for d in shape):
        raise ProtocolError(ERR_PAYLOAD, f"bad field shape {shape}")
    n_elements = 1
    for dim in shape:
        n_elements *= dim
    itemsize = 4 if dtype_code == 0 else 8
    expected = n_elements * itemsize
    if len(payload) - offset != expected:
        raise ProtocolError(
            ERR_PAYLOAD,
            f"field bytes ({len(payload) - offset}) do not match shape "
            f"{shape} x {DTYPE_CODES[dtype_code]} ({expected})",
        )
    if eb < 0.0 or eb != eb:  # negative or NaN
        raise ProtocolError(ERR_PAYLOAD, f"bad error bound {eb!r}")
    return {
        "priority": priority,
        "flags": flags,
        "scheme_id": scheme_id,
        "dtype": DTYPE_CODES[dtype_code],
        "eb": eb,
        "shape": shape,
        "field": payload[offset:],
    }


# -- asyncio transport -------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, *, max_payload: int = MAX_PAYLOAD
) -> Frame | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on a bad header or a payload above
    ``max_payload``; :class:`asyncio.IncompleteReadError` surfaces a
    mid-frame disconnect.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    verb, status, job_id, length = unpack_header(header)
    if length > max_payload:
        raise ProtocolError(
            ERR_TOO_LARGE,
            f"frame payload of {length} bytes exceeds the server limit "
            f"of {max_payload}",
        )
    payload = await reader.readexactly(length) if length else b""
    return Frame(verb=verb, status=status, job_id=job_id, payload=payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    verb: int,
    *,
    status: int = STATUS_OK,
    job_id: bytes = NULL_JOB_ID,
    payload: bytes = b"",
) -> None:
    """Serialize and flush one frame onto an asyncio stream."""
    writer.write(pack_frame(verb, status=status, job_id=job_id,
                            payload=payload))
    await writer.drain()


# -- blocking-socket transport (sync client, tests) --------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame_blocking(sock: socket.socket) -> Frame:
    """Read one frame from a blocking socket (the sync client path)."""
    header = _recv_exactly(sock, FRAME_HEADER.size)
    verb, status, job_id, length = unpack_header(header)
    payload = _recv_exactly(sock, length) if length else b""
    return Frame(verb=verb, status=status, job_id=job_id, payload=payload)


def send_frame_blocking(
    sock: socket.socket,
    verb: int,
    *,
    status: int = STATUS_OK,
    job_id: bytes = NULL_JOB_ID,
    payload: bytes = b"",
) -> None:
    """Serialize and send one frame over a blocking socket."""
    sock.sendall(pack_frame(verb, status=status, job_id=job_id,
                            payload=payload))
