"""Shared compressor pool and the ``compress_many`` batcher.

A one-shot ``secz compress`` pays its setup every call: AES key
expansion, predictor selection, and a cold canonical-codec cache.  The
daemon amortizes all three.  The pool pre-builds one
:class:`~repro.core.pipeline.SecureCompressor` per executor thread and
(scheme, eb) configuration — the AES-128 key schedule is expanded once
per thread and reused for every job — and every compression runs in
the one process whose ``huffman.codec_for`` cache stays warm, so
statistically similar fields reuse each other's canonical Huffman
codecs instead of rebuilding them.  In CTR mode each job's keystream
prefetcher is started by the compressor itself before the SZ stages
run (:mod:`repro.crypto.pipelined`), exactly as in one-shot calls, but
against an already-expanded schedule.

:meth:`CompressorPool.compress_many` is the batcher: a worker hands it
every compatible job it managed to drain from the queue and the batch
compresses back to back on one warm compressor.  Each field whose
canonical codec is served from the process-wide cache counts one
``service.batch_reuse_hits`` — the daemon's measurable win over
one-shot calls.  Fields whose leading axis is long enough optionally
take the :class:`~repro.parallel.chunked.ChunkedSecureCompressor`
slab-parallel path and come back as SECM multi-chunk blobs (the
container magic tells clients which decoder to use).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.parallel.chunked import ChunkedSecureCompressor
from repro.sz import huffman

__all__ = ["CompressorPool", "BatchItem", "BatchResult"]


class BatchItem:
    """One job's compression input, as the worker hands it over."""

    __slots__ = ("job_id", "field", "scheme", "eb")

    def __init__(self, job_id: bytes, field: np.ndarray, scheme: str,
                 eb: float) -> None:
        self.job_id = job_id
        self.field = field
        self.scheme = scheme
        self.eb = eb


class BatchResult:
    """One job's compression output plus its observability summary."""

    __slots__ = ("job_id", "container", "seconds", "overlap_ms", "wait_ms",
                 "codec_reused")

    def __init__(self, job_id: bytes, container: bytes, seconds: float,
                 overlap_ms: float, wait_ms: float,
                 codec_reused: bool) -> None:
        self.job_id = job_id
        self.container = container
        self.seconds = seconds
        self.overlap_ms = overlap_ms
        self.wait_ms = wait_ms
        self.codec_reused = codec_reused


class CompressorPool:
    """Thread-local :class:`SecureCompressor` instances, shared policy.

    Parameters mirror the compressor's; ``seed`` builds *one* shared
    compressor with a seeded IV stream (deterministic containers for
    reproducible experiments — callers must then serialize jobs, which
    ``secz serve --workers 1`` does).  ``chunk_axis_min > 0`` routes
    fields whose leading axis reaches it through the slab-parallel
    chunked compressor.
    """

    def __init__(
        self,
        *,
        scheme: str = "encr_huffman",
        error_bound: float = 1e-3,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        encode_workers: int = 1,
        depth_limit: int | None = None,
        seed: int | None = None,
        allow_nonce_reuse: bool = False,
        chunk_axis_min: int = 0,
        n_chunks: int = 4,
    ) -> None:
        self.scheme = scheme
        self.error_bound = float(error_bound)
        self.key = key
        self.cipher_mode = cipher_mode
        self.encode_workers = encode_workers
        self.depth_limit = depth_limit
        self.seed = seed
        self.allow_nonce_reuse = allow_nonce_reuse
        self.chunk_axis_min = int(chunk_axis_min)
        self.n_chunks = n_chunks
        self._tls = threading.local()
        self._shared: dict[tuple[str, float], SecureCompressor] = {}
        self._stats_lock = threading.Lock()
        #: Aggregates STAT reads: jobs compressed, keystream overlap.
        self.jobs_compressed = 0
        self.keystream_overlap_ms = 0.0
        self.keystream_wait_ms = 0.0
        if seed is not None:
            # One shared seeded compressor per config: the IV stream is
            # a sequence, so it must not fork across threads.
            self._seed_rng = np.random.default_rng(seed)

    # -- compressor construction ---------------------------------------

    def _build(self, scheme: str, eb: float) -> SecureCompressor:
        return SecureCompressor(
            scheme=scheme,
            error_bound=eb,
            key=self.key,
            cipher_mode=self.cipher_mode,
            encode_workers=self.encode_workers,
            depth_limit=self.depth_limit,
            random_state=self._seed_rng if self.seed is not None else None,
            allow_nonce_reuse=self.allow_nonce_reuse,
        )

    def compressor_for(self, scheme: str, eb: float) -> SecureCompressor:
        """The calling thread's warm compressor for ``(scheme, eb)``."""
        key = (scheme, float(eb))
        if self.seed is not None:
            # Seeded compressors are shared (single IV stream).
            if key not in self._shared:
                self._shared[key] = self._build(scheme, eb)
            return self._shared[key]
        cache = getattr(self._tls, "compressors", None)
        if cache is None:
            cache = self._tls.compressors = {}
        if key not in cache:
            cache[key] = self._build(scheme, eb)
        return cache[key]

    def resolve(self, scheme: str | None, eb: float) -> tuple[str, float]:
        """Apply server policy: fall back to the configured defaults."""
        return (scheme or self.scheme, eb if eb > 0.0 else self.error_bound)

    # -- the batcher ---------------------------------------------------

    def compress_many(self, items: list[BatchItem]) -> list[BatchResult]:
        """Compress a drained batch back to back on warm state.

        All items must share one ``(scheme, eb)`` — the worker groups
        before calling.  Runs on an executor thread; every field is
        traced so the service can export per-request spans and
        keystream overlap through STAT.
        """
        if not items:
            return []
        results = []
        sc = self.compressor_for(items[0].scheme, items[0].eb)
        for item in items:
            hits_before = trace.counters_snapshot().get(
                "huffman.codec_cache_hits", 0
            )
            tr = trace.Tracer()
            with tr.span("service.job", bytes_in=item.field.nbytes,
                         job_id=item.job_id.hex()):
                if (
                    self.chunk_axis_min > 0
                    and item.field.ndim >= 2
                    and item.field.shape[0] >= self.chunk_axis_min
                ):
                    container = self._compress_chunked(item, tr)
                else:
                    container = sc.compress(item.field, tracer=tr).container
            doc = tr.export()
            root = doc["roots"][0]
            overlap, wait = _keystream_attrs(root)
            reused = trace.counters_snapshot().get(
                "huffman.codec_cache_hits", 0
            ) > hits_before
            if reused:
                trace.count("service.batch_reuse_hits")
            with self._stats_lock:
                self.jobs_compressed += 1
                self.keystream_overlap_ms += overlap
                self.keystream_wait_ms += wait
            results.append(BatchResult(
                job_id=item.job_id,
                container=container,
                seconds=root["seconds"],
                overlap_ms=overlap,
                wait_ms=wait,
                codec_reused=reused,
            ))
        return results

    def _compress_chunked(self, item: BatchItem,
                          tr: trace.Tracer) -> bytes:
        chunked = ChunkedSecureCompressor(
            scheme=item.scheme,
            error_bound=item.eb,
            key=self.key,
            cipher_mode=self.cipher_mode,
            encode_workers=self.encode_workers,
            depth_limit=self.depth_limit,
            n_chunks=min(self.n_chunks, item.field.shape[0]),
            n_workers=1,
            allow_nonce_reuse=self.allow_nonce_reuse,
        )
        return chunked.compress(item.field, tracer=tr)

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Aggregate pool statistics for the STAT verb."""
        with self._stats_lock:
            return {
                "jobs_compressed": self.jobs_compressed,
                "keystream_overlap_ms": round(self.keystream_overlap_ms, 3),
                "keystream_wait_ms": round(self.keystream_wait_ms, 3),
            }

    @staticmethod
    def codec_cache_stats() -> dict:
        """The process-wide canonical-codec cache, hit rate included."""
        counters = trace.counters_snapshot()
        hits = counters.get("huffman.codec_cache_hits", 0)
        misses = counters.get("huffman.codec_cache_misses", 0)
        total = hits + misses
        stats = huffman.codec_cache_stats()
        stats.update({
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        })
        return stats


def _keystream_attrs(root: dict) -> tuple[float, float]:
    """Pull keystream overlap/wait off the compress span, searching the
    ``service.job`` subtree (chunked slabs keep per-slab attrs)."""
    overlap = wait = 0.0
    stack = [root]
    while stack:
        span = stack.pop()
        overlap += float(span["attrs"].get("keystream_overlap_ms", 0.0))
        wait += float(span["attrs"].get("keystream_wait_ms", 0.0))
        stack.extend(span["children"])
    return overlap, wait
