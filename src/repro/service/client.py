"""Synchronous SECP client for ``secz serve``.

A thin blocking wrapper over one socket: submit numpy fields, poll or
wait for results, fetch SECZ/SECM containers, read the STAT document.
The client is deliberately dependency-free beyond the stdlib + numpy —
``examples/serve_client.py`` shows the full round trip, and the README
"Serving" quickstart is a three-line version of the same.

Error responses raise :class:`ServiceError` carrying the wire code and
its symbolic name (docs/SERVICE.md §6); a ``FETCH`` on an unfinished
job is the one *expected* error, surfaced as ``JobPending`` so polling
loops do not have to parse codes.
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError", "JobPending"]


class ServiceError(RuntimeError):
    """The server answered with a non-OK status code."""

    def __init__(self, code: int, message: str) -> None:
        name = protocol.ERRORS.get(code, f"ERR_{code}")
        super().__init__(f"{name}: {message}" if message else name)
        self.code = code
        self.error_name = name


class JobPending(ServiceError):
    """FETCH found the job still queued or running (ERR_NOT_DONE)."""


class ServiceClient:
    """One blocking SECP connection to a ``secz serve`` daemon.

    Pass a unix-socket path (``str``) or a ``(host, port)`` tuple.
    Usable as a context manager; every method is a single
    request/response exchange on the shared socket, so one client
    instance must not be shared across threads.
    """

    def __init__(self, address: "str | tuple[str, int]",
                 *, timeout: float | None = 30.0) -> None:
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address)
        else:
            host, port = address
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self.address = address

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------

    def _roundtrip(
        self,
        verb: int,
        *,
        job_id: bytes = protocol.NULL_JOB_ID,
        payload: bytes = b"",
    ) -> protocol.Frame:
        protocol.send_frame_blocking(self._sock, verb, job_id=job_id,
                                     payload=payload)
        frame = protocol.recv_frame_blocking(self._sock)
        if not frame.ok:
            message = frame.payload.decode("utf-8", "replace")
            if frame.status == protocol.ERR_NOT_DONE:
                raise JobPending(frame.status, message)
            raise ServiceError(frame.status, message)
        return frame

    # -- verbs ---------------------------------------------------------

    def ping(self) -> None:
        """Round-trip a PING; raises on any transport/protocol fault."""
        self._roundtrip(protocol.VERB_PING)

    def submit(
        self,
        field: np.ndarray,
        *,
        eb: float = 0.0,
        scheme_id: int = protocol.SCHEME_DEFAULT,
        priority: int = 16,
        detached: bool = False,
    ) -> bytes:
        """Submit one field for compression; returns the 8-byte job id.

        ``eb=0.0`` / the default scheme id defer to the server's
        configured policy.  ``detached=True`` lets the job outlive this
        connection (otherwise a disconnect cancels it while it is still
        cancellable).
        """
        field = np.ascontiguousarray(field)
        if field.dtype not in (np.float32, np.float64):
            raise ValueError("service accepts float32/float64 fields")
        payload = protocol.pack_submit(
            field.tobytes(),
            field.shape,
            str(field.dtype),
            eb=eb,
            scheme_id=scheme_id,
            priority=priority,
            flags=protocol.FLAG_DETACHED if detached else 0,
        )
        frame = self._roundtrip(protocol.VERB_SUBMIT, payload=payload)
        return frame.job_id

    def status(self, job_id: bytes) -> str:
        """The job's current lifecycle state name (docs/SERVICE.md §5)."""
        frame = self._roundtrip(protocol.VERB_STATUS, job_id=job_id)
        from repro.service import jobs as jobstates

        return jobstates.STATE_NAMES[frame.payload[0]]

    def fetch(self, job_id: bytes) -> bytes:
        """The finished container; raises :class:`JobPending` if not
        done yet, :class:`ServiceError` if the job failed/cancelled."""
        return self._roundtrip(protocol.VERB_FETCH, job_id=job_id).payload

    def wait(self, job_id: bytes) -> bytes:
        """Block until the job is terminal, then return its container
        (or raise like :meth:`fetch` for failed/cancelled jobs)."""
        return self._roundtrip(protocol.VERB_WAIT, job_id=job_id).payload

    def cancel(self, job_id: bytes) -> None:
        """Cancel a queued job, or request cooperative cancellation of
        a running one; terminal jobs raise ``ERR_UNCANCELLABLE``."""
        self._roundtrip(protocol.VERB_CANCEL, job_id=job_id)

    def stat(self) -> dict:
        """The server's STAT document (``secp-stat/1``)."""
        frame = self._roundtrip(protocol.VERB_STAT)
        return json.loads(frame.payload.decode())
