"""Block decomposition helpers for the regression predictor.

SZ splits the domain into equal-size blocks (paper Sec. II-A).  These
helpers pad an N-d array to a block multiple (edge replication), expose
a ``(n_blocks, block_elems)`` flattened view for vectorized per-block
math, and invert both operations.  Pure reshape/transpose — no copies
beyond the pad itself.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "padded_shape",
    "n_blocks",
    "pad_to_blocks",
    "block_view",
    "unblock_view",
    "crop",
]


def padded_shape(shape: tuple[int, ...], block_size: int) -> tuple[int, ...]:
    """The smallest block-multiple shape covering ``shape``."""
    if block_size < 1:
        raise ValueError("block_size must be positive")
    return tuple(block_size * math.ceil(s / block_size) for s in shape)


def n_blocks(shape: tuple[int, ...], block_size: int) -> int:
    """Number of blocks tiling (the padded version of) ``shape``."""
    return int(np.prod([s // block_size for s in padded_shape(shape, block_size)]))


def pad_to_blocks(data: np.ndarray, block_size: int) -> np.ndarray:
    """Edge-replicate ``data`` up to a block-multiple shape."""
    target = padded_shape(data.shape, block_size)
    pad = [(0, t - s) for s, t in zip(data.shape, target)]
    if all(p == (0, 0) for p in pad):
        return data
    return np.pad(data, pad, mode="edge")


def block_view(padded: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape a padded array to ``(n_blocks, block_size**ndim)``.

    Blocks are ordered C-style over the block grid, and elements within
    a block are C-ordered over local coordinates — the same convention
    :func:`unblock_view` inverts.
    """
    ndim = padded.ndim
    for axis, s in enumerate(padded.shape):
        if s % block_size:
            raise ValueError(f"axis {axis} size {s} not a block multiple")
    # (b0, s0, b1, s1, ...) split, then bring block axes first.
    split_shape: list[int] = []
    for s in padded.shape:
        split_shape.extend([s // block_size, block_size])
    arr = padded.reshape(split_shape)
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    arr = arr.transpose(order)
    return arr.reshape(-1, block_size**ndim)


def unblock_view(blocked: np.ndarray, target_shape: tuple[int, ...],
                 block_size: int) -> np.ndarray:
    """Invert :func:`block_view` back to ``target_shape`` (padded)."""
    ndim = len(target_shape)
    grid = [s // block_size for s in target_shape]
    if blocked.shape != (int(np.prod(grid)), block_size**ndim):
        raise ValueError(
            f"blocked array {blocked.shape} does not tile {target_shape} "
            f"with block size {block_size}"
        )
    arr = blocked.reshape(grid + [block_size] * ndim)
    order: list[int] = []
    for axis in range(ndim):
        order.extend([axis, ndim + axis])
    arr = arr.transpose(order)
    return arr.reshape(target_shape)


def crop(data: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Crop a padded array back to the original ``shape``."""
    slices = tuple(slice(0, s) for s in shape)
    return data[slices]
