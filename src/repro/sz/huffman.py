"""Canonical Huffman coding of the quantization-code array.

This stage produces the two byte sections at the heart of the paper:

* the **serialized tree** — what *Encr-Huffman* encrypts.  Recovering
  Huffman-coded data without the code table is NP-hard (paper Sec. IV-C,
  refs [56], [57]), so encrypting only this small section already keys
  the whole quantization array.
* the **codeword bitstream** — together with the tree it forms the
  "quantization array" that *Encr-Quant* encrypts.

Implementation notes
--------------------
* Codes are *canonical*: the tree is fully described by each symbol's
  code length, so the serialized tree is ``(symbols, lengths)`` — far
  smaller than a pointer-based tree dump, and trivially validated.
* Code lengths are limited to :data:`MAX_CODE_LEN` with a Kraft-sum
  fix-up (the zlib approach).  This keeps the decoder's primary lookup
  table small and bounds the encoder's bit-scatter passes; the rate
  loss versus unrestricted Huffman is negligible for the skewed
  residual histograms SZ produces.
* Decoding uses a flat ``2^TABLE_BITS``-entry table: one lookup per
  symbol for all codes up to :data:`TABLE_BITS` bits (the common case);
  longer codes resolve through a canonical first-code search.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core import trace
from repro.sz import intcodec
from repro.sz.bitstream import PackedBits, pack_codes

__all__ = [
    "HuffmanCode",
    "LaneEncoding",
    "LaneTable",
    "build_code",
    "encode",
    "encode_lanes",
    "decode",
    "serialize_tree",
    "deserialize_tree",
    "serialize_lane_tree",
    "deserialize_lane_tree",
    "lane_sizes",
    "choose_lane_params",
    "MAX_CODE_LEN",
    "TABLE_BITS",
    "MAX_LANES",
]

#: Hard cap on codeword length (keeps tables and bit passes bounded).
MAX_CODE_LEN = 24
#: Primary decode-table width in bits.
TABLE_BITS = 12
#: Hard cap on the interleaved lane count (wire-format sanity bound).
MAX_LANES = 4096

_TREE_HEADER = struct.Struct("<IB")  # (n_symbols, max_len)

#: Lane-tree section prefix: magic, n_lanes, anchor_stride, varint length.
_LANE_HEADER = struct.Struct("<4sHII")
_LANE_MAGIC = b"HLT1"


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over an integer alphabet.

    Attributes
    ----------
    symbols:
        Sorted, distinct symbol values (int64).
    lengths:
        Code length per symbol (uint8), Kraft-complete-or-under.
    codewords:
        Canonical codeword values (uint64), assigned in
        ``(length, symbol)`` order.
    """

    symbols: np.ndarray
    lengths: np.ndarray
    codewords: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.symbols) == len(self.lengths) == len(self.codewords)):
            raise ValueError("symbols/lengths/codewords must align")
        if len(self.symbols) and int(self.lengths.max()) > MAX_CODE_LEN:
            raise ValueError("code length exceeds MAX_CODE_LEN")

    @property
    def n_symbols(self) -> int:
        return len(self.symbols)

    def mean_length(self, frequencies: np.ndarray) -> float:
        """Average codeword length in bits under ``frequencies``."""
        total = frequencies.sum()
        if total == 0:
            return 0.0
        return float((frequencies * self.lengths).sum() / total)


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths via the classic heap construction."""
    n = len(freqs)
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap items: (freq, tiebreak, node_id).  Internal nodes get ids >= n.
    heap = [(int(f), i, i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depths = np.zeros(2 * n - 1, dtype=np.int64)
    # Nodes were created bottom-up, so walking ids top-down lets every
    # child read its parent's already-final depth.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n]


def _limit_lengths(lengths: np.ndarray, freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Clamp code lengths to ``max_len`` and restore the Kraft inequality.

    Clamping over-long codes pushes the Kraft sum above 1; we repair it
    by lengthening the cheapest (lowest-frequency) symbols whose codes
    still have room to grow — each such step frees ``2^(max_len - l - 1)``
    units of Kraft budget at minimal rate cost.
    """
    lengths = np.minimum(lengths, max_len)
    unit = 1 << max_len  # work in integer units of 2^-max_len
    kraft = int((1 << (max_len - lengths)).sum())
    if kraft <= unit:
        return lengths
    # Lengthen symbols in ascending frequency, skipping already-max codes.
    order = np.argsort(freqs, kind="stable")
    lengths = lengths.copy()
    while kraft > unit:
        progressed = False
        for idx in order:
            if lengths[idx] < max_len:
                kraft -= 1 << (max_len - lengths[idx] - 1)
                lengths[idx] += 1
                progressed = True
                if kraft <= unit:
                    break
        if not progressed:  # pragma: no cover - cannot happen for n <= 2^max_len
            raise RuntimeError("unable to satisfy Kraft inequality")
    return lengths


def _canonical_codewords(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given lengths (symbols already sorted)."""
    order = np.lexsort((np.arange(len(lengths), dtype=np.int64), lengths))
    codes = np.zeros(len(lengths), dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        ln = int(lengths[idx])
        code <<= ln - prev_len
        codes[idx] = code
        code += 1
        prev_len = ln
    return codes


def build_code(symbols: np.ndarray, frequencies: np.ndarray) -> HuffmanCode:
    """Build a length-limited canonical Huffman code.

    Parameters
    ----------
    symbols:
        Distinct symbol values (will be sorted internally).
    frequencies:
        Positive occurrence counts aligned with ``symbols``.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    frequencies = np.asarray(frequencies, dtype=np.int64)
    if symbols.size == 0:
        return HuffmanCode(
            symbols=symbols,
            lengths=np.empty(0, dtype=np.uint8),
            codewords=np.empty(0, dtype=np.uint64),
        )
    if symbols.size != frequencies.size:
        raise ValueError("symbols and frequencies must align")
    if (frequencies <= 0).any():
        raise ValueError("all frequencies must be positive")
    if symbols.size > (1 << MAX_CODE_LEN):
        raise ValueError("alphabet too large for MAX_CODE_LEN")
    order = np.argsort(symbols)
    symbols = symbols[order]
    frequencies = frequencies[order]
    if np.unique(symbols).size != symbols.size:
        raise ValueError("symbols must be distinct")
    lengths = _huffman_lengths(frequencies)
    lengths = _limit_lengths(lengths, frequencies, MAX_CODE_LEN)
    codewords = _canonical_codewords(lengths)
    return HuffmanCode(
        symbols=symbols,
        lengths=lengths.astype(np.uint8),
        codewords=codewords,
    )


def encode(values: np.ndarray, code: HuffmanCode) -> PackedBits:
    """Huffman-encode an int array (vectorized lookup + bit pack)."""
    values = np.ravel(np.asarray(values, dtype=np.int64))
    if values.size == 0:
        return PackedBits(data=b"", n_bits=0)
    idx = np.searchsorted(code.symbols, values)
    idx = np.clip(idx, 0, code.n_symbols - 1)
    if not np.array_equal(code.symbols[idx], values):
        raise ValueError("value outside the code's alphabet")
    trace.count("huffman.encode_lanes", 1)
    return pack_codes(code.codewords[idx], code.lengths[idx])


def serialize_tree(code: HuffmanCode) -> bytes:
    """Serialize the canonical code table ("the Huffman tree").

    Layout: header ``(n_symbols, max_len)``, varint-encoded
    delta-sorted symbol values, then one length byte per symbol.  This
    byte string is the section Encr-Huffman encrypts.
    """
    n = code.n_symbols
    max_len = int(code.lengths.max()) if n else 0
    deltas = np.diff(code.symbols, prepend=np.int64(0)) if n else np.empty(0, np.int64)
    return (
        _TREE_HEADER.pack(n, max_len)
        + intcodec.varint_encode(deltas)
        + code.lengths.tobytes()
    )


def deserialize_tree(data: bytes) -> HuffmanCode:
    """Rebuild a :class:`HuffmanCode` from :func:`serialize_tree` output."""
    if len(data) < _TREE_HEADER.size:
        raise ValueError("huffman tree stream shorter than its header")
    n, max_len = _TREE_HEADER.unpack_from(data)
    if max_len > MAX_CODE_LEN:
        raise ValueError(f"serialized tree max length {max_len} exceeds cap")
    if n == 0:
        return build_code(np.empty(0, np.int64), np.empty(0, np.int64))
    body = data[_TREE_HEADER.size :]
    if len(body) < n:
        raise ValueError("truncated huffman tree stream")
    lengths = np.frombuffer(body[-n:], dtype=np.uint8)
    # varint_decode validates the stream itself.
    deltas = intcodec.varint_decode(body[: len(body) - n], n)
    symbols = np.cumsum(deltas).astype(np.int64)
    if np.unique(symbols).size != n:
        raise ValueError("serialized tree contains duplicate symbols")
    if lengths.min() < 1 or lengths.max() != max_len:
        raise ValueError("serialized tree lengths are inconsistent")
    codewords = _canonical_codewords(lengths.astype(np.int64))
    return HuffmanCode(symbols=symbols.copy(), lengths=lengths.copy(), codewords=codewords)


# ----------------------------------------------------------------------
# Multi-lane interleaved streams (frame format v3)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LaneTable:
    """Decode-side description of an N-lane interleaved bitstream.

    ``anchors[l]`` holds the *within-lane* bit offset of every
    ``anchor_stride``-th codeword boundary (excluding offset 0, which is
    the lane start).  Anchors are sub-lane entry points: they let the
    vectorized kernel decode many independent segments at once instead
    of being limited to ``n_lanes``-wide vectors.  The table travels
    inside the serialized-tree section, so Encr-Quant / Encr-Huffman
    encrypt it together with the code table and the security argument
    (no tree, no decode) is unchanged.
    """

    n_lanes: int
    anchor_stride: int
    lane_bits: np.ndarray
    anchors: tuple[np.ndarray, ...]


@dataclass(frozen=True)
class LaneEncoding:
    """Encoder output for one value array: K lane streams + anchors."""

    lanes: tuple[PackedBits, ...]
    table: LaneTable

    @property
    def n_bits(self) -> int:
        return int(self.table.lane_bits.sum())


def lane_sizes(n_values: int, n_lanes: int) -> np.ndarray:
    """Contiguous-split lane lengths (``np.array_split`` rule).

    The first ``n_values % n_lanes`` lanes get one extra element; the
    rule is part of the wire format (the decoder re-derives it), so it
    must never change for format v3.
    """
    if n_lanes < 1:
        raise ValueError("n_lanes must be at least 1")
    base, extra = divmod(n_values, n_lanes)
    sizes = np.full(n_lanes, base, dtype=np.int64)
    sizes[:extra] += 1
    return sizes


#: Below this many coded bits (64 KB of codes) the auto encoder writes
#: the legacy single-stream v2 frame: decode time is trivial at that
#: size and the lane/anchor table would be a visible CR overhead —
#: especially on run-dominated streams where the lossless stage crushes
#: the codes but not the high-entropy anchor varints.
LANE_FORMAT_MIN_BITS = 1 << 19
#: Auto anchor density: roughly one anchor per this many coded bits
#: (512 bytes), keeping the table at ~0.2-0.4 % of the codes section.
ANCHOR_SPACING_BITS = 1 << 12


def choose_lane_params(n_values: int, total_bits: int | None = None) -> tuple[int, int]:
    """Pick ``(n_lanes, anchor_stride)`` for ``n_values`` symbols whose
    encoding occupies ``total_bits``.

    Both knobs scale with the *coded* size, not the element count: a
    lane per ~32 KB of codes (capped at 16) and an anchor per ~512
    bytes.  Decode-kernel vector width therefore grows with the work
    available while the table stays a fixed small fraction of the
    stream.  Below :data:`LANE_FORMAT_MIN_BITS` the returned stride
    exceeds ``n_values`` (no anchors) and the lane count is 1 — the
    signal the encoder uses to fall back to the v2 single-stream frame.
    """
    if n_values <= 0:
        return 1, 1024
    if total_bits is None:
        total_bits = 4 * n_values  # rough prior: skewed SZ histograms
    if total_bits < LANE_FORMAT_MIN_BITS:
        return 1, max(1024, n_values)
    n_lanes = min(MAX_LANES, 16, max(4, total_bits >> 18), n_values)
    target = -(-ANCHOR_SPACING_BITS * n_values // total_bits)
    stride = 1 << max(10, int(target - 1).bit_length())
    return n_lanes, stride


def _encode_one_lane(
    codewords: np.ndarray, lane_lens: np.ndarray, anchor_stride: int
) -> tuple[PackedBits, int, np.ndarray]:
    """Pack one lane slice: ``(stream, bit length, anchor offsets)``.

    Lanes are fully independent (each is a self-contained bitstream
    under the shared code), so this helper is the unit of work for the
    optional thread-pool encode path.
    """
    packed = pack_codes(codewords, lane_lens)
    ends = np.cumsum(lane_lens)
    n_bits = int(ends[-1]) if ends.size else 0
    # Bit offset where codeword anchor_stride, 2*anchor_stride, ...
    # begins: the boundary *after* the preceding codeword.
    anchors = ends[anchor_stride - 1 : ends.size - 1 : anchor_stride]
    return packed, n_bits, np.asarray(anchors, dtype=np.int64)


def encode_lanes(
    values: np.ndarray,
    code: HuffmanCode,
    n_lanes: int,
    anchor_stride: int,
    *,
    max_workers: int = 1,
) -> LaneEncoding:
    """Huffman-encode ``values`` as ``n_lanes`` independent bitstreams.

    Every lane is a self-contained stream under the shared canonical
    code, padded to a byte boundary so the concatenated ``codes``
    section keeps lanes byte-aligned.  With ``max_workers > 1`` the
    lane slices pack on a thread pool (the word-pack kernel is NumPy
    work that releases the GIL); the output is bit-identical to the
    serial path regardless, so the knob never touches the wire format
    and composes freely with the process-parallel
    :mod:`repro.parallel.chunked` layer.
    """
    values = np.ravel(np.asarray(values, dtype=np.int64))
    if not 1 <= n_lanes <= MAX_LANES:
        raise ValueError(f"n_lanes must be in 1..{MAX_LANES}")
    if values.size and n_lanes > values.size:
        raise ValueError("more lanes than values")
    if anchor_stride < 1:
        raise ValueError("anchor_stride must be positive")
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    if values.size == 0:
        table = LaneTable(
            n_lanes=1,
            anchor_stride=anchor_stride,
            lane_bits=np.zeros(1, dtype=np.int64),
            anchors=(np.empty(0, dtype=np.int64),),
        )
        return LaneEncoding(lanes=(PackedBits(data=b"", n_bits=0),), table=table)
    idx = np.searchsorted(code.symbols, values)
    idx = np.clip(idx, 0, code.n_symbols - 1)
    if not np.array_equal(code.symbols[idx], values):
        raise ValueError("value outside the code's alphabet")
    lengths = code.lengths[idx].astype(np.int64)
    codewords = code.codewords[idx]

    bounds = np.concatenate([[0], np.cumsum(lane_sizes(values.size, n_lanes))])
    slices = [
        (codewords[lo:hi], lengths[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    if max_workers > 1 and n_lanes > 1:
        with ThreadPoolExecutor(max_workers=min(max_workers, n_lanes)) as pool:
            results = list(
                pool.map(
                    lambda s: _encode_one_lane(s[0], s[1], anchor_stride),
                    slices,
                )
            )
    else:
        results = [
            _encode_one_lane(cw, ln, anchor_stride) for cw, ln in slices
        ]
    trace.count("huffman.encode_lanes", n_lanes)
    lanes = tuple(packed for packed, _, _ in results)
    lane_bits = np.array([bits for _, bits, _ in results], dtype=np.int64)
    anchors = tuple(a for _, _, a in results)
    table = LaneTable(
        n_lanes=n_lanes,
        anchor_stride=anchor_stride,
        lane_bits=lane_bits,
        anchors=anchors,
    )
    return LaneEncoding(lanes=lanes, table=table)


def _anchor_counts(n_values: int, n_lanes: int, stride: int) -> np.ndarray:
    """Per-lane anchor count implied by the contiguous-split rule."""
    sizes = lane_sizes(n_values, n_lanes)
    return np.maximum(0, -(-sizes // stride) - 1)


def serialize_lane_tree(code: HuffmanCode, table: LaneTable) -> bytes:
    """Serialize lane table + canonical code table (tree section v2).

    Layout: ``HLT1`` magic, lane header, one u64 bit length per lane,
    varint-coded anchor *deltas* (per lane, from 0), then the v1 tree
    bytes.  The whole blob is what Encr-Huffman encrypts in format v3.
    """
    deltas = np.concatenate(
        [np.diff(a, prepend=np.int64(0)) for a in table.anchors]
    ) if table.anchors else np.empty(0, np.int64)
    varints = intcodec.varint_encode(deltas) if deltas.size else b""
    return (
        _LANE_HEADER.pack(
            _LANE_MAGIC, table.n_lanes, table.anchor_stride, len(varints)
        )
        + table.lane_bits.astype("<i8").tobytes()
        + varints
        + serialize_tree(code)
    )


def deserialize_lane_tree(data: bytes, n_values: int) -> tuple[HuffmanCode, LaneTable]:
    """Parse a v2 tree section back into ``(code, lane_table)``.

    Validates every structural invariant of the lane table — lane
    count, bit lengths, anchor monotonicity and counts — so corrupted
    or tampered tables are rejected before the decode kernel runs.
    """
    if len(data) < _LANE_HEADER.size:
        raise ValueError("lane tree section shorter than its header")
    magic, n_lanes, stride, varint_len = _LANE_HEADER.unpack_from(data)
    if magic != _LANE_MAGIC:
        raise ValueError("bad lane-table magic; not a v3 tree section")
    if not 1 <= n_lanes <= MAX_LANES:
        raise ValueError(f"lane count {n_lanes} outside 1..{MAX_LANES}")
    if n_values and n_lanes > n_values:
        raise ValueError("lane table has more lanes than symbols")
    if stride < 1:
        raise ValueError("anchor stride must be positive")
    off = _LANE_HEADER.size
    if len(data) < off + 8 * n_lanes + varint_len:
        raise ValueError("truncated lane table")
    lane_bits = np.frombuffer(data, dtype="<i8", offset=off, count=n_lanes).astype(
        np.int64
    )
    if lane_bits.min() < 0:
        raise ValueError("negative lane bit length")
    off += 8 * n_lanes
    counts = _anchor_counts(n_values, n_lanes, stride)
    deltas = intcodec.varint_decode(
        data[off : off + varint_len], int(counts.sum())
    )
    off += varint_len
    if deltas.size and deltas.min() < 1:
        raise ValueError("lane anchor deltas must be positive")
    anchors: list[np.ndarray] = []
    pos = 0
    for l in range(n_lanes):
        a = np.cumsum(deltas[pos : pos + int(counts[l])]).astype(np.int64)
        pos += int(counts[l])
        if a.size and int(a[-1]) >= int(lane_bits[l]):
            raise ValueError("lane anchor beyond the lane bitstream")
        anchors.append(a)
    code = deserialize_tree(data[off:])
    table = LaneTable(
        n_lanes=n_lanes,
        anchor_stride=stride,
        lane_bits=lane_bits,
        anchors=tuple(anchors),
    )
    return code, table


class _Decoder:
    """Table-driven canonical decoder (see module docstring)."""

    def __init__(self, code: HuffmanCode) -> None:
        if code.n_symbols == 0:
            raise ValueError("cannot decode with an empty code")
        self.code = code
        lengths = code.lengths.astype(np.int64)
        self.max_len = int(lengths.max())
        t_bits = min(TABLE_BITS, self.max_len)
        self.t_bits = t_bits
        size = 1 << t_bits
        self.tab_sym = np.zeros(size, dtype=np.int64)
        self.tab_len = np.zeros(size, dtype=np.uint8)
        short = lengths <= t_bits
        for sym, ln, cw in zip(
            code.symbols[short], lengths[short], code.codewords[short]
        ):
            base = int(cw) << (t_bits - int(ln))
            span = 1 << (t_bits - int(ln))
            self.tab_sym[base : base + span] = sym
            self.tab_len[base : base + span] = ln
        # Long codes: canonical (first_code, first_index, count) per length.
        # A window of `ln` bits is a valid codeword of that length iff
        # 0 <= window - first_code < count; canonical assignment puts
        # every extension of a shorter codeword *below* first_code, so
        # scanning lengths ascending and taking the first in-range hit
        # is exact.
        self.long_codes: dict[int, tuple[int, int, int]] = {}
        self.sorted_symbols = np.empty(0, dtype=np.int64)
        if (~short).any():
            order = np.lexsort((np.arange(len(lengths), dtype=np.int64), lengths))
            sorted_lengths = lengths[order]
            sorted_cw = code.codewords[order]
            self.sorted_symbols = code.symbols[order]
            for ln in range(t_bits + 1, self.max_len + 1):
                where = np.nonzero(sorted_lengths == ln)[0]
                if where.size:
                    self.long_codes[ln] = (
                        int(sorted_cw[where[0]]),
                        int(where[0]),
                        int(where.size),
                    )

    def kernel_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Lookup tables shaped for the vectorized lane kernel.

        Returns ``(tab_sym, tab_len64, lj_codes, lj_symbols, lj_lengths)``
        where ``tab_len64`` is the primary length table widened to int64
        (so per-iteration cursor updates stay cast-free) and the three
        ``lj_*`` arrays hold the *whole* code left-justified to
        ``max_len`` bits and sorted ascending.  Canonical codewords are
        strictly increasing when left-justified, so a primary-table
        miss resolves with a single ``searchsorted`` (largest
        left-justified codeword <= the next ``max_len`` window bits)
        instead of a per-length scan.
        """
        try:
            return self._kernel_tables
        except AttributeError:
            pass
        lengths = self.code.lengths.astype(np.int64)
        lj = self.code.codewords.astype(np.int64) << (self.max_len - lengths)
        order = np.argsort(lj, kind="stable")
        self._kernel_tables = (
            self.tab_sym,
            self.tab_len.astype(np.int64),
            lj[order],
            self.code.symbols[order],
            lengths[order],
        )
        return self._kernel_tables

    def _build_fast_table(self) -> None:
        """Multi-symbol lookup: for every t_bits window, the run of
        *complete* codewords it contains and their total bit length.

        By the prefix property, a codeword whose length fits inside the
        window's known bits is fully determined by them — the padding
        beyond cannot change the table entry it spans.  One lookup then
        yields several symbols at once (for skewed SZ histograms the
        average is 3-5 symbols per 12-bit window).
        """
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        fast_syms: list[tuple[int, ...]] = []
        fast_bits: list[int] = []
        for w in range(1 << t_bits):
            syms: list[int] = []
            rem = t_bits
            known = w
            while True:
                window = known << (t_bits - rem)
                ln = tab_len[window]
                if ln == 0 or ln > rem:
                    break
                syms.append(tab_sym[window])
                rem -= ln
                known &= (1 << rem) - 1
            fast_syms.append(tuple(syms))
            fast_bits.append(t_bits - rem)
        self._fast_syms = fast_syms
        self._fast_bits = fast_bits

    def decode(self, packed: PackedBits, n_values: int) -> np.ndarray:
        # Hot loop notes (profile-driven, see the HPC guides): plain
        # Python lists beat ndarray scalar indexing ~4x here, the
        # buffer refills eight bytes per int.from_bytes call, and the
        # multi-symbol fast table drains several codewords per window
        # lookup (see _build_fast_table).
        # The multi-symbol table only pays when windows typically hold
        # several codewords; the stream itself tells us the average
        # bits/symbol.  Above the threshold, skip both the build cost
        # and the per-iteration fast-path overhead.
        use_fast = n_values > 0 and packed.n_bits / n_values <= self.t_bits / 2
        if use_fast and not hasattr(self, "_fast_syms"):
            self._build_fast_table()
        fast_syms = self._fast_syms if use_fast else None
        fast_bits = self._fast_bits if use_fast else None
        out = [0] * n_values
        data = packed.data
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        t_mask = (1 << t_bits) - 1
        max_len = self.max_len
        long_codes = self.long_codes
        n_bits = packed.n_bits
        buf = 0
        buf_len = 0
        pos = 0
        consumed = 0
        n_bytes = len(data)
        i = 0
        while i < n_values:
            if buf_len < max_len and pos < n_bytes:
                take = n_bytes - pos
                if take > 8:
                    take = 8
                buf = (buf << (take << 3)) | int.from_bytes(
                    data[pos : pos + take], "big"
                )
                pos += take
                buf_len += take << 3
            if buf_len >= t_bits:
                window = (buf >> (buf_len - t_bits)) & t_mask
                if fast_syms is not None:
                    syms = fast_syms[window]
                    k = len(syms)
                    if k > 1 and i + k <= n_values:
                        out[i : i + k] = syms
                        i += k
                        used = fast_bits[window]
                        consumed += used
                        if consumed > n_bits:
                            raise ValueError(
                                "huffman bitstream ended mid-codeword"
                            )
                        buf_len -= used
                        buf &= (1 << buf_len) - 1
                        continue
            else:
                window = (buf << (t_bits - buf_len)) & t_mask
            ln = tab_len[window]
            if ln:
                out[i] = tab_sym[window]
            else:
                # Long code: widen the window one bit at a time.
                sym = None
                for try_len in range(t_bits + 1, max_len + 1):
                    if buf_len < try_len:
                        break
                    entry = long_codes.get(try_len)
                    if entry is None:
                        continue
                    cw = (buf >> (buf_len - try_len)) & ((1 << try_len) - 1)
                    first_code, first_idx, count = entry
                    offset = cw - first_code
                    if 0 <= offset < count:
                        sym = self.sorted_symbols[first_idx + offset]
                        ln = try_len
                        break
                if sym is None:
                    raise ValueError("corrupt huffman bitstream")
                out[i] = int(sym)
            consumed += ln
            if consumed > n_bits:
                raise ValueError("huffman bitstream ended mid-codeword")
            buf_len -= ln
            buf &= (1 << buf_len) - 1
            i += 1
        return np.array(out, dtype=np.int64)


#: Decoder instances are pure functions of the code table, and the
#: chunked/filestream paths decode under the same code many times, so a
#: small keyed cache skips rebuilding the lookup tables (and any lazily
#: built fast/kernel tables riding on the instance).
_DECODER_CACHE_SIZE = 8
_decoder_cache: OrderedDict[bytes, _Decoder] = OrderedDict()
_decoder_cache_lock = threading.Lock()


def _code_digest(code: HuffmanCode) -> bytes:
    """Digest of the canonical table — equivalent to hashing the
    serialized tree (lengths + symbols fully determine it), without
    paying the varint re-serialization per decode call."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(code.symbols).tobytes())
    h.update(np.ascontiguousarray(code.lengths).tobytes())
    return h.digest()


def decoder_for(code: HuffmanCode) -> _Decoder:
    """Fetch (or build and cache) the table-driven decoder for ``code``."""
    key = _code_digest(code)
    with _decoder_cache_lock:
        dec = _decoder_cache.get(key)
        if dec is not None:
            _decoder_cache.move_to_end(key)
            trace.count("fastdecode.cache_hits")
            return dec
    trace.count("fastdecode.cache_misses")
    dec = _Decoder(code)
    with _decoder_cache_lock:
        _decoder_cache[key] = dec
        _decoder_cache.move_to_end(key)
        while len(_decoder_cache) > _DECODER_CACHE_SIZE:
            _decoder_cache.popitem(last=False)
    return dec


def decode(packed: PackedBits, code: HuffmanCode, n_values: int) -> np.ndarray:
    """Decode ``n_values`` symbols from a Huffman bitstream."""
    if n_values == 0:
        return np.empty(0, dtype=np.int64)
    return decoder_for(code).decode(packed, n_values)
