"""Canonical Huffman coding of the quantization-code array.

This stage produces the two byte sections at the heart of the paper:

* the **serialized tree** — what *Encr-Huffman* encrypts.  Recovering
  Huffman-coded data without the code table is NP-hard (paper Sec. IV-C,
  refs [56], [57]), so encrypting only this small section already keys
  the whole quantization array.
* the **codeword bitstream** — together with the tree it forms the
  "quantization array" that *Encr-Quant* encrypts.

Implementation notes
--------------------
* Codes are *canonical*: the tree is fully described by each symbol's
  code length, so the serialized tree is ``(symbols, lengths)`` — far
  smaller than a pointer-based tree dump, and trivially validated.
* Code lengths come from the O(n) two-queue construction over the
  frequency-sorted histogram (:func:`_huffman_lengths`); the original
  ``heapq`` builder survives as :func:`_huffman_lengths_ref`, the
  differential-test oracle, and the two are *bit-identical* — the
  two-queue tie-breaking (stable frequency sort, leaf-before-internal
  on weight ties, FIFO internals) reproduces the heap's exact pop
  order, so emitted frames and checked-in digests are unchanged.
* Code lengths are limited to :data:`MAX_CODE_LEN` with a Kraft-sum
  fix-up (the zlib approach).  This keeps the decoder's primary lookup
  table small and bounds the encoder's bit-scatter passes; the rate
  loss versus unrestricted Huffman is negligible for the skewed
  residual histograms SZ produces.  Callers may opt into a tighter
  *depth limit* (``build_code(..., max_len=...)``, at most
  :data:`DEPTH_LIMIT_BITS`): lengths then come from package-merge —
  optimal under the cap — and every codeword fits a fixed-width
  decode table, so the lane kernel's miss path vanishes.
* Decoding uses a flat ``2^TABLE_BITS``-entry table: one lookup per
  symbol for all codes up to :data:`TABLE_BITS` bits (the common case);
  longer codes resolve through a canonical first-code search.
* Everything derived from one code table — decoder tables, the dense
  encode LUT — hangs off a :class:`CanonicalCodec`, cached process-wide
  by table digest (:func:`codec_for`), so lanes, repeated
  ``compress``/``decompress`` calls and chunked-pipeline workers all
  share one build.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core import trace
from repro.sz import intcodec
from repro.sz.bitstream import PackedBits, pack_codes

__all__ = [
    "HuffmanCode",
    "CanonicalCodec",
    "LaneEncoding",
    "LaneTable",
    "build_code",
    "encode",
    "encode_lanes",
    "decode",
    "codec_for",
    "codec_cache_clear",
    "codec_cache_stats",
    "serialize_tree",
    "deserialize_tree",
    "serialize_lane_tree",
    "deserialize_lane_tree",
    "lane_sizes",
    "choose_lane_params",
    "MAX_CODE_LEN",
    "TABLE_BITS",
    "DEPTH_LIMIT_BITS",
    "MAX_LANES",
]

#: Hard cap on codeword length (keeps tables and bit passes bounded).
MAX_CODE_LEN = 24
#: Primary decode-table width in bits.
TABLE_BITS = 12
#: Widest opt-in depth limit: a ``max_len`` at or below this lets the
#: lane decode kernel run a full-coverage ``2^max_len`` table (at most
#: 64 Ki entries, ~1 MB once, amortized by the codec cache) with no
#: long-code miss path.  Frames carrying the depth-limit flag promise
#: every code length fits this bound.
DEPTH_LIMIT_BITS = 16
#: Hard cap on the interleaved lane count (wire-format sanity bound).
MAX_LANES = 4096

_TREE_HEADER = struct.Struct("<IB")  # (n_symbols, max_len)

#: Lane-tree section prefix: magic, n_lanes, anchor_stride, varint length.
_LANE_HEADER = struct.Struct("<4sHII")
_LANE_MAGIC = b"HLT1"


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over an integer alphabet.

    Attributes
    ----------
    symbols:
        Sorted, distinct symbol values (int64).
    lengths:
        Code length per symbol (uint8), Kraft-complete-or-under.
    codewords:
        Canonical codeword values (uint64), assigned in
        ``(length, symbol)`` order.
    """

    symbols: np.ndarray
    lengths: np.ndarray
    codewords: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.symbols) == len(self.lengths) == len(self.codewords)):
            raise ValueError("symbols/lengths/codewords must align")
        if len(self.symbols) and int(self.lengths.max()) > MAX_CODE_LEN:
            raise ValueError("code length exceeds MAX_CODE_LEN")

    @property
    def n_symbols(self) -> int:
        return len(self.symbols)

    def mean_length(self, frequencies: np.ndarray) -> float:
        """Average codeword length in bits under ``frequencies``."""
        total = frequencies.sum()
        if total == 0:
            return 0.0
        return float((frequencies * self.lengths).sum() / total)


def _huffman_lengths_ref(freqs: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths via the classic heap construction.

    The original implementation, kept as the differential-test oracle
    for the O(n) two-queue builder (the ``pack_codes_ref`` idiom): the
    heap's pop order *defines* the tie-breaking the fast path must
    reproduce for frames to stay bit-identical.
    """
    n = len(freqs)
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap items: (freq, tiebreak, node_id).  Internal nodes get ids >= n.
    heap = [(int(f), i, i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depths = np.zeros(2 * n - 1, dtype=np.int64)
    # Nodes were created bottom-up, so walking ids top-down lets every
    # child read its parent's already-final depth.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n]


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths via the O(n) two-queue construction.

    Merging weights emerge in nondecreasing order, so after one sort of
    the leaves the two smallest live nodes are always at the front of
    two queues — no heap needed.  Tie-breaking is chosen to replay
    :func:`_huffman_lengths_ref` exactly (bit-identical lengths, pinned
    by ``tests/sz/test_huffman_diff.py``):

    * leaves are stable-sorted by frequency, so equal-frequency leaves
      merge in symbol order (the heap's ``(freq, leaf_id)`` ordering);
    * on a leaf/internal weight tie the *leaf* wins (leaf ids sort
      before the always-larger internal ids in the heap);
    * internals are consumed FIFO — creation order equals id order,
      which is the heap's tie-break among equal internal weights.
    """
    n = len(freqs)
    if n == 1:
        return np.array([1], dtype=np.int64)
    leaf_order = np.argsort(freqs, kind="stable")
    lw = freqs[leaf_order].tolist()
    order = leaf_order.tolist()
    iw: list[int] = []  # internal weights, FIFO, nondecreasing
    ipar: list[int] = []  # ipar[j]: parent internal index of internal j
    lpar = [0] * n  # leaf's parent internal index, by original position
    li = ii = 0
    for created in range(n - 1):
        w = 0
        for _ in range(2):
            if li < n and (ii >= created or lw[li] <= iw[ii]):
                lpar[order[li]] = created
                w += lw[li]
                li += 1
            else:
                ipar.append(created)
                w += iw[ii]
                ii += 1
        iw.append(w)
    # Parents are created after their children, so a reverse walk over
    # the internal nodes sees every parent depth before its children.
    idepth = [0] * (n - 1)
    for j in range(n - 3, -1, -1):
        idepth[j] = idepth[ipar[j]] + 1
    return (
        np.asarray(idepth, dtype=np.int64)[
            np.asarray(lpar, dtype=np.int64)
        ]
        + 1
    )


def _limit_lengths(lengths: np.ndarray, freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Clamp code lengths to ``max_len`` and restore the Kraft inequality.

    Clamping over-long codes pushes the Kraft sum above 1; we repair it
    by lengthening the cheapest (lowest-frequency) symbols whose codes
    still have room to grow — each such step frees ``2^(max_len - l - 1)``
    units of Kraft budget at minimal rate cost.
    """
    lengths = np.minimum(lengths, max_len)
    unit = 1 << max_len  # work in integer units of 2^-max_len
    kraft = int((1 << (max_len - lengths)).sum())
    if kraft <= unit:
        return lengths
    # Lengthen symbols in ascending frequency, skipping already-max codes.
    order = np.argsort(freqs, kind="stable")
    lengths = lengths.copy()
    while kraft > unit:
        progressed = False
        for idx in order:
            if lengths[idx] < max_len:
                kraft -= 1 << (max_len - lengths[idx] - 1)
                lengths[idx] += 1
                progressed = True
                if kraft <= unit:
                    break
        if not progressed:  # pragma: no cover - cannot happen for n <= 2^max_len
            raise RuntimeError("unable to satisfy Kraft inequality")
    return lengths


def _rebalance_lengths(
    lengths: np.ndarray, freqs: np.ndarray, max_len: int
) -> np.ndarray:
    """Optimal length-limited code lengths via package-merge.

    Larmore–Hirschberg package-merge in the counting representation:
    level ``max_len`` holds the frequency-sorted leaves; every
    shallower level merges the leaves with the pairwise *packages* of
    the level below, and taking the cheapest ``2n - 2`` items of level
    1 yields the minimum-redundancy code with no length above
    ``max_len``.  A leaf's code length is the number of levels whose
    taken prefix contains it, and because merging preserves sort
    order, each level only needs *how many* of its items were taken —
    the leaves among them are always the smallest-frequency prefix.
    Lengths are then reassigned shortest-to-most-frequent (ties by
    symbol order, so the result is deterministic).  ``lengths`` (the
    unconstrained optimum) is consulted only for the fast path: when
    it already satisfies the cap it is returned unchanged, keeping the
    shallow-table case free.  Only used for the opt-in depth-limited
    path; the default :data:`MAX_CODE_LEN` cap keeps the original
    :func:`_limit_lengths` for bit-identity with historical frames.
    """
    n = len(lengths)
    if n > (1 << max_len):
        raise ValueError(
            f"alphabet of {n} symbols cannot satisfy a "
            f"{max_len}-bit depth limit"
        )
    if int(lengths.max()) <= max_len:
        return np.minimum(lengths, max_len)
    leaf_order = np.argsort(freqs, kind="stable")
    leaves = freqs[leaf_order].astype(np.int64)
    # Build levels deepest-first.  Each level keeps the merged item
    # weights plus a flag array marking which items are packages; ties
    # put leaves first (any tie-break is optimal, this one is simply
    # deterministic).
    weights = leaves
    flags: list[np.ndarray] = [np.zeros(n, dtype=bool)]
    for _ in range(max_len - 1):
        m = weights.size >> 1
        pkg = weights[: 2 * m].reshape(m, 2).sum(axis=1)
        merged = np.concatenate([leaves, pkg])
        is_pkg = np.zeros(merged.size, dtype=bool)
        is_pkg[n:] = True
        order = np.lexsort((is_pkg, merged))
        weights = merged[order]
        flags.append(is_pkg[order])
    # Walk back down: take the cheapest 2n - 2 items at level 1; every
    # package among a level's taken prefix expands to two items of the
    # level below.  The leaves in the prefix are the t - c smallest,
    # each one level deeper.
    out_sorted = np.zeros(n, dtype=np.int64)
    take = 2 * n - 2
    for is_pkg in reversed(flags):
        if take <= 0:  # pragma: no cover - cannot happen for n >= 2
            break
        n_pkg = int(is_pkg[:take].sum())
        out_sorted[: take - n_pkg] += 1
        take = 2 * n_pkg
    # Reassign: most frequent symbols get the shortest lengths.
    counts = np.bincount(out_sorted, minlength=max_len + 1).astype(np.int64)
    order = np.lexsort((np.arange(n, dtype=np.int64), -freqs))
    out = np.empty(n, dtype=np.int64)
    out[order] = np.repeat(
        np.arange(max_len + 1, dtype=np.int64), counts
    )
    return out


def _canonical_codewords_ref(lengths: np.ndarray) -> np.ndarray:
    """Per-symbol canonical assignment loop (the original), kept as the
    oracle for the vectorized :func:`_canonical_codewords`."""
    order = np.lexsort((np.arange(len(lengths), dtype=np.int64), lengths))
    codes = np.zeros(len(lengths), dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        ln = int(lengths[idx])
        code <<= ln - prev_len
        codes[idx] = code
        code += 1
        prev_len = ln
    return codes


def _canonical_codewords(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given lengths (symbols already sorted).

    Canonical code ``i`` is ``first_code[l] + rank`` where ``rank`` is
    the symbol's position among equal-length symbols (symbol order) and
    ``first_code[l] = (first_code[l-1] + count[l-1]) << 1`` — a loop of
    at most ``max_len`` scalar steps plus three vectorized passes,
    replacing the per-symbol Python loop of
    :func:`_canonical_codewords_ref` (bit-identical by construction,
    pinned differentially).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = len(lengths)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    max_len = int(lengths.max())
    counts = np.bincount(lengths, minlength=max_len + 1)
    first = np.zeros(max_len + 1, dtype=np.uint64)
    c = 0
    for ln in range(1, max_len + 1):
        c = (c + int(counts[ln - 1])) << 1
        first[ln] = c
    order = np.argsort(lengths, kind="stable")
    group_start = np.cumsum(counts) - counts
    ranks = np.arange(n, dtype=np.int64) - group_start[lengths[order]]
    codes = np.empty(n, dtype=np.uint64)
    codes[order] = first[lengths[order]] + ranks.astype(np.uint64)
    return codes


def build_code(
    symbols: np.ndarray,
    frequencies: np.ndarray,
    *,
    max_len: int | None = None,
) -> HuffmanCode:
    """Build a length-limited canonical Huffman code.

    Parameters
    ----------
    symbols:
        Distinct symbol values (will be sorted internally).
    frequencies:
        Positive occurrence counts aligned with ``symbols``.
    max_len:
        Optional depth limit in ``1..DEPTH_LIMIT_BITS``.  When given,
        every code length is rebalanced to at most ``max_len`` bits
        (:func:`_rebalance_lengths`), which lets the decode kernel use
        a full-coverage table with no miss path; raises ``ValueError``
        if the alphabet cannot fit (``n_symbols > 2**max_len``).  The
        default ``None`` keeps the historical :data:`MAX_CODE_LEN` cap
        and is bit-identical to prior releases.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    frequencies = np.asarray(frequencies, dtype=np.int64)
    if max_len is not None and not 1 <= max_len <= DEPTH_LIMIT_BITS:
        raise ValueError(
            f"max_len must be in 1..{DEPTH_LIMIT_BITS} (got {max_len})"
        )
    if symbols.size == 0:
        return HuffmanCode(
            symbols=symbols,
            lengths=np.empty(0, dtype=np.uint8),
            codewords=np.empty(0, dtype=np.uint64),
        )
    if symbols.size != frequencies.size:
        raise ValueError("symbols and frequencies must align")
    if (frequencies <= 0).any():
        raise ValueError("all frequencies must be positive")
    if symbols.size > (1 << MAX_CODE_LEN):
        raise ValueError("alphabet too large for MAX_CODE_LEN")
    order = np.argsort(symbols)
    symbols = symbols[order]
    frequencies = frequencies[order]
    if np.unique(symbols).size != symbols.size:
        raise ValueError("symbols must be distinct")
    lengths = _huffman_lengths(frequencies)
    if max_len is None:
        lengths = _limit_lengths(lengths, frequencies, MAX_CODE_LEN)
    else:
        lengths = _rebalance_lengths(lengths, frequencies, max_len)
    codewords = _canonical_codewords(lengths)
    return HuffmanCode(
        symbols=symbols,
        lengths=lengths.astype(np.uint8),
        codewords=codewords,
    )


def encode(values: np.ndarray, code: HuffmanCode) -> PackedBits:
    """Huffman-encode an int array (vectorized lookup + bit pack)."""
    values = np.ravel(np.asarray(values, dtype=np.int64))
    if values.size == 0:
        return PackedBits(data=b"", n_bits=0)
    codewords, lengths = codec_for(code).lookup(values)
    trace.count("huffman.encode_lanes", 1)
    return pack_codes(codewords, lengths)


def serialize_tree(code: HuffmanCode) -> bytes:
    """Serialize the canonical code table ("the Huffman tree").

    Layout: header ``(n_symbols, max_len)``, varint-encoded
    delta-sorted symbol values, then one length byte per symbol.  This
    byte string is the section Encr-Huffman encrypts.
    """
    n = code.n_symbols
    max_len = int(code.lengths.max()) if n else 0
    deltas = np.diff(code.symbols, prepend=np.int64(0)) if n else np.empty(0, np.int64)
    return (
        _TREE_HEADER.pack(n, max_len)
        + intcodec.varint_encode(deltas)
        + code.lengths.tobytes()
    )


def deserialize_tree(data: bytes) -> HuffmanCode:
    """Rebuild a :class:`HuffmanCode` from :func:`serialize_tree` output."""
    if len(data) < _TREE_HEADER.size:
        raise ValueError("huffman tree stream shorter than its header")
    n, max_len = _TREE_HEADER.unpack_from(data)
    if max_len > MAX_CODE_LEN:
        raise ValueError(f"serialized tree max length {max_len} exceeds cap")
    if n == 0:
        return build_code(np.empty(0, np.int64), np.empty(0, np.int64))
    body = data[_TREE_HEADER.size :]
    if len(body) < n:
        raise ValueError("truncated huffman tree stream")
    lengths = np.frombuffer(body[-n:], dtype=np.uint8)
    # varint_decode validates the stream itself.
    deltas = intcodec.varint_decode(body[: len(body) - n], n)
    symbols = np.cumsum(deltas).astype(np.int64)
    if np.unique(symbols).size != n:
        raise ValueError("serialized tree contains duplicate symbols")
    if lengths.min() < 1 or lengths.max() != max_len:
        raise ValueError("serialized tree lengths are inconsistent")
    # An over-subscribed code (Kraft sum > 1) has no canonical codeword
    # assignment; building one would overflow the decode tables, so an
    # attacker-controlled tree must be rejected here, at the parse.
    kraft = int(
        (np.int64(1) << (np.int64(max_len) - lengths.astype(np.int64))).sum()
    )
    if kraft > 1 << int(max_len):
        raise ValueError("serialized tree violates the Kraft inequality")
    # The codec cache short-circuits codeword recomputation (and any
    # decoder tables built later) for repeat decodes under one table.
    return codec_from_table(symbols.copy(), lengths.copy()).code


# ----------------------------------------------------------------------
# Multi-lane interleaved streams (frame format v3)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LaneTable:
    """Decode-side description of an N-lane interleaved bitstream.

    ``anchors[l]`` holds the *within-lane* bit offset of every
    ``anchor_stride``-th codeword boundary (excluding offset 0, which is
    the lane start).  Anchors are sub-lane entry points: they let the
    vectorized kernel decode many independent segments at once instead
    of being limited to ``n_lanes``-wide vectors.  The table travels
    inside the serialized-tree section, so Encr-Quant / Encr-Huffman
    encrypt it together with the code table and the security argument
    (no tree, no decode) is unchanged.
    """

    n_lanes: int
    anchor_stride: int
    lane_bits: np.ndarray
    anchors: tuple[np.ndarray, ...]


@dataclass(frozen=True)
class LaneEncoding:
    """Encoder output for one value array: K lane streams + anchors."""

    lanes: tuple[PackedBits, ...]
    table: LaneTable

    @property
    def n_bits(self) -> int:
        return int(self.table.lane_bits.sum())


def lane_sizes(n_values: int, n_lanes: int) -> np.ndarray:
    """Contiguous-split lane lengths (``np.array_split`` rule).

    The first ``n_values % n_lanes`` lanes get one extra element; the
    rule is part of the wire format (the decoder re-derives it), so it
    must never change for format v3.
    """
    if n_lanes < 1:
        raise ValueError("n_lanes must be at least 1")
    base, extra = divmod(n_values, n_lanes)
    sizes = np.full(n_lanes, base, dtype=np.int64)
    sizes[:extra] += 1
    return sizes


#: Below this many coded bits (64 KB of codes) the auto encoder writes
#: the legacy single-stream v2 frame: decode time is trivial at that
#: size and the lane/anchor table would be a visible CR overhead —
#: especially on run-dominated streams where the lossless stage crushes
#: the codes but not the high-entropy anchor varints.
LANE_FORMAT_MIN_BITS = 1 << 19
#: Auto anchor density: roughly one anchor per this many coded bits
#: (512 bytes), keeping the table at ~0.2-0.4 % of the codes section.
ANCHOR_SPACING_BITS = 1 << 12


def choose_lane_params(n_values: int, total_bits: int | None = None) -> tuple[int, int]:
    """Pick ``(n_lanes, anchor_stride)`` for ``n_values`` symbols whose
    encoding occupies ``total_bits``.

    Both knobs scale with the *coded* size, not the element count: a
    lane per ~32 KB of codes (capped at 16) and an anchor per ~512
    bytes.  Decode-kernel vector width therefore grows with the work
    available while the table stays a fixed small fraction of the
    stream.  Below :data:`LANE_FORMAT_MIN_BITS` the returned stride
    exceeds ``n_values`` (no anchors) and the lane count is 1 — the
    signal the encoder uses to fall back to the v2 single-stream frame.
    """
    if n_values <= 0:
        return 1, 1024
    if total_bits is None:
        total_bits = 4 * n_values  # rough prior: skewed SZ histograms
    if total_bits < LANE_FORMAT_MIN_BITS:
        return 1, max(1024, n_values)
    n_lanes = min(MAX_LANES, 16, max(4, total_bits >> 18), n_values)
    target = -(-ANCHOR_SPACING_BITS * n_values // total_bits)
    stride = 1 << max(10, int(target - 1).bit_length())
    return n_lanes, stride


def _encode_one_lane(
    codewords: np.ndarray, lane_lens: np.ndarray, anchor_stride: int
) -> tuple[PackedBits, int, np.ndarray]:
    """Pack one lane slice: ``(stream, bit length, anchor offsets)``.

    Lanes are fully independent (each is a self-contained bitstream
    under the shared code), so this helper is the unit of work for the
    optional thread-pool encode path.
    """
    packed = pack_codes(codewords, lane_lens)
    n = lane_lens.size
    n_bits = int(lane_lens.sum()) if n else 0
    # Bit offset where codeword anchor_stride, 2*anchor_stride, ...
    # begins: the boundary *after* the preceding codeword.  Only every
    # anchor_stride-th prefix sum is needed, so sum stride-sized blocks
    # and cumsum those instead of materializing the full prefix array.
    n_anchors = max(0, -(-n // anchor_stride) - 1)
    if n_anchors:
        blocks = lane_lens[: n_anchors * anchor_stride].reshape(
            n_anchors, anchor_stride
        )
        anchors = np.cumsum(blocks.sum(axis=1, dtype=np.int64))
    else:
        anchors = np.empty(0, dtype=np.int64)
    return packed, n_bits, anchors


def encode_lanes(
    values: np.ndarray,
    code: HuffmanCode,
    n_lanes: int,
    anchor_stride: int,
    *,
    max_workers: int = 1,
) -> LaneEncoding:
    """Huffman-encode ``values`` as ``n_lanes`` independent bitstreams.

    Every lane is a self-contained stream under the shared canonical
    code, padded to a byte boundary so the concatenated ``codes``
    section keeps lanes byte-aligned.  With ``max_workers > 1`` the
    lane slices pack on a thread pool (the word-pack kernel is NumPy
    work that releases the GIL); the output is bit-identical to the
    serial path regardless, so the knob never touches the wire format
    and composes freely with the process-parallel
    :mod:`repro.parallel.chunked` layer.
    """
    values = np.ravel(np.asarray(values, dtype=np.int64))
    if not 1 <= n_lanes <= MAX_LANES:
        raise ValueError(f"n_lanes must be in 1..{MAX_LANES}")
    if values.size and n_lanes > values.size:
        raise ValueError("more lanes than values")
    if anchor_stride < 1:
        raise ValueError("anchor_stride must be positive")
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    if values.size == 0:
        table = LaneTable(
            n_lanes=1,
            anchor_stride=anchor_stride,
            lane_bits=np.zeros(1, dtype=np.int64),
            anchors=(np.empty(0, dtype=np.int64),),
        )
        return LaneEncoding(lanes=(PackedBits(data=b"", n_bits=0),), table=table)
    codewords, lengths = codec_for(code).lookup(values)

    bounds = np.concatenate([[0], np.cumsum(lane_sizes(values.size, n_lanes))])
    slices = [
        (codewords[lo:hi], lengths[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    if max_workers > 1 and n_lanes > 1:
        with ThreadPoolExecutor(max_workers=min(max_workers, n_lanes)) as pool:
            results = list(
                pool.map(
                    lambda s: _encode_one_lane(s[0], s[1], anchor_stride),
                    slices,
                )
            )
    else:
        results = [
            _encode_one_lane(cw, ln, anchor_stride) for cw, ln in slices
        ]
    trace.count("huffman.encode_lanes", n_lanes)
    lanes = tuple(packed for packed, _, _ in results)
    lane_bits = np.array([bits for _, bits, _ in results], dtype=np.int64)
    anchors = tuple(a for _, _, a in results)
    table = LaneTable(
        n_lanes=n_lanes,
        anchor_stride=anchor_stride,
        lane_bits=lane_bits,
        anchors=anchors,
    )
    return LaneEncoding(lanes=lanes, table=table)


def _anchor_counts(n_values: int, n_lanes: int, stride: int) -> np.ndarray:
    """Per-lane anchor count implied by the contiguous-split rule."""
    sizes = lane_sizes(n_values, n_lanes)
    return np.maximum(0, -(-sizes // stride) - 1)


def serialize_lane_tree(code: HuffmanCode, table: LaneTable) -> bytes:
    """Serialize lane table + canonical code table (tree section v2).

    Layout: ``HLT1`` magic, lane header, one u64 bit length per lane,
    varint-coded anchor *deltas* (per lane, from 0), then the v1 tree
    bytes.  The whole blob is what Encr-Huffman encrypts in format v3.
    """
    deltas = np.concatenate(
        [np.diff(a, prepend=np.int64(0)) for a in table.anchors]
    ) if table.anchors else np.empty(0, np.int64)
    varints = intcodec.varint_encode(deltas) if deltas.size else b""
    return (
        _LANE_HEADER.pack(
            _LANE_MAGIC, table.n_lanes, table.anchor_stride, len(varints)
        )
        + table.lane_bits.astype("<i8").tobytes()
        + varints
        + serialize_tree(code)
    )


def deserialize_lane_tree(data: bytes, n_values: int) -> tuple[HuffmanCode, LaneTable]:
    """Parse a v2 tree section back into ``(code, lane_table)``.

    Validates every structural invariant of the lane table — lane
    count, bit lengths, anchor monotonicity and counts — so corrupted
    or tampered tables are rejected before the decode kernel runs.
    """
    if len(data) < _LANE_HEADER.size:
        raise ValueError("lane tree section shorter than its header")
    magic, n_lanes, stride, varint_len = _LANE_HEADER.unpack_from(data)
    if magic != _LANE_MAGIC:
        raise ValueError("bad lane-table magic; not a v3 tree section")
    if not 1 <= n_lanes <= MAX_LANES:
        raise ValueError(f"lane count {n_lanes} outside 1..{MAX_LANES}")
    if n_values and n_lanes > n_values:
        raise ValueError("lane table has more lanes than symbols")
    if stride < 1:
        raise ValueError("anchor stride must be positive")
    off = _LANE_HEADER.size
    if len(data) < off + 8 * n_lanes + varint_len:
        raise ValueError("truncated lane table")
    lane_bits = np.frombuffer(data, dtype="<i8", offset=off, count=n_lanes).astype(
        np.int64
    )
    if lane_bits.min() < 0:
        raise ValueError("negative lane bit length")
    off += 8 * n_lanes
    counts = _anchor_counts(n_values, n_lanes, stride)
    deltas = intcodec.varint_decode(
        data[off : off + varint_len], int(counts.sum())
    )
    off += varint_len
    if deltas.size and deltas.min() < 1:
        raise ValueError("lane anchor deltas must be positive")
    anchors: list[np.ndarray] = []
    pos = 0
    for l in range(n_lanes):
        a = np.cumsum(deltas[pos : pos + int(counts[l])]).astype(np.int64)
        pos += int(counts[l])
        if a.size and int(a[-1]) >= int(lane_bits[l]):
            raise ValueError("lane anchor beyond the lane bitstream")
        anchors.append(a)
    code = deserialize_tree(data[off:])
    table = LaneTable(
        n_lanes=n_lanes,
        anchor_stride=stride,
        lane_bits=lane_bits,
        anchors=tuple(anchors),
    )
    return code, table


def _primary_table(
    symbols: np.ndarray,
    lengths: np.ndarray,
    codewords: np.ndarray,
    t_bits: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fill a ``2^t_bits`` primary decode table, vectorized.

    Codeword ``i`` (of length ``<= t_bits``) owns the contiguous run of
    ``2^(t_bits - len)`` windows that start with it.  The runs are
    written with one ``np.repeat`` scatter: ``idx`` enumerates every
    covered window by adding a within-run ramp to each run's base.
    """
    size = 1 << t_bits
    tab_sym = np.zeros(size, dtype=np.int64)
    tab_len = np.zeros(size, dtype=np.uint8)
    if symbols.size:
        shift = t_bits - lengths
        base = codewords.astype(np.int64) << shift
        span = np.int64(1) << shift
        starts = np.cumsum(span) - span
        idx = np.repeat(base - starts, span) + np.arange(
            int(span.sum()), dtype=np.int64
        )
        tab_sym[idx] = np.repeat(symbols, span)
        tab_len[idx] = np.repeat(lengths, span).astype(np.uint8)
    return tab_sym, tab_len


class _Decoder:
    """Table-driven canonical decoder (see module docstring)."""

    def __init__(self, code: HuffmanCode) -> None:
        if code.n_symbols == 0:
            raise ValueError("cannot decode with an empty code")
        self.code = code
        lengths = code.lengths.astype(np.int64)
        self.max_len = int(lengths.max())
        t_bits = min(TABLE_BITS, self.max_len)
        self.t_bits = t_bits
        short = lengths <= t_bits
        self.tab_sym, self.tab_len = _primary_table(
            code.symbols[short],
            lengths[short],
            code.codewords[short],
            t_bits,
        )
        # Long codes: canonical (first_code, first_index, count) per length.
        # A window of `ln` bits is a valid codeword of that length iff
        # 0 <= window - first_code < count; canonical assignment puts
        # every extension of a shorter codeword *below* first_code, so
        # scanning lengths ascending and taking the first in-range hit
        # is exact.
        self.long_codes: dict[int, tuple[int, int, int]] = {}
        self.sorted_symbols = np.empty(0, dtype=np.int64)
        if (~short).any():
            order = np.lexsort((np.arange(len(lengths), dtype=np.int64), lengths))
            sorted_lengths = lengths[order]
            sorted_cw = code.codewords[order]
            self.sorted_symbols = code.symbols[order]
            for ln in range(t_bits + 1, self.max_len + 1):
                where = np.nonzero(sorted_lengths == ln)[0]
                if where.size:
                    self.long_codes[ln] = (
                        int(sorted_cw[where[0]]),
                        int(where[0]),
                        int(where.size),
                    )

    def kernel_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Lookup tables shaped for the vectorized lane kernel.

        Returns ``(tab_sym, tab_len64, lj_codes, lj_symbols, lj_lengths)``
        where ``tab_len64`` is the primary length table widened to int64
        (so per-iteration cursor updates stay cast-free) and the three
        ``lj_*`` arrays hold the *whole* code left-justified to
        ``max_len`` bits and sorted ascending.  Canonical codewords are
        strictly increasing when left-justified, so a primary-table
        miss resolves with a single ``searchsorted`` (largest
        left-justified codeword <= the next ``max_len`` window bits)
        instead of a per-length scan.
        """
        try:
            return self._kernel_tables
        except AttributeError:
            pass
        lengths = self.code.lengths.astype(np.int64)
        lj = self.code.codewords.astype(np.int64) << (self.max_len - lengths)
        order = np.argsort(lj, kind="stable")
        self._kernel_tables = (
            self.tab_sym,
            self.tab_len.astype(np.int64),
            lj[order],
            self.code.symbols[order],
            lengths[order],
        )
        return self._kernel_tables

    def wide_tables(self) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Full-coverage packed table ``(tab, symbols, t_bits)`` at
        width ``max_len``, or ``None`` when the code is too deep.

        When every code length fits :data:`DEPTH_LIMIT_BITS` bits the
        primary table can simply be as wide as the longest codeword —
        then *every* window lookup resolves a symbol and the lane
        kernel's ``searchsorted`` miss path never runs.  Depth-limited
        frames guarantee this by construction; shallow unlimited codes
        get the same fast path opportunistically.

        Each int32 entry packs ``(symbol_rank << 5) | code_length`` so
        the kernel needs a *single* gather per window (Kraft holes stay
        0, freezing corrupt cursors); ranks resolve to symbol values
        with one full-array gather after decoding.  The table is at
        most ``2^DEPTH_LIMIT_BITS`` int32 entries (256 KB — half the
        footprint of separate symbol/length tables, so the random
        gathers stay cache-resident), built once per code and amortized
        by the process-wide codec cache.
        """
        if self.max_len > DEPTH_LIMIT_BITS:
            return None
        try:
            return self._wide_tables
        except AttributeError:
            pass
        lengths = self.code.lengths.astype(np.int64)
        n = lengths.size
        packed = (np.arange(n, dtype=np.int64) << 5) | lengths
        tab, _ = _primary_table(
            packed, lengths, self.code.codewords, self.max_len
        )
        self._wide_tables = (
            tab.astype(np.int32), self.code.symbols, self.max_len
        )
        return self._wide_tables

    def _build_fast_table(self) -> None:
        """Multi-symbol lookup: for every t_bits window, the run of
        *complete* codewords it contains and their total bit length.

        By the prefix property, a codeword whose length fits inside the
        window's known bits is fully determined by them — the padding
        beyond cannot change the table entry it spans.  One lookup then
        yields several symbols at once (for skewed SZ histograms the
        average is 3-5 symbols per 12-bit window).
        """
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        fast_syms: list[tuple[int, ...]] = []
        fast_bits: list[int] = []
        for w in range(1 << t_bits):
            syms: list[int] = []
            rem = t_bits
            known = w
            while True:
                window = known << (t_bits - rem)
                ln = tab_len[window]
                if ln == 0 or ln > rem:
                    break
                syms.append(tab_sym[window])
                rem -= ln
                known &= (1 << rem) - 1
            fast_syms.append(tuple(syms))
            fast_bits.append(t_bits - rem)
        self._fast_syms = fast_syms
        self._fast_bits = fast_bits

    def decode(self, packed: PackedBits, n_values: int) -> np.ndarray:
        # Hot loop notes (profile-driven, see the HPC guides): plain
        # Python lists beat ndarray scalar indexing ~4x here, the
        # buffer refills eight bytes per int.from_bytes call, and the
        # multi-symbol fast table drains several codewords per window
        # lookup (see _build_fast_table).
        # The multi-symbol table only pays when windows typically hold
        # several codewords; the stream itself tells us the average
        # bits/symbol.  Above the threshold, skip both the build cost
        # and the per-iteration fast-path overhead.
        use_fast = n_values > 0 and packed.n_bits / n_values <= self.t_bits / 2
        if use_fast and not hasattr(self, "_fast_syms"):
            self._build_fast_table()
        fast_syms = self._fast_syms if use_fast else None
        fast_bits = self._fast_bits if use_fast else None
        out = [0] * n_values
        data = packed.data
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        t_mask = (1 << t_bits) - 1
        max_len = self.max_len
        long_codes = self.long_codes
        n_bits = packed.n_bits
        buf = 0
        buf_len = 0
        pos = 0
        consumed = 0
        n_bytes = len(data)
        i = 0
        while i < n_values:
            if buf_len < max_len and pos < n_bytes:
                take = n_bytes - pos
                if take > 8:
                    take = 8
                buf = (buf << (take << 3)) | int.from_bytes(
                    data[pos : pos + take], "big"
                )
                pos += take
                buf_len += take << 3
            if buf_len >= t_bits:
                window = (buf >> (buf_len - t_bits)) & t_mask
                if fast_syms is not None:
                    syms = fast_syms[window]
                    k = len(syms)
                    if k > 1 and i + k <= n_values:
                        out[i : i + k] = syms
                        i += k
                        used = fast_bits[window]
                        consumed += used
                        if consumed > n_bits:
                            raise ValueError(
                                "huffman bitstream ended mid-codeword"
                            )
                        buf_len -= used
                        buf &= (1 << buf_len) - 1
                        continue
            else:
                window = (buf << (t_bits - buf_len)) & t_mask
            ln = tab_len[window]
            if ln:
                out[i] = tab_sym[window]
            else:
                # Long code: widen the window one bit at a time.
                sym = None
                for try_len in range(t_bits + 1, max_len + 1):
                    if buf_len < try_len:
                        break
                    entry = long_codes.get(try_len)
                    if entry is None:
                        continue
                    cw = (buf >> (buf_len - try_len)) & ((1 << try_len) - 1)
                    first_code, first_idx, count = entry
                    offset = cw - first_code
                    if 0 <= offset < count:
                        sym = self.sorted_symbols[first_idx + offset]
                        ln = try_len
                        break
                if sym is None:
                    raise ValueError("corrupt huffman bitstream")
                out[i] = int(sym)
            consumed += ln
            if consumed > n_bits:
                raise ValueError("huffman bitstream ended mid-codeword")
            buf_len -= ln
            buf &= (1 << buf_len) - 1
            i += 1
        return np.array(out, dtype=np.int64)


def _table_digest(symbols: np.ndarray, lengths: np.ndarray) -> bytes:
    """Digest of a canonical table — equivalent to hashing the
    serialized tree (lengths + symbols fully determine it), without
    paying the varint re-serialization per call."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(symbols).tobytes())
    h.update(np.ascontiguousarray(lengths).tobytes())
    return h.digest()


def _code_digest(code: HuffmanCode) -> bytes:
    return _table_digest(code.symbols, code.lengths)


#: Above this span-to-alphabet ratio the offset-indexed encode LUT
#: would be mostly holes; fall back to ``searchsorted``.  Quantization
#: codes are a dense integer band around the midpoint, so real frames
#: essentially always take the LUT path.
_DENSE_SLACK = 4096


class CanonicalCodec:
    """Everything derived from one canonical code table, built lazily.

    One instance bundles the :class:`HuffmanCode` with its decoder
    tables and the encode-side lookup structures, so the expensive
    derived state is constructed at most once per distinct table in
    the process — shared across lanes, repeated compress/decompress
    calls and (per process) the chunked-pipeline workers.  Instances
    are obtained via :func:`codec_for` / :func:`codec_from_table` and
    are internally locked, so sharing across encode threads is safe.
    """

    __slots__ = ("code", "digest", "_lock", "_decoder", "_enc")

    def __init__(self, code: HuffmanCode, digest: bytes | None = None) -> None:
        self.code = code
        self.digest = _code_digest(code) if digest is None else digest
        self._lock = threading.Lock()
        self._decoder: _Decoder | None = None
        self._enc = None

    @property
    def decoder(self) -> _Decoder:
        dec = self._decoder
        if dec is None:
            with self._lock:
                dec = self._decoder
                if dec is None:
                    dec = _Decoder(self.code)
                    self._decoder = dec
        return dec

    def _encode_tables(self):
        enc = self._enc
        if enc is None:
            with self._lock:
                enc = self._enc
                if enc is None:
                    enc = self._build_encode_tables()
                    self._enc = enc
        return enc

    def _build_encode_tables(self):
        code = self.code
        lengths64 = code.lengths.astype(np.int64)
        base = int(code.symbols[0])
        span = int(code.symbols[-1]) - base + 1
        if span > 4 * code.n_symbols + _DENSE_SLACK:
            return ("sparse", lengths64, None, None)
        # Offset-indexed LUT: holes keep length 0, which doubles as the
        # unknown-symbol detector (real codewords never have length 0).
        lut_cw = np.zeros(span, dtype=np.uint64)
        lut_ln = np.zeros(span, dtype=np.int64)
        off = code.symbols - base
        lut_cw[off] = code.codewords
        lut_ln[off] = lengths64
        return ("dense", lengths64, lut_cw, lut_ln)

    def lookup(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-value ``(codewords, lengths)`` for ``values``.

        Dense integer alphabets (the quantization-code common case) go
        through a direct offset-indexed gather; sparse alphabets fall
        back to the original ``searchsorted``.  Raises ``ValueError``
        when any value is outside the code's alphabet.
        """
        code = self.code
        kind, lengths64, lut_cw, lut_ln = self._encode_tables()
        if kind == "dense":
            off = values - int(code.symbols[0])
            if off.size and (
                int(off.min()) < 0 or int(off.max()) >= lut_ln.size
            ):
                raise ValueError("value outside the code's alphabet")
            ln = lut_ln[off]
            if not ln.all():
                raise ValueError("value outside the code's alphabet")
            return lut_cw[off], ln
        idx = np.searchsorted(code.symbols, values)
        idx = np.clip(idx, 0, code.n_symbols - 1)
        if not np.array_equal(code.symbols[idx], values):
            raise ValueError("value outside the code's alphabet")
        return code.codewords[idx], lengths64[idx]


#: Process-wide codec cache.  Keyed by table digest; bounded LRU.  The
#: derived state per entry is a few MB at worst (wide decode tables),
#: so a generous bound still keeps the cache small while letting
#: daemon-style workloads with many distinct error bounds all hit.
_CODEC_CACHE_SIZE = 64
_codec_cache: OrderedDict[bytes, CanonicalCodec] = OrderedDict()
_codec_cache_lock = threading.Lock()


def _codec_cached(digest: bytes) -> CanonicalCodec | None:
    with _codec_cache_lock:
        codec = _codec_cache.get(digest)
        if codec is not None:
            _codec_cache.move_to_end(digest)
            trace.count("huffman.codec_cache_hits")
        return codec


def _codec_insert(codec: CanonicalCodec) -> CanonicalCodec:
    trace.count("huffman.codec_cache_misses")
    with _codec_cache_lock:
        existing = _codec_cache.get(codec.digest)
        if existing is not None:
            # Raced with another thread: keep the first instance so its
            # lazily built tables stay shared.
            _codec_cache.move_to_end(codec.digest)
            return existing
        _codec_cache[codec.digest] = codec
        while len(_codec_cache) > _CODEC_CACHE_SIZE:
            _codec_cache.popitem(last=False)
    return codec


def codec_for(code: HuffmanCode) -> CanonicalCodec:
    """Fetch (or build and cache) the process-wide codec for ``code``."""
    key = _code_digest(code)
    codec = _codec_cached(key)
    if codec is not None:
        return codec
    return _codec_insert(CanonicalCodec(code, digest=key))


def codec_from_table(symbols: np.ndarray, lengths: np.ndarray) -> CanonicalCodec:
    """Codec for a deserialized ``(symbols, lengths)`` table.

    Hitting the cache here skips the canonical-codeword recomputation
    entirely on repeated decodes of frames sharing one code table.
    """
    key = _table_digest(symbols, lengths)
    codec = _codec_cached(key)
    if codec is not None:
        return codec
    code = HuffmanCode(
        symbols=symbols,
        lengths=lengths,
        codewords=_canonical_codewords(lengths.astype(np.int64)),
    )
    return _codec_insert(CanonicalCodec(code, digest=key))


def codec_cache_clear() -> None:
    """Drop every cached codec (tests and fixture regeneration)."""
    with _codec_cache_lock:
        _codec_cache.clear()


def codec_cache_stats() -> dict:
    """Introspect the process-wide codec cache (no counters here —
    hit/miss totals live in ``trace.counters_snapshot()``).

    Long-lived services (``secz serve``'s STAT verb) report this next
    to the counter-derived hit rate: ``size``/``capacity`` say how much
    of the LRU is populated, ``digests`` identifies the resident code
    tables (hex, LRU order, oldest first) so repeated fields are
    visibly sharing canonical codecs.
    """
    with _codec_cache_lock:
        return {
            "size": len(_codec_cache),
            "capacity": _CODEC_CACHE_SIZE,
            "digests": [key.hex() for key in _codec_cache],
        }


def decoder_for(code: HuffmanCode) -> _Decoder:
    """Fetch (or build and cache) the table-driven decoder for ``code``."""
    return codec_for(code).decoder


def decode(packed: PackedBits, code: HuffmanCode, n_values: int) -> np.ndarray:
    """Decode ``n_values`` symbols from a Huffman bitstream."""
    if n_values == 0:
        return np.empty(0, dtype=np.int64)
    return decoder_for(code).decode(packed, n_values)
