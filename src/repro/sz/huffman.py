"""Canonical Huffman coding of the quantization-code array.

This stage produces the two byte sections at the heart of the paper:

* the **serialized tree** — what *Encr-Huffman* encrypts.  Recovering
  Huffman-coded data without the code table is NP-hard (paper Sec. IV-C,
  refs [56], [57]), so encrypting only this small section already keys
  the whole quantization array.
* the **codeword bitstream** — together with the tree it forms the
  "quantization array" that *Encr-Quant* encrypts.

Implementation notes
--------------------
* Codes are *canonical*: the tree is fully described by each symbol's
  code length, so the serialized tree is ``(symbols, lengths)`` — far
  smaller than a pointer-based tree dump, and trivially validated.
* Code lengths are limited to :data:`MAX_CODE_LEN` with a Kraft-sum
  fix-up (the zlib approach).  This keeps the decoder's primary lookup
  table small and bounds the encoder's bit-scatter passes; the rate
  loss versus unrestricted Huffman is negligible for the skewed
  residual histograms SZ produces.
* Decoding uses a flat ``2^TABLE_BITS``-entry table: one lookup per
  symbol for all codes up to :data:`TABLE_BITS` bits (the common case);
  longer codes resolve through a canonical first-code search.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.sz import intcodec
from repro.sz.bitstream import PackedBits, pack_codes

__all__ = [
    "HuffmanCode",
    "build_code",
    "encode",
    "decode",
    "serialize_tree",
    "deserialize_tree",
    "MAX_CODE_LEN",
    "TABLE_BITS",
]

#: Hard cap on codeword length (keeps tables and bit passes bounded).
MAX_CODE_LEN = 24
#: Primary decode-table width in bits.
TABLE_BITS = 12

_TREE_HEADER = struct.Struct("<IB")  # (n_symbols, max_len)


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over an integer alphabet.

    Attributes
    ----------
    symbols:
        Sorted, distinct symbol values (int64).
    lengths:
        Code length per symbol (uint8), Kraft-complete-or-under.
    codewords:
        Canonical codeword values (uint64), assigned in
        ``(length, symbol)`` order.
    """

    symbols: np.ndarray
    lengths: np.ndarray
    codewords: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.symbols) == len(self.lengths) == len(self.codewords)):
            raise ValueError("symbols/lengths/codewords must align")
        if len(self.symbols) and int(self.lengths.max()) > MAX_CODE_LEN:
            raise ValueError("code length exceeds MAX_CODE_LEN")

    @property
    def n_symbols(self) -> int:
        return len(self.symbols)

    def mean_length(self, frequencies: np.ndarray) -> float:
        """Average codeword length in bits under ``frequencies``."""
        total = frequencies.sum()
        if total == 0:
            return 0.0
        return float((frequencies * self.lengths).sum() / total)


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths via the classic heap construction."""
    n = len(freqs)
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap items: (freq, tiebreak, node_id).  Internal nodes get ids >= n.
    heap = [(int(f), i, i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depths = np.zeros(2 * n - 1, dtype=np.int64)
    # Nodes were created bottom-up, so walking ids top-down lets every
    # child read its parent's already-final depth.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n]


def _limit_lengths(lengths: np.ndarray, freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Clamp code lengths to ``max_len`` and restore the Kraft inequality.

    Clamping over-long codes pushes the Kraft sum above 1; we repair it
    by lengthening the cheapest (lowest-frequency) symbols whose codes
    still have room to grow — each such step frees ``2^(max_len - l - 1)``
    units of Kraft budget at minimal rate cost.
    """
    lengths = np.minimum(lengths, max_len)
    unit = 1 << max_len  # work in integer units of 2^-max_len
    kraft = int((1 << (max_len - lengths)).sum())
    if kraft <= unit:
        return lengths
    # Lengthen symbols in ascending frequency, skipping already-max codes.
    order = np.argsort(freqs, kind="stable")
    lengths = lengths.copy()
    while kraft > unit:
        progressed = False
        for idx in order:
            if lengths[idx] < max_len:
                kraft -= 1 << (max_len - lengths[idx] - 1)
                lengths[idx] += 1
                progressed = True
                if kraft <= unit:
                    break
        if not progressed:  # pragma: no cover - cannot happen for n <= 2^max_len
            raise RuntimeError("unable to satisfy Kraft inequality")
    return lengths


def _canonical_codewords(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given lengths (symbols already sorted)."""
    order = np.lexsort((np.arange(len(lengths)), lengths))
    codes = np.zeros(len(lengths), dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        ln = int(lengths[idx])
        code <<= ln - prev_len
        codes[idx] = code
        code += 1
        prev_len = ln
    return codes


def build_code(symbols: np.ndarray, frequencies: np.ndarray) -> HuffmanCode:
    """Build a length-limited canonical Huffman code.

    Parameters
    ----------
    symbols:
        Distinct symbol values (will be sorted internally).
    frequencies:
        Positive occurrence counts aligned with ``symbols``.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    frequencies = np.asarray(frequencies, dtype=np.int64)
    if symbols.size == 0:
        return HuffmanCode(
            symbols=symbols,
            lengths=np.empty(0, dtype=np.uint8),
            codewords=np.empty(0, dtype=np.uint64),
        )
    if symbols.size != frequencies.size:
        raise ValueError("symbols and frequencies must align")
    if (frequencies <= 0).any():
        raise ValueError("all frequencies must be positive")
    if symbols.size > (1 << MAX_CODE_LEN):
        raise ValueError("alphabet too large for MAX_CODE_LEN")
    order = np.argsort(symbols)
    symbols = symbols[order]
    frequencies = frequencies[order]
    if np.unique(symbols).size != symbols.size:
        raise ValueError("symbols must be distinct")
    lengths = _huffman_lengths(frequencies)
    lengths = _limit_lengths(lengths, frequencies, MAX_CODE_LEN)
    codewords = _canonical_codewords(lengths)
    return HuffmanCode(
        symbols=symbols,
        lengths=lengths.astype(np.uint8),
        codewords=codewords,
    )


def encode(values: np.ndarray, code: HuffmanCode) -> PackedBits:
    """Huffman-encode an int array (vectorized lookup + bit pack)."""
    values = np.ravel(np.asarray(values, dtype=np.int64))
    if values.size == 0:
        return PackedBits(data=b"", n_bits=0)
    idx = np.searchsorted(code.symbols, values)
    idx = np.clip(idx, 0, code.n_symbols - 1)
    if not np.array_equal(code.symbols[idx], values):
        raise ValueError("value outside the code's alphabet")
    return pack_codes(code.codewords[idx], code.lengths[idx])


def serialize_tree(code: HuffmanCode) -> bytes:
    """Serialize the canonical code table ("the Huffman tree").

    Layout: header ``(n_symbols, max_len)``, varint-encoded
    delta-sorted symbol values, then one length byte per symbol.  This
    byte string is the section Encr-Huffman encrypts.
    """
    n = code.n_symbols
    max_len = int(code.lengths.max()) if n else 0
    deltas = np.diff(code.symbols, prepend=np.int64(0)) if n else np.empty(0, np.int64)
    return (
        _TREE_HEADER.pack(n, max_len)
        + intcodec.varint_encode(deltas)
        + code.lengths.tobytes()
    )


def deserialize_tree(data: bytes) -> HuffmanCode:
    """Rebuild a :class:`HuffmanCode` from :func:`serialize_tree` output."""
    if len(data) < _TREE_HEADER.size:
        raise ValueError("huffman tree stream shorter than its header")
    n, max_len = _TREE_HEADER.unpack_from(data)
    if max_len > MAX_CODE_LEN:
        raise ValueError(f"serialized tree max length {max_len} exceeds cap")
    if n == 0:
        return build_code(np.empty(0, np.int64), np.empty(0, np.int64))
    body = data[_TREE_HEADER.size :]
    if len(body) < n:
        raise ValueError("truncated huffman tree stream")
    lengths = np.frombuffer(body[-n:], dtype=np.uint8)
    # varint_decode validates the stream itself.
    deltas = intcodec.varint_decode(body[: len(body) - n], n)
    symbols = np.cumsum(deltas).astype(np.int64)
    if np.unique(symbols).size != n:
        raise ValueError("serialized tree contains duplicate symbols")
    if lengths.min() < 1 or lengths.max() != max_len:
        raise ValueError("serialized tree lengths are inconsistent")
    codewords = _canonical_codewords(lengths.astype(np.int64))
    return HuffmanCode(symbols=symbols.copy(), lengths=lengths.copy(), codewords=codewords)


class _Decoder:
    """Table-driven canonical decoder (see module docstring)."""

    def __init__(self, code: HuffmanCode) -> None:
        if code.n_symbols == 0:
            raise ValueError("cannot decode with an empty code")
        self.code = code
        lengths = code.lengths.astype(np.int64)
        self.max_len = int(lengths.max())
        t_bits = min(TABLE_BITS, self.max_len)
        self.t_bits = t_bits
        size = 1 << t_bits
        self.tab_sym = np.zeros(size, dtype=np.int64)
        self.tab_len = np.zeros(size, dtype=np.uint8)
        short = lengths <= t_bits
        for sym, ln, cw in zip(
            code.symbols[short], lengths[short], code.codewords[short]
        ):
            base = int(cw) << (t_bits - int(ln))
            span = 1 << (t_bits - int(ln))
            self.tab_sym[base : base + span] = sym
            self.tab_len[base : base + span] = ln
        # Long codes: canonical (first_code, first_index, count) per length.
        # A window of `ln` bits is a valid codeword of that length iff
        # 0 <= window - first_code < count; canonical assignment puts
        # every extension of a shorter codeword *below* first_code, so
        # scanning lengths ascending and taking the first in-range hit
        # is exact.
        self.long_codes: dict[int, tuple[int, int, int]] = {}
        self.sorted_symbols = np.empty(0, dtype=np.int64)
        if (~short).any():
            order = np.lexsort((np.arange(len(lengths)), lengths))
            sorted_lengths = lengths[order]
            sorted_cw = code.codewords[order]
            self.sorted_symbols = code.symbols[order]
            for ln in range(t_bits + 1, self.max_len + 1):
                where = np.nonzero(sorted_lengths == ln)[0]
                if where.size:
                    self.long_codes[ln] = (
                        int(sorted_cw[where[0]]),
                        int(where[0]),
                        int(where.size),
                    )

    def _build_fast_table(self) -> None:
        """Multi-symbol lookup: for every t_bits window, the run of
        *complete* codewords it contains and their total bit length.

        By the prefix property, a codeword whose length fits inside the
        window's known bits is fully determined by them — the padding
        beyond cannot change the table entry it spans.  One lookup then
        yields several symbols at once (for skewed SZ histograms the
        average is 3-5 symbols per 12-bit window).
        """
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        fast_syms: list[tuple[int, ...]] = []
        fast_bits: list[int] = []
        for w in range(1 << t_bits):
            syms: list[int] = []
            rem = t_bits
            known = w
            while True:
                window = known << (t_bits - rem)
                ln = tab_len[window]
                if ln == 0 or ln > rem:
                    break
                syms.append(tab_sym[window])
                rem -= ln
                known &= (1 << rem) - 1
            fast_syms.append(tuple(syms))
            fast_bits.append(t_bits - rem)
        self._fast_syms = fast_syms
        self._fast_bits = fast_bits

    def decode(self, packed: PackedBits, n_values: int) -> np.ndarray:
        # Hot loop notes (profile-driven, see the HPC guides): plain
        # Python lists beat ndarray scalar indexing ~4x here, the
        # buffer refills eight bytes per int.from_bytes call, and the
        # multi-symbol fast table drains several codewords per window
        # lookup (see _build_fast_table).
        # The multi-symbol table only pays when windows typically hold
        # several codewords; the stream itself tells us the average
        # bits/symbol.  Above the threshold, skip both the build cost
        # and the per-iteration fast-path overhead.
        use_fast = n_values > 0 and packed.n_bits / n_values <= self.t_bits / 2
        if use_fast and not hasattr(self, "_fast_syms"):
            self._build_fast_table()
        fast_syms = self._fast_syms if use_fast else None
        fast_bits = self._fast_bits if use_fast else None
        out = [0] * n_values
        data = packed.data
        tab_sym = self.tab_sym.tolist()
        tab_len = self.tab_len.tolist()
        t_bits = self.t_bits
        t_mask = (1 << t_bits) - 1
        max_len = self.max_len
        long_codes = self.long_codes
        n_bits = packed.n_bits
        buf = 0
        buf_len = 0
        pos = 0
        consumed = 0
        n_bytes = len(data)
        i = 0
        while i < n_values:
            if buf_len < max_len and pos < n_bytes:
                take = n_bytes - pos
                if take > 8:
                    take = 8
                buf = (buf << (take << 3)) | int.from_bytes(
                    data[pos : pos + take], "big"
                )
                pos += take
                buf_len += take << 3
            if buf_len >= t_bits:
                window = (buf >> (buf_len - t_bits)) & t_mask
                if fast_syms is not None:
                    syms = fast_syms[window]
                    k = len(syms)
                    if k > 1 and i + k <= n_values:
                        out[i : i + k] = syms
                        i += k
                        used = fast_bits[window]
                        consumed += used
                        if consumed > n_bits:
                            raise ValueError(
                                "huffman bitstream ended mid-codeword"
                            )
                        buf_len -= used
                        buf &= (1 << buf_len) - 1
                        continue
            else:
                window = (buf << (t_bits - buf_len)) & t_mask
            ln = tab_len[window]
            if ln:
                out[i] = tab_sym[window]
            else:
                # Long code: widen the window one bit at a time.
                sym = None
                for try_len in range(t_bits + 1, max_len + 1):
                    if buf_len < try_len:
                        break
                    entry = long_codes.get(try_len)
                    if entry is None:
                        continue
                    cw = (buf >> (buf_len - try_len)) & ((1 << try_len) - 1)
                    first_code, first_idx, count = entry
                    offset = cw - first_code
                    if 0 <= offset < count:
                        sym = self.sorted_symbols[first_idx + offset]
                        ln = try_len
                        break
                if sym is None:
                    raise ValueError("corrupt huffman bitstream")
                out[i] = int(sym)
            consumed += ln
            if consumed > n_bits:
                raise ValueError("huffman bitstream ended mid-codeword")
            buf_len -= ln
            buf &= (1 << buf_len) - 1
            i += 1
        return np.array(out, dtype=np.int64)


def decode(packed: PackedBits, code: HuffmanCode, n_values: int) -> np.ndarray:
    """Decode ``n_values`` symbols from a Huffman bitstream."""
    if n_values == 0:
        return np.empty(0, dtype=np.int64)
    return _Decoder(code).decode(packed, n_values)
