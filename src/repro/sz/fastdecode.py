"""Vectorized multi-lane Huffman decoding (frame format v3).

The v3 ``codes`` section is K independent, byte-aligned bitstreams
("lanes") under one shared canonical code, plus sub-lane *anchors*
(bit offsets of every ``anchor_stride``-th codeword boundary) carried
in the encrypted tree section.  Lanes and anchors together cut the
stream into many independent *segments*, and this module decodes all
segments simultaneously with NumPy gathers:

* one u32 gather per segment pulls the next ``TABLE_BITS`` window out
  of a sliding byte-window matrix (:func:`~repro.sz.bitstream.sliding_window_u32`);
* one gather each into the flat ``tab_sym`` / ``tab_len`` tables turns
  every window into a symbol and a bit advance;
* a scatter writes each segment's symbol into its contiguous slice of
  the output, and the per-segment bit cursors advance in place.

Codes longer than ``TABLE_BITS`` miss the primary table (length 0) and
resolve with one ``searchsorted`` into the left-justified canonical
codeword array over the affected segments only — canonical codewords
are strictly increasing when left-justified, so the matching codeword
is the largest one not exceeding the next ``max_len`` window bits.

When every code length fits :data:`repro.sz.huffman.DEPTH_LIMIT_BITS`
bits (always true for depth-limited frames, opportunistically true for
shallow codes), the kernel instead uses a *full-coverage* table as wide
as the longest codeword: no window can miss, the ``searchsorted`` path
vanishes, and a 64-bit sliding window yields several consecutive
symbols per gather (3 x 16-bit or 4 x 12-bit lookups fit the 57 usable
bits), so the per-symbol NumPy op count drops roughly threefold.

The loop runs ``anchor_stride`` iterations regardless of input size,
so throughput scales with the segment count; the encoder targets
roughly ``sqrt(n)`` segments (see :func:`repro.sz.huffman.choose_lane_params`),
which keeps each NumPy op wide enough to amortize interpreter
overhead.  Decoding is exact, not speculative: anchors are true
codeword boundaries recorded at encode time, and the final cursor of
every segment is checked against the next segment's start, so any
corruption that slips a cursor off the codeword lattice is rejected.
"""

from __future__ import annotations

import numpy as np

from repro.core import trace
from repro.sz import huffman
from repro.sz.bitstream import (
    lane_byte_lengths,
    sliding_window_u32,
    sliding_window_u64,
)
from repro.sz.huffman import HuffmanCode, LaneTable

__all__ = ["decode_lanes"]


def _segment_layout(
    table: LaneTable, n_values: int, n_code_bytes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the lane table into per-segment start/end/quota/output
    arrays (validating byte-offset consistency along the way)."""
    byte_lens = lane_byte_lengths(table.lane_bits)
    if int(byte_lens.sum()) != n_code_bytes:
        raise ValueError(
            "codes section length does not match the lane table"
        )
    byte_off = np.concatenate([[0], np.cumsum(byte_lens)])
    sizes = huffman.lane_sizes(n_values, table.n_lanes)
    out_off = np.concatenate([[0], np.cumsum(sizes)])
    stride = table.anchor_stride
    starts, ends, quotas, obases = [], [], [], []
    for l in range(table.n_lanes):
        abs0 = int(byte_off[l]) * 8
        a = table.anchors[l]
        n_seg = a.size + 1
        seg_start = np.empty(n_seg, dtype=np.int64)
        seg_start[0] = abs0
        seg_start[1:] = a + abs0
        seg_end = np.empty(n_seg, dtype=np.int64)
        seg_end[:-1] = seg_start[1:]
        seg_end[-1] = abs0 + int(table.lane_bits[l])
        quota = np.full(n_seg, stride, dtype=np.int64)
        quota[-1] = int(sizes[l]) - (n_seg - 1) * stride
        if quota[-1] < 1 or quota[-1] > stride:
            raise ValueError("lane anchor count does not match the data")
        starts.append(seg_start)
        ends.append(seg_end)
        quotas.append(quota)
        obases.append(out_off[l] + np.arange(n_seg, dtype=np.int64) * stride)
    return (
        np.concatenate(starts),
        np.concatenate(ends),
        np.concatenate(quotas),
        np.concatenate(obases),
    )


def decode_lanes(
    codes: bytes, code: HuffmanCode, table: LaneTable, n_values: int
) -> np.ndarray:
    """Decode ``n_values`` symbols from a multi-lane ``codes`` section.

    Parameters
    ----------
    codes:
        The concatenated byte-aligned lane streams.
    code:
        The shared canonical Huffman code (from the tree section).
    table:
        Lane/anchor table (from the same tree section).
    n_values:
        Total symbol count across all lanes.

    Raises
    ------
    ValueError
        If the lane table is inconsistent with ``codes``/``n_values``
        or any segment fails to land exactly on its end boundary
        (corrupt or truncated bitstream).
    """
    if n_values == 0:
        return np.empty(0, dtype=np.int64)
    dec = huffman.decoder_for(code)

    cur, seg_end, quota, obase = _segment_layout(table, n_values, len(codes))
    trace.count_many({
        "fastdecode.lanes": table.n_lanes,
        "fastdecode.segments": int(quota.size),
    })
    # Sort segments by quota descending: the active set at iteration t
    # is then always a prefix, so the loop works on views, not masks.
    order = np.argsort(-quota, kind="stable")
    cur = cur[order].copy()
    seg_end = seg_end[order]
    quota = quota[order]
    obase = obase[order]
    max_q = int(quota[0])
    # active[t] = segments still holding symbols at iteration t.
    ascending = quota[::-1]
    active = quota.size - np.searchsorted(
        ascending, np.arange(max_q, dtype=np.int64), side="right"
    )

    wide = dec.wide_tables()
    if wide is not None:
        out = _decode_missfree(
            codes, wide, cur, quota, obase, active, max_q, n_values
        )
    else:
        out = np.empty(n_values, dtype=np.int64)
        _decode_with_misses(codes, dec, cur, obase, active, out, max_q)
    if not np.array_equal(cur, seg_end):
        raise ValueError(
            "corrupt huffman lane stream: segment did not end on its "
            "anchor boundary"
        )
    if wide is not None:
        # The miss-free kernel returns packed (rank << 5 | length)
        # entries; resolve ranks to symbol values in one gather now
        # that the boundary check has proven every slot was written.
        out = wide[1][out >> 5]
    return out


def _decode_with_misses(
    codes: bytes,
    dec,
    cur: np.ndarray,
    obase: np.ndarray,
    active: np.ndarray,
    out: np.ndarray,
    max_q: int,
) -> None:
    """One-symbol-per-gather loop with the ``searchsorted`` long-code
    fallback (codes deeper than ``DEPTH_LIMIT_BITS``)."""
    tab_sym, tab_len, lj_codes, lj_syms, lj_lens = dec.kernel_tables()
    t_bits = dec.t_bits
    shift_base = 32 - t_bits
    t_mask = (1 << t_bits) - 1
    max_len = dec.max_len
    has_long = max_len > t_bits

    # A corrupt stream can walk a cursor past its segment (we only
    # validate boundaries after the loop), so pad the window matrix to
    # cover the worst-case overrun of max_q iterations x max_len bits.
    win = sliding_window_u32(codes, pad_bytes=3 * max_q + 4)
    for t in range(max_q):
        a = int(active[t])
        c = cur[:a]
        bi = c >> 3
        sh = c & 7
        w = (win[bi] >> (shift_base - sh)) & t_mask
        ln = tab_len[w]
        sym = tab_sym[w]
        if has_long and not ln.all():
            _resolve_long(
                win, bi, sh, ln, sym, max_len, lj_codes, lj_syms, lj_lens
            )
        out[obase[:a] + t] = sym
        c += ln


def _decode_missfree(
    codes: bytes,
    wide: tuple[np.ndarray, np.ndarray, int],
    cur: np.ndarray,
    quota: np.ndarray,
    obase: np.ndarray,
    active: np.ndarray,
    max_q: int,
    n_values: int,
) -> np.ndarray:
    """Multi-symbol kernel over a full-coverage table (no miss path).

    One 64-bit gather holds ``k = 57 // t_bits`` consecutive table
    windows for each segment: after the first lookup the next window
    starts ``len`` bits further into the *same* gathered word, so
    symbols 2..k cost only a shift plus one packed-table gather each.
    Returns the raw packed ``(rank << 5 | length)`` entries — the
    caller resolves ranks to symbol values in one pass after its
    boundary check.  Invalid windows on a corrupt stream hit a Kraft
    hole (length 0), freeze the cursor, and are caught by that same
    check, exactly like the miss-path kernel.

    When every segment holds exactly ``max_q`` symbols and the output
    slices line up (``n_values = n_segments * max_q``, the common case
    for power-of-two fields), the output is a ``(segments, max_q)``
    matrix that iteration ``t`` writes column ``t`` of.  Staging each
    group's ``k`` columns and storing them with a single sliced
    assignment touches every output cache line once per *group* rather
    than once per *symbol* — the scatter was the kernel's dominant
    cost, so the uniform path decodes substantially faster.
    """
    tab, _, t_bits = wide
    k = max(1, (64 - 7) // t_bits)
    t_mask = np.int64((1 << t_bits) - 1)
    len_mask = np.int32(31)
    hi = np.int64(64 - t_bits)
    # Pad for the worst-case overrun of a corrupt cursor: max_q
    # lookups of t_bits each, plus slack for the in-byte phase.
    win = sliding_window_u64(codes, pad_bytes=((t_bits * max_q + 7) >> 3) + 8)
    n_seg = quota.size
    if n_seg * max_q == n_values and int(quota[-1]) == max_q and np.array_equal(
        obase, np.arange(n_seg, dtype=np.int64) * max_q
    ):
        out = np.empty((n_seg, max_q), dtype=np.int32)
        for t0 in range(0, max_q, k):
            # The gather materializes the lazy byte-strided windows;
            # astype folds in the big-endian -> native conversion.
            base = win[cur >> 3].astype(np.int64)
            # Track the right-shift that exposes the next window rather
            # than the bits consumed: one fewer subtraction per symbol,
            # and the group's advance falls out as shift0 - shift.
            shift = hi - (cur & np.int64(7))
            shift0 = shift.copy()
            k_eff = min(k, max_q - t0)
            stage = np.empty((n_seg, k_eff), dtype=np.int32)
            for j in range(k_eff):
                p = tab[(base >> shift) & t_mask]
                stage[:, j] = p
                shift -= p & len_mask
            out[:, t0:t0 + k_eff] = stage
            cur += shift0 - shift
        return out.reshape(-1)
    out = np.empty(n_values, dtype=np.int64)
    slot = obase.copy()
    for t0 in range(0, max_q, k):
        a0 = int(active[t0])
        c = cur[:a0]
        base = win[c >> 3].astype(np.int64)
        shift = hi - (c & np.int64(7))
        shift0 = shift.copy()
        for t in range(t0, min(t0 + k, max_q)):
            a = int(active[t])
            p = tab[(base[:a] >> shift[:a]) & t_mask]
            out[slot[:a]] = p
            slot[:a] += 1
            shift[:a] -= p & len_mask
        cur[:a0] += shift0 - shift
    return out


def _resolve_long(
    win: np.ndarray,
    bi: np.ndarray,
    sh: np.ndarray,
    ln: np.ndarray,
    sym: np.ndarray,
    max_len: int,
    lj_codes: np.ndarray,
    lj_syms: np.ndarray,
    lj_lens: np.ndarray,
) -> None:
    """Resolve primary-table misses (codes longer than ``TABLE_BITS``)
    for the flagged segments, in place.

    Canonical codewords left-justified to ``max_len`` are strictly
    increasing, so the codeword at a bit position is the largest
    left-justified value not exceeding the next ``max_len`` bits —
    one ``searchsorted`` resolves every miss at once.  A window below
    the smallest codeword cannot happen on a valid stream and is
    rejected here; any other corruption advances the cursor off the
    codeword lattice and trips the segment-boundary check instead.
    """
    zi = np.nonzero(ln == 0)[0]
    wide = (win[bi[zi]] >> (32 - max_len - sh[zi])) & ((1 << max_len) - 1)
    pos = np.searchsorted(lj_codes, wide, side="right") - 1
    if (pos < 0).any():
        raise ValueError("corrupt huffman bitstream: no codeword matches")
    sym[zi] = lj_syms[pos]
    ln[zi] = lj_lens[pos]
