"""Integer side-channel codecs.

Two codecs for signed integer arrays:

* **zigzag varint** — compact, byte-oriented, sequential; used for the
  small symbol lists inside the serialized Huffman tree.
* **byte-plane** — fully vectorized: zigzag map, find the widest value,
  then store the values column-major as byte *planes* (all low bytes,
  then all second bytes, …).  High planes of small-magnitude data are
  almost entirely zero, which the final zlib stage eats for free.  This
  is the codec for the unpredictable-residual channel, which can be
  large (e.g. a Nyx-like field at eb = 1e-7 is >90 % unpredictable).
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "varint_encode",
    "varint_decode",
    "byteplane_encode",
    "byteplane_decode",
]

_HEADER = struct.Struct("<BQ")  # (n_planes, n_values)


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned: 0,-1,1,-2,2.. -> 0,1,2,3,4.."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(
        np.int64
    )


def varint_encode(values: np.ndarray) -> bytes:
    """LEB128-style varint encoding of signed integers (zigzag first)."""
    out = bytearray()
    for u in zigzag_encode(np.atleast_1d(values)).tolist():
        while True:
            byte = u & 0x7F
            u >>= 7
            if u:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def varint_decode(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` varints; raises ``ValueError`` on truncation."""
    values = np.empty(count, dtype=np.uint64)
    pos = 0
    n = len(data)
    for i in range(count):
        shift = 0
        acc = 0
        while True:
            if pos >= n:
                raise ValueError("truncated varint stream")
            byte = data[pos]
            pos += 1
            acc |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise ValueError("varint overflows 64 bits")
        values[i] = acc
    return zigzag_decode(values)


def byteplane_encode(values: np.ndarray) -> bytes:
    """Vectorized byte-plane encoding of a signed int64 array.

    Layout: 9-byte header ``(n_planes, n_values)`` followed by
    ``n_planes`` contiguous planes of ``n_values`` bytes each
    (little-endian plane order: plane 0 = least significant byte).
    """
    v = zigzag_encode(np.ravel(values))
    if v.size == 0:
        return _HEADER.pack(0, 0)
    max_val = int(v.max())
    n_planes = max(1, (max_val.bit_length() + 7) // 8)
    # Little-endian byte view of each value -> (n_values, 8); keep the
    # planes that carry information and transpose to plane-major order.
    planes = v.astype("<u8").view(np.uint8).reshape(-1, 8)[:, :n_planes]
    return _HEADER.pack(n_planes, v.size) + np.ascontiguousarray(planes.T).tobytes()


def byteplane_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`byteplane_encode`."""
    if len(data) < _HEADER.size:
        raise ValueError("byteplane stream shorter than its header")
    n_planes, n_values = _HEADER.unpack_from(data)
    if n_values == 0:
        return np.empty(0, dtype=np.int64)
    if n_planes < 1 or n_planes > 8:
        raise ValueError(f"invalid plane count {n_planes}")
    body = np.frombuffer(data, dtype=np.uint8, offset=_HEADER.size)
    if body.size != n_planes * n_values:
        raise ValueError(
            f"byteplane body has {body.size} bytes, expected {n_planes * n_values}"
        )
    full = np.zeros((n_values, 8), dtype=np.uint8)
    full[:, :n_planes] = body.reshape(n_planes, n_values).T
    return zigzag_decode(full.reshape(-1).view("<u8").astype(np.uint64))
