"""The SZ-1.4 compressor façade.

:class:`SZCompressor` runs the four-stage pipeline and returns an
:class:`SZFrame`: a set of *named byte sections* plus statistics.  The
sections are exactly the units the paper's three schemes transform:

========== =====================================================
``meta``   decode parameters (dims, dtype, bound, predictor, ...)
``tree``   lane/anchor table + serialized Huffman tree
           — Encr-Huffman's target (tree *and* lane table)
``codes``  Huffman lane bitstreams        ┐ with ``tree``:
``unpred`` unpredictable residual channel │ the "quantization
``coeffs`` regression coefficients        ┘ array" of Encr-Quant
``exact``  verbatim floats for sub-ulp-bound points
========== =====================================================

The frame is *pre-lossless*: schemes interpose AES on their sections
and then hand everything to :mod:`repro.sz.lossless`/the container.
Plain SZ (no encryption) is ``scheme="none"`` in
:class:`repro.core.pipeline.SecureCompressor`.

Every stage records its wall time into ``CompressionStats.stage_seconds``
— the same numbers drive the paper's Fig. 7 time breakdown and the
Tables III–V overhead studies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.core import trace
from repro.sz import fastdecode, huffman, ieee754, intcodec, predictors, quantizer
from repro.sz.bitstream import PackedBits, concat_streams
from repro.sz.quantizer import ErrorBound

__all__ = ["SZCompressor", "SZFrame", "CompressionStats", "SECTION_ORDER"]

#: Canonical section order inside a serialized stream.
SECTION_ORDER = ("meta", "tree", "codes", "unpred", "coeffs", "exact", "aux")

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPE_FROM_CODE = {v: k for k, v in _DTYPE_CODES.items()}

# meta layout: magic, version, dtype, predictor, flags, ndim,
# block_size, radius, eb, modal, n_codes_bits, n_unpredictable, then
# ndim dims.  The flags byte was historically "bound_mode" (0 = direct
# abs/rel, 1 = pw_rel); it is now a bitfield whose known bits are
# below — the two legacy values are unchanged, so default-path frames
# are byte-identical and old readers reject flagged frames cleanly.
_META = struct.Struct("<4sBBBBBBIdqQQ")
#: Grid stage ran on log2|x|; the aux section carries signs/zeros.
_FLAG_PW_REL = 0x01
#: Every Huffman code length fits ``huffman.DEPTH_LIMIT_BITS`` bits
#: (opt-in depth-limited canonical code; miss-free decode tables).
_FLAG_DEPTH_LIMITED = 0x02
_KNOWN_FLAGS = _FLAG_PW_REL | _FLAG_DEPTH_LIMITED
_META_MAGIC = b"SZfr"
#: v3 frames carry a multi-lane Huffman stream: the ``tree`` section is
#: a lane/anchor table followed by the serialized code table, and the
#: ``codes`` section concatenates byte-aligned lane bitstreams.  The
#: meta struct layout itself is unchanged since v2 (``n_codes_bits``
#: holds the total over all lanes), so old readers fail cleanly on the
#: version byte and new readers decode both.
_META_VERSION = 3
_META_MIN_VERSION = 2


@dataclass
class CompressionStats:
    """Per-compression statistics (drives Figs. 2–4 and EXPERIMENTS.md)."""

    n_elements: int
    eb_abs: float
    predictor: str
    radius: int
    unpredictable_count: int
    section_bytes: dict[str, int]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Points stored verbatim because no grid value meets the bound in
    #: the output dtype (nonzero only when eb is below the data's ulp).
    exact_count: int = 0

    @property
    def predictable_count(self) -> int:
        return self.n_elements - self.unpredictable_count

    @property
    def predictable_fraction(self) -> float:
        """Fraction of points the predictor captured (Fig. 2/3)."""
        if self.n_elements == 0:
            return 0.0
        return self.predictable_count / self.n_elements

    @property
    def quant_array_bytes(self) -> int:
        """Huffman tree + codewords = the paper's "quantization array"."""
        return self.section_bytes["tree"] + self.section_bytes["codes"]

    @property
    def tree_fraction_of_quant(self) -> float:
        """Serialized-tree share of the quantization array (Fig. 4)."""
        denom = self.quant_array_bytes
        return self.section_bytes["tree"] / denom if denom else 0.0


@dataclass
class SZFrame:
    """Named byte sections plus stats; input to the scheme layer."""

    sections: dict[str, bytes]
    stats: CompressionStats

    def __post_init__(self) -> None:
        missing = set(SECTION_ORDER) - set(self.sections)
        if missing:
            raise ValueError(f"frame is missing sections: {sorted(missing)}")

    @property
    def payload_bytes(self) -> int:
        """Total pre-lossless size of all sections."""
        return sum(len(v) for v in self.sections.values())


class SZCompressor:
    """Error-bounded lossy compressor (SZ-1.4 pipeline).

    Parameters
    ----------
    error_bound:
        Either an :class:`~repro.sz.quantizer.ErrorBound` or a float
        (interpreted as an absolute bound, the paper's mode).
    predictor:
        ``"auto"`` (sampling-based selection, SZ's behaviour) or one of
        ``"lorenzo"``, ``"mean"``, ``"regression"``.
    block_size:
        Regression block edge length (SZ-2 uses 6; we default to 8 for
        power-of-two reshapes).
    coverage:
        Target fraction of residuals the adaptive quantization radius
        must cover; the remainder becomes unpredictable data.
    huffman_lanes:
        Lane count for the interleaved Huffman stream.  ``"auto"``
        scales with the *coded* size (1 lane per ~32 KB of codes, up
        to 16) and falls back to the legacy v2 single-stream frame —
        zero format overhead — when the whole coded payload is under
        32 KB.  More lanes mean more independent entry points for the
        vectorized decode kernel at the cost of a few padding bytes
        per lane.  Setting an explicit count always writes the v3
        multi-lane frame.
    anchor_stride:
        Codewords per decode segment (``"auto"`` places an anchor per
        ~512 coded bytes, keeping the table at ~0.3 % of the codes
        section).  Smaller strides widen the decode kernel's vectors
        but grow the anchor table.
    encode_workers:
        Thread-pool width for packing v3 Huffman lanes.  Lanes are
        independent bitstreams, so packing them concurrently changes
        wall time only — the emitted frame is bit-identical for any
        worker count.  ``1`` (the default) packs serially; the knob
        composes with the process-level parallelism of
        :class:`repro.parallel.chunked.ChunkedCompressor`.
    depth_limit:
        Optional Huffman depth limit in ``1..huffman.DEPTH_LIMIT_BITS``
        (e.g. ``16``).  Frames built with it carry the depth-limit
        flag and promise every code length fits the limit, so the
        decode kernel's primary table covers every codeword and the
        miss path never runs.  Lengths come from package-merge, so
        they are optimal under the cap; the rate loss versus
        unrestricted Huffman is a few percent on deep-alphabet data
        (≈4 % measured at 16 bits) and zero when the cap does not
        bind.  When the alphabet is too
        large for the limit (``n_symbols > 2**depth_limit``) the frame
        silently falls back to the default unlimited layout.  ``None``
        (the default) keeps frames byte-identical to prior releases.

    Examples
    --------
    >>> import numpy as np
    >>> comp = SZCompressor(error_bound=1e-3)
    >>> field = np.linspace(0, 1, 4096, dtype=np.float32).reshape(16, 16, 16)
    >>> frame = comp.compress(field)
    >>> out = comp.decompress(frame)
    >>> bool(np.max(np.abs(out.astype(np.float64) - field)) <= 1e-3 * 1.0001)
    True
    """

    def __init__(
        self,
        error_bound: ErrorBound | float = 1e-3,
        *,
        predictor: str = "auto",
        block_size: int = 8,
        coverage: float = 0.995,
        huffman_lanes: int | str = "auto",
        anchor_stride: int | str = "auto",
        encode_workers: int = 1,
        depth_limit: int | None = None,
    ) -> None:
        if isinstance(error_bound, (int, float)):
            error_bound = ErrorBound(value=float(error_bound), mode="abs")
        self.error_bound = error_bound
        if predictor != "auto" and predictor not in predictors.PREDICTORS:
            raise ValueError(f"unknown predictor {predictor!r}")
        self.predictor = predictor
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        self.block_size = block_size
        self.coverage = coverage
        if huffman_lanes != "auto" and not 1 <= int(huffman_lanes) <= huffman.MAX_LANES:
            raise ValueError(f"huffman_lanes must be 'auto' or 1..{huffman.MAX_LANES}")
        self.huffman_lanes = huffman_lanes
        if anchor_stride != "auto" and int(anchor_stride) < 1:
            raise ValueError("anchor_stride must be 'auto' or positive")
        self.anchor_stride = anchor_stride
        if encode_workers < 1:
            raise ValueError("encode_workers must be positive")
        self.encode_workers = encode_workers
        if depth_limit is not None and not 1 <= depth_limit <= huffman.DEPTH_LIMIT_BITS:
            raise ValueError(
                f"depth_limit must be None or 1..{huffman.DEPTH_LIMIT_BITS}"
            )
        self.depth_limit = depth_limit

    def _lane_params(self, n_values: int, total_bits: int) -> tuple[int, int]:
        """Resolve the (possibly ``"auto"``) lane count and stride."""
        auto_lanes, auto_stride = huffman.choose_lane_params(n_values, total_bits)
        lanes = auto_lanes if self.huffman_lanes == "auto" else int(self.huffman_lanes)
        stride = auto_stride if self.anchor_stride == "auto" else int(self.anchor_stride)
        return max(1, min(lanes, n_values)), stride

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def compress(
        self, data: np.ndarray, tracer: trace.Tracer | None = None
    ) -> SZFrame:
        """Run predict → quantize → Huffman and return the frame.

        ``tracer``, when given, records a ``sz.compress`` span tree;
        stage times land in ``CompressionStats.stage_seconds`` either
        way.
        """
        data = np.ascontiguousarray(data)
        if data.dtype not in _DTYPE_CODES:
            raise TypeError(f"unsupported dtype {data.dtype}; use float32/float64")
        if data.ndim < 1 or data.ndim > 4:
            raise ValueError(f"expected 1-4 dimensional data, got ndim={data.ndim}")
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        stage_seconds: dict[str, float] = {}
        out_dtype = data.dtype
        tr = trace.tracer_for(tracer)

        with tr.span("sz.compress", bytes_in=data.nbytes,
                     mirror=stage_seconds) as sz_span:
            with tr.stage("quantize", bytes_in=data.nbytes):
                eb = self.error_bound.resolve(data)
                if self.error_bound.mode == "pw_rel":
                    work, aux_bytes = _pwrel_forward(data)
                else:
                    work, aux_bytes = data, b""
                q, exact_idx = quantizer.grid_quantize_verified(work, eb)
            data = work

            with tr.stage("predict") as sp:
                predictor_name, residuals, model, modal = self._predict(q)
                radius = quantizer.choose_radius(
                    residuals, coverage=self.coverage
                )
                codes, unpred_mask = quantizer.codes_from_residuals(
                    residuals, radius
                )
                sp.annotate(predictor=predictor_name, radius=radius)

            with tr.stage("huffman_build") as sp:
                flat_codes = np.ravel(codes)
                symbols, inverse, counts = np.unique(
                    flat_codes, return_inverse=True, return_counts=True
                )
                depth_limited = (
                    self.depth_limit is not None
                    and symbols.size <= (1 << self.depth_limit)
                )
                if depth_limited:
                    code = huffman.build_code(
                        symbols, counts, max_len=self.depth_limit
                    )
                    trace.count("huffman.depth_limited_frames")
                else:
                    code = huffman.build_code(symbols, counts)
                sp.annotate(
                    n_symbols=int(symbols.size), depth_limited=depth_limited
                )

            with tr.stage("huffman_encode") as sp:
                total_bits = int(
                    (counts * code.lengths.astype(np.int64)).sum()
                )
                auto_format = (self.huffman_lanes == "auto"
                               and self.anchor_stride == "auto")
                if auto_format and total_bits < huffman.LANE_FORMAT_MIN_BITS:
                    # Small coded payload: the lane/anchor table would
                    # be a visible overhead and the kernel gains
                    # nothing, so emit the legacy v2 single-stream
                    # frame (byte-identical to the pre-lane format, and
                    # still decoded by every reader).
                    packed = huffman.encode(flat_codes, code)
                    tree_bytes = huffman.serialize_tree(code)
                    codes_bytes = packed.data
                    n_code_bits = packed.n_bits
                    frame_version = 2
                    sp.annotate(frame_version=2, lanes=1)
                else:
                    n_lanes, stride = self._lane_params(
                        flat_codes.size, total_bits
                    )
                    enc = huffman.encode_lanes(
                        flat_codes, code, n_lanes, stride,
                        max_workers=self.encode_workers,
                    )
                    tree_bytes = huffman.serialize_lane_tree(code, enc.table)
                    codes_bytes = concat_streams(list(enc.lanes))
                    n_code_bits = enc.n_bits
                    frame_version = 3
                    sp.annotate(frame_version=3, lanes=n_lanes,
                                anchor_stride=stride)
                sp.bytes_out = len(codes_bytes)

            with tr.stage("side_channels") as sp:
                # Channel format per predictor: the Lorenzo chain is
                # inverted by cumulative sums, which need a residual at
                # *every* point, so Lorenzo stores the out-of-range
                # residual integers.  The mean/regression predictors
                # decode pointwise, so unpredictable points are stored
                # as verbatim floats (SZ-1.4's representation) and
                # scattered straight into the output.
                if predictor_name == "lorenzo":
                    unpred_bytes = intcodec.byteplane_encode(
                        residuals[unpred_mask]
                    )
                else:
                    unpred_bytes = ieee754.ieee754_encode(data[unpred_mask])
                coeff_bytes = (
                    ieee754.ieee754_encode(model.coefficients)
                    if model is not None
                    else b""
                )
                exact_bytes = _pack_exact(
                    exact_idx, np.ravel(data)[exact_idx]
                )
                sp.bytes_out = len(unpred_bytes) + len(coeff_bytes) + len(
                    exact_bytes
                )
            sz_span.bytes_out = (
                len(tree_bytes) + len(codes_bytes) + len(unpred_bytes)
                + len(coeff_bytes) + len(exact_bytes) + len(aux_bytes)
            )

        meta = self._pack_meta(
            data, out_dtype, eb, predictor_name, radius, modal, n_code_bits,
            int(unpred_mask.sum()), frame_version, depth_limited,
        )
        sections = {
            "meta": meta,
            "tree": tree_bytes,
            "codes": codes_bytes,
            "unpred": unpred_bytes,
            "coeffs": coeff_bytes,
            "exact": exact_bytes,
            "aux": aux_bytes,
        }
        stats = CompressionStats(
            n_elements=int(data.size),
            eb_abs=eb,
            predictor=predictor_name,
            radius=radius,
            unpredictable_count=int(unpred_mask.sum()),
            section_bytes={k: len(v) for k, v in sections.items()},
            stage_seconds=stage_seconds,
            exact_count=int(exact_idx.size),
        )
        return SZFrame(sections=sections, stats=stats)

    def _predict(
        self, q: np.ndarray
    ) -> tuple[str, np.ndarray, predictors.RegressionModel | None, int]:
        """Select a predictor (if auto) and compute its residuals."""
        name = self.predictor
        if name == "auto":
            probe_radius = quantizer.choose_radius(
                predictors.lorenzo_residuals(q), coverage=self.coverage
            )
            name = predictors.select_predictor(q, probe_radius, self.block_size)
        model: predictors.RegressionModel | None = None
        modal = 0
        if name == "lorenzo":
            residuals = predictors.lorenzo_residuals(q)
        elif name == "mean":
            modal = predictors.modal_value(q)
            residuals = predictors.mean_residuals(q, modal)
        elif name == "regression":
            model = predictors.regression_fit(q, self.block_size)
            residuals = q - predictors.regression_predict(model)
        else:  # pragma: no cover - constructor validates
            raise ValueError(f"unknown predictor {name!r}")
        return name, residuals, model, modal

    def _pack_meta(
        self,
        data: np.ndarray,
        out_dtype: np.dtype,
        eb: float,
        predictor_name: str,
        radius: int,
        modal: int,
        n_code_bits: int,
        n_unpred: int,
        version: int = _META_VERSION,
        depth_limited: bool = False,
    ) -> bytes:
        flags = (_FLAG_PW_REL if self.error_bound.mode == "pw_rel" else 0) | (
            _FLAG_DEPTH_LIMITED if depth_limited else 0
        )
        head = _META.pack(
            _META_MAGIC,
            version,
            _DTYPE_CODES[out_dtype],
            predictors.PREDICTORS.index(predictor_name),
            flags,
            data.ndim,
            self.block_size,
            radius,
            eb,
            modal,
            n_code_bits,
            n_unpred,
        )
        dims = struct.pack(f"<{data.ndim}Q", *data.shape)
        return head + dims

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------

    @staticmethod
    def parse_meta(meta: bytes) -> dict:
        """Decode the ``meta`` section into a plain dict."""
        if len(meta) < _META.size:
            raise ValueError("meta section shorter than its fixed header")
        (
            magic,
            version,
            dtype_code,
            predictor_id,
            bound_mode,
            ndim,
            block_size,
            radius,
            eb,
            modal,
            n_bits,
            n_unpred,
        ) = _META.unpack_from(meta)
        if magic != _META_MAGIC:
            raise ValueError("bad frame magic; not an SZ frame")
        if not _META_MIN_VERSION <= version <= _META_VERSION:
            raise ValueError(f"unsupported frame version {version}")
        if dtype_code not in _DTYPE_FROM_CODE:
            raise ValueError(f"unknown dtype code {dtype_code}")
        if predictor_id >= len(predictors.PREDICTORS):
            raise ValueError(f"unknown predictor id {predictor_id}")
        expect = _META.size + 8 * ndim
        if len(meta) != expect:
            raise ValueError(f"meta section is {len(meta)} bytes, expected {expect}")
        if bound_mode & ~_KNOWN_FLAGS:
            raise ValueError(f"unknown meta flags 0x{bound_mode:02x}")
        shape = struct.unpack_from(f"<{ndim}Q", meta, _META.size)
        return {
            "version": version,
            "dtype": _DTYPE_FROM_CODE[dtype_code],
            "pw_rel": bool(bound_mode & _FLAG_PW_REL),
            "depth_limited": bool(bound_mode & _FLAG_DEPTH_LIMITED),
            "predictor": predictors.PREDICTORS[predictor_id],
            "block_size": block_size,
            "radius": int(radius),
            "eb": eb,
            "modal": modal,
            "n_bits": n_bits,
            "n_unpredictable": n_unpred,
            "shape": tuple(int(s) for s in shape),
        }

    def decompress(self, frame: SZFrame,
                   stage_seconds: dict[str, float] | None = None,
                   tracer: trace.Tracer | None = None) -> np.ndarray:
        """Invert :meth:`compress`; returns the error-bounded field.

        ``stage_seconds``, when given, receives per-stage wall times
        (``huffman_decode`` and ``reconstruct``) for the bandwidth and
        breakdown experiments.  ``tracer`` additionally records a
        ``sz.decompress`` span tree.
        """
        times = stage_seconds if stage_seconds is not None else {}
        tr = trace.tracer_for(tracer)
        info = self.parse_meta(frame.sections["meta"])
        shape = info["shape"]
        n_elements = int(np.prod(shape))

        with tr.span("sz.decompress", mirror=times,
                     frame_version=info["version"],
                     predictor=info["predictor"]) as dz_span:
            with tr.stage("huffman_decode",
                          bytes_in=len(frame.sections["codes"])) as sp:
                if info["version"] >= 3:
                    code, lane_table = huffman.deserialize_lane_tree(
                        frame.sections["tree"], n_elements
                    )
                    if int(lane_table.lane_bits.sum()) != info["n_bits"]:
                        raise ValueError(
                            "lane table bit count does not match meta"
                        )
                    _check_depth_flag(info, code)
                    flat_codes = fastdecode.decode_lanes(
                        frame.sections["codes"], code, lane_table, n_elements
                    )
                    sp.annotate(lanes=int(lane_table.lane_bits.size))
                else:
                    # v2: single-stream codes + bare tree (legacy
                    # scalar decode).
                    code = huffman.deserialize_tree(frame.sections["tree"])
                    _check_depth_flag(info, code)
                    packed = PackedBits(
                        data=frame.sections["codes"], n_bits=info["n_bits"]
                    )
                    flat_codes = huffman.decode(packed, code, n_elements)
                    sp.annotate(lanes=1)

            with tr.stage("reconstruct"):
                work_dtype = (np.dtype(np.float64) if info["pw_rel"]
                              else info["dtype"])
                name = info["predictor"]
                n_unpred = info["n_unpredictable"]
                if name == "lorenzo":
                    unpred_res = intcodec.byteplane_decode(
                        frame.sections["unpred"]
                    )
                    verbatim = None
                else:
                    unpred_res = np.zeros(n_unpred, dtype=np.int64)  # placeholder
                    verbatim = ieee754.ieee754_decode(
                        frame.sections["unpred"]
                    )
                    if verbatim.dtype != work_dtype:
                        verbatim = verbatim.astype(work_dtype)
                if (verbatim.size if verbatim is not None
                        else unpred_res.size) != n_unpred:
                    raise ValueError(
                        "unpredictable channel does not match meta"
                    )
                residuals = quantizer.residuals_from_codes(
                    flat_codes, info["radius"], unpred_res
                ).reshape(shape)

                if name == "lorenzo":
                    q = predictors.lorenzo_reconstruct(residuals)
                elif name == "mean":
                    q = predictors.mean_reconstruct(residuals, info["modal"])
                else:  # regression
                    coefs = ieee754.ieee754_decode(frame.sections["coeffs"])
                    model = predictors.RegressionModel(
                        shape=shape,
                        block_size=info["block_size"],
                        coefficients=coefs.reshape(-1, len(shape) + 1),
                    )
                    q = residuals + predictors.regression_predict(model)
                out = quantizer.grid_reconstruct(q, info["eb"], work_dtype)
                if verbatim is not None and n_unpred:
                    out.reshape(-1)[np.ravel(flat_codes == 0)] = verbatim
            dz_span.bytes_out = out.nbytes
        exact_idx, exact_vals = _unpack_exact(frame.sections["exact"], work_dtype)
        if exact_idx.size:
            if int(exact_idx.max()) >= out.size:
                raise ValueError("exact channel index out of range")
            out.reshape(-1)[exact_idx] = exact_vals
        if info["pw_rel"]:
            out = _pwrel_inverse(out, frame.sections["aux"], info["dtype"])
        return out


def _check_depth_flag(info: dict, code: huffman.HuffmanCode) -> None:
    """Reject a frame whose depth-limited flag lies about its tree.

    The flag is a format-level promise that every code length fits
    ``huffman.DEPTH_LIMIT_BITS`` bits; a deeper tree under the flag
    means the meta or tree section was tampered with or corrupted.
    """
    if info["depth_limited"] and int(code.lengths.max()) > huffman.DEPTH_LIMIT_BITS:
        raise ValueError(
            "depth-limited frame carries a code deeper than "
            f"{huffman.DEPTH_LIMIT_BITS} bits"
        )


def _pwrel_forward(data: np.ndarray) -> tuple[np.ndarray, bytes]:
    """Map values to log2-magnitude space for point-wise-relative mode.

    Returns the float64 working array (``log2 |x|``; zeros receive a
    placeholder below the smallest real value so they stay cheap to
    code) and the packed ``aux`` section recording signs and exact-zero
    positions.
    """
    x = np.ravel(np.asarray(data, dtype=np.float64))
    zeros = x == 0.0
    signs = np.signbit(np.asarray(data)).reshape(-1)
    y = np.empty_like(x)
    nonzero = ~zeros
    y[nonzero] = np.log2(np.abs(x[nonzero]))
    filler = (y[nonzero].min() - 4.0) if nonzero.any() else 0.0
    y[zeros] = filler
    aux = (
        struct.pack("<Q", x.size)
        + np.packbits(signs.astype(np.uint8)).tobytes()
        + np.packbits(zeros.astype(np.uint8)).tobytes()
    )
    return y.reshape(np.asarray(data).shape), aux


def _pwrel_inverse(y: np.ndarray, aux: bytes, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`_pwrel_forward`: ``x = ±2^y``, zeros restored."""
    if len(aux) < 8:
        raise ValueError("pw_rel aux section shorter than its header")
    (n,) = struct.unpack_from("<Q", aux)
    if y.size != n:
        raise ValueError("pw_rel aux section does not match the data size")
    plane = (n + 7) // 8
    if len(aux) != 8 + 2 * plane:
        raise ValueError("truncated pw_rel aux section")
    signs = np.unpackbits(
        np.frombuffer(aux, dtype=np.uint8, offset=8, count=plane)
    )[:n].astype(bool)
    zeros = np.unpackbits(
        np.frombuffer(aux, dtype=np.uint8, offset=8 + plane, count=plane)
    )[:n].astype(bool)
    mag = np.exp2(np.ravel(y).astype(np.float64))
    out = np.where(signs, -mag, mag)
    out[zeros] = 0.0
    return out.reshape(y.shape).astype(dtype)


def _pack_exact(indices: np.ndarray, values: np.ndarray) -> bytes:
    """Serialize the verbatim-value channel: delta-coded sorted flat
    indices (byte planes) followed by the raw values."""
    indices = np.asarray(indices, dtype=np.int64)
    deltas = np.diff(indices, prepend=np.int64(0))
    pos = intcodec.byteplane_encode(deltas)
    return struct.pack("<Q", len(pos)) + pos + np.ascontiguousarray(values).tobytes()


def _unpack_exact(data: bytes, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`_pack_exact`."""
    if len(data) < 8:
        raise ValueError("exact channel shorter than its header")
    (pos_len,) = struct.unpack_from("<Q", data)
    if len(data) < 8 + pos_len:
        raise ValueError("truncated exact channel")
    deltas = intcodec.byteplane_decode(data[8 : 8 + pos_len])
    indices = np.cumsum(deltas).astype(np.int64)
    values = np.frombuffer(data, dtype=dtype, offset=8 + pos_len)
    if values.size != indices.size:
        raise ValueError("exact channel indices and values do not align")
    return indices, values
