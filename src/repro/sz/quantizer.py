"""Linear-scale quantization on the error-bound grid.

SZ's quantization maps each prediction residual to an integer code so
that reconstruction lands within the user's error bound.  We use the
*grid* formulation (DESIGN.md §5): a value ``x`` is first snapped to
the integer grid ``q = rint(x / (2·eb))``, which already guarantees
``|x - q·2eb| <= eb``.  Prediction and residual computation then happen
exactly, in integers, and are fully vectorizable; the reconstruction is
``q·2eb`` at every point, so the absolute error bound holds for
predictable *and* unpredictable data alike.

The code layout matches SZ: code ``0`` is the *unpredictable* sentinel
(the paper's Fig. 2/3 gray points); predictable residual ``r`` with
``|r| < R`` maps to code ``r + R`` in ``1 .. 2R-1``.  ``2R`` is the
number of quantization intervals (SZ's ``quantization_intervals``),
chosen adaptively from a residual sample like SZ's interval optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import trace

__all__ = [
    "ErrorBound",
    "grid_quantize",
    "grid_quantize_verified",
    "grid_reconstruct",
    "codes_from_residuals",
    "residuals_from_codes",
    "choose_radius",
    "MAX_RADIUS",
    "MIN_RADIUS",
]

#: Largest quantization radius (2*MAX_RADIUS intervals = SZ's 65536 cap).
MAX_RADIUS = 1 << 15
#: Smallest radius considered by the adaptive interval optimizer.
MIN_RADIUS = 1 << 4

#: Grid indices beyond this magnitude risk int64 overflow in the
#: Lorenzo stencil (an alternating sum of up to 8 grid values).
_GRID_LIMIT = float(1 << 58)


@dataclass(frozen=True)
class ErrorBound:
    """A user error-bound specification.

    Parameters
    ----------
    value:
        The bound.  Must be positive.
    mode:
        ``"abs"`` — absolute bound (the paper's mode); ``"rel"`` —
        value-range-relative: the effective absolute bound is
        ``value * (max - min)`` of the dataset; ``"pw_rel"`` —
        point-wise relative: ``|x' - x| <= value * |x|`` at every
        point, implemented by the compressor through a logarithmic
        pre-transform (zero values are restored exactly).
    """

    value: float
    mode: str = "abs"

    def __post_init__(self) -> None:
        if self.mode not in ("abs", "rel", "pw_rel"):
            raise ValueError(f"unknown error-bound mode {self.mode!r}")
        if not (self.value > 0.0) or not math.isfinite(self.value):
            raise ValueError(f"error bound must be positive and finite, got {self.value}")

    def resolve(self, data: np.ndarray) -> float:
        """The effective absolute bound for ``data``.

        For ``pw_rel`` this is the absolute bound *in log2 space*:
        compressing ``log2|x|`` with bound ``log2(1 + r)`` guarantees
        ``|x' - x| <= r * |x|`` after the exponential inverse.
        """
        if self.mode == "abs":
            return self.value
        if self.mode == "pw_rel":
            # Reserve a half-ulp of the output dtype: the final cast of
            # 2^y' can add that much relative error on top of the
            # log-space bound, and the user-facing guarantee is on the
            # *stored* values.
            margin = 2.0**-23 if np.asarray(data).dtype == np.float32 else 2.0**-52
            effective = (1.0 + self.value) * (1.0 - margin)
            if effective <= 1.0:
                raise ValueError(
                    f"pw_rel bound {self.value} is below the output "
                    "dtype's relative resolution"
                )
            return math.log2(effective)
        lo = float(np.min(data))
        hi = float(np.max(data))
        value_range = hi - lo
        if value_range == 0.0:
            # A constant field: any positive bound works; pick the raw
            # value so behaviour is continuous as range -> 0.
            return self.value
        return self.value * value_range


def grid_quantize(data: np.ndarray, eb: float) -> np.ndarray:
    """Snap ``data`` onto the ``2·eb`` grid, returning int64 indices.

    Raises
    ------
    ValueError
        If any grid index would overflow the exact int64/float64 range
        (bound too tight for the data's magnitude).
    """
    scaled = np.asarray(data, dtype=np.float64) / (2.0 * eb)
    if not np.isfinite(scaled).all():
        raise ValueError("data contains non-finite values")
    if np.abs(scaled).max(initial=0.0) >= _GRID_LIMIT:
        raise ValueError(
            "error bound too tight for the data magnitude: grid index "
            "would overflow; loosen the bound or rescale the data"
        )
    return np.rint(scaled).astype(np.int64)


def grid_quantize_verified(data: np.ndarray, eb: float) -> tuple[np.ndarray, np.ndarray]:
    """Grid-quantize and *verify* the bound in the output dtype.

    Casting the float64 reconstruction ``q·2eb`` to float32 adds up to
    half a ulp, which can push a point marginally past the bound when
    ``eb`` is near the data's ulp.  This encoder-side pass checks every
    point against its actual round-tripped value and nudges the grid
    index by ±1 where that recovers the bound — the same
    decompressed-value verification SZ performs during encoding.

    Returns the repaired grid and the flat indices of points where *no*
    neighbouring grid index satisfies the bound (only possible when
    ``eb`` is below the representable resolution of the data).  The
    compressor stores those points verbatim in its ``exact`` channel,
    exactly like SZ's verbatim unpredictable floats, so the user-facing
    bound holds unconditionally.
    """
    q = grid_quantize(data, eb)
    dtype = data.dtype
    if dtype == np.float32:
        q = _collapse_phantom_precision(data, q, eb)
    recon = grid_reconstruct(q, eb, dtype)
    err = np.abs(recon.astype(np.float64) - np.asarray(data, dtype=np.float64))
    bad = err > eb
    if not bad.any():
        return q, np.empty(0, dtype=np.int64)
    trace.count("quantize.repair_passes", 1)
    idx = np.nonzero(np.ravel(bad))[0]
    flat_q = np.ravel(q).copy()
    flat_x = np.ravel(np.asarray(data, dtype=np.float64))
    best_q = flat_q[idx]
    best_err = np.ravel(err)[idx]
    for delta in (-1, 1):
        cand = flat_q[idx] + delta
        cand_err = np.abs(
            grid_reconstruct(cand, eb, dtype).astype(np.float64) - flat_x[idx]
        )
        better = cand_err < best_err
        best_q = np.where(better, cand, best_q)
        best_err = np.where(better, cand_err, best_err)
    flat_q[idx] = best_q
    still_bad = idx[best_err > eb]
    return flat_q.reshape(q.shape), still_bad


def _collapse_phantom_precision(data: np.ndarray, q: np.ndarray,
                                eb: float) -> np.ndarray:
    """Remove sub-ulp "phantom" grid precision from float32 data.

    When ``eb`` is far below a value's float32 ulp, *every* grid index
    in a wide window casts back to the identical float32 — yet
    ``rint(x/2eb)`` picks one whose low bits mirror the float's own
    representation, feeding the entropy coder bits that carry no
    information (real SZ never pays them: it stores such points as
    verbatim 4-byte floats).  For each point whose quarter-ulp exceeds
    the bound we substitute the *lowest* admissible grid index.  The
    resulting staircase tracks the data at its own representable
    resolution, so downstream residuals match the true information
    content, while the reconstruction still casts to the exact float32
    (error 0 at those points).
    """
    x = np.asarray(data, dtype=np.float64)
    tol = 0.25 * np.spacing(np.abs(np.asarray(data, dtype=np.float32))).astype(
        np.float64
    )
    mask = tol > eb
    if not mask.any():
        return q
    q = q.copy()
    q[mask] = np.ceil((x[mask] - tol[mask]) / (2.0 * eb)).astype(np.int64)
    return q


def grid_reconstruct(q: np.ndarray, eb: float, dtype: np.dtype) -> np.ndarray:
    """Map grid indices back to values (``q·2eb``) in the original dtype."""
    return (np.asarray(q, dtype=np.float64) * (2.0 * eb)).astype(dtype)


def choose_radius(residuals: np.ndarray, *, coverage: float = 0.995,
                  sample_limit: int = 65536) -> int:
    """Adaptively pick the quantization radius (SZ's interval optimizer).

    Chooses the smallest power-of-two radius ``R`` in
    [:data:`MIN_RADIUS`, :data:`MAX_RADIUS`] such that at least
    ``coverage`` of a residual sample satisfies ``|r| < R``.  Residuals
    outside the final radius become unpredictable data.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    flat = np.ravel(residuals)
    if flat.size == 0:
        return MIN_RADIUS
    if flat.size > sample_limit:
        stride = flat.size // sample_limit
        flat = flat[::stride]
    mags = np.abs(flat)
    radius = MIN_RADIUS
    while radius < MAX_RADIUS:
        if (mags < radius).mean() >= coverage:
            return radius
        radius <<= 1
    return MAX_RADIUS


def codes_from_residuals(residuals: np.ndarray, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Map residuals to quantization codes.

    Returns
    -------
    codes:
        int64 array; ``0`` marks unpredictable points, predictable
        residual ``r`` becomes ``r + radius`` (1 .. 2·radius - 1).
    unpredictable:
        Boolean mask of the sentinel positions (paper Fig. 3's gray
        points).
    """
    r = np.asarray(residuals, dtype=np.int64)
    unpredictable = np.abs(r) >= radius
    codes = np.where(unpredictable, np.int64(0), r + np.int64(radius))
    return codes, unpredictable


def residuals_from_codes(codes: np.ndarray, radius: int,
                         unpredictable_residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`codes_from_residuals`.

    ``unpredictable_residuals`` supplies, in C order of the sentinel
    positions, the residual values that did not fit the radius.
    """
    codes = np.asarray(codes, dtype=np.int64)
    sentinel = codes == 0
    n_unpred = int(sentinel.sum())
    if unpredictable_residuals.size != n_unpred:
        raise ValueError(
            f"stream has {n_unpred} unpredictable points but "
            f"{unpredictable_residuals.size} stored residuals"
        )
    residuals = codes - np.int64(radius)
    if n_unpred:
        residuals[sentinel] = unpredictable_residuals
    return residuals
