"""SZ's predictors, operating exactly on the quantized integer grid.

Three predictor families, matching the paper's description of SZ
(Sec. II-A): the classical **Lorenzo** predictor, the
**mean-integrated Lorenzo** variant (approximating clustered data by a
fixed value), and per-block **linear regression**.

Working on the grid (int64 indices ``q``) rather than on decompressed
floats is what makes everything vectorizable *and* exact:

* The N-d Lorenzo residual is precisely the composition of first
  differences along every axis (with zero ghost layers), so
  ``residuals = diff_axis0(diff_axis1(...))`` and the inverse is the
  composition of cumulative sums — each a single NumPy call per axis.
* The mean predictor is a constant (the modal grid value), so residual
  and reconstruction are elementwise.
* Regression predicts from transmitted per-block plane coefficients;
  both sides round the same float32 coefficients through the same
  float64 expression, so encoder and decoder agree bit-for-bit.

Every predictor returns plain residual arrays; the quantizer decides
which residuals are unpredictable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import trace
from repro.sz import blocks as blk

__all__ = [
    "PREDICTORS",
    "lorenzo_residuals",
    "lorenzo_reconstruct",
    "modal_value",
    "mean_residuals",
    "mean_reconstruct",
    "RegressionModel",
    "regression_fit",
    "regression_predict",
    "estimate_code_entropy",
    "select_predictor",
]

#: Registry of predictor names (wire ids are their indices).
PREDICTORS = ("lorenzo", "mean", "regression")


# ---------------------------------------------------------------------------
# Lorenzo
# ---------------------------------------------------------------------------

def lorenzo_residuals(q: np.ndarray) -> np.ndarray:
    """N-dimensional Lorenzo residuals of a grid-index array.

    For 3-D this equals ``q[i,j,k] - (q[i-1,j,k] + q[i,j-1,k] + q[i,j,k-1]
    - q[i-1,j-1,k] - q[i-1,j,k-1] - q[i,j-1,k-1] + q[i-1,j-1,k-1])`` with
    zero ghost values outside the domain — the classic 7-point Lorenzo
    stencil, computed as a separable first difference per axis.
    """
    r = np.asarray(q, dtype=np.int64)
    for axis in range(r.ndim):
        r = np.diff(r, axis=axis, prepend=np.int64(0))
    return r


def lorenzo_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_residuals` (cumulative sum per axis)."""
    q = np.asarray(residuals, dtype=np.int64)
    for axis in range(q.ndim):
        q = np.cumsum(q, axis=axis, dtype=np.int64)
    return q


# ---------------------------------------------------------------------------
# Mean-integrated (modal constant) predictor
# ---------------------------------------------------------------------------

def modal_value(q: np.ndarray, *, sample_limit: int = 65536) -> int:
    """The most frequent grid value in (a sample of) ``q``.

    SZ's mean-integrated Lorenzo replaces prediction with a fixed value
    when most of the data clusters tightly around it; on the grid, that
    fixed value is simply the mode.
    """
    flat = np.ravel(q)
    if flat.size == 0:
        return 0
    if flat.size > sample_limit:
        flat = flat[:: flat.size // sample_limit]
    values, counts = np.unique(flat, return_counts=True)
    return int(values[np.argmax(counts)])


def mean_residuals(q: np.ndarray, mode: int) -> np.ndarray:
    """Residuals against the constant modal predictor."""
    return np.asarray(q, dtype=np.int64) - np.int64(mode)


def mean_reconstruct(residuals: np.ndarray, mode: int) -> np.ndarray:
    """Invert :func:`mean_residuals`."""
    return np.asarray(residuals, dtype=np.int64) + np.int64(mode)


# ---------------------------------------------------------------------------
# Per-block linear regression
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegressionModel:
    """Per-block plane-fit coefficients for a blocked domain.

    ``coefficients`` has shape ``(n_blocks, ndim + 1)`` (intercept plus
    one slope per axis) in float32 — the representation transmitted in
    the stream ("compress regression coefficients", Algorithm 1).
    """

    shape: tuple[int, ...]
    block_size: int
    coefficients: np.ndarray

    def __post_init__(self) -> None:
        expected = blk.n_blocks(self.shape, self.block_size)
        if self.coefficients.shape != (expected, len(self.shape) + 1):
            raise ValueError(
                f"expected ({expected}, {len(self.shape) + 1}) coefficients, "
                f"got {self.coefficients.shape}"
            )


def _design_pinv(block_shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Design matrix X and its pseudo-inverse for one block shape.

    X rows are ``(1, i0, i1, ...)`` over the block's local coordinates;
    the fit for a block with values y is ``coef = pinv @ y``.
    """
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in block_shape],
                        indexing="ij")
    cols = [np.ones(int(np.prod(block_shape)))] + [g.ravel() for g in grids]
    x = np.stack(cols, axis=1)
    pinv = np.linalg.pinv(x)
    return x, pinv


def regression_fit(q: np.ndarray, block_size: int) -> RegressionModel:
    """Fit a plane per block (vectorized over all blocks at once)."""
    q = np.asarray(q, dtype=np.float64)
    padded = blk.pad_to_blocks(q, block_size)
    blocked = blk.block_view(padded, block_size)  # (n_blocks, bs^ndim)
    _, pinv = _design_pinv((block_size,) * q.ndim)
    coefs = blocked @ pinv.T  # (n_blocks, ndim+1)
    return RegressionModel(
        shape=q.shape,
        block_size=block_size,
        coefficients=coefs.astype(np.float32),
    )


def regression_predict(model: RegressionModel) -> np.ndarray:
    """Predicted grid values (int64, rounded) for the full domain.

    Uses the float32 coefficients exactly as transmitted, so encoder
    and decoder compute identical predictions.
    """
    ndim = len(model.shape)
    x, _ = _design_pinv((model.block_size,) * ndim)
    coefs = model.coefficients.astype(np.float64)
    pred_blocks = coefs @ x.T  # (n_blocks, bs^ndim)
    padded_shape = blk.padded_shape(model.shape, model.block_size)
    pred = blk.unblock_view(pred_blocks, padded_shape, model.block_size)
    pred = blk.crop(pred, model.shape)
    return np.rint(pred).astype(np.int64)


# ---------------------------------------------------------------------------
# Sampling-based predictor selection
# ---------------------------------------------------------------------------

def estimate_code_entropy(residuals: np.ndarray, radius: int,
                          *, sample_limit: int = 65536,
                          unpredictable_penalty_bits: float = 40.0) -> float:
    """Estimated bits/point of the quantization codes for ``residuals``.

    Shannon entropy of the clipped-residual histogram on a sample, with
    an additional charge per unpredictable point (sentinel code plus
    the byte-plane side channel) — the same cost model SZ's sampling
    step approximates by trial compression.
    """
    flat = np.ravel(residuals)
    if flat.size == 0:
        return 0.0
    if flat.size > sample_limit:
        flat = flat[:: flat.size // sample_limit]
    trace.count("predict.sample_points", flat.size)
    unpred = np.abs(flat) >= radius
    frac_unpred = float(unpred.mean())
    clipped = flat[~unpred]
    if clipped.size == 0:
        return unpredictable_penalty_bits
    _, counts = np.unique(clipped, return_counts=True)
    p = counts / clipped.size
    entropy = float(-(p * np.log2(p)).sum())
    return (1.0 - frac_unpred) * entropy + frac_unpred * unpredictable_penalty_bits


#: Estimated cost of one unpredictable point, in bits, per predictor.
#: Lorenzo must ship the raw out-of-range residual (byte planes);
#: mean/regression ship the verbatim float32, whose redundant
#: sign/exponent/high-mantissa planes the final zlib stage compresses.
UNPREDICTABLE_COST_BITS = {"lorenzo": 38.0, "mean": 22.0, "regression": 22.0}


def select_predictor(q: np.ndarray, radius: int, block_size: int,
                     candidates: tuple[str, ...] = PREDICTORS) -> str:
    """Pick the cheapest predictor by sampled entropy estimate.

    Mirrors SZ's "sampling approach to pick the best predictor among
    classical Lorenzo, mean-integrated Lorenzo and linear regression"
    (paper Sec. II-A).  Ties go to the earlier candidate, i.e. Lorenzo.
    """
    costs: dict[str, float] = {}
    for name in candidates:
        if name == "lorenzo":
            res = lorenzo_residuals(q)
        elif name == "mean":
            res = mean_residuals(q, modal_value(q))
        elif name == "regression":
            res = np.asarray(q, dtype=np.int64) - regression_predict(
                regression_fit(q, block_size)
            )
        else:
            raise ValueError(f"unknown predictor {name!r}")
        costs[name] = estimate_code_entropy(
            res, radius,
            unpredictable_penalty_bits=UNPREDICTABLE_COST_BITS[name],
        )
    return min(costs, key=costs.__getitem__)
