"""A from-scratch, NumPy-vectorized reimplementation of the SZ-1.4 pipeline.

SZ compresses a floating-point field in four steps (paper Fig. 1):

1. **data prediction** — Lorenzo / mean-integrated Lorenzo / per-block
   linear regression, selected by sampling,
2. **linear-scale quantization** — the prediction residual is mapped to
   an integer code; residuals that do not fit the quantization range
   are *unpredictable* and take a sentinel code,
3. **variable-length encoding** — Huffman coding of the code array
   (tree + codewords = the "quantization array" the paper's Encr-Quant
   encrypts; the serialized tree alone is what Encr-Huffman encrypts),
4. **lossless compression** — a zlib pass over everything.

Vectorization strategy (see DESIGN.md §5): values are first snapped to
the error-bound grid ``q = rint(x / (2·eb))``; prediction then operates
on exact integers, the Lorenzo residual becomes a composed first
difference (``np.diff`` per axis) and its inverse a composed
``np.cumsum`` — both fully vectorized, with reconstruction error ≤ eb
guaranteed at every point.

Public surface
--------------
:class:`~repro.sz.compressor.SZCompressor` is the façade; it produces
an :class:`~repro.sz.compressor.SZFrame` of named byte sections so the
encryption schemes in :mod:`repro.core` can interpose AES at exactly
the stage the paper's Figure 1 dashed lines indicate.
"""

from repro.sz.compressor import CompressionStats, SZCompressor, SZFrame
from repro.sz.quantizer import ErrorBound

__all__ = ["SZCompressor", "SZFrame", "CompressionStats", "ErrorBound"]
