"""The final lossless stage (paper step 4: "a pass of a lossless
compressor such as GZIP"; Algorithm 1 says "Apply Zlib compression").

A thin, explicit wrapper around :mod:`zlib` so the schemes can reason
about — and the time-breakdown instrumentation can attribute — exactly
one lossless boundary.  The Encr-Quant results in the paper hinge on
what AES-randomized bytes do to *this* stage.
"""

from __future__ import annotations

import zlib

from repro.core import trace

__all__ = ["compress", "decompress", "DEFAULT_LEVEL"]

#: zlib's own default trade-off; SZ uses the Zlib default as well.
DEFAULT_LEVEL = 6


def compress(data: bytes, level: int = DEFAULT_LEVEL) -> bytes:
    """zlib-compress ``data`` (level 0..9)."""
    if not 0 <= level <= 9:
        raise ValueError(f"zlib level must be 0..9, got {level}")
    out = zlib.compress(data, level)
    trace.count_many({
        "zlib.deflate_in_bytes": len(data),
        "zlib.deflate_out_bytes": len(out),
    })
    return out


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`; raises ``ValueError`` on bad input."""
    try:
        out = zlib.decompress(data)
    except zlib.error as exc:
        raise ValueError(f"corrupt lossless stream: {exc}") from exc
    trace.count_many({
        "zlib.inflate_in_bytes": len(data),
        "zlib.inflate_out_bytes": len(out),
    })
    return out
