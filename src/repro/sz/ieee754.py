"""IEEE-754 binary-representation analysis for float arrays.

Algorithm 1's "Compress the unpredictable array using IEEE 754 binary
representation analysis" / "Compress regression coefficients" step.
The idea (SZ-1.4's float handling): given a required absolute precision
``eb``, every mantissa bit whose place value is guaranteed below the
precision threshold carries no information the consumer may rely on —
zero it out.  The masked words are then stored as byte planes, where
the cleared trailing mantissa bytes become long zero runs that the
final zlib stage removes.

The truncation guarantee: for a value with unbiased exponent ``e``,
keeping mantissa bits down to place value ``2^(e-K)`` bounds the error
by ``2^(e-K)`` < ``eb`` when ``K > e - log2(eb)``.
"""

from __future__ import annotations

import math
import struct

import numpy as np

__all__ = ["float_truncate", "ieee754_encode", "ieee754_decode"]

_MANTISSA_BITS = 23
_EXP_BIAS = 127
_HEADER = struct.Struct("<QB")  # (n_values, itemsize)


def float_truncate(values: np.ndarray, eb: float) -> np.ndarray:
    """Zero out mantissa bits of float32 values below precision ``eb``.

    Returns a float32 array with ``|out - values| < eb`` elementwise.
    ``eb <= 0`` (or non-finite) means lossless: the input is returned
    unchanged.
    """
    v = np.ascontiguousarray(values, dtype=np.float32)
    if not (eb > 0.0) or not math.isfinite(eb):
        return v.copy()
    bits = v.view(np.uint32)
    exps = ((bits >> np.uint32(_MANTISSA_BITS)) & np.uint32(0xFF)).astype(
        np.int64
    ) - _EXP_BIAS
    # Keep mantissa bits with place value >= 2^floor(log2(eb)); the sum
    # of all dropped bits is then < 2^floor(log2(eb)) <= eb.
    eb_exp = math.floor(math.log2(eb))
    drop = np.clip(_MANTISSA_BITS - (exps - eb_exp), 0, _MANTISSA_BITS)
    mask = (np.uint32(0xFFFFFFFF) << drop.astype(np.uint32)).astype(np.uint32)
    # Values entirely below eb collapse to (signed) zero.
    below = exps - eb_exp < 0
    out_bits = np.where(below, bits & np.uint32(0x80000000), bits & mask)
    return out_bits.astype(np.uint32).view(np.float32)


def ieee754_encode(values: np.ndarray, eb: float = 0.0) -> bytes:
    """Byte-plane-pack a float array (float32 or float64).

    For float32 input with ``eb > 0``, mantissa bits below the
    precision threshold are zeroed first (see :func:`float_truncate`);
    float64 input is always stored losslessly.  Byte-plane transposition
    groups each byte position across all values, turning the highly
    redundant sign/exponent/high-mantissa bytes of scientific data into
    long runs for the final zlib stage — this is the verbatim
    "unpredictable array" representation of SZ-1.4.
    """
    v = np.ravel(values)
    if v.dtype == np.float32:
        v = float_truncate(v, eb)
        words = v.view(np.uint32).astype("<u4")
    elif v.dtype == np.float64:
        words = np.ascontiguousarray(v).view(np.uint64).astype("<u8")
    else:
        raise TypeError(f"unsupported dtype {v.dtype}; use float32/float64")
    itemsize = words.dtype.itemsize
    planes = words.view(np.uint8).reshape(-1, itemsize)
    return _HEADER.pack(v.size, itemsize) + np.ascontiguousarray(planes.T).tobytes()


def ieee754_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`ieee754_encode`; returns float32/float64."""
    if len(data) < _HEADER.size:
        raise ValueError("ieee754 stream shorter than its header")
    n_values, itemsize = _HEADER.unpack_from(data)
    if itemsize not in (4, 8):
        raise ValueError(f"invalid ieee754 itemsize {itemsize}")
    body = np.frombuffer(data, dtype=np.uint8, offset=_HEADER.size)
    if body.size != itemsize * n_values:
        raise ValueError(
            f"ieee754 body has {body.size} bytes, expected {itemsize * n_values}"
        )
    raw = np.ascontiguousarray(body.reshape(itemsize, n_values).T).reshape(-1)
    if itemsize == 4:
        return raw.view("<u4").astype(np.uint32).view(np.float32)
    return raw.view("<u8").astype(np.uint64).view(np.float64)
