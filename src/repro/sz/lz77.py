"""LZ77 match stage with canonical-Huffman entropy coding (``lz77h``).

The float pipeline's zlib pass treats its input as opaque bytes; this
module is the repo-grown alternative for *repetitive byte payloads*
(logs, checkpoint shards, gradient deltas): a NumPy-vectorized
hash-chain matcher emits a (literal, match) token stream that the
existing canonical Huffman codec (:mod:`repro.sz.huffman`) entropy
codes.  Running the LZ stage compression-side — before any encryption
— is load-bearing, not a convenience: block-cipher output is
incompressible (Klinc et al.), so the archive layer composes
``lz77h`` in front of AES exactly like the float path composes SZ.

Matcher design (everything vectorized, no per-byte Python):

* 4-byte keys at every position via :func:`sliding_window_u32`, hashed
  with a Knuth multiplicative hash into ``2**HASH_BITS`` buckets.
* A stable argsort by bucket groups equal hashes with positions
  ascending; candidate ``j``-back neighbours inside a bucket are the
  classic hash *chain*, scanned to depth :data:`CHAIN_DEPTH` with one
  vectorized pass per depth.
* Match lengths extend 4 bytes per pass over the shrinking active set
  (u32 block compare + a 3-byte tail refinement), capped at
  :data:`MAX_MATCH`.
* The greedy parse walks match *positions* (``searchsorted`` jumps
  whole literal runs), so the only Python loop is over emitted tokens.

Token model (deflate-flavoured, buckets + raw extra bits):

* literals are symbols ``0..255``;
* a match of length ``L`` becomes symbol ``256 + bucket(L - 4)`` in
  the token stream plus ``bucket - 1`` extra bits, where ``bucket`` is
  the bit length of ``L - 4``;
* each match also emits ``bucket(D - 1)`` into a second Huffman
  stream (distances) with its own extra bits.

The wire frame (magic ``LZ7H``, byte layout in docs/FORMAT.md §11) is
fully self-describing and decodes fail-closed: every malformed input
raises ``ValueError``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core import trace
from repro.sz import huffman
from repro.sz.bitstream import (
    PackedBits,
    pack_codes,
    sliding_window_u32,
    sliding_window_u64,
)

__all__ = [
    "compress",
    "decompress",
    "tokenize",
    "MIN_MATCH",
    "MAX_MATCH",
    "WINDOW",
    "CHAIN_DEPTH",
    "HASH_BITS",
]

#: Shortest match worth a token (the 4-byte hash key length).
MIN_MATCH = 4
#: Longest match one token encodes.
MAX_MATCH = 1 << 10
#: Farthest back a match may reach.
WINDOW = 1 << 16
#: Hash-chain candidates examined per position.
CHAIN_DEPTH = 8
#: Hash-bucket count exponent.
HASH_BITS = 15

_MAGIC = b"LZ7H"
_VERSION = 1

#: Frame header: magic, version, reserved, token/dist tree byte
#: lengths, raw length, token/match counts, three stream bit lengths.
_LZ_HEADER = struct.Struct("<4sBBIIQQQQQQ")

#: ``bucket(v)`` is the bit length of ``v`` — the index of the highest
#: set bit plus one, 0 for v == 0 — computed exactly with an integer
#: searchsorted over powers of two (no float log2).
_POW2 = (np.int64(1) << np.arange(63, dtype=np.int64)).astype(np.int64)

#: Widest legal buckets given the caps above.
_LEN_BUCKETS = int(MAX_MATCH - MIN_MATCH).bit_length() + 1
_DIST_BUCKETS = int(WINDOW - 1).bit_length() + 1


def _bucket(values: np.ndarray) -> np.ndarray:
    """Vectorized exact bit length of non-negative int64 values."""
    return np.searchsorted(_POW2, values, side="right").astype(np.int64)


#: Light-pair extension cap: pairs whose distance is not *heavy* (see
#: :func:`_best_matches`) stop extending here, bounding the block loop
#: to ``_LIGHT_MAX / 4`` passes.  Long matches live at heavy distances
#: (runs, periodic payloads), which the O(n) scan handles exactly.
_LIGHT_MAX = 128
#: A distance is heavy when at least this many candidate pairs share
#: it; at most ``_HEAVY_DISTANCES`` (by pair count) get the O(n) scan.
_HEAVY_MIN = 256
_HEAVY_DISTANCES = 32


def _extend_matches(
    data: bytes,
    u32: np.ndarray,
    pos: np.ndarray,
    cand: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Match length for each (pos, cand) pair sharing a 4-byte prefix.

    Extends in 4-byte blocks over the shrinking set of still-growing
    pairs, then refines the final 0..3 bytes; every step is a gather +
    compare over the active subset only.
    """
    n = len(data)
    raw = np.frombuffer(data, dtype=np.uint8)
    length = np.full(pos.size, MIN_MATCH, dtype=np.int64)
    limit = np.minimum(np.int64(cap), n - pos)
    active = np.nonzero(length < limit)[0]
    while active.size:
        p = pos[active] + length[active]
        c = cand[active] + length[active]
        fits = length[active] + 4 <= limit[active]
        grew = fits & (u32[p] == u32[c])
        length[active[grew]] += 4
        ending = active[~grew]
        if ending.size:
            keep = np.ones(ending.size, dtype=bool)
            for _ in range(3):
                le = length[ending]
                inb = (le < limit[ending]) & keep
                pe = pos[ending] + le
                ce = cand[ending] + le
                # Out-of-range gathers are masked out by `inb`; clip
                # keeps the index legal without a branch.
                ok = raw[np.minimum(pe, n - 1)] == raw[np.minimum(ce, n - 1)]
                keep = inb & ok
                length[ending[keep]] += 1
                if not keep.any():
                    break
        active = active[grew]
        active = active[length[active] < limit[active]]
    return length


def _mismatch_positions(raw: np.ndarray, d: int) -> np.ndarray:
    """Sorted indices ``j`` with ``raw[j + d] != raw[j]``, plus an
    end-of-overlap sentinel — the per-distance table behind
    :func:`_heavy_lengths`."""
    mism = np.flatnonzero(raw[d:] != raw[:-d])
    return np.append(mism, np.int64(raw.size - d))


def _heavy_lengths(mism: np.ndarray, d: int, p: np.ndarray) -> np.ndarray:
    """Exact match lengths for every pair at one shared distance ``d``.

    A pair starting at ``p`` matches up to the first mismatch at or
    after ``p - d`` — one ``searchsorted`` into the precomputed
    mismatch positions.  O(n) once per distance (amortized by the
    cache in :func:`_best_matches`), independent of pair count or
    match length, which is what makes runs and periodic payloads cheap.
    """
    first = mism[np.searchsorted(mism, p - d)]
    return np.minimum(first - (p - d), np.int64(MAX_MATCH))


def _best_matches(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Per-position best (length, distance), 0 length where no match."""
    n = len(data)
    best_len = np.zeros(n, dtype=np.int64)
    best_dist = np.zeros(n, dtype=np.int64)
    if n < 2 * MIN_MATCH:
        return best_len, best_dist
    raw = np.frombuffer(data, dtype=np.uint8)
    u32 = sliding_window_u32(data, pad_bytes=8)
    n_pos = n - MIN_MATCH + 1
    keys = u32[:n_pos].astype(np.uint64)
    h = ((keys * np.uint64(2654435761)) & np.uint64(0xFFFFFFFF)) >> np.uint64(
        32 - HASH_BITS
    )
    order = np.argsort(h, kind="stable")  # ties keep position order
    sh = h[order]
    best_score = np.zeros(n, dtype=np.int64)
    mism_cache: dict[int, np.ndarray] = {}
    for depth in range(1, CHAIN_DEPTH + 1):
        if depth >= n_pos:
            break
        # The depth-j chain neighbour inside a hash bucket; the stable
        # sort keeps positions ascending, so cand < pos by construction.
        same = sh[depth:] == sh[:-depth]
        p = order[depth:]
        c = order[:-depth]
        valid = same & (p - c <= WINDOW) & (u32[p] == u32[c])
        if not valid.any():
            continue
        pv = p[valid]
        cv = c[valid]
        dist = pv - cv

        # Distances shared by many pairs (runs, periodic data) get an
        # exact O(n) scan; the long tail keeps the block-extension
        # loop, bounded per pair by the light cap.
        counts = np.bincount(dist, minlength=WINDOW + 1)
        heavy = np.flatnonzero(counts >= _HEAVY_MIN)
        if heavy.size > _HEAVY_DISTANCES:
            heavy = heavy[
                np.argsort(counts[heavy], kind="stable")[-_HEAVY_DISTANCES:]
            ]
        lengths = np.empty(pv.size, dtype=np.int64)
        heavy_lut = np.zeros(WINDOW + 1, dtype=bool)
        heavy_lut[heavy] = True
        light = np.nonzero(~heavy_lut[dist])[0]
        if light.size:
            lengths[light] = _extend_matches(
                data, u32, pv[light], cv[light], _LIGHT_MAX
            )
        for d in heavy.tolist():
            if d not in mism_cache:
                mism_cache[d] = _mismatch_positions(raw, d)
            sel = np.nonzero(dist == d)[0]
            lengths[sel] = _heavy_lengths(mism_cache[d], d, pv[sel])

        # Longest match wins, smallest distance on length ties — both
        # packed into one score.  Positions are unique within a depth,
        # so a gather/compare/assign replaces any scatter reduction.
        score = (lengths << np.int64(17)) + (np.int64(WINDOW) - dist)
        upd = score > best_score[pv]
        best_score[pv[upd]] = score[upd]
    found = best_score > 0
    best_len[found] = best_score[found] >> np.int64(17)
    best_dist[found] = np.int64(WINDOW) - (
        best_score[found] & np.int64((1 << 17) - 1)
    )
    return best_len, best_dist


def tokenize(
    data: bytes,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Greedy-parse ``data`` into ``(tokens, lengths, distances, n_lit)``.

    ``tokens`` is the in-order symbol stream (literals ``0..255``,
    match tokens ``256 + length-bucket``); ``lengths``/``distances``
    are per-match, in stream order.  Exposed for the differential and
    fuzz suites.
    """
    n = len(data)
    arr = np.frombuffer(data, dtype=np.uint8)
    best_len, best_dist = _best_matches(data)
    mpos = np.nonzero(best_len >= MIN_MATCH)[0]
    parts: list[np.ndarray] = []
    lens: list[int] = []
    dists: list[int] = []
    i = 0
    while i < n:
        nxt = np.searchsorted(mpos, i)
        if nxt == mpos.size:
            parts.append(arr[i:n].astype(np.int64))
            i = n
            break
        j = int(mpos[nxt])
        if j > i:
            parts.append(arr[i:j].astype(np.int64))
        length = int(best_len[j])
        lens.append(length)
        dists.append(int(best_dist[j]))
        # Placeholder; rewritten to 256 + bucket once all matches are
        # known (bucketing is one vectorized pass below).
        parts.append(np.full(1, -len(lens), dtype=np.int64))
        i = j + length
    tokens = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    lengths = np.asarray(lens, dtype=np.int64)
    distances = np.asarray(dists, dtype=np.int64)
    is_match = tokens < 0
    tokens[is_match] = 256 + _bucket(lengths - MIN_MATCH)
    n_lit = int(tokens.size - lengths.size)
    return tokens, lengths, distances, n_lit


def _extras(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(width, extra-bits value) for each bucketed value."""
    k = _bucket(values)
    widths = np.maximum(k - 1, 0)
    base = np.where(k > 0, np.int64(1) << np.maximum(k - 1, 0), 0)
    return widths, values - base


def compress(data: bytes) -> bytes:
    """Compress ``data`` into one self-describing ``LZ7H`` frame."""
    tokens, lengths, distances, n_lit = tokenize(data)
    n_matches = lengths.size
    trace.count_many({
        "lz.literals": n_lit,
        "lz.matches": n_matches,
        "lz.match_bytes": int(lengths.sum()),
    })

    tok_syms, tok_freqs = np.unique(tokens, return_counts=True)
    tok_code = huffman.build_code(tok_syms, tok_freqs)
    tok_stream = huffman.encode(tokens, tok_code)
    tok_tree = huffman.serialize_tree(tok_code)

    dist_bucket = _bucket(distances - 1)
    dst_syms, dst_freqs = np.unique(dist_bucket, return_counts=True)
    dst_code = huffman.build_code(dst_syms, dst_freqs)
    dst_stream = huffman.encode(dist_bucket, dst_code)
    dst_tree = huffman.serialize_tree(dst_code)

    lw, lv = _extras(lengths - MIN_MATCH)
    dw, dv = _extras(distances - 1)
    widths = np.column_stack([lw, dw]).ravel()
    extras = np.column_stack([lv, dv]).ravel()
    present = widths > 0
    extra_stream = pack_codes(extras[present], widths[present])

    header = _LZ_HEADER.pack(
        _MAGIC, _VERSION, 0,
        len(tok_tree), len(dst_tree),
        len(data), tokens.size, n_matches,
        tok_stream.n_bits, dst_stream.n_bits, extra_stream.n_bits,
    )
    return (
        header + tok_tree + dst_tree
        + tok_stream.data + dst_stream.data + extra_stream.data
    )


def _gather_extras(stream: bytes, widths: np.ndarray) -> np.ndarray:
    """Read consecutive ``widths[i]``-bit values from a bit stream.

    Zero-width entries occupy no bits and read as 0, so callers can
    pass the interleaved (length, distance) width sequence directly.
    """
    ends = np.cumsum(widths)
    starts = ends - widths
    win = sliding_window_u64(stream, pad_bytes=8)
    shift = np.minimum(64 - widths - (starts & 7), 63)
    mask = (np.int64(1) << widths) - 1
    vals = win[starts >> 3].astype(np.int64)
    return (vals >> shift) & mask


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`; raises ``ValueError`` on any
    malformed frame (fail-closed: no partial output)."""
    if len(blob) < _LZ_HEADER.size:
        raise ValueError("LZ7H frame shorter than its header")
    (magic, version, reserved, tok_tree_len, dst_tree_len, raw_len,
     n_tokens, n_matches, tok_bits, dst_bits, extra_bits) = (
        _LZ_HEADER.unpack_from(blob)
    )
    if magic != _MAGIC:
        raise ValueError("bad magic; not an LZ7H frame")
    if version != _VERSION or reserved != 0:
        raise ValueError(f"unsupported LZ7H version {version}")
    if n_matches > n_tokens:
        raise ValueError("more matches than tokens")
    # Every codeword is at least one bit, which bounds the symbol
    # counts by the stream sizes before anything is allocated.
    if n_tokens > tok_bits and n_tokens:
        raise ValueError("token count exceeds token stream capacity")
    if n_matches > dst_bits and n_matches:
        raise ValueError("match count exceeds distance stream capacity")

    offset = _LZ_HEADER.size
    sizes = [
        tok_tree_len, dst_tree_len,
        (tok_bits + 7) // 8, (dst_bits + 7) // 8, (extra_bits + 7) // 8,
    ]
    if offset + sum(sizes) != len(blob):
        raise ValueError("LZ7H frame length does not match its header")
    pieces = []
    for size in sizes:
        pieces.append(blob[offset:offset + size])
        offset += size
    tok_tree, dst_tree, tok_bytes, dst_bytes, extra_bytes = pieces

    if n_tokens == 0:
        if raw_len != 0 or n_matches != 0:
            raise ValueError("empty token stream cannot produce output")
        return b""

    tok_code = huffman.deserialize_tree(tok_tree)
    tokens = huffman.decode(
        PackedBits(data=tok_bytes, n_bits=tok_bits), tok_code, n_tokens
    )
    if tokens.size and (
        int(tokens.min()) < 0
        or int(tokens.max()) >= 256 + _LEN_BUCKETS
    ):
        raise ValueError("token symbol out of range")
    is_match = tokens >= 256
    if int(is_match.sum()) != n_matches:
        raise ValueError("match count disagrees with the token stream")

    if n_matches:
        dst_code = huffman.deserialize_tree(dst_tree)
        dist_bucket = huffman.decode(
            PackedBits(data=dst_bytes, n_bits=dst_bits), dst_code, n_matches
        )
        if int(dist_bucket.min()) < 0 or int(dist_bucket.max()) >= _DIST_BUCKETS:
            raise ValueError("distance bucket out of range")
        len_bucket = tokens[is_match] - 256
        lw = np.maximum(len_bucket - 1, 0)
        dw = np.maximum(dist_bucket - 1, 0)
        widths = np.column_stack([lw, dw]).ravel()
        if int(widths.sum()) != extra_bits:
            raise ValueError("extra-bits stream length mismatch")
        extras = _gather_extras(extra_bytes, widths)
        lv = extras[0::2] + np.where(
            len_bucket > 0, np.int64(1) << np.maximum(len_bucket - 1, 0), 0
        )
        dv = extras[1::2] + np.where(
            dist_bucket > 0, np.int64(1) << np.maximum(dist_bucket - 1, 0), 0
        )
        lengths = lv + MIN_MATCH
        distances = dv + 1
        if int(lengths.max()) > MAX_MATCH or int(distances.max()) > WINDOW:
            raise ValueError("match length or distance exceeds format caps")
    else:
        lengths = np.empty(0, dtype=np.int64)
        distances = np.empty(0, dtype=np.int64)
        if extra_bits:
            raise ValueError("extra bits present without matches")

    out_sizes = np.ones(n_tokens, dtype=np.int64)
    out_sizes[is_match] = lengths
    ends = np.cumsum(out_sizes)
    if int(ends[-1]) != raw_len:
        raise ValueError("decoded size disagrees with the frame header")
    starts = ends - out_sizes

    out = np.zeros(raw_len, dtype=np.uint8)
    out[starts[~is_match]] = tokens[~is_match].astype(np.uint8)
    mstarts = starts[is_match]
    if n_matches and int((distances > mstarts).sum()):
        raise ValueError("match distance reaches before the output start")
    for p, length, dist in zip(
        mstarts.tolist(), lengths.tolist(), distances.tolist()
    ):
        src = p - dist
        if dist >= length:
            out[p:p + length] = out[src:src + length]
        else:
            # Overlapping copy: replicate the period, doubling the
            # filled span each pass.
            out[p:p + dist] = out[src:p]
            filled = dist
            while filled < length:
                take = min(filled, length - filled)
                out[p + filled:p + filled + take] = out[p:p + take]
                filled += take
    return out.tobytes()
