"""Vectorized bit packing for variable-length (Huffman) codes.

Packing writes all codewords into one flat bit array in ``max_len``
vectorized passes (one per bit position) instead of a per-symbol Python
loop — the classic mask-and-scatter idiom.  Unpacking back into
codewords is done by the table-driven decoder in :mod:`repro.sz.huffman`;
this module only provides the raw bit-level containers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PackedBits", "pack_codes", "unpack_bits"]


@dataclass(frozen=True)
class PackedBits:
    """A bit string stored as bytes plus its exact bit length."""

    data: bytes
    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if len(self.data) != (self.n_bits + 7) // 8:
            raise ValueError(
                f"{len(self.data)} bytes cannot hold exactly {self.n_bits} bits"
            )


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> PackedBits:
    """Concatenate variable-length codewords MSB-first into a bit string.

    Parameters
    ----------
    codes:
        Codeword values; codeword ``i`` occupies the low ``lengths[i]``
        bits of ``codes[i]``.
    lengths:
        Bit length of each codeword (1..64).

    Notes
    -----
    Runs in ``O(max_len)`` vectorized passes: pass ``b`` scatters bit
    ``b`` of every codeword long enough to have one.  Peak memory is
    one byte per output *bit* (the unpacked bit plane), which is the
    price of full vectorization and is fine at the scales this library
    targets.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return PackedBits(data=b"", n_bits=0)
    if lengths.min() < 1 or lengths.max() > 64:
        raise ValueError("codeword lengths must be in 1..64")

    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    starts = ends - lengths

    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    for b in range(max_len):
        mask = lengths > b
        # Bit b (from the MSB side) of each surviving codeword.
        shift = (lengths[mask] - 1 - b).astype(np.uint64)
        bits[starts[mask] + b] = ((codes[mask] >> shift) & np.uint64(1)).astype(
            np.uint8
        )
    return PackedBits(data=np.packbits(bits).tobytes(), n_bits=total_bits)


def unpack_bits(packed: PackedBits) -> np.ndarray:
    """Expand a :class:`PackedBits` back into a 0/1 ``uint8`` array."""
    if packed.n_bits == 0:
        return np.empty(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(packed.data, dtype=np.uint8))
    return bits[: packed.n_bits]
