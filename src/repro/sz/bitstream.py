"""Vectorized bit packing for variable-length (Huffman) codes.

Packing writes all codewords into one flat bit array in ``max_len``
vectorized passes (one per bit position) instead of a per-symbol Python
loop — the classic mask-and-scatter idiom.  Unpacking back into
codewords is done by the table-driven decoder in :mod:`repro.sz.huffman`;
this module only provides the raw bit-level containers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PackedBits",
    "pack_codes",
    "unpack_bits",
    "concat_streams",
    "lane_byte_lengths",
    "sliding_window_u32",
]


@dataclass(frozen=True)
class PackedBits:
    """A bit string stored as bytes plus its exact bit length."""

    data: bytes
    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if len(self.data) != (self.n_bits + 7) // 8:
            raise ValueError(
                f"{len(self.data)} bytes cannot hold exactly {self.n_bits} bits"
            )


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> PackedBits:
    """Concatenate variable-length codewords MSB-first into a bit string.

    Parameters
    ----------
    codes:
        Codeword values; codeword ``i`` occupies the low ``lengths[i]``
        bits of ``codes[i]``.
    lengths:
        Bit length of each codeword (1..64).

    Notes
    -----
    Runs in ``O(max_len)`` vectorized passes: pass ``b`` scatters bit
    ``b`` of every codeword long enough to have one.  Peak memory is
    one byte per output *bit* (the unpacked bit plane), which is the
    price of full vectorization and is fine at the scales this library
    targets.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return PackedBits(data=b"", n_bits=0)
    if lengths.min() < 1 or lengths.max() > 64:
        raise ValueError("codeword lengths must be in 1..64")

    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    starts = ends - lengths

    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    for b in range(max_len):
        mask = lengths > b
        # Bit b (from the MSB side) of each surviving codeword.
        shift = (lengths[mask] - 1 - b).astype(np.uint64)
        bits[starts[mask] + b] = ((codes[mask] >> shift) & np.uint64(1)).astype(
            np.uint8
        )
    return PackedBits(data=np.packbits(bits).tobytes(), n_bits=total_bits)


def unpack_bits(packed: PackedBits) -> np.ndarray:
    """Expand a :class:`PackedBits` back into a 0/1 ``uint8`` array."""
    if packed.n_bits == 0:
        return np.empty(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(packed.data, dtype=np.uint8))
    return bits[: packed.n_bits]


def lane_byte_lengths(lane_bits: np.ndarray) -> np.ndarray:
    """Byte length of each lane stream (every lane is byte-padded)."""
    bits = np.asarray(lane_bits, dtype=np.int64)
    if bits.size and int(bits.min()) < 0:
        raise ValueError("lane bit lengths must be non-negative")
    return (bits + 7) >> 3


def concat_streams(lanes: list[PackedBits]) -> bytes:
    """Concatenate byte-padded lane streams into one ``codes`` section.

    Each :class:`PackedBits` is already padded to a whole byte, so lane
    boundaries stay byte-aligned and a decoder can locate lane ``i`` at
    ``sum(lane_byte_lengths(bits[:i]))`` without a stored offset.
    """
    return b"".join(lane.data for lane in lanes)


def sliding_window_u32(data: bytes, pad_bytes: int = 0) -> np.ndarray:
    """Big-endian 32-bit window at every byte offset of ``data``.

    ``out[i]`` holds bytes ``i..i+3`` MSB-first (missing bytes read as
    zero), so the ``w`` bits starting at absolute bit position ``p``
    are ``(out[p >> 3] >> (32 - w - (p & 7))) & ((1 << w) - 1)`` for
    any ``w + (p & 7) <= 32`` — one gather per decoded window, which is
    what makes the lane decode kernel a pure NumPy loop.

    ``pad_bytes`` extends the matrix with that many zero-filled windows
    past the end of ``data`` so callers whose cursors may legitimately
    be probed out of range (e.g. bounds-checked-after-the-fact decode
    loops) never index outside the buffer.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    padded = np.zeros(raw.size + pad_bytes + 3, dtype=np.uint32)
    padded[: raw.size] = raw
    return (
        (padded[:-3] << np.uint32(24))
        | (padded[1:-2] << np.uint32(16))
        | (padded[2:-1] << np.uint32(8))
        | padded[3:]
    )
