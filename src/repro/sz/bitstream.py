"""Vectorized bit packing for variable-length (Huffman) codes.

Packing accumulates codewords into a flat array of 64-bit *words* (a
vectorized shift register): every codeword lands in at most two
adjacent words, so the whole stream assembles in a handful of NumPy
passes over 8-bytes-per-64-bits buffers — roughly 8x less peak memory
than the byte-per-bit scatter it replaced (kept as
:func:`pack_codes_ref`, the differential-test oracle).  Unpacking back
into codewords is done by the table-driven decoder in
:mod:`repro.sz.huffman`; this module only provides the raw bit-level
containers.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.core import trace

__all__ = [
    "PackedBits",
    "pack_codes",
    "pack_codes_ref",
    "unpack_bits",
    "concat_streams",
    "lane_byte_lengths",
    "sliding_window_u32",
    "sliding_window_u64",
]


@dataclass(frozen=True)
class PackedBits:
    """A bit string stored as bytes plus its exact bit length."""

    data: bytes
    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if len(self.data) != (self.n_bits + 7) // 8:
            raise ValueError(
                f"{len(self.data)} bytes cannot hold exactly {self.n_bits} bits"
            )


def _check_code_table(codes: np.ndarray, lengths: np.ndarray) -> None:
    """Shared input validation for both packers.

    A zero-length codeword on a present symbol would silently drop the
    symbol from the stream (the decoder would then desynchronize on a
    corrupt bitstream far from the cause), so it is rejected here with
    an explicit message rather than left to produce garbage.
    """
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return
    if lengths.min() < 1:
        raise ValueError(
            "zero-length codeword: every present symbol needs a length in "
            "1..64 (a 0-length entry would emit no bits and corrupt the "
            "stream)"
        )
    if lengths.max() > 64:
        raise ValueError("codeword lengths must be in 1..64")


#: Codewords per word-packing pass.  Bounds the kernel's transient
#: arrays (~10 int64 temporaries per codeword) to a few hundred KB so
#: peak memory stays dominated by the output words, not the scratch.
_PACK_CHUNK = 1 << 15

#: Below this many codewords pair fusion costs more in extra passes
#: than it saves in kernel elements, so ``pack_codes`` skips it.
_FUSE_MIN = 1 << 12


def _fuse_pairs(
    codes: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge adjacent codeword pairs into single wider codewords.

    Bitstream concatenation is associative, so packing the fused pair
    ``(codes[0] << lengths[1]) | codes[1]`` with length ``lengths[0] +
    lengths[1]`` emits exactly the same bits as packing the two
    codewords separately — but halves the element count every
    downstream kernel pass sees.  Requires codewords already masked to
    their lengths (stray high bits would leak into the partner's slot).
    A trailing unpaired codeword is carried through unchanged.
    """
    m = codes.size >> 1
    c2 = codes[: 2 * m].reshape(m, 2)
    l2 = lengths[: 2 * m].reshape(m, 2)
    fused = (c2[:, 0] << l2[:, 1].astype(np.uint64)) | c2[:, 1]
    flen = l2[:, 0] + l2[:, 1]
    if codes.size & 1:
        fused = np.concatenate([fused, codes[-1:]])
        flen = np.concatenate([flen, lengths[-1:]])
    return fused, flen


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> PackedBits:
    """Concatenate variable-length codewords MSB-first into a bit string.

    Parameters
    ----------
    codes:
        Codeword values; codeword ``i`` occupies the low ``lengths[i]``
        bits of ``codes[i]``.
    lengths:
        Bit length of each codeword (1..64).

    Notes
    -----
    Word-packed kernel: each codeword is shifted into place inside the
    one or two ``uint64`` output words its bit range touches, and the
    per-word contributions combine with a segmented sum (bit ranges are
    disjoint, so integer addition *is* bitwise OR here).  Work and peak
    memory are ``O(n)`` in the codeword count with small constants —
    the ``max_len`` bit-plane passes and the byte-per-bit scratch of
    the reference packer are gone.  Output bytes are identical to
    :func:`pack_codes_ref` (pinned by ``tests/sz/test_bitstream_diff.py``).
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    _check_code_table(codes, lengths)
    if codes.size == 0:
        return PackedBits(data=b"", n_bits=0)

    total_bits = int(lengths.sum())
    n_words = (total_bits + 63) >> 6

    # The contract reads only the low `lengths[i]` bits of each
    # codeword (like the reference packer); mask once up front so
    # stray high bits cannot leak into neighboring slots, and so the
    # fusion rounds below can OR pairs together safely.
    codes = codes & (
        ~np.uint64(0) >> (np.uint64(64) - lengths.astype(np.uint64))
    )
    # Fuse adjacent pairs while every fused codeword still fits in 64
    # bits: canonical Huffman tables cap lengths at 24 (16 when
    # depth-limited), so large streams shrink 2-4x before the word
    # kernel runs, with byte-identical output.
    max_len = int(lengths.max())
    while codes.size >= _FUSE_MIN and 2 * max_len <= 64:
        codes, lengths = _fuse_pairs(codes, lengths)
        max_len *= 2
    words = np.zeros(n_words, dtype=np.uint64)
    # Bit offsets are accumulated chunk-locally (cumsum of the chunk's
    # lengths plus a running base) so no full-stream offset array is
    # ever materialized — the output words dominate peak memory.
    base = 0
    for lo in range(0, codes.size, _PACK_CHUNK):
        hi = min(lo + _PACK_CHUNK, codes.size)
        chunk_ends = np.cumsum(lengths[lo:hi])
        starts = chunk_ends - lengths[lo:hi] + base
        base += int(chunk_ends[-1])
        _pack_words(codes[lo:hi], lengths[lo:hi], starts, words)
    trace.count("huffman.packed_words", n_words)

    if sys.byteorder == "little":
        words.byteswap(inplace=True)  # big-endian byte order within words
    data = words.view(np.uint8)[: (total_bits + 7) >> 3].tobytes()
    return PackedBits(data=data, n_bits=total_bits)


def _pack_words(
    codes: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    words: np.ndarray,
) -> None:
    """OR one chunk of codewords into the big-endian ``uint64`` stream.

    Codeword ``i`` occupies stream bits ``starts[i] .. starts[i] +
    lengths[i] - 1``; bit ``p`` lives in word ``p >> 6`` at in-word
    position ``63 - (p & 63)`` (MSB-first).  With lengths capped at 64
    a codeword spans at most two adjacent words: the head lands in word
    ``starts >> 6`` and any spill (``offset + length > 64``) continues
    at the top of the next word.  Codewords must already be masked to
    their lengths (``pack_codes`` does this once up front).
    """
    word_idx = starts >> 6
    end_bit = (starts & 63) + lengths  # in-word end position, 1..127
    spill = end_bit - 64

    # Head contribution: codes aligned so their last bit sits at
    # in-word position end_bit-1 — a left shift by (64 - end_bit) when
    # the codeword fits, a right shift by spill when it runs over.
    mag = np.abs(spill).astype(np.uint64)
    head = np.where(spill > 0, codes >> mag, codes << mag)
    _scatter_or_sorted(words, word_idx, head)

    over = np.nonzero(spill > 0)[0]
    if over.size:
        # Spill contribution: the low `spill` bits of the codeword,
        # left-justified into the start of the following word.
        tail = codes[over] << (np.uint64(64) - mag[over])
        _scatter_or_sorted(words, word_idx[over] + 1, tail)


def _scatter_or_sorted(
    words: np.ndarray, targets: np.ndarray, vals: np.ndarray
) -> None:
    """``words[targets] |= vals`` for non-decreasing ``targets``.

    Contributions hitting one word carry disjoint bit sets, so their
    integer sum equals their OR, and a run-boundary difference of the
    (wrapping) prefix sum yields every word's combined contribution in
    three vectorized ops — no ``ufunc.at`` scatter needed.
    """
    csum = np.cumsum(vals, dtype=np.uint64)
    run_ends = np.nonzero(np.diff(targets))[0]
    run_last = np.concatenate([run_ends, [targets.size - 1]])
    sums = np.diff(csum[run_last], prepend=np.uint64(0))
    words[targets[run_last]] |= sums


def pack_codes_ref(codes: np.ndarray, lengths: np.ndarray) -> PackedBits:
    """Reference bit-plane packer (the original ``pack_codes``).

    Kept as the differential-test oracle for the word-packed kernel:
    it runs in ``O(max_len)`` vectorized passes — pass ``b`` scatters
    bit ``b`` of every codeword long enough to have one — at the cost
    of one byte per output *bit* of peak memory.  Not used on any hot
    path.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    _check_code_table(codes, lengths)
    if codes.size == 0:
        return PackedBits(data=b"", n_bits=0)

    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    starts = ends - lengths

    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    for b in range(max_len):
        mask = lengths > b
        # Bit b (from the MSB side) of each surviving codeword.
        shift = (lengths[mask] - 1 - b).astype(np.uint64)
        bits[starts[mask] + b] = ((codes[mask] >> shift) & np.uint64(1)).astype(
            np.uint8
        )
    return PackedBits(data=np.packbits(bits).tobytes(), n_bits=total_bits)


def unpack_bits(packed: PackedBits) -> np.ndarray:
    """Expand a :class:`PackedBits` back into a 0/1 ``uint8`` array."""
    if packed.n_bits == 0:
        return np.empty(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(packed.data, dtype=np.uint8))
    return bits[: packed.n_bits]


def lane_byte_lengths(lane_bits: np.ndarray) -> np.ndarray:
    """Byte length of each lane stream (every lane is byte-padded)."""
    bits = np.asarray(lane_bits, dtype=np.int64)
    if bits.size and int(bits.min()) < 0:
        raise ValueError("lane bit lengths must be non-negative")
    return (bits + 7) >> 3


def concat_streams(lanes: list[PackedBits]) -> bytes:
    """Concatenate byte-padded lane streams into one ``codes`` section.

    Each :class:`PackedBits` is already padded to a whole byte, so lane
    boundaries stay byte-aligned and a decoder can locate lane ``i`` at
    ``sum(lane_byte_lengths(bits[:i]))`` without a stored offset.
    """
    return b"".join(lane.data for lane in lanes)


def sliding_window_u32(data: bytes, pad_bytes: int = 0) -> np.ndarray:
    """Big-endian 32-bit window at every byte offset of ``data``.

    ``out[i]`` holds bytes ``i..i+3`` MSB-first (missing bytes read as
    zero), so the ``w`` bits starting at absolute bit position ``p``
    are ``(out[p >> 3] >> (32 - w - (p & 7))) & ((1 << w) - 1)`` for
    any ``w + (p & 7) <= 32`` — one gather per decoded window, which is
    what makes the lane decode kernel a pure NumPy loop.

    ``pad_bytes`` extends the matrix with that many zero-filled windows
    past the end of ``data`` so callers whose cursors may legitimately
    be probed out of range (e.g. bounds-checked-after-the-fact decode
    loops) never index outside the buffer.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    padded = np.zeros(raw.size + pad_bytes + 3, dtype=np.uint32)
    padded[: raw.size] = raw
    return (
        (padded[:-3] << np.uint32(24))
        | (padded[1:-2] << np.uint32(16))
        | (padded[2:-1] << np.uint32(8))
        | padded[3:]
    )


def sliding_window_u64(data: bytes, pad_bytes: int = 0) -> np.ndarray:
    """Lazy big-endian 64-bit window at every byte offset of ``data``.

    Logically ``out[i]`` holds bytes ``i..i+7`` MSB-first (missing
    bytes read as zero), so the ``w`` bits starting at absolute bit
    position ``p`` are ``(out[p >> 3] >> (64 - w - (p & 7))) &
    ((1 << w) - 1)`` for any ``w + (p & 7) <= 64``.  The wide window
    lets the miss-free lane kernel pull several consecutive codewords
    out of one gather: 57 usable bits cover three 16-bit (or four
    12-bit) table lookups.

    Physically the return value is a **byte-strided view** over one
    zero-padded copy of ``data`` — window ``i`` overlaps windows
    ``i±1`` by 7 bytes, so nothing is materialized beyond the ~n-byte
    pad buffer (the eager 8-shift construction wrote 8 bytes per input
    byte and dominated the decode profile).  Two consequences for
    callers: elements are *native-endian* raw loads, so a gathered
    slice must be ``byteswap()``-ed (on little-endian hosts; the view
    is tagged big-endian so numpy does the right thing everywhere) to
    get the MSB-first value, and the view is unaligned — gather from
    it, don't compute on it in place.  Dtype is big-endian ``i8``
    (same bit pattern as u64) because NumPy refuses mixed ``uint64 >>
    int64`` shifts downstream; the arithmetic sign-fill is harmless
    since every caller masks the shifted value and shift counts are
    always >= 1 on the miss-free path.

    ``pad_bytes`` extends the view with zero-filled windows past the
    end of ``data``, as in :func:`sliding_window_u32`.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    n = raw.size + pad_bytes
    padded = np.zeros(n + 8 - (n % 8 or 8) + 8, dtype=np.uint8)
    padded[: raw.size] = raw
    return np.lib.stride_tricks.as_strided(
        padded.view(">i8"), shape=(n,), strides=(1,)
    )
