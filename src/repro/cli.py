"""``secz`` — command-line front end for the secure compressor.

Subcommands::

    secz compress       INPUT OUTPUT --shape Z,Y,X --eb 1e-3 --scheme encr_huffman
    secz decompress     INPUT OUTPUT
    secz inspect        INPUT
    secz trace          [INPUT | --synthetic NAME] [--json T.json] [--chrome T.trace]
    secz nist           INPUT [--streams 12]
    secz archive add     ARCHIVE NAME INPUT [--codec lz77h] [--field] [--eb 1e-3]
    secz archive extract ARCHIVE NAME OUTPUT
    secz archive list    ARCHIVE
    secz archive verify  ARCHIVE [--deep]
    secz archive gc      ARCHIVE
    secz lint           [PATH ...] [--format text|json|sarif] [--disable RULE]
                        [--baseline FILE | --no-baseline] [--write-baseline]
                        [--profile]
    secz serve          --socket /run/secz.sock --store jobs.sqlite
    secz datasets
    secz advise         INPUT [--shape Z,Y,X] --eb 1e-3 [--randomness]
    secz img-compress   INPUT.npy OUTPUT --quality 80
    secz img-decompress INPUT OUTPUT.npy

Raw inputs are SDRBench-style headerless float32 ``.bin`` files (or
``.npy``); keys come from ``--key-hex`` (32 hex chars) or a passphrase
via ``--passphrase`` (PBKDF2-derived).  ``secz datasets`` writes the
synthetic evaluation fields to disk for ad-hoc experimentation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.container import parse_container
from repro.core.pipeline import SecureCompressor
from repro.core.schemes import SCHEMES, get_scheme
from repro.crypto.aes import derive_key
from repro.datasets import generate
from repro.datasets.io import load_field, save_field
from repro.datasets.registry import DATASETS
from repro.security.nist import run_suite

__all__ = ["main", "build_parser"]


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad shape {text!r}") from None
    if not dims or any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError(f"bad shape {text!r}")
    return dims


def _key_from_args(args: argparse.Namespace) -> bytes | None:
    if getattr(args, "key_hex", None):
        key = bytes.fromhex(args.key_hex)
        if len(key) != 16:
            raise SystemExit("--key-hex must be exactly 32 hex characters")
        return key
    if getattr(args, "passphrase", None):
        return derive_key(args.passphrase)
    return None


def _load_input(path: str, shape: tuple[int, ...] | None) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    if shape is None:
        raise SystemExit("raw .bin input requires --shape")
    return load_field(path, shape)


def build_parser() -> argparse.ArgumentParser:
    """The ``secz`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="secz",
        description="Secure error-bounded lossy compression (SZ + AES-128).",
        # The module docstring doubles as the --help epilog, and
        # tests/test_docs.py audits every flag it names against the
        # subparsers below — the synopsis cannot drift from the code.
        epilog=__doc__.split("Subcommands::", 1)[1],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_c = sub.add_parser("compress", help="compress and protect a field")
    p_c.add_argument("input")
    p_c.add_argument("output")
    p_c.add_argument("--shape", type=_parse_shape, default=None,
                     help="comma-separated dims for raw .bin input")
    p_c.add_argument("--eb", type=float, default=1e-3,
                     help="absolute error bound (default 1e-3)")
    p_c.add_argument("--scheme", choices=sorted(SCHEMES), default="encr_huffman")
    p_c.add_argument("--cipher-mode", "--mode", dest="mode",
                     choices=("cbc", "ctr"), default="cbc",
                     help="cbc = paper-fidelity default, ctr = recommended "
                          "throughput mode (batched keystream, pipelined "
                          "with compression)")
    p_c.add_argument("--key-hex", help="16-byte AES key as 32 hex chars")
    p_c.add_argument("--passphrase", help="derive the key from a passphrase")
    p_c.add_argument("--seed", type=int, default=None,
                     help="seed the IV stream for reproducible containers "
                          "(CBC only; matches secz serve --seed)")

    p_d = sub.add_parser("decompress", help="restore a .secz container")
    p_d.add_argument("input")
    p_d.add_argument("output", help=".npy or .bin output path")
    p_d.add_argument("--key-hex")
    p_d.add_argument("--passphrase")

    p_i = sub.add_parser("inspect", help="print container metadata")
    p_i.add_argument("input")

    p_t = sub.add_parser(
        "trace",
        help="compress a field with tracing on and show the span tree",
    )
    p_t.add_argument("input", nargs="?", default=None,
                     help=".npy or raw .bin field (omit with --synthetic)")
    p_t.add_argument("--synthetic", choices=sorted(DATASETS), default=None,
                     help="trace a generated dataset instead of a file")
    p_t.add_argument("--size", choices=("tiny", "small", "medium"),
                     default="small", help="synthetic dataset size preset")
    p_t.add_argument("--shape", type=_parse_shape, default=None,
                     help="comma-separated dims for raw .bin input")
    p_t.add_argument("--eb", type=float, default=1e-3)
    p_t.add_argument("--scheme", choices=sorted(SCHEMES),
                     default="encr_huffman")
    p_t.add_argument("--cipher-mode", "--mode", dest="mode",
                     choices=("cbc", "ctr"), default="cbc",
                     help="cbc = paper-fidelity default, ctr = recommended "
                          "throughput mode")
    p_t.add_argument("--key-hex")
    p_t.add_argument("--passphrase")
    p_t.add_argument("--json", metavar="PATH", default=None,
                     help="write the repro-trace/1 JSON document to PATH")
    p_t.add_argument("--chrome", metavar="PATH", default=None,
                     help="write a Chrome trace-event file to PATH "
                          "(load in chrome://tracing or Perfetto)")
    p_t.add_argument("--no-decompress", action="store_true",
                     help="trace compression only")

    p_n = sub.add_parser("nist", help="run SP800-22 on a file's bytes")
    p_n.add_argument("input")
    p_n.add_argument("--streams", type=int, default=12)

    p_ar = sub.add_parser(
        "archive",
        help="content-addressed SECB v2 store (see docs/FORMAT.md §10.2)",
    )
    ar_sub = p_ar.add_subparsers(dest="archive_command", required=True)

    def _archive_common(p, *, key=True):
        p.add_argument("archive", help="path of the .secb archive file")
        if key:
            p.add_argument("--key-hex",
                           help="16-byte AES key as 32 hex chars")
            p.add_argument("--passphrase",
                           help="derive the key from a passphrase")
            p.add_argument("--cipher-mode", "--mode", dest="mode",
                           choices=("cbc", "ctr"), default="cbc",
                           help="blob sealing mode (default cbc)")

    ar_add = ar_sub.add_parser(
        "add", help="chunk, dedup, seal and append one entry"
    )
    _archive_common(ar_add)
    ar_add.add_argument("name", help="entry name inside the archive")
    ar_add.add_argument("input", help="file whose bytes (or field) to add")
    ar_add.add_argument("--codec",
                        choices=("store", "zlib", "lz77h", "lz77h+zlib"),
                        default="zlib",
                        help="per-blob codec for raw entries "
                             "(default zlib)")
    ar_add.add_argument("--field", action="store_true",
                        help="treat INPUT as a float field (.npy or raw "
                             ".bin with --shape) stored as a SECZ "
                             "container entry")
    ar_add.add_argument("--shape", type=_parse_shape, default=None,
                        help="comma-separated dims for raw .bin input")
    ar_add.add_argument("--eb", type=float, default=1e-3,
                        help="error bound for --field entries")
    ar_add.add_argument("--scheme", choices=sorted(SCHEMES),
                        default="encr_huffman",
                        help="protection scheme for --field entries")

    ar_ext = ar_sub.add_parser(
        "extract", help="reassemble one entry (fails closed on tampering)"
    )
    _archive_common(ar_ext)
    ar_ext.add_argument("name")
    ar_ext.add_argument("output", help="output file (.npy keeps arrays)")

    ar_list = ar_sub.add_parser("list", help="print the entry table")
    _archive_common(ar_list, key=False)

    ar_ver = ar_sub.add_parser(
        "verify",
        help="audit digests, refcounts and extents; nonzero exit on "
             "any problem",
    )
    _archive_common(ar_ver)
    ar_ver.add_argument("--deep", action="store_true",
                        help="also unseal every chunk and re-hash "
                             "plaintext (needs the key for sealed blobs)")

    ar_gc = ar_sub.add_parser(
        "gc", help="compact away unreferenced blobs"
    )
    _archive_common(ar_gc)

    p_l = sub.add_parser(
        "lint",
        help="run the repo invariant linter (see docs/LINTING.md)",
    )
    p_l.add_argument("paths", nargs="*", default=["src"],
                     help="files or directories to lint (default: src)")
    p_l.add_argument("--format", choices=("text", "json", "sarif"),
                     default="text", dest="output_format",
                     help="report format (default text)")
    p_l.add_argument("--enable", action="append", metavar="RULE", default=None,
                     help="run only these rules (repeatable)")
    p_l.add_argument("--disable", action="append", metavar="RULE", default=None,
                     help="skip these rules (repeatable)")
    p_l.add_argument("--root", default=None,
                     help="repo root holding docs/ (default: auto-detect)")
    p_l.add_argument("--baseline", metavar="FILE", default=None,
                     help="baseline file of triaged findings (default: "
                          ".lint-baseline.json at the repo root, if present)")
    p_l.add_argument("--no-baseline", action="store_true",
                     help="ignore any baseline file")
    p_l.add_argument("--write-baseline", action="store_true",
                     help="write the current findings to the baseline "
                          "file and exit 0 (triage helper)")
    p_l.add_argument("--profile", action="store_true",
                     help="print per-rule wall-clock timings to stderr")
    p_l.add_argument("--list-rules", action="store_true",
                     help="list the shipped rules and exit")

    p_s = sub.add_parser(
        "serve",
        help="run the asyncio compression daemon (see docs/SERVICE.md)",
    )
    endpoint = p_s.add_mutually_exclusive_group(required=True)
    endpoint.add_argument("--socket", metavar="PATH", default=None,
                          help="bind a unix socket at PATH")
    endpoint.add_argument("--host", default=None,
                          help="bind a TCP listener on HOST (with --port)")
    p_s.add_argument("--port", type=int, default=9597,
                     help="TCP port for --host (default 9597)")
    p_s.add_argument("--store", required=True, metavar="PATH",
                     help="sqlite job store (created if missing; a second "
                          "serve on the same store resumes queued jobs)")
    p_s.add_argument("--scheme", choices=sorted(SCHEMES),
                     default="encr_huffman",
                     help="default scheme for submissions that defer")
    p_s.add_argument("--eb", type=float, default=1e-3,
                     help="default error bound for submissions that defer")
    p_s.add_argument("--cipher-mode", "--mode", dest="mode",
                     choices=("cbc", "ctr"), default="cbc",
                     help="cbc = paper-fidelity default, ctr = recommended "
                          "throughput mode")
    p_s.add_argument("--key-hex")
    p_s.add_argument("--passphrase")
    p_s.add_argument("--workers", type=int, default=2,
                     help="compression worker threads (0 = ingest-only: "
                          "accept and persist jobs but never run them)")
    p_s.add_argument("--queue-limit", type=int, default=256,
                     help="max queued jobs before SUBMIT gets "
                          "ERR_QUEUE_FULL (default 256)")
    p_s.add_argument("--batch-limit", type=int, default=8,
                     help="max jobs one worker drains into a single "
                          "warm-codec batch (default 8)")
    p_s.add_argument("--job-timeout", type=float, default=None,
                     help="seconds before a running batch is failed")
    p_s.add_argument("--seed", type=int, default=None,
                     help="seed the IV stream for reproducible containers "
                          "(forces --workers 1 semantics per config)")
    p_s.add_argument("--chunk-axis-min", type=int, default=0,
                     help="route fields whose leading axis reaches this "
                          "through the chunked compressor (0 = never)")

    p_g = sub.add_parser("datasets", help="list / write synthetic datasets")
    p_g.add_argument("--write", metavar="DIR", default=None,
                     help="write every dataset as .bin into DIR")
    p_g.add_argument("--size", choices=("tiny", "small", "medium"),
                     default="small")

    p_a = sub.add_parser("advise",
                         help="recommend a scheme for a dataset")
    p_a.add_argument("input")
    p_a.add_argument("--shape", type=_parse_shape, default=None)
    p_a.add_argument("--eb", type=float, default=1e-3)
    p_a.add_argument("--randomness", action="store_true",
                     help="the whole stream must pass randomness tests")

    p_ic = sub.add_parser("img-compress",
                          help="compress a grayscale image (.npy)")
    p_ic.add_argument("input")
    p_ic.add_argument("output")
    p_ic.add_argument("--quality", type=int, default=75)
    p_ic.add_argument("--scheme", choices=sorted(SCHEMES),
                      default="encr_huffman")
    p_ic.add_argument("--key-hex")
    p_ic.add_argument("--passphrase")

    p_id = sub.add_parser("img-decompress",
                          help="restore a .secz image container")
    p_id.add_argument("input")
    p_id.add_argument("output", help=".npy output path")
    p_id.add_argument("--quality", type=int, default=75,
                      help="quality used at compression time")
    p_id.add_argument("--key-hex")
    p_id.add_argument("--passphrase")
    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    data = _load_input(args.input, args.shape)
    sc = SecureCompressor(
        scheme=args.scheme,
        error_bound=args.eb,
        key=_key_from_args(args),
        cipher_mode=args.mode,
        random_state=(np.random.default_rng(args.seed)
                      if args.seed is not None else None),
    )
    result = sc.compress(np.ascontiguousarray(data, dtype=np.float32)
                         if data.dtype != np.float64 else data)
    with open(args.output, "wb") as fh:
        fh.write(result.container)
    cr = data.nbytes / len(result.container)
    print(
        f"{args.input}: {data.nbytes} -> {len(result.container)} bytes "
        f"(CR {cr:.3f}, scheme {args.scheme}, "
        f"{result.encrypted_bytes} bytes encrypted)"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    scheme = get_scheme(parse_container(blob).scheme_id)
    sc = SecureCompressor(scheme=scheme.name, key=_key_from_args(args))
    data = sc.decompress(blob)
    if args.output.endswith(".npy"):
        np.save(args.output, data)
    else:
        save_field(args.output, data)
    print(f"{args.input}: restored {data.shape} {data.dtype} -> {args.output}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core import integrity

    with open(args.input, "rb") as fh:
        blob = fh.read()
    authenticated = blob[: len(integrity.MAGIC)] == integrity.MAGIC
    if authenticated:
        # Header-only inspection does not need (or verify) the key.
        blob = blob[len(integrity.MAGIC) + integrity.TAG_BYTES :]
    parsed = parse_container(blob)
    scheme = get_scheme(parsed.scheme_id)
    print(f"scheme:      {scheme.name}")
    print(f"authenticated: {'yes (SECA tag present, not verified)' if authenticated else 'no'}")
    print(f"cipher mode: {parsed.cipher_mode}")
    print(f"iv:          {parsed.iv.hex()}")
    print(f"total bytes: {len(blob)}")
    for name, section in parsed.sections.items():
        print(f"section {name:>8}: {len(section)} bytes")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.core import trace

    if (args.input is None) == (args.synthetic is None):
        raise SystemExit("pass exactly one of INPUT or --synthetic NAME")
    if args.synthetic is not None:
        data = np.asarray(generate(args.synthetic, size=args.size))
        source = f"synthetic:{args.synthetic}[{args.size}]"
    else:
        data = _load_input(args.input, args.shape)
        source = args.input
    key = _key_from_args(args)
    if key is None and get_scheme(args.scheme).requires_key:
        key = derive_key("secz-trace")
        print("note: no key given; using a throwaway key derived from "
              "'secz-trace' (pass --key-hex/--passphrase for real data)")
    sc = SecureCompressor(
        scheme=args.scheme,
        error_bound=args.eb,
        key=key,
        cipher_mode=args.mode,
    )
    tr = trace.Tracer()
    result = sc.compress(
        np.ascontiguousarray(data, dtype=np.float32)
        if data.dtype != np.float64 else data,
        tracer=tr,
    )
    if not args.no_decompress:
        sc.decompress(result.container, tracer=tr)
    doc = trace.validate(tr.export())
    print(f"trace of {source} ({data.nbytes} bytes, scheme {args.scheme})")
    print()
    print(trace.format_tree(doc))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"\nwrote {args.json}")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(trace.chrome_trace(doc), fh)
        print(f"wrote {args.chrome} (open in chrome://tracing or "
              "https://ui.perfetto.dev)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import lint

    if args.list_rules:
        for cls in lint.ALL_RULES:
            print(f"{cls.name:18s} {cls.description}")
        return 0
    if args.no_baseline and args.baseline:
        raise SystemExit("--baseline and --no-baseline are exclusive")
    baseline: Path | str | None = "auto"
    if args.no_baseline or args.write_baseline:
        baseline = None
    elif args.baseline:
        baseline = Path(args.baseline)
    try:
        report = lint.lint_paths(
            [Path(p) for p in args.paths],
            root=Path(args.root) if args.root else None,
            enable=args.enable,
            disable=args.disable,
            baseline=baseline,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.write_baseline:
        root = Path(args.root) if args.root else lint.find_repo_root(
            Path(args.paths[0])
        )
        target = Path(args.baseline) if args.baseline else (
            root / lint.BASELINE_FILENAME
        )
        lint.write_baseline(target, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0
    if args.output_format == "json":
        print(report.format_json())
    elif args.output_format == "sarif":
        print(lint.format_sarif(report))
    else:
        print(report.format_text())
    if args.profile:
        print(report.format_profile(), file=sys.stderr)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import CompressionService, ServiceConfig

    config = ServiceConfig(
        scheme=args.scheme,
        error_bound=args.eb,
        key=_key_from_args(args),
        cipher_mode=args.mode,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_limit=args.batch_limit,
        job_timeout=args.job_timeout,
        seed=args.seed,
        chunk_axis_min=args.chunk_axis_min,
    )
    try:
        service = CompressionService(config, args.store)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    endpoint = args.socket or f"{args.host}:{args.port}"
    print(f"secz serve: {endpoint} (store {args.store}, "
          f"scheme {args.scheme}, workers {args.workers})")
    asyncio.run(service.serve(
        socket_path=args.socket,
        host=args.host,
        port=args.port if args.host else None,
        install_signal_handlers=True,
    ))
    print("secz serve: shut down cleanly")
    return 0


def _cmd_nist(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    result = run_suite(blob, n_streams=args.streams)
    print(result.format_table())
    return 0 if result.all_pass else 1


def _cmd_archive(args: argparse.Namespace) -> int:
    import os

    from repro.archive import ArchiveCorrupt, ArchiveStore

    def open_store(*, must_exist: bool = True) -> ArchiveStore:
        kwargs = dict(
            key=_key_from_args(args),
            cipher_mode=getattr(args, "mode", "cbc"),
        )
        if not os.path.exists(args.archive):
            if must_exist:
                raise SystemExit(f"no archive at {args.archive}")
            return ArchiveStore.create(args.archive, **kwargs)
        try:
            return ArchiveStore(args.archive, **kwargs)
        except ArchiveCorrupt as exc:
            raise SystemExit(f"{args.archive}: {exc}") from None

    verb = args.archive_command
    if verb == "add":
        store = open_store(must_exist=False)
        if args.field:
            data = _load_input(args.input, args.shape)
            store.add_field(
                args.name,
                np.ascontiguousarray(data, dtype=np.float32)
                if data.dtype != np.float64 else data,
                scheme=args.scheme, error_bound=args.eb,
            )
        else:
            with open(args.input, "rb") as fh:
                store.add_bytes(args.name, fh.read(), codec=args.codec)
        st = store.stats()
        print(f"{args.archive}: added {args.name!r}; "
              f"{st['entries']} entries, {st['blobs']} blobs, "
              f"dedup x{st['dedup_ratio']:.2f}")
        return 0
    if verb == "extract":
        store = open_store()
        try:
            kind = next(
                row["kind"] for row in store.entries()
                if row["name"] == args.name
            )
        except StopIteration:
            raise SystemExit(
                f"no entry {args.name!r}; entries: {store.names()}"
            ) from None
        try:
            if kind == "field":
                field = store.extract_field(args.name)
                if args.output.endswith(".npy"):
                    np.save(args.output, field)
                else:
                    save_field(args.output, field)
            else:
                blob = store.extract_bytes(args.name)
                with open(args.output, "wb") as fh:
                    fh.write(blob)
        except ArchiveCorrupt as exc:
            raise SystemExit(f"refusing to extract: {exc}") from None
        print(f"{args.archive}: extracted {args.name!r} -> {args.output}")
        return 0
    if verb == "list":
        store = ArchiveStore(args.archive)
        for row in store.entries():
            print(f"{row['name']:24s} {row['kind']:5s} "
                  f"scheme={row['scheme']:14s} codec={row['codec']:10s} "
                  f"{row['raw_size']:>10d} -> {row['stored_size']:>9d} "
                  f"bytes in {row['n_chunks']} chunks")
        st = store.stats()
        print(f"total: {st['raw_bytes']} raw, {st['stored_bytes']} stored "
              f"(dedup x{st['dedup_ratio']:.2f})")
        return 0
    if verb == "verify":
        store = open_store()
        problems = store.verify(deep=args.deep)
        for problem in problems:
            print(f"FAIL {problem}")
        if problems:
            print(f"{args.archive}: {len(problems)} problem(s)")
            return 1
        print(f"{args.archive}: ok "
              f"({'deep' if args.deep else 'structural'} verify)")
        return 0
    if verb == "gc":
        store = open_store()
        dropped = store.gc()
        print(f"{args.archive}: dropped {dropped} unreferenced blob(s)")
        return 0
    raise SystemExit(f"unknown archive verb {verb!r}")


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name, spec in DATASETS.items():
        dims = spec.preset_dims(args.size)
        print(
            f"{name:10s} {spec.description:28s} paper {spec.paper_dims} "
            f"({spec.paper_size}); preset[{args.size}] {dims}"
        )
        if args.write:
            import os

            os.makedirs(args.write, exist_ok=True)
            path = os.path.join(args.write, f"{name}.bin")
            save_field(path, generate(name, size=args.size))
            print(f"{'':10s} wrote {path}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import recommend_scheme

    data = _load_input(args.input, args.shape)
    rec = recommend_scheme(
        np.ascontiguousarray(data, dtype=np.float32)
        if data.dtype not in (np.float32, np.float64) else data,
        args.eb,
        require_full_randomness=args.randomness,
    )
    print(f"recommended scheme: {rec.scheme}")
    for reason in rec.reasons:
        print(f"  - {reason}")
    print(f"predictable fraction: {rec.predictable_fraction:.2%}")
    print(f"tree / quant array:   {rec.tree_fraction_of_quant:.2%}")
    return 0


def _cmd_img_compress(args: argparse.Namespace) -> int:
    from repro.imagecodec import SecureImageCompressor

    image = np.load(args.input)
    sic = SecureImageCompressor(
        args.scheme, args.quality, key=_key_from_args(args)
    )
    result = sic.compress(image)
    with open(args.output, "wb") as fh:
        fh.write(result.container)
    print(
        f"{args.input}: {image.size} px -> {result.compressed_bytes} bytes "
        f"(q={args.quality}, {result.encrypted_bytes} bytes encrypted)"
    )
    return 0


def _cmd_img_decompress(args: argparse.Namespace) -> int:
    from repro.imagecodec import SecureImageCompressor

    with open(args.input, "rb") as fh:
        blob = fh.read()
    scheme = get_scheme(parse_container(blob).scheme_id)
    sic = SecureImageCompressor(
        scheme.name, args.quality, key=_key_from_args(args)
    )
    image = sic.decompress(blob)
    np.save(args.output, image)
    print(f"{args.input}: restored {image.shape} image -> {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``secz`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "inspect": _cmd_inspect,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "nist": _cmd_nist,
        "archive": _cmd_archive,
        "datasets": _cmd_datasets,
        "advise": _cmd_advise,
        "img-compress": _cmd_img_compress,
        "img-decompress": _cmd_img_decompress,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
