"""Benchmark harness shared by every table/figure reproduction.

The modules here are *library* code (importable, unit-tested); the
``benchmarks/`` directory contains the thin pytest-benchmark drivers
that call into them and print the paper-shaped tables.

* :mod:`repro.bench.harness` — dataset caching, scheme measurement,
  eb/dataset sweeps.
* :mod:`repro.bench.tables` — ASCII grid/series formatting that mirrors
  the paper's table layout.
* :mod:`repro.bench.figures` — PGM mask dumps (Fig. 3) and ASCII bar
  series for the figure-shaped results.
"""

from repro.bench.harness import (
    EBS,
    SCHEME_LABELS,
    SchemeMeasurement,
    dataset_cache,
    measure_scheme,
    sweep,
)
from repro.bench.tables import format_grid, format_series

__all__ = [
    "EBS",
    "SCHEME_LABELS",
    "SchemeMeasurement",
    "dataset_cache",
    "measure_scheme",
    "sweep",
    "format_grid",
    "format_series",
]
