"""ASCII table / series rendering in the paper's layout.

Every benchmark prints its result through these helpers so the console
output of ``pytest benchmarks/`` reads like the paper's tables, and
EXPERIMENTS.md can paste the output verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_grid", "format_series", "format_comparison"]


def _fmt(value: float, precision: int) -> str:
    if value != value:  # NaN
        return "n/a"
    if abs(value) >= 1e6:
        return f"{value:.3e}"
    return f"{value:.{precision}f}"


def format_grid(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    *,
    corner: str = "Dataset",
    precision: int = 3,
) -> str:
    """Render a row x column grid like the paper's Tables II-V."""
    if len(values) != len(row_labels):
        raise ValueError("values must have one row per row label")
    for row in values:
        if len(row) != len(col_labels):
            raise ValueError("every row needs one value per column label")
    col_width = max(
        [len(str(c)) for c in col_labels]
        + [precision + 6]
    ) + 2
    row_width = max(len(corner), *(len(r) for r in row_labels)) + 2
    lines = [title]
    header = f"{corner:<{row_width}}" + "".join(
        f"{str(c):>{col_width}}" for c in col_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, values):
        cells = "".join(f"{_fmt(v, precision):>{col_width}}" for v in row)
        lines.append(f"{label:<{row_width}}{cells}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    precision: int = 2,
    bar: bool = False,
    bar_width: int = 40,
) -> str:
    """Render named series over a shared x-axis (the figure shape).

    With ``bar=True`` adds a proportional ASCII bar per cell, which is
    enough to eyeball the figure shapes in a terminal.
    """
    lines = [title]
    vmax = max(
        (v for vals in series.values() for v in vals if v == v), default=1.0
    )
    label_width = max(len(name) for name in series) + 2
    for name, vals in series.items():
        if len(vals) != len(x_labels):
            raise ValueError(f"series {name!r} length mismatch")
        lines.append(f"{name}:")
        for x, v in zip(x_labels, vals):
            cell = f"  {str(x):>10}  {_fmt(v, precision):>12}"
            if bar and v == v and vmax > 0:
                cell += "  " + "#" * max(1, int(bar_width * v / vmax))
            lines.append(cell)
    _ = label_width
    return "\n".join(lines)


def format_comparison(
    title: str,
    rows: Sequence[tuple[str, float, float]],
    *,
    labels: tuple[str, str] = ("paper", "measured"),
    precision: int = 3,
) -> str:
    """Two-column paper-vs-measured table for EXPERIMENTS.md."""
    lines = [title, f"{'case':<28}{labels[0]:>14}{labels[1]:>14}"]
    for name, paper, measured in rows:
        lines.append(
            f"{name:<28}{_fmt(paper, precision):>14}{_fmt(measured, precision):>14}"
        )
    return "\n".join(lines)
