"""Measurement harness for the paper's evaluation sweeps.

All experiments share the same protocol (paper Sec. V-A): a dataset x
error-bound grid, each cell measured over ``repeats`` runs and
averaged ("All data points ... are an average of five runs").  The
harness owns dataset generation/caching, per-scheme measurement, and
the sweep loop, so every benchmark file is a few lines of driver code.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
import time

import numpy as np

from repro.core import trace
from repro.core.metrics import bandwidth_mb_s, compression_ratio
from repro.core.pipeline import SecureCompressor
from repro.core.timing import StageTimes
from repro.datasets import generate
from repro.sz.compressor import CompressionStats

__all__ = [
    "EBS",
    "KEY",
    "SCHEME_LABELS",
    "SchemeMeasurement",
    "dataset_cache",
    "measure_scheme",
    "sweep",
    "trace_cell",
]

#: The paper's absolute error-bound grid (Tables II-V columns).
EBS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3)

#: Fixed experiment key (16 bytes); experiments never vary the key.
KEY = bytes(range(16))

#: Display labels, paper order.
SCHEME_LABELS = {
    "none": "Original SZ",
    "cmpr_encr": "Cmpr-Encr",
    "encr_quant": "Encr-Quant",
    "encr_huffman": "Encr-Huffman",
}

#: Modeled AES throughput as a multiple of the SZ substrate's own
#: throughput.  What the paper's time experiments measure is the
#: *ratio* between the cipher's and the compressor's speeds: on their
#: Xeon 6148, single-thread AES-NI CBC (~1 GB/s) runs roughly 15x
#: faster than SZ-1.4 (tens-to-~100 MB/s).  Our pure-Python AES is
#: ~1000x slower relative to the NumPy SZ, which would invert every
#: overhead shape; the model therefore rescales only the measured
#: encrypt/decrypt stage times so that the AES:SZ ratio matches the
#: paper's hardware (DESIGN.md §2, EXPERIMENTS.md).
MODEL_AES_SZ_RATIO = 15.0


@lru_cache(maxsize=1)
def sz_calibration() -> float:
    """Measured throughput (MB/s) of this build's SZ compressor.

    One reference compression of a smooth 48^3 field; cached.
    """
    from repro.sz.compressor import SZCompressor

    x = np.linspace(0.0, 4.0, 48)
    gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
    field = (np.sin(gx) * np.cos(gy) + 0.1 * gz).astype(np.float32)
    comp = SZCompressor(1e-4)
    comp.compress(field)  # warm-up
    t0 = time.perf_counter()
    comp.compress(field)
    dt = time.perf_counter() - t0
    return field.nbytes / (1024.0 * 1024.0) / dt


def model_aes_mb_s() -> float:
    """The modeled hardware-AES rate: ``MODEL_AES_SZ_RATIO x SZ``."""
    return MODEL_AES_SZ_RATIO * sz_calibration()


@lru_cache(maxsize=1)
def aes_calibration() -> tuple[float, float]:
    """Measured throughput (MB/s) of this build's CBC encrypt/decrypt.

    Used to convert measured encryption stage times into modeled
    hardware-AES times: ``t_model = t_measured * measured_rate /
    model_aes_mb_s()``.  Cached; costs one ~256 KiB encryption.
    """
    from repro.crypto.aes import AES128

    cipher = AES128(KEY)
    payload = bytes(256 * 1024)
    t0 = time.perf_counter()
    # Fixed IV: throughput calibration, nothing secret is protected.
    enc = cipher.encrypt_cbc(payload, iv=bytes(16))  # lint: disable=crypto-hygiene
    t_enc = time.perf_counter() - t0
    t0 = time.perf_counter()
    cipher.decrypt_cbc(enc.ciphertext, enc.iv)
    t_dec = time.perf_counter() - t0
    mb = len(payload) / (1024.0 * 1024.0)
    return mb / t_enc, mb / t_dec


@lru_cache(maxsize=32)
def dataset_cache(name: str, size: str = "small", seed: int = 2022) -> np.ndarray:
    """Generate (once) and cache a synthetic dataset."""
    data = generate(name, size=size, seed=seed)
    data.setflags(write=False)
    return data


@dataclass(frozen=True)
class SchemeMeasurement:
    """Averaged measurements of one (dataset, eb, scheme) cell."""

    scheme: str
    eb: float
    original_bytes: int
    compressed_bytes: int
    encrypted_bytes: int
    t_compress: float
    t_decompress: float
    compress_times: StageTimes
    decompress_times: StageTimes
    sz_stats: CompressionStats

    @property
    def cr(self) -> float:
        """Compression ratio (paper Eq. 1)."""
        return compression_ratio(self.original_bytes, self.compressed_bytes)

    @property
    def compress_bw(self) -> float:
        """Compression bandwidth in MB/s (paper Eq. 2), as measured."""
        return bandwidth_mb_s(self.original_bytes, self.t_compress)

    @property
    def decompress_bw(self) -> float:
        """Decompression bandwidth in MB/s, as measured."""
        return bandwidth_mb_s(self.original_bytes, self.t_decompress)

    # -- modeled (hardware-AES) timings ---------------------------------

    def modeled_encrypt_seconds(self) -> float:
        """The encrypt stage's time under the reference AES rate."""
        measured = self.compress_times.seconds.get("encrypt", 0.0)
        enc_rate, _ = aes_calibration()
        return measured * enc_rate / model_aes_mb_s()

    def modeled_decrypt_seconds(self) -> float:
        """The decrypt stage's time under the reference AES rate."""
        measured = self.decompress_times.seconds.get("decrypt", 0.0)
        _, dec_rate = aes_calibration()
        return measured * dec_rate / model_aes_mb_s()

    @property
    def t_compress_modeled(self) -> float:
        """Compression time with AES rescaled to the reference rate.

        This is the quantity the paper's Tables III-V measure on
        AES-NI hardware; the pure-Python cipher would otherwise
        dominate and invert every overhead shape (see
        :data:`MODEL_AES_SZ_RATIO`).
        """
        measured_enc = self.compress_times.seconds.get("encrypt", 0.0)
        return self.t_compress - measured_enc + self.modeled_encrypt_seconds()

    @property
    def t_decompress_modeled(self) -> float:
        """Decompression time with AES rescaled to the reference rate."""
        measured_dec = self.decompress_times.seconds.get("decrypt", 0.0)
        return (
            self.t_decompress - measured_dec + self.modeled_decrypt_seconds()
        )

    @property
    def compress_bw_modeled(self) -> float:
        """Compression bandwidth (MB/s) under the hardware-AES model."""
        return bandwidth_mb_s(self.original_bytes, self.t_compress_modeled)

    @property
    def decompress_bw_modeled(self) -> float:
        """Decompression bandwidth (MB/s) under the hardware-AES model."""
        return bandwidth_mb_s(self.original_bytes, self.t_decompress_modeled)


def measure_scheme(
    data: np.ndarray,
    scheme: str,
    eb: float,
    *,
    repeats: int = 3,
    key: bytes = KEY,
    cipher_mode: str = "cbc",
    seed: int = 1,
    **kwargs,
) -> SchemeMeasurement:
    """Measure one (data, scheme, eb) cell, averaged over ``repeats``.

    Wall times are averaged; sizes and stats come from the final run
    (they are deterministic given the seeded IV generator).
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    # Experiment harness: seeded nonces are deliberate (reproducible
    # sweeps over synthetic data), so opt out of the CTR reuse guard.
    sc = SecureCompressor(
        scheme=scheme,
        error_bound=eb,
        key=key if scheme != "none" else None,
        cipher_mode=cipher_mode,
        random_state=rng,
        allow_nonce_reuse=True,
        **kwargs,
    )
    t_comp = 0.0
    t_decomp = 0.0
    result = None
    comp_times = StageTimes()
    decomp_times = StageTimes()
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = sc.compress(np.asarray(data))
        t_comp += time.perf_counter() - t0
        t0 = time.perf_counter()
        _, dtimes = sc.decompress_with_times(result.container)
        t_decomp += time.perf_counter() - t0
        comp_times.merge(result.times)
        decomp_times.merge(dtimes)
    scale = 1.0 / repeats
    comp_times = StageTimes({k: v * scale for k, v in comp_times.seconds.items()})
    decomp_times = StageTimes(
        {k: v * scale for k, v in decomp_times.seconds.items()}
    )
    return SchemeMeasurement(
        scheme=scheme,
        eb=eb,
        original_bytes=int(np.asarray(data).nbytes),
        compressed_bytes=len(result.container),
        encrypted_bytes=result.encrypted_bytes,
        t_compress=t_comp * scale,
        t_decompress=t_decomp * scale,
        compress_times=comp_times,
        decompress_times=decomp_times,
        sz_stats=result.sz_stats,
    )


def trace_cell(
    data: np.ndarray,
    scheme: str,
    eb: float,
    *,
    key: bytes = KEY,
    cipher_mode: str = "cbc",
    seed: int = 1,
    **kwargs,
) -> dict:
    """One traced compress+decompress of a (data, scheme, eb) cell.

    Returns the validated ``repro-trace/1`` document — the same spans
    and counters the library records for any caller, so bench output
    and library instrumentation share one code path (the benchmarks
    emit these next to their tables; see ``conftest.emit_trace``).
    """
    sc = SecureCompressor(
        scheme=scheme,
        error_bound=eb,
        key=key if scheme != "none" else None,
        cipher_mode=cipher_mode,
        random_state=np.random.default_rng(seed),
        allow_nonce_reuse=True,
        **kwargs,
    )
    tr = trace.Tracer()
    result = sc.compress(np.asarray(data), tracer=tr)
    sc.decompress(result.container, tracer=tr)
    return trace.validate(tr.export())


def measure_overhead_paired(
    data: np.ndarray,
    scheme: str,
    eb: float,
    *,
    repeats: int = 5,
    key: bytes = KEY,
    cipher_mode: str = "cbc",
    seed: int = 1,
) -> float:
    """Tables III-V overhead (%) with paired, modeled-AES timing.

    For each repeat, one SZ frame is produced and *both* the scheme's
    protect stage and the plain-SZ protect stage run on it.  The shared
    SZ stage time appears in numerator and denominator, so machine
    noise in the (dominant) SZ stages cancels and only the genuinely
    differing encrypt/lossless stages are compared — which is exactly
    the paper's claim structure ("all overhead is derived from the
    subsequent encryption process").  The encrypt stage is rescaled to
    :data:`MODEL_AES_MB_S` like every other modeled timing.

    Returns the median over ``repeats`` of ``100 * t_scheme / t_base``.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    from repro.core.schemes import get_scheme
    from repro.core.timing import StageTimes
    from repro.crypto.aes import AES128
    from repro.crypto.rng import generate_iv, generate_nonce
    from repro.sz.lossless import DEFAULT_LEVEL

    rng = np.random.default_rng(seed)
    scheme_obj = get_scheme(scheme)
    cipher = AES128(key) if scheme_obj.requires_key else None
    base = get_scheme("none")
    enc_rate, _ = aes_calibration()
    sz = None
    ratios = []
    for _ in range(repeats):
        from repro.sz.compressor import SZCompressor

        sz = SZCompressor(eb)
        frame = sz.compress(np.asarray(data))
        sz_seconds = sum(frame.stats.stage_seconds.values())
        iv = (
            generate_nonce(rng) if cipher_mode == "ctr" else generate_iv(rng)
        )
        t_scheme = StageTimes()
        scheme_obj.protect(
            frame.sections, cipher, iv, cipher_mode, DEFAULT_LEVEL, t_scheme
        )
        t_base = StageTimes()
        base.protect(
            frame.sections, None, iv, cipher_mode, DEFAULT_LEVEL, t_base
        )
        measured_enc = t_scheme.seconds.get("encrypt", 0.0)
        modeled_enc = measured_enc * enc_rate / model_aes_mb_s()
        scheme_total = (
            sz_seconds
            + t_scheme.seconds.get("lossless", 0.0)
            + modeled_enc
        )
        base_total = sz_seconds + t_base.seconds.get("lossless", 0.0)
        ratios.append(100.0 * scheme_total / base_total)
    return float(np.median(ratios))


def sweep(
    datasets: tuple[str, ...],
    schemes: tuple[str, ...],
    ebs: tuple[float, ...] = EBS,
    *,
    size: str = "small",
    repeats: int = 3,
    **kwargs,
) -> dict[tuple[str, str, float], SchemeMeasurement]:
    """Run the full grid; keys are ``(dataset, scheme, eb)``."""
    results: dict[tuple[str, str, float], SchemeMeasurement] = {}
    for name in datasets:
        data = dataset_cache(name, size=size)
        for scheme in schemes:
            for eb in ebs:
                results[(name, scheme, eb)] = measure_scheme(
                    data, scheme, eb, repeats=repeats, **kwargs
                )
    return results
