"""Figure-artifact helpers: Fig. 3 masks as PGM images, plus mask stats.

The paper's Fig. 3 shows binary images of Nyx where gray pixels are
unpredictable and black pixels predictable data.  We regenerate the
same masks from the quantization codes and write them as portable
graymaps (PGM — viewable anywhere, no plotting dependency).
"""

from __future__ import annotations

import os

import numpy as np

from repro.sz import huffman
from repro.sz.bitstream import PackedBits
from repro.sz.compressor import SZCompressor
from repro.sz.fastdecode import decode_lanes

__all__ = ["predictability_mask", "write_pgm", "mask_summary"]


def predictability_mask(data: np.ndarray, eb: float, **kwargs) -> np.ndarray:
    """Boolean mask of *predictable* points for ``data`` at ``eb``.

    Runs the real compressor and recovers the sentinel layout from the
    frame itself (not a side computation), so the mask is exactly what
    the paper's Fig. 3 visualizes.
    """
    comp = SZCompressor(eb, **kwargs)
    frame = comp.compress(data)
    info = comp.parse_meta(frame.sections["meta"])
    n = int(np.prod(info["shape"]))
    if info["version"] >= 3:
        code, table = huffman.deserialize_lane_tree(frame.sections["tree"], n)
        codes = decode_lanes(frame.sections["codes"], code, table, n)
    else:
        code = huffman.deserialize_tree(frame.sections["tree"])
        packed = PackedBits(data=frame.sections["codes"], n_bits=info["n_bits"])
        codes = huffman.decode(packed, code, n)
    return (codes != 0).reshape(info["shape"])


def write_pgm(path: str | os.PathLike, mask: np.ndarray) -> None:
    """Write a 2-D boolean mask as a binary PGM (black = predictable).

    Uses the paper's encoding: predictable points are black (0),
    unpredictable points gray (160).
    """
    if mask.ndim != 2:
        raise ValueError("PGM output needs a 2-D mask; slice the volume first")
    img = np.where(mask, 0, 160).astype(np.uint8)
    header = f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header + img.tobytes())


def mask_summary(mask: np.ndarray) -> dict[str, float]:
    """Counts/fractions used in the Fig. 3 caption discussion."""
    total = int(mask.size)
    predictable = int(mask.sum())
    return {
        "total": float(total),
        "predictable": float(predictable),
        "unpredictable": float(total - predictable),
        "predictable_fraction": predictable / total if total else 0.0,
    }
