"""FIPS-197 key expansion for AES-128.

The 16-byte cipher key is expanded to 44 32-bit words (11 round keys).
The schedule is exposed in three forms so every execution engine can
consume it without re-deriving anything:

* ``words``      — 44 ints, the raw FIPS-197 ``w[i]`` array,
* ``round_keys`` — 11 × 16 ``bytes`` objects (scalar path),
* ``as_array``   — an ``(11, 16) uint8`` ndarray (batched path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.sbox import RCON, SBOX

__all__ = ["ExpandedKey", "expand_key"]

KEY_BYTES = 16
ROUNDS = 10
WORDS = 4 * (ROUNDS + 1)


def _sub_word(w: int) -> int:
    return (
        (SBOX[(w >> 24) & 0xFF] << 24)
        | (SBOX[(w >> 16) & 0xFF] << 16)
        | (SBOX[(w >> 8) & 0xFF] << 8)
        | SBOX[w & 0xFF]
    )


def _rot_word(w: int) -> int:
    return ((w << 8) | (w >> 24)) & 0xFFFFFFFF


@dataclass(frozen=True)
class ExpandedKey:
    """An AES-128 key schedule in all the layouts the engines need."""

    words: tuple[int, ...]
    round_keys: tuple[bytes, ...] = field(repr=False, default=())

    def __post_init__(self) -> None:
        if len(self.words) != WORDS:
            raise ValueError(f"expected {WORDS} schedule words, got {len(self.words)}")
        if not self.round_keys:
            rks = []
            for r in range(ROUNDS + 1):
                chunk = b"".join(
                    w.to_bytes(4, "big") for w in self.words[4 * r : 4 * r + 4]
                )
                rks.append(chunk)
            object.__setattr__(self, "round_keys", tuple(rks))

    def as_array(self) -> np.ndarray:
        """Round keys as an ``(11, 16) uint8`` array for the batch engine."""
        return np.frombuffer(b"".join(self.round_keys), dtype=np.uint8).reshape(
            ROUNDS + 1, KEY_BYTES
        )

    def round_words(self, r: int) -> tuple[int, int, int, int]:
        """The four 32-bit words of round key ``r`` (T-table path)."""
        base = 4 * r
        return (
            self.words[base],
            self.words[base + 1],
            self.words[base + 2],
            self.words[base + 3],
        )


def expand_key(key: bytes) -> ExpandedKey:
    """Expand a 16-byte AES-128 key per FIPS-197 Section 5.2.

    Raises
    ------
    ValueError
        If ``key`` is not exactly 16 bytes.
    """
    if len(key) != KEY_BYTES:
        raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)} bytes")
    w = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    for i in range(4, WORDS):
        temp = w[i - 1]
        if i % 4 == 0:
            temp = _sub_word(_rot_word(temp)) ^ (RCON[i // 4 - 1] << 24)
        w.append(w[i - 4] ^ temp)
    return ExpandedKey(words=tuple(w))
