"""The :class:`AES128` façade used by the secure-compression schemes.

A thin object wrapper that owns an expanded key and exposes the two
mode families.  The schemes in :mod:`repro.core.schemes` never touch
round keys or block functions directly — they call
``aes.encrypt_cbc`` / ``aes.decrypt_cbc`` on byte sections of the
compressed stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import modes, rng
from repro.crypto.keyschedule import ExpandedKey, expand_key

__all__ = ["AES128", "EncryptionResult", "derive_key"]


def derive_key(passphrase: str | bytes, *, salt: bytes = b"repro.secz") -> bytes:
    """Derive a 16-byte AES key from a passphrase (PBKDF2-HMAC-SHA256).

    A convenience for the examples and CLI; experiment code passes raw
    16-byte keys.
    """
    if isinstance(passphrase, str):
        passphrase = passphrase.encode("utf-8")
    return hashlib.pbkdf2_hmac("sha256", passphrase, salt, 10_000, dklen=16)


@dataclass(frozen=True)
class EncryptionResult:
    """Ciphertext together with the IV/nonce needed to reverse it."""

    ciphertext: bytes
    iv: bytes
    mode: str


class AES128:
    """AES-128 with CBC (paper default) and CTR modes.

    Parameters
    ----------
    key:
        Exactly 16 bytes of key material (use :func:`derive_key` to get
        one from a passphrase).

    Examples
    --------
    >>> cipher = AES128(bytes(range(16)))
    >>> enc = cipher.encrypt_cbc(b"attack at dawn", iv=bytes(16))
    >>> cipher.decrypt_cbc(enc.ciphertext, enc.iv)
    b'attack at dawn'
    """

    def __init__(self, key: bytes) -> None:
        self._schedule: ExpandedKey = expand_key(bytes(key))

    @property
    def schedule(self) -> ExpandedKey:
        """The expanded key schedule (read-only)."""
        return self._schedule

    def encrypt_cbc(self, plaintext: bytes, iv: bytes | None = None) -> EncryptionResult:
        """CBC-encrypt ``plaintext``; a random IV is drawn when omitted."""
        if iv is None:
            iv = rng.generate_iv()
        ct = modes.cbc_encrypt(plaintext, self._schedule, iv)
        return EncryptionResult(ciphertext=ct, iv=iv, mode="cbc")

    def decrypt_cbc(self, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt and unpad; raises ``ValueError`` on bad padding."""
        return modes.cbc_decrypt(ciphertext, self._schedule, iv)

    def encrypt_ctr(self, plaintext: bytes, nonce: bytes | None = None) -> EncryptionResult:
        """CTR-encrypt ``plaintext``; a random nonce is drawn when omitted."""
        if nonce is None:
            nonce = rng.generate_nonce()
        ct = modes.ctr_xcrypt(plaintext, self._schedule, nonce)
        return EncryptionResult(ciphertext=ct, iv=nonce, mode="ctr")

    def decrypt_ctr(self, ciphertext: bytes, nonce: bytes) -> bytes:
        """CTR-decrypt (CTR is an involution, so this mirrors encrypt)."""
        return modes.ctr_xcrypt(ciphertext, self._schedule, nonce)

    def encrypt(self, plaintext: bytes, *, mode: str = "cbc", iv: bytes | None = None) -> EncryptionResult:
        """Mode-dispatching entry point (``mode`` in {"cbc", "ctr"})."""
        if mode == "cbc":
            method = self.encrypt_cbc
        elif mode == "ctr":
            method = self.encrypt_ctr
        else:
            raise ValueError(f"unknown cipher mode {mode!r}")
        return method(plaintext, iv)

    def decrypt(self, ciphertext: bytes, iv: bytes, *, mode: str = "cbc") -> bytes:
        """Mode-dispatching inverse of :meth:`encrypt`."""
        if mode == "cbc":
            return self.decrypt_cbc(ciphertext, iv)
        if mode == "ctr":
            return self.decrypt_ctr(ciphertext, iv)
        raise ValueError(f"unknown cipher mode {mode!r}")
