"""NumPy-batched AES-128 ECB engine.

Where blocks are *independent* — ECB, CTR keystream generation, and the
block-cipher half of CBC **decryption** — the cipher can be applied to
all blocks at once.  The state for ``n`` blocks is a single
``(n, 16) uint8`` array and every round transform becomes a vectorized
table lookup / permutation / XOR over the whole batch.  This is the
"vectorize the inner loop" idiom from the HPC guides applied to the
cipher: the per-round Python overhead is paid 10 times total instead of
10 times per block.

The batch engine and the scalar engine in :mod:`repro.crypto.block`
are cross-checked against each other and against FIPS-197 / SP 800-38A
vectors in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.keyschedule import ROUNDS, ExpandedKey
from repro.crypto.sbox import (
    INV_SBOX_NP,
    INV_SHIFT_ROWS_NP,
    MUL2,
    MUL3,
    MUL9,
    MUL11,
    MUL13,
    MUL14,
    SBOX_NP,
    SHIFT_ROWS_NP,
)

__all__ = ["encrypt_blocks", "decrypt_blocks", "to_blocks", "from_blocks"]


def to_blocks(data: bytes | np.ndarray) -> np.ndarray:
    """View a 16-byte-aligned buffer as an ``(n, 16) uint8`` block array."""
    arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    if arr.size % 16 != 0:
        raise ValueError(f"buffer length {arr.size} is not a multiple of 16")
    return arr.reshape(-1, 16)


def from_blocks(blocks: np.ndarray) -> bytes:
    """Flatten an ``(n, 16)`` block array back to bytes."""
    return np.ascontiguousarray(blocks, dtype=np.uint8).tobytes()


def _mix_columns(state: np.ndarray) -> np.ndarray:
    # state: (n, 16) with flat index r + 4c -> reshape to (n, 4 cols, 4 rows)
    s = state.reshape(-1, 4, 4)
    s0, s1, s2, s3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    out = np.empty_like(s)
    out[:, :, 0] = MUL2[s0] ^ MUL3[s1] ^ s2 ^ s3
    out[:, :, 1] = s0 ^ MUL2[s1] ^ MUL3[s2] ^ s3
    out[:, :, 2] = s0 ^ s1 ^ MUL2[s2] ^ MUL3[s3]
    out[:, :, 3] = MUL3[s0] ^ s1 ^ s2 ^ MUL2[s3]
    return out.reshape(-1, 16)


def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
    s = state.reshape(-1, 4, 4)
    s0, s1, s2, s3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    out = np.empty_like(s)
    out[:, :, 0] = MUL14[s0] ^ MUL11[s1] ^ MUL13[s2] ^ MUL9[s3]
    out[:, :, 1] = MUL9[s0] ^ MUL14[s1] ^ MUL11[s2] ^ MUL13[s3]
    out[:, :, 2] = MUL13[s0] ^ MUL9[s1] ^ MUL14[s2] ^ MUL11[s3]
    out[:, :, 3] = MUL11[s0] ^ MUL13[s1] ^ MUL9[s2] ^ MUL14[s3]
    return out.reshape(-1, 16)


def encrypt_blocks(blocks: np.ndarray, key: ExpandedKey) -> np.ndarray:
    """ECB-encrypt an ``(n, 16) uint8`` array of blocks in one batch."""
    rk = key.as_array()
    state = np.bitwise_xor(np.asarray(blocks, dtype=np.uint8), rk[0])
    for r in range(1, ROUNDS):
        state = SBOX_NP[state]
        state = state[:, SHIFT_ROWS_NP]
        state = _mix_columns(state)
        state ^= rk[r]
    state = SBOX_NP[state]
    state = state[:, SHIFT_ROWS_NP]
    state ^= rk[ROUNDS]
    return state


def decrypt_blocks(blocks: np.ndarray, key: ExpandedKey) -> np.ndarray:
    """ECB-decrypt an ``(n, 16) uint8`` array of blocks in one batch."""
    rk = key.as_array()
    state = np.bitwise_xor(np.asarray(blocks, dtype=np.uint8), rk[ROUNDS])
    for r in range(ROUNDS - 1, 0, -1):
        state = state[:, INV_SHIFT_ROWS_NP]
        state = INV_SBOX_NP[state]
        state ^= rk[r]
        state = _inv_mix_columns(state)
    state = state[:, INV_SHIFT_ROWS_NP]
    state = INV_SBOX_NP[state]
    state ^= rk[0]
    return state
