"""Initialization-vector generation.

Algorithm 1 "Generate random Initial Vector IV".  Production use pulls
OS entropy; experiments pass a seeded generator so that every table in
EXPERIMENTS.md is bit-reproducible.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["generate_iv", "generate_nonce"]


def generate_iv(rng: np.random.Generator | None = None) -> bytes:
    """Return a fresh 16-byte IV.

    Parameters
    ----------
    rng:
        Optional seeded NumPy generator for deterministic experiment
        runs.  When ``None`` (the default), uses ``os.urandom``.
    """
    if rng is None:
        return os.urandom(16)
    return rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()


def generate_nonce(rng: np.random.Generator | None = None) -> bytes:
    """Return a fresh 8-byte CTR nonce (see :func:`generate_iv`)."""
    if rng is None:
        return os.urandom(8)
    return rng.integers(0, 256, size=8, dtype=np.uint8).tobytes()
