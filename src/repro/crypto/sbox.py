"""GF(2^8) arithmetic and the AES S-box, derived from first principles.

AES works in the field GF(2^8) with the reduction polynomial

    m(x) = x^8 + x^4 + x^3 + x + 1      (0x11B)

The S-box is *not* transcribed from the standard; it is constructed the
way FIPS-197 Section 5.1.1 defines it — multiplicative inverse in
GF(2^8) followed by the affine transform — so that the whole cipher is
auditable from this file alone.  ``tests/crypto/test_sbox.py`` checks
the derived tables against the published spot values.

Everything is exposed both as Python tuples (fast scalar indexing for
the single-block path) and as ``numpy.uint8`` arrays (fancy-indexing
lookups for the batched path).
"""

from __future__ import annotations

import numpy as np

#: AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
REDUCTION_POLY = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (carry-less, reduced mod 0x11B).

    This is the schoolbook shift-and-add ("Russian peasant")
    multiplication; it is only used at import time to build lookup
    tables, so clarity beats speed here.
    """
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= REDUCTION_POLY
        b >>= 1
    return result & 0xFF


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the ``n``-th power in GF(2^8)."""
    result = 1
    base = a
    while n:
        if n & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        n >>= 1
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); by convention inv(0) == 0.

    Uses Fermat's little theorem for GF(2^8): a^(2^8 - 2) = a^254 is
    the inverse of any nonzero ``a``.
    """
    if a == 0:
        return 0
    return gf_pow(a, 254)


def _affine(x: int) -> int:
    """The FIPS-197 affine transform applied after inversion.

    b'_i = b_i ^ b_{(i+4)%8} ^ b_{(i+5)%8} ^ b_{(i+6)%8} ^ b_{(i+7)%8} ^ c_i
    with c = 0x63.
    """
    result = 0
    for i in range(8):
        bit = (
            (x >> i)
            ^ (x >> ((i + 4) % 8))
            ^ (x >> ((i + 5) % 8))
            ^ (x >> ((i + 6) % 8))
            ^ (x >> ((i + 7) % 8))
            ^ (0x63 >> i)
        ) & 1
        result |= bit << i
    return result


def _build_sbox() -> tuple[tuple[int, ...], tuple[int, ...]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        s = _affine(gf_inv(x))
        sbox[x] = s
        inv_sbox[s] = x
    return tuple(sbox), tuple(inv_sbox)


#: Forward and inverse S-boxes as tuples (scalar path).
SBOX, INV_SBOX = _build_sbox()

#: S-boxes as uint8 arrays (batched path).
SBOX_NP = np.array(SBOX, dtype=np.uint8)
INV_SBOX_NP = np.array(INV_SBOX, dtype=np.uint8)


def _mul_table(c: int) -> np.ndarray:
    return np.array([gf_mul(c, x) for x in range(256)], dtype=np.uint8)


#: GF multiplication tables used by MixColumns / InvMixColumns.
MUL2 = _mul_table(2)
MUL3 = _mul_table(3)
MUL9 = _mul_table(9)
MUL11 = _mul_table(11)
MUL13 = _mul_table(13)
MUL14 = _mul_table(14)

#: Round constants for the key schedule: rcon[i] = x^i in GF(2^8).
RCON = tuple(gf_pow(2, i) for i in range(10))


def _build_t_tables() -> tuple[tuple[int, ...], ...]:
    """Build the four 32-bit encryption T-tables.

    T0[x] packs the MixColumns column produced by an S-boxed byte in
    row 0: (2·S[x], S[x], S[x], 3·S[x]) big-endian; T1..T3 are byte
    rotations of T0.  One AES round for an output column then collapses
    to four table lookups and four XORs (see ``block.encrypt_block``).
    """
    t0 = []
    for x in range(256):
        s = SBOX[x]
        word = (int(MUL2[s]) << 24) | (s << 16) | (s << 8) | int(MUL3[s])
        t0.append(word)
    t0 = tuple(t0)

    def rot8(w: int) -> int:
        return ((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF

    t1 = tuple(rot8(w) for w in t0)
    t2 = tuple(rot8(w) for w in t1)
    t3 = tuple(rot8(w) for w in t2)
    return t0, t1, t2, t3


T0, T1, T2, T3 = _build_t_tables()

#: ShiftRows as a flat-index permutation: ``out[i] = state[SHIFT_ROWS[i]]``
#: for the FIPS column-major byte layout (state[r][c] == flat[r + 4c]).
SHIFT_ROWS = tuple((i % 4) + 4 * (((i // 4) + (i % 4)) % 4) for i in range(16))
#: Inverse permutation for InvShiftRows.
INV_SHIFT_ROWS = tuple(SHIFT_ROWS.index(i) for i in range(16))

SHIFT_ROWS_NP = np.array(SHIFT_ROWS, dtype=np.intp)
INV_SHIFT_ROWS_NP = np.array(INV_SHIFT_ROWS, dtype=np.intp)
