"""Scalar AES-128 block cipher.

Two implementations live here:

* :func:`encrypt_block` — the classic four-T-table formulation.  Each
  round of the cipher collapses into 16 table lookups and 20 XORs on
  32-bit column words, which is the fastest thing pure Python can do
  per block.  CBC *encryption* must run block-by-block (ciphertext
  chaining), so this path is on the critical path of every scheme in
  the paper and is worth the table machinery.
* :func:`decrypt_block` — a plain state-matrix inverse cipher.  Bulk
  decryption goes through the vectorized :mod:`repro.crypto.batch`
  engine instead; this scalar version exists for small inputs and for
  cross-checking the batch engine in tests.
"""

from __future__ import annotations

from repro.crypto.keyschedule import ROUNDS, ExpandedKey
from repro.crypto.sbox import (
    INV_SBOX,
    INV_SHIFT_ROWS,
    MUL9,
    MUL11,
    MUL13,
    MUL14,
    SBOX,
    T0,
    T1,
    T2,
    T3,
)

__all__ = ["encrypt_block", "decrypt_block", "BLOCK_BYTES"]

BLOCK_BYTES = 16


def encrypt_block(block: bytes, key: ExpandedKey) -> bytes:
    """Encrypt one 16-byte block with the T-table cipher."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    words = key.words
    w0 = int.from_bytes(block[0:4], "big") ^ words[0]
    w1 = int.from_bytes(block[4:8], "big") ^ words[1]
    w2 = int.from_bytes(block[8:12], "big") ^ words[2]
    w3 = int.from_bytes(block[12:16], "big") ^ words[3]

    for r in range(1, ROUNDS):
        base = 4 * r
        e0 = (
            T0[(w0 >> 24) & 0xFF]
            ^ T1[(w1 >> 16) & 0xFF]
            ^ T2[(w2 >> 8) & 0xFF]
            ^ T3[w3 & 0xFF]
            ^ words[base]
        )
        e1 = (
            T0[(w1 >> 24) & 0xFF]
            ^ T1[(w2 >> 16) & 0xFF]
            ^ T2[(w3 >> 8) & 0xFF]
            ^ T3[w0 & 0xFF]
            ^ words[base + 1]
        )
        e2 = (
            T0[(w2 >> 24) & 0xFF]
            ^ T1[(w3 >> 16) & 0xFF]
            ^ T2[(w0 >> 8) & 0xFF]
            ^ T3[w1 & 0xFF]
            ^ words[base + 2]
        )
        e3 = (
            T0[(w3 >> 24) & 0xFF]
            ^ T1[(w0 >> 16) & 0xFF]
            ^ T2[(w1 >> 8) & 0xFF]
            ^ T3[w2 & 0xFF]
            ^ words[base + 3]
        )
        w0, w1, w2, w3 = e0, e1, e2, e3

    # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    base = 4 * ROUNDS
    f0 = (
        (SBOX[(w0 >> 24) & 0xFF] << 24)
        | (SBOX[(w1 >> 16) & 0xFF] << 16)
        | (SBOX[(w2 >> 8) & 0xFF] << 8)
        | SBOX[w3 & 0xFF]
    ) ^ words[base]
    f1 = (
        (SBOX[(w1 >> 24) & 0xFF] << 24)
        | (SBOX[(w2 >> 16) & 0xFF] << 16)
        | (SBOX[(w3 >> 8) & 0xFF] << 8)
        | SBOX[w0 & 0xFF]
    ) ^ words[base + 1]
    f2 = (
        (SBOX[(w2 >> 24) & 0xFF] << 24)
        | (SBOX[(w3 >> 16) & 0xFF] << 16)
        | (SBOX[(w0 >> 8) & 0xFF] << 8)
        | SBOX[w1 & 0xFF]
    ) ^ words[base + 2]
    f3 = (
        (SBOX[(w3 >> 24) & 0xFF] << 24)
        | (SBOX[(w0 >> 16) & 0xFF] << 16)
        | (SBOX[(w1 >> 8) & 0xFF] << 8)
        | SBOX[w2 & 0xFF]
    ) ^ words[base + 3]

    return (
        f0.to_bytes(4, "big")
        + f1.to_bytes(4, "big")
        + f2.to_bytes(4, "big")
        + f3.to_bytes(4, "big")
    )


def _add_round_key(state: list[int], key: ExpandedKey, r: int) -> None:
    rk = key.round_keys[r]
    for i in range(BLOCK_BYTES):
        state[i] ^= rk[i]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[INV_SHIFT_ROWS[i]] for i in range(BLOCK_BYTES)]


def _inv_mix_columns(state: list[int]) -> list[int]:
    out = [0] * BLOCK_BYTES
    for c in range(4):
        s0, s1, s2, s3 = state[4 * c : 4 * c + 4]
        out[4 * c + 0] = MUL14[s0] ^ MUL11[s1] ^ MUL13[s2] ^ MUL9[s3]
        out[4 * c + 1] = MUL9[s0] ^ MUL14[s1] ^ MUL11[s2] ^ MUL13[s3]
        out[4 * c + 2] = MUL13[s0] ^ MUL9[s1] ^ MUL14[s2] ^ MUL11[s3]
        out[4 * c + 3] = MUL11[s0] ^ MUL13[s1] ^ MUL9[s2] ^ MUL14[s3]
    return out


def decrypt_block(block: bytes, key: ExpandedKey) -> bytes:
    """Decrypt one 16-byte block (straight inverse cipher, FIPS-197 5.3)."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    state = list(block)
    _add_round_key(state, key, ROUNDS)
    for r in range(ROUNDS - 1, 0, -1):
        state = _inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        _add_round_key(state, key, r)
        state = _inv_mix_columns(state)
    state = _inv_shift_rows(state)
    state = [INV_SBOX[b] for b in state]
    _add_round_key(state, key, 0)
    return bytes(state)
