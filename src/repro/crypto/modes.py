"""Cipher modes of operation: CBC (paper's choice) and CTR, plus PKCS#7.

The paper's Algorithm 1 is textbook CBC:

    M_0 = IV xor B_0;  M_i = Cipher_{i-1} xor B_i;  Cipher_i = E_k(M_i)

* **CBC encryption** chains each block on the previous ciphertext, so
  it is inherently sequential and runs on the scalar T-table cipher.
* **CBC decryption** applies the block cipher to every ciphertext block
  *independently* (the chaining is only an XOR afterwards), so it runs
  on the batched engine:  P_i = D_k(C_i) xor C_{i-1}.
* **CTR** is embarrassingly parallel in both directions and is provided
  for the mode ablation study (``benchmarks/bench_ablation_modes.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core import trace
from repro.crypto import batch
from repro.crypto.block import BLOCK_BYTES, encrypt_block
from repro.crypto.keyschedule import ExpandedKey

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xcrypt",
]


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a multiple of 16 bytes (RFC 5652); always adds 1-16 bytes."""
    pad_len = BLOCK_BYTES - (len(data) % BLOCK_BYTES)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, validating every padding byte.

    Raises
    ------
    ValueError
        If the buffer is empty, misaligned, or the padding is malformed
        (the classic padding-oracle checks).
    """
    if not data or len(data) % BLOCK_BYTES != 0:
        raise ValueError("padded data must be a positive multiple of 16 bytes")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > BLOCK_BYTES:
        raise ValueError(f"invalid PKCS#7 padding length {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("corrupt PKCS#7 padding")
    return data[:-pad_len]


def cbc_encrypt(plaintext: bytes, key: ExpandedKey, iv: bytes) -> bytes:
    """AES-128-CBC encrypt with PKCS#7 padding (sequential by design).

    The chaining XOR runs on whole 16-byte blocks as single 128-bit
    ints — one ``int.from_bytes``/``to_bytes`` pair per block instead
    of a 16-element generator expression, which measurably moves the
    sequential Cmpr-Encr path.
    """
    if len(iv) != BLOCK_BYTES:
        raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
    padded = pkcs7_pad(plaintext)
    trace.count("aes.blocks_encrypted", len(padded) // BLOCK_BYTES)
    out = bytearray(len(padded))
    prev = int.from_bytes(iv, "big")
    for off in range(0, len(padded), BLOCK_BYTES):
        block = int.from_bytes(padded[off : off + BLOCK_BYTES], "big") ^ prev
        cipher = encrypt_block(block.to_bytes(BLOCK_BYTES, "big"), key)
        out[off : off + BLOCK_BYTES] = cipher
        prev = int.from_bytes(cipher, "big")
    return bytes(out)


def cbc_decrypt(ciphertext: bytes, key: ExpandedKey, iv: bytes) -> bytes:
    """AES-128-CBC decrypt (batched) and strip PKCS#7 padding."""
    if len(iv) != BLOCK_BYTES:
        raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_BYTES != 0:
        raise ValueError("ciphertext must be a positive multiple of 16 bytes")
    blocks = batch.to_blocks(ciphertext)
    trace.count("aes.blocks_decrypted", len(ciphertext) // BLOCK_BYTES)
    decrypted = batch.decrypt_blocks(blocks, key)
    # P_i = D(C_i) xor C_{i-1}; block 0 XORs the IV.
    chain = np.empty_like(blocks)
    chain[0] = np.frombuffer(iv, dtype=np.uint8)
    chain[1:] = blocks[:-1]
    plain = np.bitwise_xor(decrypted, chain)
    return pkcs7_unpad(batch.from_blocks(plain))


def _counter_blocks(nonce: bytes, n_blocks: int, initial: int = 0) -> np.ndarray:
    """Build CTR input blocks: 8-byte nonce || 8-byte big-endian counter."""
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    counters = (np.arange(initial, initial + n_blocks, dtype=np.uint64)).astype(">u8")
    blocks = np.empty((n_blocks, BLOCK_BYTES), dtype=np.uint8)
    blocks[:, :8] = np.frombuffer(nonce, dtype=np.uint8)
    blocks[:, 8:] = counters.view(np.uint8).reshape(n_blocks, 8)
    return blocks


def ctr_keystream(key: ExpandedKey, nonce: bytes, n_bytes: int) -> np.ndarray:
    """Generate ``n_bytes`` of CTR keystream in one batched encryption."""
    n_blocks = (n_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES
    trace.count("aes.blocks_keystream", n_blocks)
    stream = batch.encrypt_blocks(_counter_blocks(nonce, n_blocks), key)
    return stream.reshape(-1)[:n_bytes]


def ctr_xcrypt(data: bytes, key: ExpandedKey, nonce: bytes) -> bytes:
    """CTR encrypt/decrypt (the operation is its own inverse)."""
    buf = np.frombuffer(data, dtype=np.uint8)
    ks = ctr_keystream(key, nonce, buf.size)
    return np.bitwise_xor(buf, ks).tobytes()
