"""Cipher modes of operation: CBC (paper's choice) and CTR, plus PKCS#7.

The paper's Algorithm 1 is textbook CBC:

    M_0 = IV xor B_0;  M_i = Cipher_{i-1} xor B_i;  Cipher_i = E_k(M_i)

* **CBC encryption** chains each block on the previous ciphertext, so
  it is inherently sequential and runs on the scalar T-table cipher.
* **CBC decryption** applies the block cipher to every ciphertext block
  *independently* (the chaining is only an XOR afterwards), so it runs
  on the batched engine:  P_i = D_k(C_i) xor C_{i-1}.
* **CTR** is embarrassingly parallel in both directions and is the
  recommended throughput mode: the keystream depends only on
  ``(key, nonce, counter)``, so it is generated in bounded **segments**
  on the batched engine (peak temporary allocation stays at
  ``CTR_SEGMENT_BLOCKS`` blocks regardless of stream length) and can be
  precomputed before the plaintext exists — see
  :mod:`repro.crypto.pipelined`.

Counter layout: each CTR input block is ``nonce (8 bytes) || counter
(8-byte big-endian)``, counting up from 0.  A segment starting at block
``i`` simply passes ``initial=i``; segmentation never changes bytes.
"""

from __future__ import annotations

import hmac

import numpy as np

from repro.core import trace
from repro.crypto import batch
from repro.crypto.block import BLOCK_BYTES, encrypt_block
from repro.crypto.keyschedule import ExpandedKey

__all__ = [
    "CTR_SEGMENT_BLOCKS",
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xcrypt",
]

#: Blocks per batched keystream call (8192 blocks = 128 KiB).  Bounds
#: peak temporary allocation of the batched engine (which materializes
#: the full (n, 16) state per round) and sets the granularity at which
#: the prefetcher can overlap keystream generation with compression.
CTR_SEGMENT_BLOCKS = 8192

#: The counter field is 64 bits; ``initial + n_blocks`` past this wraps
#: back to counter 0 and would reuse keystream.
_COUNTER_SPACE = 1 << 64


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a multiple of 16 bytes (RFC 5652); always adds 1-16 bytes."""
    pad_len = BLOCK_BYTES - (len(data) % BLOCK_BYTES)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, validating every padding byte.

    Raises
    ------
    ValueError
        If the buffer is empty, misaligned, or the padding is malformed
        (the classic padding-oracle checks).
    """
    if not data or len(data) % BLOCK_BYTES != 0:
        raise ValueError("padded data must be a positive multiple of 16 bytes")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > BLOCK_BYTES:
        raise ValueError(f"invalid PKCS#7 padding length {pad_len}")
    # Constant-shape check: always compare the full 16-byte tail (the
    # non-padding prefix is compared against itself) instead of slicing
    # ``pad_len`` bytes, so neither the compared width nor an early
    # exit depends on the padding byte values.
    tail = data[-BLOCK_BYTES:]
    expected = tail[: BLOCK_BYTES - pad_len] + bytes([pad_len]) * pad_len
    if not hmac.compare_digest(tail, expected):
        raise ValueError("corrupt PKCS#7 padding")
    return data[:-pad_len]


def cbc_encrypt(plaintext: bytes, key: ExpandedKey, iv: bytes) -> bytes:
    """AES-128-CBC encrypt with PKCS#7 padding (sequential by design).

    The chaining XOR runs on whole 16-byte blocks as single 128-bit
    ints — one ``int.from_bytes``/``to_bytes`` pair per block instead
    of a 16-element generator expression, which measurably moves the
    sequential Cmpr-Encr path.
    """
    if len(iv) != BLOCK_BYTES:
        raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
    padded = pkcs7_pad(plaintext)
    trace.count("aes.blocks_encrypted", len(padded) // BLOCK_BYTES)
    out = bytearray(len(padded))
    prev = int.from_bytes(iv, "big")
    for off in range(0, len(padded), BLOCK_BYTES):
        block = int.from_bytes(padded[off : off + BLOCK_BYTES], "big") ^ prev
        cipher = encrypt_block(block.to_bytes(BLOCK_BYTES, "big"), key)
        out[off : off + BLOCK_BYTES] = cipher
        prev = int.from_bytes(cipher, "big")
    return bytes(out)


def cbc_decrypt(ciphertext: bytes, key: ExpandedKey, iv: bytes) -> bytes:
    """AES-128-CBC decrypt (batched) and strip PKCS#7 padding."""
    if len(iv) != BLOCK_BYTES:
        raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_BYTES != 0:
        raise ValueError("ciphertext must be a positive multiple of 16 bytes")
    blocks = batch.to_blocks(ciphertext)
    trace.count("aes.blocks_decrypted", len(ciphertext) // BLOCK_BYTES)
    decrypted = batch.decrypt_blocks(blocks, key)
    # P_i = D(C_i) xor C_{i-1}; block 0 XORs the IV.
    chain = np.empty_like(blocks)
    chain[0] = np.frombuffer(iv, dtype=np.uint8)
    chain[1:] = blocks[:-1]
    plain = np.bitwise_xor(decrypted, chain)
    return pkcs7_unpad(batch.from_blocks(plain))


def _check_counter_range(initial: int, n_blocks: int) -> None:
    """Reject counter ranges that would wrap the 64-bit counter field.

    Wrapping back to counter 0 re-emits the start of the stream —
    keystream reuse under the same (key, nonce) — so it is an error,
    not a modular feature.
    """
    if initial < 0:
        raise ValueError(f"CTR counter offset must be >= 0, got {initial}")
    if initial + n_blocks > _COUNTER_SPACE:
        raise ValueError(
            f"CTR counter overflow: initial={initial} + {n_blocks} blocks "
            f"exceeds the 64-bit counter space"
        )


def _counter_blocks(nonce: bytes, n_blocks: int, initial: int = 0) -> np.ndarray:
    """Build CTR input blocks: 8-byte nonce || 8-byte big-endian counter.

    ``initial`` offsets the counter, so a caller can build any window
    of the stream: ``_counter_blocks(nonce, k, i)`` is exactly rows
    ``[i, i+k)`` of the monolithic block sequence.
    """
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    _check_counter_range(initial, n_blocks)
    # Add a uint64 scalar to a 0-based arange rather than
    # arange(initial, initial + n_blocks): the latter's stop value hits
    # 2**64 (unrepresentable) for windows ending at the counter-space
    # edge, which the guard above deliberately allows.
    counters = (
        np.uint64(initial) + np.arange(n_blocks, dtype=np.uint64)
    ).astype(">u8")
    blocks = np.empty((n_blocks, BLOCK_BYTES), dtype=np.uint8)
    blocks[:, :8] = np.frombuffer(nonce, dtype=np.uint8)
    blocks[:, 8:] = counters.view(np.uint8).reshape(n_blocks, 8)
    return blocks


def ctr_keystream(
    key: ExpandedKey,
    nonce: bytes,
    n_bytes: int,
    initial: int = 0,
    *,
    segment_blocks: int = CTR_SEGMENT_BLOCKS,
) -> np.ndarray:
    """Generate ``n_bytes`` of CTR keystream starting at block ``initial``.

    Generation is segmented: at most ``segment_blocks`` counter blocks
    are materialized and batch-encrypted per call into a preallocated
    output, so peak temporary memory is bounded by the segment size
    rather than the stream length.  Segmentation is invisible in the
    output — any (``n_bytes``, ``segment_blocks``) choice yields bytes
    identical to the monolithic stream, and
    ``ctr_keystream(k, n, a + b)`` equals the concatenation of
    ``ctr_keystream(k, n, a)`` and
    ``ctr_keystream(k, n, b, initial=ceil(a / 16))`` when ``a`` is
    block-aligned.
    """
    if segment_blocks < 1:
        raise ValueError(f"segment_blocks must be >= 1, got {segment_blocks}")
    n_blocks = (n_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES
    # Validate the whole range up front so a multi-segment stream never
    # partially emits before hitting the wrap guard.
    _check_counter_range(initial, n_blocks)
    out = np.empty(n_bytes, dtype=np.uint8)
    n_segments = 0
    for seg_start in range(0, n_blocks, segment_blocks):
        seg_blocks = min(segment_blocks, n_blocks - seg_start)
        stream = batch.encrypt_blocks(
            _counter_blocks(nonce, seg_blocks, initial + seg_start), key
        ).reshape(-1)
        off = seg_start * BLOCK_BYTES
        take = min(n_bytes - off, seg_blocks * BLOCK_BYTES)
        out[off : off + take] = stream[:take]
        n_segments += 1
    trace.count_many(
        {"aes.blocks_keystream": n_blocks,
         "aes.keystream_segments": n_segments}
    )
    return out


def ctr_xcrypt(
    data: bytes, key: ExpandedKey, nonce: bytes, initial: int = 0
) -> bytes:
    """CTR encrypt/decrypt (the operation is its own inverse)."""
    buf = np.frombuffer(data, dtype=np.uint8)
    ks = ctr_keystream(key, nonce, buf.size, initial)
    return np.bitwise_xor(buf, ks).tobytes()
