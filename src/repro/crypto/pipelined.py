"""CTR keystream generation pipelined with compression.

The CTR keystream depends only on ``(key, nonce, counter)`` — none of
the plaintext — so it can be computed *before* the compressed stream
exists.  :class:`~repro.core.pipeline.SecureCompressor` exploits that:
in CTR mode it draws the nonce first, starts a
:class:`KeystreamPrefetcher` on a background thread, and only then runs
the SZ stages (prediction, quantization, Huffman packing).  By the time
the scheme's ``protect`` step needs to encrypt, most or all of the
keystream already exists; the AES batches ran concurrently with the
NumPy compression kernels (which release the GIL for the bulk of their
work, so the overlap is real even in-process).

Two pieces:

* :class:`KeystreamPrefetcher` — owns the background thread.  It
  generates bounded segments (:data:`repro.crypto.modes.
  CTR_SEGMENT_BLOCKS` blocks each) up to a scheme-provided *hint* of
  how much ciphertext to expect.  ``take(n)`` then blocks until enough
  stream exists, tops up any shortfall synchronously at the correct
  counter offset, and returns exactly ``n`` bytes.  The hint is purely
  a performance knob: under-estimates cost a synchronous top-up,
  over-estimates cost wasted AES batches; correctness never depends on
  it.
* :class:`PrefetchingAES` — an :class:`~repro.crypto.aes.AES128`
  stand-in handed to the scheme layer.  A CTR encryption under the
  prefetcher's nonce consumes the prefetched stream; everything else
  delegates to the wrapped cipher.  ``take`` is one-shot, which makes
  the nonce-hygiene rule (*one* (key, nonce) pair per plaintext —
  DESIGN.md) executable: a second CTR encryption under the same nonce
  raises instead of silently reusing keystream.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro.core import trace
from repro.crypto import modes
from repro.crypto.aes import AES128, EncryptionResult
from repro.crypto.block import BLOCK_BYTES
from repro.crypto.keyschedule import ExpandedKey

__all__ = ["KeystreamPrefetcher", "PrefetchingAES"]


class KeystreamPrefetcher:
    """Generate CTR keystream segments on a background thread.

    Parameters
    ----------
    key:
        Expanded AES key schedule.
    nonce:
        8-byte CTR nonce; the prefetcher covers exactly this stream.
    hint_bytes:
        Expected ciphertext size (see the scheme's ``keystream_hint``).
        The background thread stops after ``ceil(hint_bytes / 16)``
        blocks; ``take`` generates any shortfall in the foreground.
    segment_blocks:
        Blocks per batched segment; also the granularity at which an
        early ``take`` of a smaller stream can stop the thread.
    """

    def __init__(
        self,
        key: ExpandedKey,
        nonce: bytes,
        hint_bytes: int,
        *,
        segment_blocks: int = modes.CTR_SEGMENT_BLOCKS,
    ) -> None:
        if segment_blocks < 1:
            raise ValueError(
                f"segment_blocks must be >= 1, got {segment_blocks}"
            )
        self._key = key
        self.nonce = bytes(nonce)
        self._segment_blocks = segment_blocks
        self._target_blocks = max(
            0, (int(hint_bytes) + BLOCK_BYTES - 1) // BLOCK_BYTES
        )
        self._segments: list[np.ndarray] = []
        self._blocks_done = 0
        self._busy_seconds = 0.0
        self._done = False
        self._taken = False
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        #: Filled by :meth:`take`: prefetched_blocks / overlap_ms / wait_ms.
        self.stats: dict[str, float] | None = None

    def start(self) -> "KeystreamPrefetcher":
        """Launch the background thread (idempotent start is an error)."""
        if self._thread is not None:
            raise RuntimeError("prefetcher already started")
        self._thread = threading.Thread(
            target=self._run, name="ctr-keystream-prefetch", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            with self._cond:
                remaining = self._target_blocks - self._blocks_done
                if remaining <= 0:
                    self._done = True
                    self._cond.notify_all()
                    return
                todo = min(self._segment_blocks, remaining)
                initial = self._blocks_done
            t0 = perf_counter()
            segment = modes.ctr_keystream(
                self._key,
                self.nonce,
                todo * BLOCK_BYTES,
                initial,
                segment_blocks=self._segment_blocks,
            )
            elapsed = perf_counter() - t0
            with self._cond:
                self._segments.append(segment)
                self._blocks_done += todo
                self._busy_seconds += elapsed
                self._cond.notify_all()

    def take(self, n_bytes: int) -> np.ndarray:
        """Return keystream bytes ``[0, n_bytes)``; one-shot.

        Blocks until the background thread has covered the request (or
        finished its hint), shrinks the target so the thread stops
        early when the request is smaller than the hint, and generates
        any shortfall synchronously starting at the first missing
        block.  A second call raises: one (key, nonce) pair must never
        cover two plaintexts.
        """
        with self._cond:
            if self._taken:
                raise RuntimeError(
                    "CTR keystream for this nonce was already consumed; "
                    "a (key, nonce) pair must never encrypt two plaintexts"
                )
            self._taken = True
            if self._thread is None:
                # Never started: nothing will ever be produced in the
                # background; serve the whole request synchronously.
                self._done = True
            # Work completed so far ran concurrently with compression.
            overlap_seconds = self._busy_seconds
            n_blocks = (int(n_bytes) + BLOCK_BYTES - 1) // BLOCK_BYTES
            if n_blocks < self._target_blocks:
                self._target_blocks = n_blocks
            wait_t0 = perf_counter()
            while not self._done and self._blocks_done < self._target_blocks:
                self._cond.wait()
            wait_seconds = perf_counter() - wait_t0
            segments = list(self._segments)
            produced = self._blocks_done
            busy_seconds = self._busy_seconds
        self.stats = {
            "prefetched_blocks": produced,
            "overlap_ms": overlap_seconds * 1e3,
            "wait_ms": wait_seconds * 1e3,
        }
        # Wall time the prefetch thread spent generating keystream —
        # work that *can* hide under compression.  Rounded up so the
        # counter registers whenever a prefetcher ran at all.
        if produced:
            trace.count(
                "aes.keystream_prefetch_ms", max(1, round(busy_seconds * 1e3))
            )
        parts = segments
        shortfall = n_bytes - produced * BLOCK_BYTES
        if shortfall > 0:
            parts = parts + [
                modes.ctr_keystream(
                    self._key,
                    self.nonce,
                    shortfall,
                    produced,
                    segment_blocks=self._segment_blocks,
                )
            ]
        if not parts:
            return np.empty(0, dtype=np.uint8)
        out = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return out[:n_bytes]

    def cancel(self) -> None:
        """Stop the background thread and discard unconsumed stream."""
        with self._cond:
            self._target_blocks = min(self._target_blocks, self._blocks_done)
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()


class PrefetchingAES:
    """AES façade that substitutes prefetched CTR keystream.

    Handed to the scheme layer in place of the real
    :class:`~repro.crypto.aes.AES128`: a CTR ``encrypt`` under the
    prefetcher's nonce XORs against the precomputed stream, everything
    else (CBC, other nonces, decryption) delegates to the wrapped
    cipher.  Consuming the stream is one-shot — see
    :meth:`KeystreamPrefetcher.take`.
    """

    def __init__(self, inner: AES128, prefetcher: KeystreamPrefetcher) -> None:
        self._inner = inner
        self._prefetcher = prefetcher

    @property
    def schedule(self) -> ExpandedKey:
        return self._inner.schedule

    def encrypt(
        self, plaintext: bytes, *, mode: str = "cbc", iv: bytes | None = None
    ) -> EncryptionResult:
        if mode == "ctr" and iv == self._prefetcher.nonce:
            ks = self._prefetcher.take(len(plaintext))
            buf = np.frombuffer(plaintext, dtype=np.uint8)
            ct = np.bitwise_xor(buf, ks).tobytes()
            return EncryptionResult(ciphertext=ct, iv=bytes(iv), mode="ctr")
        return self._inner.encrypt(plaintext, mode=mode, iv=iv)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
