"""From-scratch AES-128 substrate used by the secure-compression schemes.

The paper encrypts with AES-128 in CBC mode ("light-weight cryptography
... AES-128 Cipher Block Chaining (CBC) mode", Section V-A).  No binary
crypto library is assumed; everything here is implemented from the
FIPS-197 / SP 800-38A specifications and validated against the published
test vectors in ``tests/crypto``.

Layout
------
``sbox``
    GF(2^8) arithmetic, the S-box and its inverse, and the
    multiplication tables used by MixColumns (all *derived*, not
    transcribed, so the construction is auditable).
``keyschedule``
    FIPS-197 key expansion for AES-128.
``block``
    Scalar single-block cipher (T-table encryption path plus a
    plain state-matrix implementation of both directions).
``batch``
    NumPy-vectorized ECB engine that processes an ``(n, 16)`` array of
    blocks per round — the HPC path used by CBC-decrypt and CTR, where
    blocks are independent.
``modes``
    CBC and CTR modes with PKCS#7 padding.  CBC encryption is
    inherently sequential (each block chains on the previous
    ciphertext), CBC decryption and CTR are batched; the CTR keystream
    is generated in bounded segments of ``CTR_SEGMENT_BLOCKS`` blocks.
``pipelined``
    CTR keystream prefetching: generates keystream segments on a
    background thread *while compression runs* (the stream depends only
    on key/nonce/counter, not the plaintext) — the throughput fast
    path used by ``SecureCompressor(cipher_mode="ctr")``.
``rng``
    IV generation (OS entropy, or deterministic for reproducible runs).
``aes``
    The :class:`~repro.crypto.aes.AES128` façade the rest of the
    library uses.
"""

from repro.crypto.aes import AES128, EncryptionResult
from repro.crypto.modes import (
    CTR_SEGMENT_BLOCKS,
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_xcrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.pipelined import KeystreamPrefetcher, PrefetchingAES
from repro.crypto.rng import generate_iv

__all__ = [
    "AES128",
    "CTR_SEGMENT_BLOCKS",
    "EncryptionResult",
    "KeystreamPrefetcher",
    "PrefetchingAES",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xcrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
    "generate_iv",
]
