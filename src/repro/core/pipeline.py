"""The public façade: :class:`SecureCompressor`.

Couples the SZ-1.4 substrate, an AES-128 cipher, and one of the four
schemes into a single compress/decompress object, producing
self-describing SECZ containers and the per-stage timing / size
statistics every experiment in the paper reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import container as cont
from repro.core import integrity
from repro.core import trace
from repro.core.schemes import Scheme, get_scheme
from repro.core.timing import StageTimes
from repro.crypto import pipelined
from repro.crypto import rng as crypto_rng
from repro.crypto.aes import AES128
from repro.sz.compressor import CompressionStats, SZCompressor, SZFrame
from repro.sz.lossless import DEFAULT_LEVEL
from repro.sz.quantizer import ErrorBound

__all__ = ["SecureCompressor", "CompressResult"]


@dataclass(frozen=True)
class CompressResult:
    """Everything one secure compression produced.

    Attributes
    ----------
    container:
        The complete SECZ byte stream (what you store or transmit).
    sz_stats:
        The inner compressor's statistics (predictable fraction,
        section sizes, SZ stage times — Figs. 2–4).
    times:
        Combined stage times for SZ + scheme (encrypt/lossless) —
        Fig. 7 and Tables III–V.
    encrypted_bytes:
        How many plaintext bytes went through AES (Sec. V-D's
        encryption-effort comparison).
    scheme:
        Registry name of the scheme used.
    """

    container: bytes
    sz_stats: CompressionStats
    times: StageTimes
    encrypted_bytes: int
    scheme: str

    @property
    def compressed_bytes(self) -> int:
        """Final container size in bytes."""
        return len(self.container)


class SecureCompressor:
    """Compress-and-protect floating-point fields (the paper's system).

    Parameters
    ----------
    scheme:
        ``"none"``, ``"cmpr_encr"``, ``"encr_quant"`` or
        ``"encr_huffman"`` (the paper's recommendation).
    error_bound:
        Absolute bound (float) or an :class:`ErrorBound`.
    key:
        16-byte AES-128 key; required by every scheme except ``none``.
    cipher_mode:
        ``"cbc"`` (the paper's Algorithm-1 choice and the fidelity
        default — emitted frames match the reproduction tables byte
        for byte) or ``"ctr"`` — the recommended **throughput** mode:
        encryption runs on the batched engine and the keystream is
        precomputed concurrently with compression (see
        :mod:`repro.crypto.pipelined`).
    predictor, block_size, coverage, encode_workers, depth_limit:
        Forwarded to :class:`~repro.sz.compressor.SZCompressor`
        (``encode_workers`` packs v3 Huffman lanes on a thread pool
        with byte-identical output for any worker count;
        ``depth_limit`` opts into length-limited canonical codes so
        decode never leaves the fast table).
    zlib_level:
        Lossless-stage effort (0-9).
    authenticate:
        Wrap the container with an encrypt-then-MAC HMAC-SHA256 tag
        (see :mod:`repro.core.integrity`).  Tampering — including the
        single-bit flips of the paper's Sec. III-A motivation — is then
        always detected before any decoding.  Requires a key.
    random_state:
        Optional seeded ``numpy.random.Generator`` for deterministic
        IVs (experiments); production defaults to OS entropy.
    allow_nonce_reuse:
        Seeded CTR runs derive *deterministic* nonces: two runs with
        the same seed and key encrypt different plaintexts under one
        (key, nonce) pair, which leaks their XOR.  The constructor
        therefore refuses ``cipher_mode="ctr"`` + ``random_state``
        unless this flag is set explicitly (reproducible experiments
        on non-sensitive data only — see DESIGN.md).  CBC is unaffected
        (a repeated CBC IV leaks only equal-prefix information, and the
        paper's reproduction tables require seeded CBC runs).
    keystream_prefetch:
        In CTR mode, precompute the keystream on a background thread
        while the SZ stages run (on by default; output bytes are
        identical either way — the flag exists for measurement).

    Examples
    --------
    >>> import numpy as np
    >>> sc = SecureCompressor(scheme="encr_huffman", error_bound=1e-4,
    ...                       key=b"0123456789abcdef")
    >>> data = np.sin(np.linspace(0, 6, 4096, dtype=np.float32))
    >>> result = sc.compress(data)
    >>> restored = sc.decompress(result.container)
    >>> bool(np.max(np.abs(restored - data)) <= 1e-4)
    True
    """

    def __init__(
        self,
        scheme: str = "encr_huffman",
        error_bound: ErrorBound | float = 1e-3,
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        predictor: str = "auto",
        block_size: int = 8,
        coverage: float = 0.995,
        encode_workers: int = 1,
        depth_limit: int | None = None,
        zlib_level: int = DEFAULT_LEVEL,
        authenticate: bool = False,
        random_state: np.random.Generator | None = None,
        allow_nonce_reuse: bool = False,
        keystream_prefetch: bool = True,
    ) -> None:
        self._scheme: Scheme = get_scheme(scheme)
        if cipher_mode not in cont.CIPHER_MODES:
            raise ValueError(f"unknown cipher mode {cipher_mode!r}")
        if (
            cipher_mode == "ctr"
            and random_state is not None
            and not allow_nonce_reuse
        ):
            raise ValueError(
                "cipher_mode='ctr' with a seeded random_state derives "
                "deterministic nonces: re-running with the same seed and "
                "key would encrypt two plaintexts under one (key, nonce) "
                "pair and leak their XOR. Pass allow_nonce_reuse=True "
                "only for reproducible experiments on non-sensitive data "
                "(DESIGN.md), or drop random_state to use OS entropy."
            )
        self.cipher_mode = cipher_mode
        self.allow_nonce_reuse = allow_nonce_reuse
        self.keystream_prefetch = keystream_prefetch
        if self._scheme.requires_key or authenticate:
            if key is None:
                need = "authentication" if authenticate else f"scheme {scheme!r}"
                raise ValueError(f"{need} requires a 16-byte key; pass key=")
            self._cipher: AES128 | None = AES128(key)
        else:
            self._cipher = AES128(key) if key is not None else None
        self.authenticate = authenticate
        self._master_key = key
        self._sz = SZCompressor(
            error_bound,
            predictor=predictor,
            block_size=block_size,
            coverage=coverage,
            encode_workers=encode_workers,
            depth_limit=depth_limit,
        )
        self.zlib_level = zlib_level
        self._random_state = random_state

    @property
    def scheme(self) -> str:
        """The active scheme's registry name."""
        return self._scheme.name

    @property
    def sz(self) -> SZCompressor:
        """The underlying SZ compressor (read-mostly)."""
        return self._sz

    def _fresh_iv(self) -> bytes:
        if self.cipher_mode == "ctr":
            return crypto_rng.generate_nonce(self._random_state)
        return crypto_rng.generate_iv(self._random_state)

    # ------------------------------------------------------------------

    def compress(
        self, data: np.ndarray, *, tracer: trace.Tracer | None = None
    ) -> CompressResult:
        """Compress ``data`` and apply the scheme's protection.

        Pass a :class:`repro.core.trace.Tracer` to record a full span
        tree (see docs/OBSERVABILITY.md); the flat ``times`` in the
        result is populated either way.
        """
        tr = trace.tracer_for(tracer)
        times = StageTimes()
        with tr.span(
            "compress", bytes_in=data.nbytes, mirror=times.seconds,
            scheme=self._scheme.name, cipher_mode=self.cipher_mode,
        ) as root:
            # The IV/nonce is drawn *before* the SZ stages: in CTR mode
            # the keystream depends only on (key, nonce, counter), so a
            # background thread can generate it while compression runs.
            iv = self._fresh_iv()
            cipher = self._cipher
            prefetcher = None
            if (
                self.cipher_mode == "ctr"
                and cipher is not None
                and self.keystream_prefetch
            ):
                hint = self._scheme.keystream_hint(int(data.nbytes))
                if hint > 0:
                    prefetcher = pipelined.KeystreamPrefetcher(
                        cipher.schedule, iv, hint
                    ).start()
                    cipher = pipelined.PrefetchingAES(cipher, prefetcher)
            try:
                frame = self._sz.compress(data, tracer=tr)
                times.merge(frame.stats.stage_seconds)
                with tr.span("protect") as psp:
                    out_sections = self._scheme.protect(
                        frame.sections, cipher, iv, self.cipher_mode,
                        self.zlib_level, tr if tr.enabled else times,
                    )
                    psp.bytes_out = sum(
                        len(v) for v in out_sections.values()
                    )
            finally:
                if prefetcher is not None:
                    prefetcher.cancel()
            if (
                tr.enabled
                and prefetcher is not None
                and prefetcher.stats is not None
            ):
                root.attrs["keystream_overlap_ms"] = round(
                    prefetcher.stats["overlap_ms"], 3
                )
                root.attrs["keystream_wait_ms"] = round(
                    prefetcher.stats["wait_ms"], 3
                )
            blob = cont.pack_container(
                self._scheme.scheme_id, self.cipher_mode, iv, out_sections
            )
            if self.authenticate:
                blob = integrity.authenticate(blob, self._master_key)
            root.bytes_out = len(blob)
        return CompressResult(
            container=blob,
            sz_stats=frame.stats,
            times=times,
            encrypted_bytes=self._scheme.encrypted_bytes(frame.sections),
            scheme=self._scheme.name,
        )

    def decompress(
        self, blob: bytes, *, tracer: trace.Tracer | None = None
    ) -> np.ndarray:
        """Decompress a SECZ container back to the bounded field."""
        data, _ = self.decompress_with_times(blob, tracer=tracer)
        return data

    def decompress_with_times(
        self, blob: bytes, *, tracer: trace.Tracer | None = None
    ) -> tuple[np.ndarray, StageTimes]:
        """Like :meth:`decompress`, also returning stage times.

        Authenticated containers (``SECA`` magic) are verified before
        any parsing; verification failure raises
        :class:`~repro.core.integrity.AuthenticationError`.
        """
        tr = trace.tracer_for(tracer)
        times = StageTimes()
        with tr.span(
            "decompress", bytes_in=len(blob), mirror=times.seconds,
            scheme=self._scheme.name,
        ) as root:
            if blob[: len(integrity.MAGIC)] == integrity.MAGIC:
                if self._master_key is None:
                    raise ValueError(
                        "authenticated container requires a key for "
                        "verification"
                    )
                blob = integrity.verify_and_strip(blob, self._master_key)
            elif self.authenticate:
                raise integrity.AuthenticationError(
                    "expected an authenticated (SECA) container"
                )
            parsed = cont.parse_container(blob)
            scheme = get_scheme(parsed.scheme_id)
            if scheme.name != self._scheme.name:
                raise ValueError(
                    f"container was written with scheme {scheme.name!r} but "
                    f"this compressor is configured for {self._scheme.name!r}"
                )
            with tr.span("unprotect"):
                frame_sections = scheme.unprotect(
                    parsed.sections, self._cipher, parsed.iv,
                    parsed.cipher_mode, tr if tr.enabled else times,
                )
            frame = SZFrame(
                sections=frame_sections, stats=_placeholder_stats()
            )
            decode_times: dict[str, float] = {}
            data = self._sz.decompress(frame, decode_times, tracer=tr)
            times.merge(decode_times)
            root.bytes_out = data.nbytes
        return data, times


def _placeholder_stats() -> CompressionStats:
    """Stats stub for frames reassembled at decompression time."""
    return CompressionStats(
        n_elements=0,
        eb_abs=0.0,
        predictor="",
        radius=0,
        unpredictable_count=0,
        section_bytes={},
    )
