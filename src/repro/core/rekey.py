"""Key rotation without recompression.

Long-lived archives outlive keys (personnel changes, key-compromise
drills, mandated rotation periods).  Because the schemes encrypt
*sections*, a container can be moved to a new key by decrypting and
re-encrypting only its ciphertext section — the expensive SZ stages
never rerun.  For Encr-Huffman that means re-encrypting a few hundred
bytes of deflated tree to rotate the protection of a whole archive.

The rotated container gets a fresh IV (never reuse an IV under a new
key) and, when the input was authenticated, a recomputed tag under the
new key.
"""

from __future__ import annotations

import numpy as np

from repro.core import container as cont
from repro.core import integrity
from repro.core.schemes import get_scheme
from repro.core.timing import StageTimes
from repro.crypto import rng as crypto_rng
from repro.crypto.aes import AES128

__all__ = ["rotate_key"]


def rotate_key(
    blob: bytes,
    old_key: bytes,
    new_key: bytes,
    *,
    random_state: np.random.Generator | None = None,
) -> bytes:
    """Re-protect a container under ``new_key``.

    Works for every scheme (``none`` containers pass through, modulo
    re-authentication).  Raises ``ValueError`` on a wrong ``old_key``
    or corrupt container.
    """
    was_authenticated = blob[: len(integrity.MAGIC)] == integrity.MAGIC
    if was_authenticated:
        blob = integrity.verify_and_strip(blob, old_key)
    parsed = cont.parse_container(blob)
    scheme = get_scheme(parsed.scheme_id)

    if scheme.requires_key:
        old_cipher = AES128(old_key)
        new_cipher = AES128(new_key)
        sections = scheme.unprotect(
            parsed.sections, old_cipher, parsed.iv, parsed.cipher_mode,
            StageTimes(),
        )
        iv = (
            crypto_rng.generate_nonce(random_state)
            if parsed.cipher_mode == "ctr"
            else crypto_rng.generate_iv(random_state)
        )
        out_sections = scheme.protect(
            sections, new_cipher, iv, parsed.cipher_mode,
            6, StageTimes(),
        )
        out = cont.pack_container(
            scheme.scheme_id, parsed.cipher_mode, iv, out_sections
        )
    else:
        out = blob
    if was_authenticated:
        out = integrity.authenticate(out, new_key)
    return out
