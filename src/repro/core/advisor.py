"""Scheme selection advisor.

The paper's conclusion is conditional: "the cost of Encr-Quant varies
with the dataset's properties and requires cautious selection", while
Encr-Huffman is broadly safe and Cmpr-Encr buys full-stream randomness
at bandwidth cost.  This module operationalizes that guidance: given a
(sampled) trial compression of the data, it scores each scheme against
the user's stated requirements and explains the choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sz.compressor import SZCompressor

__all__ = ["SchemeRecommendation", "recommend_scheme"]


@dataclass(frozen=True)
class SchemeRecommendation:
    """The advisor's verdict plus the evidence behind it."""

    scheme: str
    reasons: tuple[str, ...]
    predictable_fraction: float
    tree_fraction_of_quant: float
    quant_fraction_of_stream: float


def recommend_scheme(
    data: np.ndarray,
    error_bound: float,
    *,
    require_full_randomness: bool = False,
    ratio_critical: bool = True,
    sample_elements: int = 1 << 16,
) -> SchemeRecommendation:
    """Recommend a combination scheme for ``data`` at ``error_bound``.

    Parameters
    ----------
    data:
        The field (or a representative slice of it); at most
        ``sample_elements`` values are trial-compressed.
    error_bound:
        The absolute bound the real compression will use.
    require_full_randomness:
        True when the *whole* output stream must pass randomness tests
        (e.g. policy requires ciphertext-indistinguishable storage).
        Only Cmpr-Encr guarantees that (paper Sec. V-F).
    ratio_critical:
        True when storage budget is strict; biases away from
        Encr-Quant on compressible data (paper Fig. 5).

    Notes
    -----
    Decision rules distilled from Sec. V:

    * full-stream randomness required → ``cmpr_encr`` (only scheme that
      passes all NIST tests unconditionally);
    * highly predictable data + strict ratio → ``encr_huffman``
      (Encr-Quant cratered QI/Q2 to 5–20 % of the original CR);
    * mostly-unpredictable data (Nyx-like) → the three schemes cost
      about the same; ``encr_huffman`` still wins slightly on time;
    * otherwise → ``encr_huffman`` (the paper's overall recommendation).
    """
    sample = np.ravel(data)
    if sample.size > sample_elements:
        sample = sample[:: sample.size // sample_elements]
    # Trial compression on the (1-D) sample: cheap and enough for the
    # fractions the rules need.
    frame = SZCompressor(error_bound).compress(np.ascontiguousarray(sample))
    stats = frame.stats
    quant_fraction = (
        stats.quant_array_bytes / frame.payload_bytes if frame.payload_bytes else 0.0
    )

    reasons: list[str] = []
    if require_full_randomness:
        reasons.append(
            "full-stream randomness required: only Cmpr-Encr passes all "
            "NIST SP800-22 tests regardless of data (paper Sec. V-F)"
        )
        scheme = "cmpr_encr"
    elif stats.predictable_fraction > 0.95 and ratio_critical:
        reasons.append(
            f"{stats.predictable_fraction:.1%} of points are predictable: "
            "encrypting the quantization array before zlib would destroy "
            "the ratio (paper Fig. 5, QI/Q2 cases)"
        )
        reasons.append(
            f"the Huffman tree is only {stats.tree_fraction_of_quant:.2%} of "
            "the quantization array, so Encr-Huffman is nearly free"
        )
        scheme = "encr_huffman"
    elif stats.predictable_fraction < 0.3:
        reasons.append(
            f"only {stats.predictable_fraction:.1%} of points are "
            "predictable (Nyx-like): all three schemes cost about the same "
            "(paper Sec. V-D); Encr-Huffman still avoids the encryption "
            "pass over the full stream"
        )
        scheme = "encr_huffman"
    else:
        reasons.append(
            "no special constraints: Encr-Huffman keeps >99% of the CR and "
            "beats plain SZ bandwidth (paper Sec. V conclusion)"
        )
        scheme = "encr_huffman"
    return SchemeRecommendation(
        scheme=scheme,
        reasons=tuple(reasons),
        predictable_fraction=stats.predictable_fraction,
        tree_fraction_of_quant=stats.tree_fraction_of_quant,
        quant_fraction_of_stream=quant_fraction,
    )
