"""The paper's contribution: secure error-bounded lossy compression.

Three strategies for combining SZ with AES-128-CBC (paper Sec. IV):

``cmpr_encr``
    The state-of-the-art baseline: SZ compresses (including the final
    zlib pass), then the *entire* compressed stream is encrypted.
``encr_quant``
    White-box: the Huffman-encoded quantization array (tree +
    codewords + metadata) is encrypted *before* the zlib pass; the
    unpredictable/regression side channels stay plaintext.
``encr_huffman``
    White-box, light-weight: only the serialized Huffman tree is
    encrypted; without it, recovering the codeword stream is NP-hard.
``none``
    Plain SZ, the no-encryption baseline every overhead table
    normalizes against.

:class:`~repro.core.pipeline.SecureCompressor` is the public façade:

>>> import numpy as np
>>> from repro.core import SecureCompressor
>>> sc = SecureCompressor(scheme="encr_huffman", error_bound=1e-3,
...                       key=bytes(range(16)))
>>> data = np.linspace(0, 1, 8**3, dtype=np.float32).reshape(8, 8, 8)
>>> result = sc.compress(data)
>>> out = sc.decompress(result.container)
>>> bool(np.max(np.abs(out - data)) <= 1e-3)
True
"""

from repro.core.advisor import SchemeRecommendation, recommend_scheme
from repro.core.container import Container, pack_container, parse_container
from repro.core.metrics import (
    bandwidth_mb_s,
    compression_ratio,
    normalized_cr,
    overhead_percent,
)
from repro.core.pipeline import CompressResult, SecureCompressor
from repro.core.schemes import SCHEMES, Scheme, get_scheme
from repro.core.trace import Tracer

__all__ = [
    "SecureCompressor",
    "CompressResult",
    "Tracer",
    "Scheme",
    "SCHEMES",
    "get_scheme",
    "Container",
    "pack_container",
    "parse_container",
    "compression_ratio",
    "bandwidth_mb_s",
    "overhead_percent",
    "normalized_cr",
    "recommend_scheme",
    "SchemeRecommendation",
]
