"""The three combination strategies (paper Sec. IV) plus the plain-SZ
baseline, all sharing one section-level code path.

A scheme is a pair of byte-level transforms between an
:class:`~repro.sz.compressor.SZFrame`'s sections and the container's
sections:

========================  =============================================
``none``                  zlib(meta‖tree‖codes‖unpred‖coeffs‖exact)
``cmpr_encr``             AES( zlib(all sections) )          [Sec. IV-A]
``encr_quant``            zlib( AES(meta‖tree‖codes) ‖ rest) [Sec. IV-B]
``encr_huffman``          zlib( AES(tree) ‖ rest )           [Sec. IV-C]
========================  =============================================

The placement differences are exactly the paper's Figure 1 dashed
lines: Cmpr-Encr encrypts *after* the lossless stage, the two
white-box schemes encrypt *before* it, which is why Encr-Quant's
randomized quantization array hurts the zlib pass while Encr-Huffman's
tiny randomized tree barely registers.
"""

from __future__ import annotations

import abc

from repro.core import container as cont
from repro.core import trace
from repro.core.timing import StageTimes
from repro.crypto.aes import AES128
from repro.sz import lossless
from repro.sz.compressor import SECTION_ORDER

__all__ = ["Scheme", "SCHEMES", "get_scheme", "NoEncryption", "CmprEncr",
           "EncrQuant", "EncrHuffman"]


class Scheme(abc.ABC):
    """A secure-compression strategy over frame sections."""

    #: Registry name (also the CLI name).
    name: str
    #: Wire id stored in the container header.
    scheme_id: int
    #: False only for the plain-SZ baseline.
    requires_key: bool = True

    @abc.abstractmethod
    def protect(
        self,
        frame_sections: dict[str, bytes],
        cipher: AES128 | None,
        iv: bytes,
        mode: str,
        level: int,
        times: "StageTimes | trace.Tracer | dict | None",
    ) -> dict[str, bytes]:
        """Transform frame sections into container sections.

        ``times`` accepts a :class:`~repro.core.timing.StageTimes`, a
        :class:`~repro.core.trace.Tracer`, a plain ``{stage: seconds}``
        dict, or ``None`` — see :func:`repro.core.trace.tracer_for`.
        """

    @abc.abstractmethod
    def unprotect(
        self,
        sections: dict[str, bytes],
        cipher: AES128 | None,
        iv: bytes,
        mode: str,
        times: "StageTimes | trace.Tracer | dict | None",
    ) -> dict[str, bytes]:
        """Invert :meth:`protect` back to frame sections."""

    def encrypted_bytes(self, frame_sections: dict[str, bytes]) -> int:
        """Plaintext byte count this scheme would feed to AES.

        Used by the bandwidth analysis (paper Sec. V-D compares the 8.8
        MB Encr-Quant encrypts against Cmpr-Encr's 5.3 MB compressed
        stream for CLOUDf48).  For ``cmpr_encr`` this is an upper bound
        (pre-zlib size); the post-zlib number is in the result stats.
        """
        return 0

    def keystream_hint(self, n_raw_bytes: int) -> int:
        """Expected CTR ciphertext size for an ``n_raw_bytes`` input.

        Drives the keystream prefetcher
        (:mod:`repro.crypto.pipelined`): a background thread generates
        up to this many keystream bytes while the SZ stages run.  Pure
        performance knob — an under-estimate costs a synchronous
        top-up at encrypt time, an over-estimate costs wasted AES
        batches; 0 disables prefetch (nothing to encrypt).
        """
        return 0

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def _check_cipher(cipher: AES128 | None) -> AES128:
        if cipher is None:
            raise ValueError("this scheme requires an AES key")
        return cipher

    @staticmethod
    def _frame_blob(frame_sections: dict[str, bytes]) -> bytes:
        ordered = {k: frame_sections[k] for k in SECTION_ORDER}
        return cont.pack_sections(ordered)

    @staticmethod
    def _take(sections: dict[str, bytes], name: str) -> bytes:
        """Fetch a section an attacker-controlled container must carry.

        A corrupted section *name* parses fine but leaves the expected
        key absent; that must surface as the parse-failure ValueError
        the fuzzing contract promises, not a KeyError.
        """
        try:
            return sections[name]
        except KeyError:
            raise ValueError(
                f"container is missing required section {name!r}"
            ) from None


class NoEncryption(Scheme):
    """Plain SZ — the normalization baseline of every table."""

    name = "none"
    scheme_id = 0
    requires_key = False

    def protect(self, frame_sections, cipher, iv, mode, level, times):
        tr = trace.tracer_for(times)
        blob = self._frame_blob(frame_sections)
        with tr.stage("lossless", bytes_in=len(blob)) as sp:
            z = lossless.compress(blob, level)
            sp.bytes_out = len(z)
        return {"zblob": z}

    def unprotect(self, sections, cipher, iv, mode, times):
        tr = trace.tracer_for(times)
        z = self._take(sections, "zblob")
        with tr.stage("lossless", bytes_in=len(z)) as sp:
            blob = lossless.decompress(z)
            sp.bytes_out = len(blob)
        return cont.unpack_sections(blob)


class CmprEncr(Scheme):
    """Black-box compress-then-encrypt (paper Sec. IV-A).

    The whole zlib output is ciphertext, so the stream passes every
    randomness test — at the price of encrypting the *largest* possible
    buffer, which dominates overhead on hard-to-compress data.
    """

    name = "cmpr_encr"
    scheme_id = 1

    def protect(self, frame_sections, cipher, iv, mode, level, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        blob = self._frame_blob(frame_sections)
        with tr.stage("lossless", bytes_in=len(blob)) as sp:
            z = lossless.compress(blob, level)
            sp.bytes_out = len(z)
        with tr.stage("encrypt", bytes_in=len(z), mode=mode) as sp:
            ct = cipher.encrypt(z, mode=mode, iv=iv).ciphertext
            sp.bytes_out = len(ct)
        return {"cipher": ct}

    def unprotect(self, sections, cipher, iv, mode, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        ct = self._take(sections, "cipher")
        with tr.stage("decrypt", bytes_in=len(ct), mode=mode) as sp:
            z = cipher.decrypt(ct, iv, mode=mode)
            sp.bytes_out = len(z)
        with tr.stage("lossless", bytes_in=len(z)) as sp:
            blob = lossless.decompress(z)
            sp.bytes_out = len(blob)
        return cont.unpack_sections(blob)

    def encrypted_bytes(self, frame_sections):
        # Pre-zlib upper bound; see the docstring on the base class.
        return sum(len(frame_sections[k]) for k in SECTION_ORDER)

    def keystream_hint(self, n_raw_bytes):
        # The zlib output is what gets encrypted; the raw field size
        # upper-bounds it for everything but incompressible noise.
        return n_raw_bytes


class EncrQuant(Scheme):
    """Encrypt the quantization array before the lossless pass
    (paper Sec. IV-B).

    "We decided to encrypt the quantization array, which includes the
    Huffman tree, Huffman codewords and other metadata before lossless
    compression."  The AES-randomized bytes then flow *into* zlib,
    which is exactly why this scheme can collapse the compression
    ratio of highly-compressible datasets (paper Fig. 5).

    For multi-lane (frame v3) streams the ``tree`` section also
    carries the lane/anchor table, so the decode entry points are
    encrypted together with the tree and codewords — an attacker
    cannot even segment the ciphertext into lanes.
    """

    name = "encr_quant"
    scheme_id = 2

    _ENCRYPTED = ("meta", "tree", "codes")
    _PLAIN = ("unpred", "coeffs", "exact", "aux")

    def protect(self, frame_sections, cipher, iv, mode, level, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        quant_blob = cont.pack_sections(
            {k: frame_sections[k] for k in self._ENCRYPTED}
        )
        with tr.stage("encrypt", bytes_in=len(quant_blob), mode=mode) as sp:
            ct = cipher.encrypt(quant_blob, mode=mode, iv=iv).ciphertext
            sp.bytes_out = len(ct)
        outer = {"cipher": ct}
        outer.update({k: frame_sections[k] for k in self._PLAIN})
        packed = cont.pack_sections(outer)
        with tr.stage("lossless", bytes_in=len(packed)) as sp:
            z = lossless.compress(packed, level)
            sp.bytes_out = len(z)
        return {"zblob": z}

    def unprotect(self, sections, cipher, iv, mode, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        z = self._take(sections, "zblob")
        with tr.stage("lossless", bytes_in=len(z)) as sp:
            blob = lossless.decompress(z)
            sp.bytes_out = len(blob)
        outer = cont.unpack_sections(blob)
        ct = self._take(outer, "cipher")
        with tr.stage("decrypt", bytes_in=len(ct), mode=mode) as sp:
            quant_blob = cipher.decrypt(ct, iv, mode=mode)
            sp.bytes_out = len(quant_blob)
        frame_sections = cont.unpack_sections(quant_blob)
        frame_sections.update(
            {k: self._take(outer, k) for k in self._PLAIN}
        )
        return frame_sections

    def encrypted_bytes(self, frame_sections):
        return sum(len(frame_sections[k]) for k in self._ENCRYPTED)

    def keystream_hint(self, n_raw_bytes):
        # meta + tree + codes: the code array dominates and is bounded
        # by the element count; the raw size is a safe upper bound.
        return n_raw_bytes


class EncrHuffman(Scheme):
    """Encrypt only the serialized Huffman tree (paper Sec. IV-C).

    Without the tree, inverting the codeword stream is NP-hard
    (refs [56], [57]), so this keys the whole quantization array while
    encrypting at most a few percent of it (paper Fig. 4) — the
    light-weight scheme the paper recommends.

    For multi-lane (frame v3) streams the ``tree`` section is the
    lane/anchor table *followed by* the serialized code table
    (:func:`repro.sz.huffman.serialize_lane_tree`), so encrypting the
    section keeps both secret: the security argument is unchanged, and
    the lane boundaries/anchors leak nothing in the clear.
    """

    name = "encr_huffman"
    scheme_id = 3

    _PLAIN = ("meta", "codes", "unpred", "coeffs", "exact", "aux")

    def protect(self, frame_sections, cipher, iv, mode, level, times):
        cipher = self._check_cipher(cipher)
        # Deflate the tree *before* encrypting it: ciphertext is
        # incompressible, so encrypting the raw serialization would
        # charge the final zlib pass for every byte of the tree.  At
        # the paper's 100-500 MB scale the tree is a negligible stream
        # fraction either way; at this repo's scaled-down sizes the
        # pre-compression is what preserves the paper's ">99 % of the
        # original CR" observation (see DESIGN.md §5).
        tr = trace.tracer_for(times)
        with tr.stage("lossless",
                      bytes_in=len(frame_sections["tree"])) as sp:
            tree_z = lossless.compress(frame_sections["tree"], level)
            sp.bytes_out = len(tree_z)
        with tr.stage("encrypt", bytes_in=len(tree_z), mode=mode) as sp:
            ct = cipher.encrypt(tree_z, mode=mode, iv=iv).ciphertext
            sp.bytes_out = len(ct)
        outer = {"cipher": ct}
        outer.update({k: frame_sections[k] for k in self._PLAIN})
        packed = cont.pack_sections(outer)
        with tr.stage("lossless", bytes_in=len(packed)) as sp:
            z = lossless.compress(packed, level)
            sp.bytes_out = len(z)
        return {"zblob": z}

    def unprotect(self, sections, cipher, iv, mode, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        z = self._take(sections, "zblob")
        with tr.stage("lossless", bytes_in=len(z)) as sp:
            blob = lossless.decompress(z)
            sp.bytes_out = len(blob)
        outer = cont.unpack_sections(blob)
        ct = self._take(outer, "cipher")
        with tr.stage("decrypt", bytes_in=len(ct), mode=mode) as sp:
            tree_z = cipher.decrypt(ct, iv, mode=mode)
            sp.bytes_out = len(tree_z)
        with tr.stage("lossless", bytes_in=len(tree_z)) as sp:
            tree = lossless.decompress(tree_z)
            sp.bytes_out = len(tree)
        frame_sections = {k: self._take(outer, k) for k in self._PLAIN}
        frame_sections["tree"] = tree
        return frame_sections

    def encrypted_bytes(self, frame_sections):
        # The deflated tree is what AES sees; report the pre-deflate
        # size as the conservative upper bound (matches Fig. 4's
        # "size of the Huffman tree" accounting).
        return len(frame_sections["tree"])

    def keystream_hint(self, n_raw_bytes):
        # Only the (deflated) tree section is encrypted — a few KiB
        # regardless of field size.  64 KiB covers the worst lane/
        # anchor tables; larger trees fall back to a synchronous
        # top-up.
        return min(n_raw_bytes, 1 << 16)


class EncrHuffmanRaw(EncrHuffman):
    """Encr-Huffman exactly as Algorithm 1 writes it: the *raw*
    serialized tree goes straight to AES, with no pre-deflate.

    At the paper's data scale the tree is a negligible stream fraction
    and this variant behaves identically to :class:`EncrHuffman`; at
    this repo's scaled-down sizes it trades a few percent of CR for
    the paper's "zlib runs faster over the ciphertext tree" effect.
    The tree-deflate ablation benchmark quantifies both.
    """

    name = "encr_huffman_raw"
    scheme_id = 4

    def protect(self, frame_sections, cipher, iv, mode, level, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        with tr.stage("encrypt", bytes_in=len(frame_sections["tree"]),
                      mode=mode) as sp:
            ct = cipher.encrypt(
                frame_sections["tree"], mode=mode, iv=iv
            ).ciphertext
            sp.bytes_out = len(ct)
        outer = {"cipher": ct}
        outer.update({k: frame_sections[k] for k in self._PLAIN})
        packed = cont.pack_sections(outer)
        with tr.stage("lossless", bytes_in=len(packed)) as sp:
            z = lossless.compress(packed, level)
            sp.bytes_out = len(z)
        return {"zblob": z}

    def unprotect(self, sections, cipher, iv, mode, times):
        tr = trace.tracer_for(times)
        cipher = self._check_cipher(cipher)
        z = self._take(sections, "zblob")
        with tr.stage("lossless", bytes_in=len(z)) as sp:
            blob = lossless.decompress(z)
            sp.bytes_out = len(blob)
        outer = cont.unpack_sections(blob)
        ct = self._take(outer, "cipher")
        with tr.stage("decrypt", bytes_in=len(ct), mode=mode) as sp:
            tree = cipher.decrypt(ct, iv, mode=mode)
            sp.bytes_out = len(tree)
        frame_sections = {k: self._take(outer, k) for k in self._PLAIN}
        frame_sections["tree"] = tree
        return frame_sections


#: Registry, paper order (plus the raw-tree ablation variant).
SCHEMES: dict[str, Scheme] = {
    s.name: s
    for s in (
        NoEncryption(),
        CmprEncr(),
        EncrQuant(),
        EncrHuffman(),
        EncrHuffmanRaw(),
    )
}

_BY_ID = {s.scheme_id: s for s in SCHEMES.values()}


def get_scheme(name_or_id: str | int) -> Scheme:
    """Look up a scheme by registry name or wire id."""
    if isinstance(name_or_id, str):
        try:
            return SCHEMES[name_or_id]
        except KeyError:
            raise ValueError(
                f"unknown scheme {name_or_id!r}; choose from {sorted(SCHEMES)}"
            ) from None
    try:
        return _BY_ID[name_or_id]
    except KeyError:
        raise ValueError(f"unknown scheme id {name_or_id}") from None
