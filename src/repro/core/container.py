"""The on-disk/on-wire container format for secure-compressed data.

A container is::

    magic 'SECZ' | version u8 | scheme u8 | cipher-mode u8 | flags u8
    | IV (16 bytes) | section table | section payloads

The *section table* lists ``(section id, byte length)`` pairs; which
sections appear — and which of them are ciphertext — is the scheme's
decision (see :mod:`repro.core.schemes`).  Everything a scheme needs to
reverse its transformations (IV, mode, scheme id) is in the plaintext
header; everything the *attacker* would need (the Huffman tree, or
more) is inside the encrypted sections.

The same ``pack_sections``/``unpack_sections`` helpers also serialize
the inner SZ frame blobs, so there is exactly one framing code path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "Container",
    "pack_container",
    "parse_container",
    "pack_sections",
    "unpack_sections",
    "SECTION_IDS",
    "CIPHER_MODES",
]

MAGIC = b"SECZ"
#: Current write version.  v2 signals that the inner SZ frame may use
#: the multi-lane Huffman format (frame meta v3); the container layout
#: itself is unchanged, and v1 containers parse identically.
VERSION = 2
#: Versions :func:`parse_container` accepts (read-back compatibility).
SUPPORTED_VERSIONS = (1, 2)

#: Wire ids for every section name that can appear at any level.
SECTION_IDS: dict[str, int] = {
    "meta": 0,
    "tree": 1,
    "codes": 2,
    "unpred": 3,
    "coeffs": 4,
    "exact": 5,
    "cipher": 6,   # an encrypted blob of inner sections
    "zblob": 7,    # a zlib-compressed blob of inner sections
    "aux": 8,      # transform side data (signs/zeros for pw_rel mode)
}
_ID_TO_NAME = {v: k for k, v in SECTION_IDS.items()}

CIPHER_MODES: dict[str, int] = {"cbc": 0, "ctr": 1}
_MODE_TO_NAME = {v: k for k, v in CIPHER_MODES.items()}

_HEADER = struct.Struct("<4sBBBB16sB")  # ..., iv, n_sections
_ENTRY = struct.Struct("<BQ")


@dataclass(frozen=True)
class Container:
    """A parsed container header plus its raw sections."""

    scheme_id: int
    cipher_mode: str
    iv: bytes
    sections: dict[str, bytes]


def pack_sections(sections: dict[str, bytes]) -> bytes:
    """Serialize named byte sections with a count + table prefix."""
    entries = []
    payloads = []
    for name, data in sections.items():
        try:
            sid = SECTION_IDS[name]
        except KeyError:
            raise ValueError(f"unknown section name {name!r}") from None
        entries.append(_ENTRY.pack(sid, len(data)))
        payloads.append(data)
    return b"".join([struct.pack("<B", len(entries))] + entries + payloads)


def unpack_sections(blob: bytes) -> dict[str, bytes]:
    """Inverse of :func:`pack_sections` (strict: rejects trailing bytes)."""
    if len(blob) < 1:
        raise ValueError("section blob is empty")
    (n_sections,) = struct.unpack_from("<B", blob)
    offset = 1
    table = []
    for _ in range(n_sections):
        if offset + _ENTRY.size > len(blob):
            raise ValueError("truncated section table")
        sid, length = _ENTRY.unpack_from(blob, offset)
        if sid not in _ID_TO_NAME:
            raise ValueError(f"unknown section id {sid}")
        table.append((sid, length))
        offset += _ENTRY.size
    sections: dict[str, bytes] = {}
    for sid, length in table:
        if offset + length > len(blob):
            raise ValueError("truncated section payload")
        name = _ID_TO_NAME[sid]
        if name in sections:
            raise ValueError(f"duplicate section {name!r}")
        sections[name] = blob[offset : offset + length]
        offset += length
    if offset != len(blob):
        raise ValueError(f"{len(blob) - offset} trailing bytes after sections")
    return sections


def pack_container(scheme_id: int, cipher_mode: str, iv: bytes,
                   sections: dict[str, bytes]) -> bytes:
    """Assemble the full container byte string."""
    if cipher_mode not in CIPHER_MODES:
        raise ValueError(f"unknown cipher mode {cipher_mode!r}")
    if len(iv) > 16:
        raise ValueError("IV/nonce longer than 16 bytes")
    iv16 = iv.ljust(16, b"\x00")
    body = pack_sections(sections)
    # pack_sections emits the count byte first; splice the table into
    # the fixed header by re-using its layout directly.
    header = _HEADER.pack(
        MAGIC, VERSION, scheme_id, CIPHER_MODES[cipher_mode], len(iv), iv16,
        body[0],
    )
    return header + body[1:]


def parse_container(blob: bytes) -> Container:
    """Parse and validate a container produced by :func:`pack_container`."""
    if len(blob) < _HEADER.size:
        raise ValueError("container shorter than its header")
    magic, version, scheme_id, mode_id, iv_len, iv16, n_sections = (
        _HEADER.unpack_from(blob)
    )
    if magic != MAGIC:
        raise ValueError("bad magic; not a SECZ container")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported container version {version}")
    if mode_id not in _MODE_TO_NAME:
        raise ValueError(f"unknown cipher mode id {mode_id}")
    if iv_len > 16:
        raise ValueError(f"invalid IV length {iv_len}")
    body = struct.pack("<B", n_sections) + blob[_HEADER.size :]
    sections = unpack_sections(body)
    return Container(
        scheme_id=scheme_id,
        cipher_mode=_MODE_TO_NAME[mode_id],
        iv=iv16[:iv_len],
        sections=sections,
    )
