"""Codec-agnostic protect/unprotect helpers.

Any codec that emits the standard named sections (``meta`` / ``tree`` /
``codes`` / ``unpred`` / ``coeffs`` / ``exact`` / ``aux``) can be
protected by any scheme through these two functions — they bundle
scheme dispatch, IV generation, container framing and (optionally) the
authentication wrapper.  The SZ and image pipelines predate this module
and keep their richer result objects; new codecs (e.g.
:mod:`repro.multilevel`) build on these directly.
"""

from __future__ import annotations

import numpy as np

from repro.core import container as cont
from repro.core import integrity
from repro.core.schemes import get_scheme
from repro.core.timing import StageTimes
from repro.crypto import rng as crypto_rng
from repro.crypto.aes import AES128
from repro.sz.lossless import DEFAULT_LEVEL

__all__ = ["protect_sections", "unprotect_container"]


def protect_sections(
    sections: dict[str, bytes],
    scheme: str,
    *,
    key: bytes | None = None,
    cipher_mode: str = "cbc",
    zlib_level: int = DEFAULT_LEVEL,
    authenticate: bool = False,
    random_state: np.random.Generator | None = None,
    times: StageTimes | None = None,
) -> bytes:
    """Apply ``scheme`` to codec sections and return a SECZ container."""
    scheme_obj = get_scheme(scheme)
    if (scheme_obj.requires_key or authenticate) and key is None:
        raise ValueError(f"scheme {scheme!r} (or authentication) requires a key")
    cipher = AES128(key) if key is not None else None
    iv = (
        crypto_rng.generate_nonce(random_state)
        if cipher_mode == "ctr"
        else crypto_rng.generate_iv(random_state)
    )
    out = scheme_obj.protect(
        sections, cipher, iv, cipher_mode, zlib_level,
        times if times is not None else StageTimes(),
    )
    blob = cont.pack_container(scheme_obj.scheme_id, cipher_mode, iv, out)
    if authenticate:
        blob = integrity.authenticate(blob, key)
    return blob


def unprotect_container(
    blob: bytes,
    *,
    key: bytes | None = None,
    expected_scheme: str | None = None,
    times: StageTimes | None = None,
) -> dict[str, bytes]:
    """Reverse :func:`protect_sections` back to codec sections.

    The scheme is read from the container header; pass
    ``expected_scheme`` to enforce a specific one.  Authenticated
    (``SECA``) containers are verified first.
    """
    if blob[: len(integrity.MAGIC)] == integrity.MAGIC:
        if key is None:
            raise ValueError("authenticated container requires a key")
        blob = integrity.verify_and_strip(blob, key)
    parsed = cont.parse_container(blob)
    scheme_obj = get_scheme(parsed.scheme_id)
    if expected_scheme is not None and scheme_obj.name != expected_scheme:
        raise ValueError(
            f"container was written with scheme {scheme_obj.name!r}, "
            f"expected {expected_scheme!r}"
        )
    if scheme_obj.requires_key and key is None:
        raise ValueError(f"scheme {scheme_obj.name!r} requires a key")
    cipher = AES128(key) if key is not None else None
    return scheme_obj.unprotect(
        parsed.sections, cipher, parsed.iv, parsed.cipher_mode,
        times if times is not None else StageTimes(),
    )
