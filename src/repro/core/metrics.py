"""The paper's evaluation metrics (Sec. V-B), as plain functions.

Equation (1): compression ratio; Equation (2): bandwidth; Equation (3):
time overhead.  Kept free of any pipeline state so both the library's
result objects and the benchmark harness compute them identically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "compression_ratio",
    "bandwidth_mb_s",
    "overhead_percent",
    "normalized_cr",
    "max_abs_error",
    "psnr",
]

_MB = 1024.0 * 1024.0


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Eq. (1): ``size_original / size_compressed``."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    if original_bytes < 0:
        raise ValueError("original size must be non-negative")
    return original_bytes / compressed_bytes


def bandwidth_mb_s(original_bytes: int, seconds: float) -> float:
    """Eq. (2): MB of *original* data processed per second."""
    if seconds <= 0:
        raise ValueError("duration must be positive")
    return (original_bytes / _MB) / seconds


def overhead_percent(t_new: float, t_original: float) -> float:
    """Eq. (3): ``t_new / t_original × 100`` (values < 100 mean the
    combined method is *faster* than plain SZ, as Encr-Huffman is in
    Table V)."""
    if t_original <= 0:
        raise ValueError("baseline duration must be positive")
    if t_new < 0:
        raise ValueError("duration must be non-negative")
    return 100.0 * t_new / t_original


def normalized_cr(scheme_cr: float, baseline_cr: float) -> float:
    """Fig. 5's y-axis: a scheme's CR relative to plain SZ's."""
    if baseline_cr <= 0:
        raise ValueError("baseline CR must be positive")
    return scheme_cr / baseline_cr


def max_abs_error(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Maximum pointwise absolute error (the bound being verified)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(decompressed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a - b)))


def psnr(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (common EBLC quality metric)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(decompressed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    mse = float(np.mean((a - b) ** 2))
    peak = float(np.max(a) - np.min(a))
    if mse == 0.0:
        return float("inf")
    if peak == 0.0:
        return float("-inf")
    return 20.0 * np.log10(peak) - 10.0 * np.log10(mse)
