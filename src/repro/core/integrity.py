"""Authenticated containers: encrypt-then-MAC over the SECZ stream.

The paper's motivation (Sec. III-A) is that a *single* flipped bit can
invalidate a lossy-compressed dataset — and worse, some flips decode
silently (see :mod:`repro.security.attacks`).  Encryption alone does
not detect tampering: CBC decryption of a modified ciphertext yields
garbage that may still parse.  This module adds the standard fix, an
encrypt-then-MAC wrapper: an HMAC-SHA256 tag over the complete
container, keyed separately from the cipher key (derived via HKDF-like
expansion so callers still manage a single 16-byte master key).

Wire format::

    'SECA' | tag (32 bytes) | inner SECZ container

Verification is constant-time (``hmac.compare_digest``) and happens
*before* any parsing of attacker-controlled bytes.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = [
    "authenticate",
    "verify_and_strip",
    "derive_mac_key",
    "AuthenticationError",
    "MAGIC",
    "TAG_BYTES",
]

MAGIC = b"SECA"
TAG_BYTES = 32


class AuthenticationError(ValueError):
    """The container's HMAC tag does not match its contents."""


def derive_mac_key(master_key: bytes) -> bytes:
    """Derive the MAC key from the AES master key.

    HKDF-style expansion with a fixed info label, so the cipher and
    MAC keys are computationally independent even though the user
    handles one secret.
    """
    if len(master_key) != 16:
        raise ValueError("master key must be 16 bytes")
    return hmac.new(master_key, b"repro.secz/mac-key/v1",
                    hashlib.sha256).digest()


def authenticate(container: bytes, master_key: bytes) -> bytes:
    """Wrap a SECZ container with an HMAC-SHA256 tag."""
    tag = hmac.new(derive_mac_key(master_key), container,
                   hashlib.sha256).digest()
    return MAGIC + tag + container


def verify_and_strip(blob: bytes, master_key: bytes) -> bytes:
    """Verify an authenticated container and return the inner SECZ.

    Raises
    ------
    AuthenticationError
        If the magic is wrong, the blob is truncated, or the tag does
        not match — i.e. on *any* tampering, including the single-bit
        flips of the paper's motivation.
    """
    header = len(MAGIC) + TAG_BYTES
    if len(blob) < header or blob[: len(MAGIC)] != MAGIC:
        raise AuthenticationError("not an authenticated SECZ container")
    tag = blob[len(MAGIC) : header]
    inner = blob[header:]
    expected = hmac.new(derive_mac_key(master_key), inner,
                        hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationError("container failed authentication")
    return inner
