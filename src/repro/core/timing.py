"""Stage-time instrumentation.

The paper's Fig. 7 (time breakdown) and Tables III–V (time overhead)
are computed from per-stage wall-clock times.  :class:`StageTimes`
accumulates them; the library's own pipeline code records into the same
structure the benchmarks read, so there is no bench-only fork of the
timing logic.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageTimes", "STAGE_ORDER"]

#: Display order for breakdown tables/plots (Fig. 7's stacking order).
STAGE_ORDER = (
    "quantize",
    "predict",
    "huffman_build",
    "huffman_encode",
    "huffman_decode",
    "side_channels",
    "encrypt",
    "decrypt",
    "lossless",
    "reconstruct",
)


@dataclass
class StageTimes:
    """An accumulating map of stage name -> seconds."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, dt: float) -> None:
        """Accumulate ``dt`` seconds into ``stage``."""
        if dt < 0:
            raise ValueError(f"negative duration for stage {stage!r}")
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def merge(self, other: "StageTimes | dict[str, float]") -> None:
        """Fold another record (or plain dict) into this one."""
        items = other.seconds if isinstance(other, StageTimes) else other
        for name, dt in items.items():
            self.add(name, dt)

    @property
    def total(self) -> float:
        """Sum of all recorded stages."""
        return sum(self.seconds.values())

    def fraction(self, stage: str) -> float:
        """One stage's share of the total (0 when nothing recorded)."""
        total = self.total
        return self.seconds.get(stage, 0.0) / total if total else 0.0

    def ordered(self) -> list[tuple[str, float]]:
        """Stages in :data:`STAGE_ORDER`, then any extras alphabetically."""
        known = [(s, self.seconds[s]) for s in STAGE_ORDER if s in self.seconds]
        extras = sorted(
            (item for item in self.seconds.items() if item[0] not in STAGE_ORDER)
        )
        return known + extras
