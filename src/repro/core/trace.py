"""Pipeline observability: hierarchical trace spans, byte-flow
accounting and process-wide counters.

The paper's whole evaluation is an observability exercise — Fig. 7 is
a per-stage time breakdown, Tables III–V are stage-time ratios, and
Sec. V-D argues from *byte volumes* (how much each scheme feeds to
AES).  The flat ``StageTimes`` seconds map served the tables but could
not answer the questions this repo now generates: where does the lane
decoder's ~8x win come from, how many bytes enter and leave each
stage, how often does the decoder cache hit?  This module is the
first-class answer:

* :class:`Span` — one timed operation: name, wall seconds, bytes in /
  bytes out, ``key=value`` attributes, child spans.
* :class:`Tracer` — records a span tree (thread-safe: each thread
  keeps its own open-span stack, finished roots are appended under a
  lock) and mirrors *stage* spans into the flat ``{stage: seconds}``
  maps the Fig. 7 / Tables III–V benchmarks keep reading.  Disabled
  tracers skip all span bookkeeping, so the default (untraced) path
  pays only the stage timing it always paid.
* process-wide **counters** (:func:`count` / :func:`counters_snapshot`)
  for the quantities that do not belong to any single span: decoder
  LRU hits/misses, lanes and segments decoded, AES blocks processed,
  zlib bytes in/out.
* exporters — :meth:`Tracer.export` (the ``repro-trace/1`` JSON
  document, see docs/OBSERVABILITY.md), :func:`chrome_trace` (Chrome
  ``chrome://tracing`` / Perfetto event format) and
  :func:`format_tree` (human-readable tree, what ``secz trace``
  prints), plus :func:`validate` which rejects anything that does not
  match the documented schema.

This module deliberately imports nothing from the rest of the package
(stdlib only), so the substrate layers (``repro.sz``, ``repro.crypto``)
may use its counters without creating an upward dependency.

Examples
--------
>>> tr = Tracer()
>>> with tr.span("compress", bytes_in=4096) as root:
...     with tr.stage("quantize"):
...         pass
...     root.bytes_out = 512
>>> doc = validate(tr.export())
>>> doc["schema"]
'repro-trace/1'
>>> [child["name"] for child in doc["roots"][0]["children"]]
['quantize']
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA",
    "KNOWN_COUNTERS",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "tracer_for",
    "span_from_dict",
    "chrome_trace",
    "format_tree",
    "validate",
    "count",
    "count_many",
    "counters_snapshot",
    "reset_counters",
    "merge_counters",
]

#: Schema identifier stamped into every exported trace document.
SCHEMA = "repro-trace/1"

#: The counter registry (documented in docs/OBSERVABILITY.md).  Other
#: names are legal — this tuple is the contract for the names the
#: library itself emits.
KNOWN_COUNTERS = (
    "fastdecode.lanes",            # Huffman lanes decoded (v3 frames)
    "fastdecode.segments",         # independent decode segments (lanes + anchors)
    "huffman.codec_cache_hits",    # codec cache served a cached canonical codec
    "huffman.codec_cache_misses",  # canonical codec had to be built
    "huffman.depth_limited_frames",  # frames emitted with the depth-limit flag
    "huffman.encode_lanes",        # Huffman lanes encoded (v2 counts as 1)
    "huffman.packed_words",        # uint64 words written by the pack kernel
    "predict.sample_points",       # points sampled per predictor-selection estimate
    "quantize.repair_passes",      # verified-quantize ±1 repair sweeps run
    "aes.blocks_encrypted",        # 16-byte blocks through CBC encryption
    "aes.blocks_decrypted",        # 16-byte blocks through CBC decryption
    "aes.blocks_keystream",        # 16-byte CTR keystream blocks generated
    "aes.keystream_segments",      # bounded batched CTR keystream calls
    "aes.keystream_prefetch_ms",   # wall ms the CTR prefetch thread spent generating keystream (rounded up)
    "lz.literals",                 # literal tokens emitted by the LZ77 matcher
    "lz.matches",                  # match tokens emitted by the LZ77 matcher
    "lz.match_bytes",              # bytes covered by LZ77 match tokens
    "archive.chunks_added",        # content-defined chunks stored as new blobs
    "archive.chunks_deduped",      # chunks answered by an existing blob (store-once hit)
    "archive.blobs_gced",          # unreferenced blobs dropped by archive gc
    "zlib.deflate_in_bytes",       # plaintext bytes into zlib.compress
    "zlib.deflate_out_bytes",      # compressed bytes out of zlib.compress
    "zlib.inflate_in_bytes",       # compressed bytes into zlib.decompress
    "zlib.inflate_out_bytes",      # plaintext bytes out of zlib.decompress
    "service.jobs_submitted",      # jobs accepted (persisted + acked) by secz serve
    "service.jobs_failed",         # serve jobs that ended in the failed state
    "service.queue_wait_ms",       # wall ms serve jobs spent queued before a worker start
    "service.batch_reuse_hits",    # serve jobs whose canonical codec came from the warm cache
)

_JSON_SCALARS = (str, int, float, bool, type(None))


# ----------------------------------------------------------------------
# Process-wide counters
# ----------------------------------------------------------------------

_counters: dict[str, int] = {}
_counters_lock = threading.Lock()


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to the process-wide counter ``name`` (thread-safe)."""
    with _counters_lock:
        _counters[name] = _counters.get(name, 0) + int(n)


def count_many(increments: dict[str, int]) -> None:
    """Apply several counter increments under one lock acquisition."""
    with _counters_lock:
        for name, n in increments.items():
            _counters[name] = _counters.get(name, 0) + int(n)


def counters_snapshot() -> dict[str, int]:
    """A copy of every process-wide counter's current value."""
    with _counters_lock:
        return dict(_counters)


def reset_counters() -> None:
    """Zero every process-wide counter (tests and long-lived services)."""
    with _counters_lock:
        _counters.clear()


def merge_counters(delta: dict[str, int]) -> None:
    """Fold a counter snapshot from another process into this one.

    The chunked compressor uses this to pull worker-process counters
    back into the parent, so a traced parallel compression accounts for
    the AES/zlib/decoder work its workers did.
    """
    count_many(delta)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


@dataclass
class Span:
    """One timed operation in the trace tree.

    ``start`` is seconds since the owning tracer's creation (spans
    merged from worker processes keep their *worker-relative* starts —
    see docs/OBSERVABILITY.md).  ``bytes_in`` / ``bytes_out`` are the
    operation's byte flow where meaningful, ``None`` where not.
    """

    name: str
    start: float = 0.0
    seconds: float = 0.0
    bytes_in: int | None = None
    bytes_out: int | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def annotate(self, **attrs) -> None:
        """Attach ``key=value`` attributes (JSON scalars) to the span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """The span subtree as the documented JSON structure."""
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def span_from_dict(data: dict) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output."""
    _validate_span(data, path="span")
    return _span_from_checked(data)


def _span_from_checked(data: dict) -> Span:
    return Span(
        name=data["name"],
        start=float(data["start"]),
        seconds=float(data["seconds"]),
        bytes_in=data.get("bytes_in"),
        bytes_out=data.get("bytes_out"),
        attrs=dict(data.get("attrs", {})),
        children=[_span_from_checked(c) for c in data.get("children", [])],
    )


class _NullSpan:
    """Span stand-in for disabled tracers: swallows all annotation."""

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def __setattr__(self, name, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NoopContext:
    """Reusable no-op context manager (disabled span, nothing to do)."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc):
        return False


_NOOP_CONTEXT = _NoopContext()


class _MirrorScope:
    """Disabled structural span that still scopes a mirror dict."""

    __slots__ = ("_tracer", "_mirror")

    def __init__(self, tracer: "Tracer", mirror: dict) -> None:
        self._tracer = tracer
        self._mirror = mirror

    def __enter__(self):
        self._tracer._mirror_stack().append(self._mirror)
        return _NULL_SPAN

    def __exit__(self, *exc):
        self._tracer._mirror_stack().pop()
        return False


class _MirrorStage:
    """Disabled stage span: times the block, accumulates into the
    active mirror dict, builds no Span objects."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return _NULL_SPAN

    def __exit__(self, *exc):
        dt = time.perf_counter() - self._t0
        mirror = self._tracer._active_mirror()
        if mirror is not None:
            mirror[self._name] = mirror.get(self._name, 0.0) + dt
        return False


class _ActiveSpan:
    """Context manager recording one enabled span."""

    __slots__ = ("_tracer", "span", "_mirror", "_is_stage", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        span: Span,
        mirror: dict | None,
        is_stage: bool,
    ) -> None:
        self._tracer = tracer
        self.span = span
        self._mirror = mirror
        self._is_stage = is_stage

    def __enter__(self) -> Span:
        tracer = self._tracer
        tracer._span_stack().append(self.span)
        if self._mirror is not None:
            tracer._mirror_stack().append(self._mirror)
        self._t0 = time.perf_counter()
        self.span.start = self._t0 - tracer._epoch
        return self.span

    def __exit__(self, *exc):
        dt = time.perf_counter() - self._t0
        tracer = self._tracer
        span = self.span
        span.seconds = dt
        stack = tracer._span_stack()
        stack.pop()
        if self._mirror is not None:
            tracer._mirror_stack().pop()
        if self._is_stage:
            mirror = tracer._active_mirror()
            if mirror is not None:
                mirror[span.name] = mirror.get(span.name, 0.0) + dt
        if stack:
            stack[-1].children.append(span)
        else:
            with tracer._lock:
                tracer.roots.append(span)
        return False


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class Tracer:
    """Records a tree of :class:`Span` objects (when enabled) and
    mirrors *stage* durations into flat ``{stage: seconds}`` dicts.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` / :meth:`stage` skip all span
        bookkeeping; stages still time themselves into the active
        mirror, which is how the legacy ``StageTimes`` contract keeps
        working at (near) its original cost.
    mirror:
        Optional base mirror dict used when no span has scoped one.
        :func:`tracer_for` uses this to adapt a plain ``StageTimes``.

    Thread safety: every thread has its own open-span stack (spans
    opened on one thread nest under that thread's spans only), and
    completed top-level spans append to :attr:`roots` under a lock, so
    worker threads may record into one shared tracer concurrently.
    """

    def __init__(self, enabled: bool = True, mirror: dict | None = None) -> None:
        self.enabled = enabled
        self._base_mirror = mirror
        self._epoch = time.perf_counter()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        self._counters0 = counters_snapshot() if enabled else {}

    # -- per-thread state ----------------------------------------------

    def _span_stack(self) -> list[Span]:
        stack = getattr(self._tls, "spans", None)
        if stack is None:
            stack = self._tls.spans = []
        return stack

    def _mirror_stack(self) -> list[dict]:
        stack = getattr(self._tls, "mirrors", None)
        if stack is None:
            stack = self._tls.mirrors = []
        return stack

    def _active_mirror(self) -> dict | None:
        stack = getattr(self._tls, "mirrors", None)
        if stack:
            return stack[-1]
        return self._base_mirror

    # -- recording ------------------------------------------------------

    def span(self, name: str, *, bytes_in: int | None = None,
             mirror: dict | None = None, **attrs):
        """Open a *structural* span (returns a context manager yielding
        the :class:`Span`).

        ``mirror``, when given, scopes a ``{stage: seconds}`` dict:
        every :meth:`stage` recorded while this span is open (and no
        inner mirror shadows it) accumulates there.
        """
        if not self.enabled:
            if mirror is not None:
                return _MirrorScope(self, mirror)
            return _NOOP_CONTEXT
        span = Span(name=name, bytes_in=bytes_in, attrs=dict(attrs))
        return _ActiveSpan(self, span, mirror, is_stage=False)

    def stage(self, name: str, *, bytes_in: int | None = None, **attrs):
        """Open a *stage* span: like :meth:`span`, but its duration also
        accumulates into the active mirror under ``name`` — the exact
        keys ``StageTimes`` always carried (``quantize``, ``encrypt``,
        ``lossless``, ...)."""
        if not self.enabled:
            return _MirrorStage(self, name)
        span = Span(name=name, bytes_in=bytes_in, attrs=dict(attrs))
        return _ActiveSpan(self, span, None, is_stage=True)

    def attach(self, span: Span | dict) -> None:
        """Graft an externally recorded span tree into the current
        position (thread-safe) — e.g. a worker process's exported trace.
        No-op on disabled tracers."""
        if not self.enabled:
            return
        if isinstance(span, dict):
            span = span_from_dict(span)
        stack = self._span_stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- export ---------------------------------------------------------

    def export(self) -> dict:
        """The complete ``repro-trace/1`` document.

        ``counters`` holds the *change* in every process-wide counter
        since this tracer was created — what the traced operations did,
        not the process's lifetime totals.
        """
        now = counters_snapshot()
        delta = {
            name: now[name] - self._counters0.get(name, 0)
            for name in sorted(now)
            if now[name] != self._counters0.get(name, 0)
        }
        with self._lock:
            roots = [span.to_dict() for span in self.roots]
        return {"schema": SCHEMA, "roots": roots, "counters": delta}


#: Shared disabled tracer: the default for every untraced call.
NULL_TRACER = Tracer(enabled=False)


def tracer_for(obj) -> Tracer:
    """Adapt ``obj`` to a :class:`Tracer` (the compatibility shim).

    * ``None`` → the shared disabled tracer;
    * a :class:`Tracer` → itself;
    * a ``StageTimes`` (anything with a dict ``.seconds``) → a disabled
      tracer mirroring stage durations into that dict, so every caller
      that used to pass ``StageTimes`` keeps working unchanged;
    * a plain dict → a disabled tracer mirroring into it.
    """
    if obj is None:
        return NULL_TRACER
    if isinstance(obj, Tracer):
        return obj
    seconds = getattr(obj, "seconds", None)
    if isinstance(seconds, dict):
        return Tracer(enabled=False, mirror=seconds)
    if isinstance(obj, dict):
        return Tracer(enabled=False, mirror=obj)
    raise TypeError(
        f"cannot adapt {type(obj).__name__!r} to a Tracer: expected None, "
        "a Tracer, a StageTimes, or a dict"
    )


# ----------------------------------------------------------------------
# Exporters / validation
# ----------------------------------------------------------------------


def _span_args(span: dict) -> dict:
    args = {}
    if span["bytes_in"] is not None:
        args["bytes_in"] = span["bytes_in"]
    if span["bytes_out"] is not None:
        args["bytes_out"] = span["bytes_out"]
    args.update(span["attrs"])
    return args


def chrome_trace(doc: "dict | Tracer") -> dict:
    """Convert a trace document to Chrome trace-event format.

    The result (``{"traceEvents": [...]}``) loads directly into
    ``chrome://tracing`` or https://ui.perfetto.dev.  Every root span
    gets its own ``tid`` row so parallel slabs stack visually.
    """
    if isinstance(doc, Tracer):
        doc = doc.export()
    validate(doc)
    events: list[dict] = []

    def walk(span: dict, tid: int) -> None:
        events.append({
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(span["seconds"] * 1e6, 3),
            "args": _span_args(span),
        })
        for child in span["children"]:
            walk(child, tid)

    for tid, root in enumerate(doc["roots"]):
        walk(root, tid)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def format_tree(doc: "dict | Tracer", *, max_attrs: int = 6) -> str:
    """Human-readable rendering of a trace document (``secz trace``)."""
    if isinstance(doc, Tracer):
        doc = doc.export()
    validate(doc)
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        label = "  " * depth + span["name"]
        cell = f"{label:<34s} {span['seconds'] * 1e3:9.3f} ms"
        flow = []
        if span["bytes_in"] is not None:
            flow.append(f"{span['bytes_in']:,} B in")
        if span["bytes_out"] is not None:
            flow.append(f"{span['bytes_out']:,} B out")
        if flow:
            cell += "   " + " -> ".join(flow)
        attrs = list(span["attrs"].items())[:max_attrs]
        if attrs:
            cell += "   " + " ".join(f"{k}={v}" for k, v in attrs)
        lines.append(cell)
        for child in span["children"]:
            walk(child, depth + 1)

    for root in doc["roots"]:
        walk(root, 0)
    if doc["counters"]:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in doc["counters"])
        for name, value in doc["counters"].items():
            lines.append(f"  {name:<{width}s}  {value:,}")
    return "\n".join(lines)


def _fail(path: str, message: str):
    raise ValueError(f"invalid trace document at {path}: {message}")


def _validate_span(span, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, "span must be an object")
    required = ("name", "start", "seconds", "attrs", "children")
    for key in required:
        if key not in span:
            _fail(path, f"missing required key {key!r}")
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(path, "name must be a non-empty string")
    for key in ("start", "seconds"):
        value = span[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(path, f"{key} must be a number")
        if value < 0:
            _fail(path, f"{key} must be non-negative")
    for key in ("bytes_in", "bytes_out"):
        value = span.get(key)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(path, f"{key} must be an integer or null")
        if value < 0:
            _fail(path, f"{key} must be non-negative")
    if not isinstance(span["attrs"], dict):
        _fail(path, "attrs must be an object")
    for key, value in span["attrs"].items():
        if not isinstance(key, str):
            _fail(path, "attrs keys must be strings")
        if not isinstance(value, _JSON_SCALARS):
            _fail(path, f"attrs[{key!r}] must be a JSON scalar")
    if not isinstance(span["children"], list):
        _fail(path, "children must be a list")
    for i, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{i}]")


def validate(doc: dict) -> dict:
    """Check ``doc`` against the documented ``repro-trace/1`` schema.

    Returns the document unchanged; raises :class:`ValueError` naming
    the offending path otherwise.  docs/OBSERVABILITY.md is the prose
    version of these rules.
    """
    if not isinstance(doc, dict):
        raise ValueError("invalid trace document: not an object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"invalid trace document: schema must be {SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("roots"), list):
        raise ValueError("invalid trace document: roots must be a list")
    for i, root in enumerate(doc["roots"]):
        _validate_span(root, f"roots[{i}]")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise ValueError("invalid trace document: counters must be an object")
    for name, value in counters.items():
        if not isinstance(name, str):
            raise ValueError("invalid trace document: counter names must be strings")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"invalid trace document: counter {name!r} must be an integer"
            )
    return doc
