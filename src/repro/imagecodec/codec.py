"""The JPEG-like encoder/decoder producing scheme-compatible sections.

Token design (simplified baseline JPEG):

* The 63 AC coefficients of each block are zigzag-scanned and encoded
  as run/value tokens: ``token = (run << 12) | (value + 2048)`` with
  ``run`` in 0..15 and ``value`` clamped to ±2047.  A zero-run longer
  than 15 emits :data:`ZRL`; a value outside ±2047 emits the token
  with value-slot 0 (an escape) and ships the true value through the
  side channel.  Every block terminates with :data:`EOB`.
* DC coefficients are delta-coded across blocks (JPEG's DPCM) and
  carried in the ``unpred`` side channel next to the escape values.
* The token stream is canonical-Huffman coded with
  :mod:`repro.sz.huffman` — the same machinery SZ uses, which is the
  point: Encr-Huffman's "encrypt only the tree" idea transfers without
  modification.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.imagecodec import transform
from repro.sz import huffman, intcodec
from repro.sz.bitstream import PackedBits

__all__ = ["ImageCodec", "ImageStats", "EOB", "ZRL"]

#: End-of-block token (outside the (run, value) packing range).
EOB = 1 << 16
#: Sixteen-zeros run token.
ZRL = (1 << 16) + 1

_VALUE_BIAS = 2048
_MAX_VALUE = 2047
_META = struct.Struct("<4sBBQQQQQ")  # magic, ver, quality, h, w, nblk, ntok, nbits
_META_MAGIC = b"IMfr"
_META_VERSION = 1


@dataclass
class ImageStats:
    """Encoder statistics (the image analog of ``CompressionStats``)."""

    height: int
    width: int
    n_blocks: int
    n_tokens: int
    n_escapes: int
    quality: int
    section_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def quant_array_bytes(self) -> int:
        """Huffman tree + token bitstream (the Encr-Quant target)."""
        return self.section_bytes["tree"] + self.section_bytes["codes"]

    @property
    def tree_fraction_of_quant(self) -> float:
        denom = self.quant_array_bytes
        return self.section_bytes["tree"] / denom if denom else 0.0


class ImageCodec:
    """Grayscale lossy image codec with scheme-compatible sections.

    Parameters
    ----------
    quality:
        JPEG-style quality, 1 (coarsest) to 100 (finest).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.imagecodec import ImageCodec
    >>> img = np.tile(np.linspace(0, 255, 64), (64, 1)).astype(np.float64)
    >>> codec = ImageCodec(quality=90)
    >>> sections, stats = codec.encode(img)
    >>> out = codec.decode(sections)
    >>> out.shape
    (64, 64)
    """

    def __init__(self, quality: int = 75) -> None:
        self.quality = int(quality)
        self._q = transform.quality_scaled_q(self.quality)

    # ------------------------------------------------------------------

    def encode(self, image: np.ndarray) -> tuple[dict[str, bytes], ImageStats]:
        """Encode a 2-D image into named byte sections."""
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 2 or image.size == 0:
            raise ValueError("expected a non-empty 2-D grayscale image")
        blocks, padded_shape = transform.blockify(image - 128.0)
        coeffs = transform.dct_blocks(blocks)
        q3 = self._q[np.newaxis]
        quantized = np.rint(coeffs / q3).astype(np.int64)

        flat = quantized.reshape(-1, 64)[:, transform.ZIGZAG]
        dc = flat[:, 0]
        ac = flat[:, 1:]

        tokens, escapes = _tokenize(ac)
        dc_deltas = np.diff(dc, prepend=np.int64(0))

        symbols, counts = np.unique(tokens, return_counts=True)
        code = huffman.build_code(symbols, counts)
        packed = huffman.encode(tokens, code)

        side = _pack_side(dc_deltas, escapes)
        meta = _META.pack(
            _META_MAGIC, _META_VERSION, self.quality,
            image.shape[0], image.shape[1],
            flat.shape[0], tokens.size, packed.n_bits,
        )
        sections = {
            "meta": meta,
            "tree": huffman.serialize_tree(code),
            "codes": packed.data,
            "unpred": side,
            "coeffs": b"",
            "exact": b"",
            "aux": b"",
        }
        stats = ImageStats(
            height=image.shape[0],
            width=image.shape[1],
            n_blocks=flat.shape[0],
            n_tokens=int(tokens.size),
            n_escapes=int(escapes.size),
            quality=self.quality,
            section_bytes={k: len(v) for k, v in sections.items()},
        )
        return sections, stats

    def decode(self, sections: dict[str, bytes]) -> np.ndarray:
        """Invert :meth:`encode`; returns a float64 image."""
        info = self.parse_meta(sections["meta"])
        n_blocks = info["n_blocks"]
        code = huffman.deserialize_tree(sections["tree"])
        packed = PackedBits(data=sections["codes"], n_bits=info["n_bits"])
        tokens = huffman.decode(packed, code, info["n_tokens"])
        dc_deltas, escapes = _unpack_side(sections["unpred"], n_blocks)

        ac = _detokenize(tokens, escapes, n_blocks)
        dc = np.cumsum(dc_deltas)
        flat = np.concatenate([dc[:, np.newaxis], ac], axis=1)
        quantized = flat[:, transform.INV_ZIGZAG].reshape(-1, 8, 8)

        q = transform.quality_scaled_q(info["quality"])
        coeffs = quantized.astype(np.float64) * q[np.newaxis]
        blocks = transform.idct_blocks(coeffs)
        h = -(-info["height"] // 8) * 8
        w = -(-info["width"] // 8) * 8
        image = transform.unblockify(
            blocks, (h, w), (info["height"], info["width"])
        )
        return image + 128.0

    @staticmethod
    def parse_meta(meta: bytes) -> dict:
        """Decode the image codec's ``meta`` section."""
        if len(meta) != _META.size:
            raise ValueError("bad image meta section length")
        magic, version, quality, h, w, n_blocks, n_tokens, n_bits = (
            _META.unpack(meta)
        )
        if magic != _META_MAGIC:
            raise ValueError("bad frame magic; not an image frame")
        if version != _META_VERSION:
            raise ValueError(f"unsupported image frame version {version}")
        if not 1 <= quality <= 100:
            raise ValueError(f"corrupt quality {quality}")
        return {
            "quality": quality,
            "height": int(h),
            "width": int(w),
            "n_blocks": int(n_blocks),
            "n_tokens": int(n_tokens),
            "n_bits": int(n_bits),
        }


def _tokenize(ac: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """AC rows -> (token array, escape values)."""
    tokens: list[int] = []
    escapes: list[int] = []
    for row in ac:
        nz = np.nonzero(row)[0]
        prev = -1
        for idx in nz:
            run = int(idx) - prev - 1
            prev = int(idx)
            while run > 15:
                tokens.append(ZRL)
                run -= 16
            value = int(row[idx])
            if -_MAX_VALUE <= value <= _MAX_VALUE:
                tokens.append((run << 12) | (value + _VALUE_BIAS))
            else:
                tokens.append(run << 12)  # value slot 0 = escape
                escapes.append(value)
        tokens.append(EOB)
    return (
        np.array(tokens, dtype=np.int64),
        np.array(escapes, dtype=np.int64),
    )


def _detokenize(tokens: np.ndarray, escapes: np.ndarray,
                n_blocks: int) -> np.ndarray:
    """Invert :func:`_tokenize` back to (n_blocks, 63) AC rows."""
    ac = np.zeros((n_blocks, 63), dtype=np.int64)
    block = 0
    pos = 0
    esc = 0
    for token in tokens.tolist():
        if block >= n_blocks:
            raise ValueError("token stream continues past the last block")
        if token == EOB:
            block += 1
            pos = 0
            continue
        if token == ZRL:
            pos += 16
            continue
        run = token >> 12
        slot = token & 0xFFF
        pos += run
        if pos >= 63:
            raise ValueError("token run overflows the block")
        if slot == 0:
            if esc >= escapes.size:
                raise ValueError("missing escape value")
            ac[block, pos] = escapes[esc]
            esc += 1
        else:
            ac[block, pos] = slot - _VALUE_BIAS
        pos += 1
    if block != n_blocks:
        raise ValueError("token stream ended before the last block")
    if esc != escapes.size:
        raise ValueError("unused escape values")
    return ac


def _pack_side(dc_deltas: np.ndarray, escapes: np.ndarray) -> bytes:
    dc_bytes = intcodec.byteplane_encode(dc_deltas)
    esc_bytes = intcodec.byteplane_encode(escapes)
    return (
        struct.pack("<QQ", len(dc_bytes), escapes.size)
        + dc_bytes
        + esc_bytes
    )


def _unpack_side(data: bytes, n_blocks: int) -> tuple[np.ndarray, np.ndarray]:
    if len(data) < 16:
        raise ValueError("image side channel shorter than its header")
    dc_len, n_escapes = struct.unpack_from("<QQ", data)
    if len(data) < 16 + dc_len:
        raise ValueError("truncated image side channel")
    dc_deltas = intcodec.byteplane_decode(data[16 : 16 + dc_len])
    if dc_deltas.size != n_blocks:
        raise ValueError("DC channel does not match block count")
    escapes = intcodec.byteplane_decode(data[16 + dc_len :])
    if escapes.size != n_escapes:
        raise ValueError("escape channel does not match its header")
    return dc_deltas, escapes
