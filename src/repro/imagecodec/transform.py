"""Blockwise 2-D DCT, quantization matrices and zigzag ordering.

The arithmetic follows baseline JPEG (ITU T.81): type-II DCT on 8x8
blocks, the Annex K luminance quantization table scaled by the libjpeg
quality curve, and the standard zigzag scan.  Everything is vectorized
over all blocks at once (``scipy.fft.dctn`` accepts leading batch
axes).
"""

from __future__ import annotations

import numpy as np
from scipy import fft

__all__ = [
    "BLOCK",
    "LUMINANCE_Q",
    "quality_scaled_q",
    "blockify",
    "unblockify",
    "dct_blocks",
    "idct_blocks",
    "ZIGZAG",
    "INV_ZIGZAG",
]

BLOCK = 8

#: JPEG Annex K luminance quantization table.
LUMINANCE_Q = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quality_scaled_q(quality: int) -> np.ndarray:
    """The Annex K table under libjpeg's quality scaling (1-100)."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be 1..100, got {quality}")
    scale = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    q = np.floor((LUMINANCE_Q * scale + 50.0) / 100.0)
    return np.clip(q, 1.0, 255.0)


def _pad(image: np.ndarray) -> np.ndarray:
    h, w = image.shape
    ph = (BLOCK - h % BLOCK) % BLOCK
    pw = (BLOCK - w % BLOCK) % BLOCK
    if ph or pw:
        image = np.pad(image, ((0, ph), (0, pw)), mode="edge")
    return image


def blockify(image: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Split a 2-D image into ``(n_blocks, 8, 8)``; returns padded shape."""
    if image.ndim != 2:
        raise ValueError("expected a 2-D grayscale image")
    padded = _pad(np.asarray(image, dtype=np.float64))
    h, w = padded.shape
    blocks = (
        padded.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, BLOCK, BLOCK)
    )
    return blocks, (h, w)


def unblockify(blocks: np.ndarray, padded_shape: tuple[int, int],
               shape: tuple[int, int]) -> np.ndarray:
    """Invert :func:`blockify` and crop to the original ``shape``."""
    h, w = padded_shape
    image = (
        blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )
    return image[: shape[0], : shape[1]]


def dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal type-II DCT over the last two axes of all blocks."""
    return fft.dctn(blocks, axes=(-2, -1), norm="ortho")


def idct_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct_blocks`."""
    return fft.idctn(coeffs, axes=(-2, -1), norm="ortho")


def _zigzag_order() -> np.ndarray:
    """Flat indices of the 8x8 zigzag scan, derived (not transcribed)."""
    order = sorted(
        ((r, c) for r in range(BLOCK) for c in range(BLOCK)),
        key=lambda rc: (
            rc[0] + rc[1],
            rc[1] if (rc[0] + rc[1]) % 2 == 0 else rc[0],
        ),
    )
    return np.array([r * BLOCK + c for r, c in order], dtype=np.intp)


#: Flat zigzag scan indices (position i of the scan reads flat ZIGZAG[i]).
ZIGZAG = _zigzag_order()
#: Inverse permutation.
INV_ZIGZAG = np.argsort(ZIGZAG)
