"""Seeded synthetic grayscale test images.

Four characters covering the codec's behaviour space:

``gradient``
    A smooth diagonal ramp — nearly all energy in the DC/low-AC
    coefficients; compresses extremely well.
``texture``
    Band-limited noise — energy spread across the spectrum; the
    hard-to-compress case.
``scene``
    Smooth blobs plus a few sharp edges — a natural-image stand-in.
``document``
    High-contrast text-like strokes on white — sparse, edge-dominated.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["synthetic_image", "IMAGE_NAMES"]

IMAGE_NAMES = ("gradient", "texture", "scene", "document")


def synthetic_image(name: str, size: int = 128, *, seed: int = 2022) -> np.ndarray:
    """Generate a ``size x size`` float64 image with values in [0, 255]."""
    if size < 8:
        raise ValueError("size must be at least one 8x8 block")
    rng = np.random.default_rng(seed)
    y, x = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size),
                       indexing="ij")
    if name == "gradient":
        img = 255.0 * (0.5 * x + 0.5 * y)
    elif name == "texture":
        img = 128.0 + 48.0 * ndimage.gaussian_filter(
            rng.standard_normal((size, size)), sigma=1.0
        ) / 0.28
        img = np.clip(img, 0.0, 255.0)
    elif name == "scene":
        blobs = ndimage.gaussian_filter(
            rng.standard_normal((size, size)), sigma=size / 12.0
        )
        blobs = 128.0 + 220.0 * blobs / max(np.abs(blobs).max(), 1e-9)
        edges = 60.0 * ((x > 0.55) & (x < 0.6)).astype(np.float64)
        img = np.clip(blobs + edges, 0.0, 255.0)
    elif name == "document":
        img = np.full((size, size), 245.0)
        for row in range(size // 12, size, size // 8):
            length = int(size * rng.uniform(0.4, 0.85))
            start = rng.integers(2, max(3, size - length))
            img[row : row + 2, start : start + length] = 15.0
        img += 4.0 * rng.standard_normal((size, size))
        img = np.clip(img, 0.0, 255.0)
    else:
        raise ValueError(
            f"unknown image {name!r}; choose from {IMAGE_NAMES}"
        )
    return img.astype(np.float64)
