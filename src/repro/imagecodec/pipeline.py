"""Secure image compression: the scheme layer over the JPEG-like codec.

Mirrors :class:`repro.core.pipeline.SecureCompressor` with the image
codec as the inner compressor — the concrete demonstration that the
paper's white-box schemes are codec-agnostic as long as the codec
exposes its Huffman tree as a section.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import container as cont
from repro.core import integrity
from repro.core.schemes import Scheme, get_scheme
from repro.core.timing import StageTimes
from repro.crypto import rng as crypto_rng
from repro.crypto.aes import AES128
from repro.imagecodec.codec import ImageCodec, ImageStats
from repro.sz.lossless import DEFAULT_LEVEL

__all__ = ["SecureImageCompressor", "ImageCompressResult"]


@dataclass(frozen=True)
class ImageCompressResult:
    """Container plus the codec's statistics and stage times."""

    container: bytes
    stats: ImageStats
    times: StageTimes
    encrypted_bytes: int
    scheme: str

    @property
    def compressed_bytes(self) -> int:
        return len(self.container)


class SecureImageCompressor:
    """Compress-and-protect grayscale images.

    Parameters mirror :class:`~repro.core.pipeline.SecureCompressor`,
    with ``quality`` replacing the error bound.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.imagecodec import SecureImageCompressor
    >>> img = np.tile(np.linspace(0, 255, 48), (48, 1))
    >>> sic = SecureImageCompressor(quality=85, key=bytes(16))
    >>> result = sic.compress(img)
    >>> out = sic.decompress(result.container)
    >>> out.shape
    (48, 48)
    """

    def __init__(
        self,
        scheme: str = "encr_huffman",
        quality: int = 75,
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        zlib_level: int = DEFAULT_LEVEL,
        authenticate: bool = False,
        random_state: np.random.Generator | None = None,
    ) -> None:
        self._scheme: Scheme = get_scheme(scheme)
        if cipher_mode not in cont.CIPHER_MODES:
            raise ValueError(f"unknown cipher mode {cipher_mode!r}")
        self.cipher_mode = cipher_mode
        if self._scheme.requires_key or authenticate:
            if key is None:
                raise ValueError("this configuration requires a 16-byte key")
            self._cipher: AES128 | None = AES128(key)
        else:
            self._cipher = AES128(key) if key is not None else None
        self.authenticate = authenticate
        self._master_key = key
        self._codec = ImageCodec(quality)
        self.zlib_level = zlib_level
        self._random_state = random_state

    @property
    def scheme(self) -> str:
        """The active scheme's registry name."""
        return self._scheme.name

    @property
    def codec(self) -> ImageCodec:
        """The inner JPEG-like codec."""
        return self._codec

    def _fresh_iv(self) -> bytes:
        if self.cipher_mode == "ctr":
            return crypto_rng.generate_nonce(self._random_state)
        return crypto_rng.generate_iv(self._random_state)

    def compress(self, image: np.ndarray) -> ImageCompressResult:
        """Encode ``image`` and apply the scheme's protection."""
        times = StageTimes()
        with times.stage("encode"):
            sections, stats = self._codec.encode(image)
        iv = self._fresh_iv()
        out_sections = self._scheme.protect(
            sections, self._cipher, iv, self.cipher_mode, self.zlib_level,
            times,
        )
        blob = cont.pack_container(
            self._scheme.scheme_id, self.cipher_mode, iv, out_sections
        )
        if self.authenticate:
            blob = integrity.authenticate(blob, self._master_key)
        return ImageCompressResult(
            container=blob,
            stats=stats,
            times=times,
            encrypted_bytes=self._scheme.encrypted_bytes(sections),
            scheme=self._scheme.name,
        )

    def decompress(self, blob: bytes) -> np.ndarray:
        """Invert :meth:`compress` back to the lossy image."""
        if blob[: len(integrity.MAGIC)] == integrity.MAGIC:
            if self._master_key is None:
                raise ValueError(
                    "authenticated container requires a key for verification"
                )
            blob = integrity.verify_and_strip(blob, self._master_key)
        elif self.authenticate:
            raise integrity.AuthenticationError(
                "expected an authenticated (SECA) container"
            )
        parsed = cont.parse_container(blob)
        scheme = get_scheme(parsed.scheme_id)
        if scheme.name != self._scheme.name:
            raise ValueError(
                f"container was written with scheme {scheme.name!r} but this "
                f"compressor is configured for {self._scheme.name!r}"
            )
        sections = scheme.unprotect(
            parsed.sections, self._cipher, parsed.iv, parsed.cipher_mode,
            StageTimes(),
        )
        return self._codec.decode(sections)
