"""A JPEG-like lossy image codec, wired into the same scheme layer.

The paper claims its white-box integrations apply to "any compressor
that leverages Huffman encoding (e.g., MGARD and JPEG)" (Sec. IV).
This package substantiates that claim with a second, independent codec
built on the classic JPEG structure:

    8x8 blocks -> 2-D DCT -> quality-scaled quantization ->
    DC delta coding + AC zigzag run-length tokens -> canonical Huffman
    -> zlib

Because the codec emits the *same named sections* as the SZ frame
(``meta`` / ``tree`` / ``codes`` / ``unpred`` / ``coeffs`` / ``exact``),
all four schemes from :mod:`repro.core.schemes` — including
Encr-Huffman's tree-only encryption — work on images unchanged; see
:class:`~repro.imagecodec.pipeline.SecureImageCompressor`.
"""

from repro.imagecodec.codec import ImageCodec, ImageStats
from repro.imagecodec.pipeline import SecureImageCompressor
from repro.imagecodec.testimages import synthetic_image

__all__ = [
    "ImageCodec",
    "ImageStats",
    "SecureImageCompressor",
    "synthetic_image",
]
