"""Streaming file-to-file secure compression.

For fields too large to hold in memory (the paper's QI/T are 5.8 GB),
the compressor memory-maps the raw input, processes one axis-0 slab at
a time, and appends each slab's container to the output as it
completes.  The on-disk format is the same SECM multi-chunk framing as
:class:`~repro.parallel.chunked.ChunkedSecureCompressor`, written
incrementally: the chunk-length table is back-patched after the last
slab, so compression needs only one slab of working memory.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.core.pipeline import SecureCompressor
from repro.parallel.chunked import _HEADER, _MAGIC

__all__ = ["compress_file", "decompress_file"]


def compress_file(
    in_path: str | os.PathLike,
    out_path: str | os.PathLike,
    shape: tuple[int, ...],
    *,
    dtype: np.dtype | str = np.float32,
    slab_rows: int = 16,
    **compressor_kwargs,
) -> int:
    """Compress a raw binary field file slab-by-slab.

    Parameters
    ----------
    in_path:
        Headerless C-order binary field (SDRBench layout).
    out_path:
        Destination SECM file.
    shape, dtype:
        The field's dimensions and element type.
    slab_rows:
        Axis-0 rows per slab (working-set control).
    compressor_kwargs:
        Forwarded to :class:`~repro.core.pipeline.SecureCompressor`
        (scheme, error_bound, key, ...).

    Returns the number of slabs written.
    """
    if slab_rows < 1:
        raise ValueError("slab_rows must be positive")
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    if os.path.getsize(in_path) != expected:
        raise ValueError(
            f"{in_path}: size does not match shape {shape} / dtype {dtype}"
        )
    field = np.memmap(in_path, dtype=dtype, mode="r", shape=tuple(shape))
    sc = SecureCompressor(**compressor_kwargs)
    n_slabs = -(-shape[0] // slab_rows)
    lengths: list[int] = []
    with open(out_path, "wb") as out:
        out.write(_HEADER.pack(_MAGIC, n_slabs))
        table_pos = out.tell()
        out.write(b"\x00" * 8 * n_slabs)  # back-patched below
        for s in range(n_slabs):
            slab = np.ascontiguousarray(
                field[s * slab_rows : (s + 1) * slab_rows]
            )
            container = sc.compress(slab).container
            lengths.append(len(container))
            out.write(container)
        out.seek(table_pos)
        out.write(struct.pack(f"<{n_slabs}Q", *lengths))
    return n_slabs


def decompress_file(
    in_path: str | os.PathLike,
    out_path: str | os.PathLike,
    **compressor_kwargs,
) -> tuple[int, ...]:
    """Invert :func:`compress_file`, streaming slabs to ``out_path``.

    Returns the shape of the restored field (axis 0 is the slab
    concatenation; trailing axes come from the first slab).
    """
    sc = SecureCompressor(**compressor_kwargs)
    rows = 0
    tail_shape: tuple[int, ...] | None = None
    with open(in_path, "rb") as inp, open(out_path, "wb") as out:
        head = inp.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise ValueError("SECM file shorter than its header")
        magic, n_slabs = _HEADER.unpack(head)
        if magic != _MAGIC:
            raise ValueError("bad magic; not a SECM file")
        table = inp.read(8 * n_slabs)
        if len(table) < 8 * n_slabs:
            raise ValueError("truncated SECM length table")
        lengths = struct.unpack(f"<{n_slabs}Q", table)
        for length in lengths:
            container = inp.read(length)
            if len(container) < length:
                raise ValueError("truncated SECM payload")
            slab = sc.decompress(container)
            if tail_shape is None:
                tail_shape = slab.shape[1:]
            elif slab.shape[1:] != tail_shape:
                raise ValueError("inconsistent slab shapes in SECM file")
            rows += slab.shape[0]
            out.write(np.ascontiguousarray(slab).tobytes())
        if inp.read(1):
            raise ValueError("trailing bytes after SECM payload")
    return (rows, *(tail_shape or ()))
