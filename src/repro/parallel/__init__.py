"""Chunked multi-process secure compression (HPC extension).

The paper runs single-threaded (Sec. V-A); this optional extension
splits a field into slabs along axis 0 and compresses each slab in a
worker process — the natural way to use the schemes inside an MPI-style
HPC pipeline where each rank owns a domain slab.  Each slab gets its
own container (and its own IV: CBC must never reuse one), concatenated
under a tiny multi-chunk framing.

>>> import numpy as np
>>> from repro.parallel import ChunkedSecureCompressor
>>> csc = ChunkedSecureCompressor(scheme="encr_huffman", error_bound=1e-3,
...                               key=bytes(16), n_chunks=2, n_workers=1)
>>> data = np.random.default_rng(0).random((16, 16, 16)).astype(np.float32)
>>> blob = csc.compress(data)
>>> bool(np.max(np.abs(csc.decompress(blob) - data)) <= 1e-3)
True
"""

from repro.parallel.chunked import ChunkedSecureCompressor
from repro.parallel.filestream import compress_file, decompress_file

__all__ = ["ChunkedSecureCompressor", "compress_file", "decompress_file"]
