"""Slab-parallel secure compression.

Implementation notes
--------------------
* Workers are plain ``ProcessPoolExecutor`` processes; the work unit is
  one axis-0 slab.  The module-level :func:`_compress_slab` /
  :func:`_decompress_slab` functions keep the payload picklable (the
  guides' mpi4py examples use the same "ship arrays, not objects"
  discipline — a slab is a contiguous buffer, cheap to serialize).
* Every slab is an independent SECZ container with a fresh IV/nonce —
  CBC IV reuse across ranks would leak equal-prefix information, CTR
  nonce reuse would leak the slabs' XOR outright.  In CTR mode each
  worker additionally runs its own keystream prefetcher
  (:mod:`repro.crypto.pipelined`), so per-slab keystream generation
  overlaps that slab's SZ stages instead of serializing after them.
* Seeded runs (``base_seed``) derive slab nonces deterministically from
  ``base_seed + slab_index``; in CTR mode that is a keystream-reuse
  hazard across *runs* (same seed + same key → same nonces), so the
  constructor refuses it unless ``allow_nonce_reuse=True`` is passed
  explicitly (see DESIGN.md).
* The outer framing is deliberately trivial: magic, chunk count, chunk
  lengths, then the containers back to back.
"""

from __future__ import annotations

import struct
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core import trace
from repro.core.pipeline import SecureCompressor

__all__ = ["ChunkedSecureCompressor"]

_MAGIC = b"SECM"
_HEADER = struct.Struct("<4sI")


@dataclass(frozen=True)
class _Config:
    """Picklable constructor arguments for worker-side compressors."""

    scheme: str
    error_bound: float
    key: bytes | None
    cipher_mode: str
    predictor: str
    zlib_level: int
    authenticate: bool = False
    encode_workers: int = 1
    depth_limit: int | None = None
    allow_nonce_reuse: bool = False

    def build(self, seed: int | None = None) -> SecureCompressor:
        rng = np.random.default_rng(seed) if seed is not None else None
        return SecureCompressor(
            scheme=self.scheme,
            error_bound=self.error_bound,
            key=self.key,
            cipher_mode=self.cipher_mode,
            predictor=self.predictor,
            zlib_level=self.zlib_level,
            authenticate=self.authenticate,
            encode_workers=self.encode_workers,
            depth_limit=self.depth_limit,
            random_state=rng,
            allow_nonce_reuse=self.allow_nonce_reuse,
        )


def _compress_slab(
    args: tuple[_Config, bytes, tuple[int, ...], str, int, bool]
) -> tuple[bytes, dict | None]:
    config, raw, shape, dtype, seed, want_trace = args
    slab = np.frombuffer(raw, dtype=dtype).reshape(shape)
    tr = trace.Tracer() if want_trace else None
    container = config.build(seed).compress(slab, tracer=tr).container
    return container, (tr.export() if tr is not None else None)


def _decompress_slab(
    args: tuple[_Config, bytes, bool]
) -> tuple[bytes, tuple[int, ...], str, dict | None]:
    config, container, want_trace = args
    tr = trace.Tracer() if want_trace else None
    out = config.build().decompress(container, tracer=tr)
    return (
        np.ascontiguousarray(out).tobytes(),
        out.shape,
        out.dtype.str,
        tr.export() if tr is not None else None,
    )


class ChunkedSecureCompressor:
    """Compress axis-0 slabs of a field in parallel worker processes.

    Parameters
    ----------
    scheme, error_bound, key, cipher_mode, predictor, zlib_level:
        Same meaning as :class:`repro.core.SecureCompressor`.
    n_chunks:
        Number of axis-0 slabs (must not exceed the axis length).
    n_workers:
        Worker processes; 1 runs everything in-process (useful for
        tests and for measuring the parallel overhead itself).
    base_seed:
        When set, slab IVs derive from ``base_seed + slab_index`` so
        runs are reproducible; production leaves it None (OS entropy).
        With ``cipher_mode="ctr"`` this makes nonces deterministic
        across runs and therefore requires ``allow_nonce_reuse=True``.
    allow_nonce_reuse:
        Explicit opt-in for seeded CTR runs (reproducible experiments
        on non-sensitive data only); forwarded to every slab's
        :class:`SecureCompressor`.  See DESIGN.md.
    encode_workers:
        Per-worker thread-pool width for packing v3 Huffman lanes
        (forwarded to each slab's :class:`SecureCompressor`).  The
        output bytes are identical for any value, so process- and
        thread-level parallelism compose freely.
    depth_limit:
        Optional per-slab Huffman code-depth cap (forwarded to each
        slab's :class:`SecureCompressor`); flagged frames decode on
        the miss-free kernel.
    """

    def __init__(
        self,
        scheme: str = "encr_huffman",
        error_bound: float = 1e-3,
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        predictor: str = "auto",
        zlib_level: int = 6,
        authenticate: bool = False,
        n_chunks: int = 4,
        n_workers: int = 4,
        base_seed: int | None = None,
        encode_workers: int = 1,
        depth_limit: int | None = None,
        allow_nonce_reuse: bool = False,
    ) -> None:
        if n_chunks < 1:
            raise ValueError("n_chunks must be positive")
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if (
            cipher_mode == "ctr"
            and base_seed is not None
            and not allow_nonce_reuse
        ):
            # Fail here rather than in the workers: one clear error in
            # the construction stack instead of N pickled ones.
            raise ValueError(
                "cipher_mode='ctr' with base_seed derives deterministic "
                "per-slab nonces: re-running with the same seed and key "
                "would reuse (key, nonce) pairs and leak slab XORs. Pass "
                "allow_nonce_reuse=True only for reproducible experiments "
                "on non-sensitive data (DESIGN.md), or drop base_seed."
            )
        self._config = _Config(
            scheme=scheme,
            error_bound=float(error_bound),
            key=key,
            cipher_mode=cipher_mode,
            predictor=predictor,
            zlib_level=zlib_level,
            authenticate=authenticate,
            encode_workers=encode_workers,
            depth_limit=depth_limit,
            allow_nonce_reuse=allow_nonce_reuse,
        )
        self.n_chunks = n_chunks
        self.n_workers = n_workers
        self.base_seed = base_seed

    def _slabs(self, data: np.ndarray) -> list[np.ndarray]:
        if data.shape[0] < self.n_chunks:
            raise ValueError(
                f"cannot split axis of length {data.shape[0]} into "
                f"{self.n_chunks} chunks"
            )
        return np.array_split(data, self.n_chunks, axis=0)

    def compress(
        self, data: np.ndarray, *, tracer: trace.Tracer | None = None
    ) -> bytes:
        """Compress ``data`` slab-parallel into a SECM multi-container.

        With an enabled ``tracer``, each worker records its own span
        tree; the parent grafts every slab's spans under one
        ``chunked.compress`` span (thread/process-safe: workers trace
        into private tracers, the graft happens here) and folds
        worker-process counters into this process's totals.
        """
        tr = trace.tracer_for(tracer)
        data = np.ascontiguousarray(data)
        slabs = self._slabs(data)
        jobs = [
            (
                self._config,
                slab.tobytes(),
                slab.shape,
                slab.dtype.str,
                (self.base_seed + i) if self.base_seed is not None else None,
                tr.enabled,
            )
            for i, slab in enumerate(slabs)
        ]
        with tr.span("chunked.compress", bytes_in=data.nbytes,
                     n_chunks=self.n_chunks,
                     n_workers=self.n_workers) as root:
            pooled = self.n_workers > 1
            if pooled:
                with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                    results = list(pool.map(_compress_slab, jobs))
            else:
                results = [_compress_slab(job) for job in jobs]
            containers = [container for container, _ in results]
            self._graft_slab_traces(
                tr, (doc for _, doc in results), pooled
            )
            head = _HEADER.pack(_MAGIC, len(containers))
            lengths = struct.pack(
                f"<{len(containers)}Q", *map(len, containers)
            )
            blob = head + lengths + b"".join(containers)
            root.bytes_out = len(blob)
        return blob

    @staticmethod
    def _graft_slab_traces(tr: trace.Tracer, docs, pooled: bool) -> None:
        """Attach each worker's exported spans as ``slab`` children.

        Worker-process counter deltas only merge when a pool actually
        ran the slab — the in-process path already counted into this
        process's globals, and merging again would double-count.
        """
        if not tr.enabled:
            return
        for i, doc in enumerate(docs):
            if doc is None:
                continue
            wrapper = trace.Span(name="slab", attrs={"index": i})
            for root in doc["roots"]:
                child = trace.span_from_dict(root)
                wrapper.children.append(child)
                wrapper.seconds += child.seconds
            tr.attach(wrapper)
            if pooled:
                trace.merge_counters(doc["counters"])

    def decompress(
        self, blob: bytes, *, tracer: trace.Tracer | None = None
    ) -> np.ndarray:
        """Invert :meth:`compress`, reassembling the slabs in order."""
        tr = trace.tracer_for(tracer)
        if len(blob) < _HEADER.size:
            raise ValueError("multi-chunk blob shorter than its header")
        magic, n_chunks = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise ValueError("bad magic; not a SECM multi-chunk blob")
        offset = _HEADER.size
        if len(blob) < offset + 8 * n_chunks:
            raise ValueError("truncated multi-chunk length table")
        lengths = struct.unpack_from(f"<{n_chunks}Q", blob, offset)
        offset += 8 * n_chunks
        containers = []
        for length in lengths:
            if offset + length > len(blob):
                raise ValueError("truncated multi-chunk payload")
            containers.append(blob[offset : offset + length])
            offset += length
        if offset != len(blob):
            raise ValueError("trailing bytes after multi-chunk payload")
        jobs = [(self._config, c, tr.enabled) for c in containers]
        with tr.span("chunked.decompress", bytes_in=len(blob),
                     n_chunks=len(containers),
                     n_workers=self.n_workers) as root:
            pooled = self.n_workers > 1
            if pooled:
                with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                    raw = list(pool.map(_decompress_slab, jobs))
            else:
                raw = [_decompress_slab(job) for job in jobs]
            self._graft_slab_traces(
                tr, (doc for _, _, _, doc in raw), pooled
            )
            slabs = [
                np.frombuffer(chunk, dtype=dtype).reshape(shape)
                for chunk, shape, dtype, _ in raw
            ]
            out = np.concatenate(slabs, axis=0)
            root.bytes_out = out.nbytes
        return out
