"""Secure archives: flat v1 bundles and the content-addressed v2 store.

Two generations live side by side:

* :class:`SecureArchive` (``legacy``) — the flat SECB v1 bundle: a
  plaintext name index in front of back-to-back SECZ containers.
  Kept verbatim for existing archives and fixtures.
* :class:`ArchiveStore` (``store``) — the SECB v2 content-addressed
  store: content-defined chunking, SHA-256 addressed store-once blobs
  with refcounts, per-entry scheme/codec/error-bound metadata, and
  incremental append.  ``secz archive`` drives it from the CLI.

Import from the package root; the submodule split is an
implementation detail.

Examples
--------
>>> import os, tempfile
>>> from repro.archive import ArchiveStore
>>> path = os.path.join(tempfile.mkdtemp(), "runs.secb")
>>> store = ArchiveStore.create(path, key=bytes(range(16)))
>>> store.add_bytes("ckpt", b"weights " * 512, codec="lz77h")
>>> store.add_bytes("ckpt-copy", b"weights " * 512)  # stored once
>>> store.stats()["dedup_ratio"] > 1.5
True
>>> store.extract_bytes("ckpt-copy")[:8]
b'weights '
>>> store.verify(deep=True)
[]
"""

from repro.archive.legacy import SecureArchive
from repro.archive.store import ArchiveStore, ArchiveCorrupt

__all__ = ["SecureArchive", "ArchiveStore", "ArchiveCorrupt"]
