"""SECB v2: the content-addressed, deduplicating archive store.

The flat v1 bundle (:mod:`repro.archive.legacy`) stores every field's
container back-to-back; adding the same checkpoint shard twice costs
twice the bytes.  v2 splits each entry into content-defined chunks
(:mod:`repro.archive.chunker`), addresses every chunk by its SHA-256,
and stores each distinct chunk exactly once in a refcounted blob
table — the shape of a lab's archival job where most snapshots barely
differ from the last one.

Layout (single file; see docs/FORMAT.md §10.2 for the normative
byte-level spec)::

    header  '<4sBBH'          magic 'SEB2', version, flags, reserved
    blobs   sealed chunk payloads, back-to-back
    index   '<II' blob and entry counts
            per blob  '<32s32sQQQIBB16s'
            per entry '<H' + name utf-8 + '<BBBdQ32sI' + digest list
    footer  '<QQ32s4s'        index offset, length, SHA-256, magic

The index lives at the *tail* so an append never rewrites stored
blobs: new blobs overwrite the dead index region and a fresh index +
footer is written after them.  The footer hash makes index corruption
detectable without a key; every blob carries the SHA-256 of both its
stored (sealed) and raw (plaintext) bytes, so ``verify`` can audit
stored bytes keylessly and audit plaintext when a key is present.

Chunks are deduplicated on their *plaintext* digest, before
compression and encryption — otherwise the per-blob random IV would
make identical chunks incomparable.  That is convergent-storage
behaviour: an attacker with the archive (but not the key) can tell
that two entries share content.  For archival of one's own data under
one key this is the standard dedup/confidentiality trade and is
documented in FORMAT.md.

Compression stays compression-side, before encryption (the Klinc et
al. ordering the scheme registry already enforces): per-blob codecs
(``store``/``zlib``/``lz77h``/``lz77h+zlib``) run first, then AES-CBC
or AES-CTR seals the payload with a fresh IV per blob.
"""

from __future__ import annotations

import hashlib
import io
import os
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.archive import chunker
from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.core.schemes import get_scheme
from repro.crypto.aes import AES128
from repro.crypto import rng as crypto_rng
from repro.sz import lossless, lz77

__all__ = ["ArchiveStore", "ArchiveCorrupt", "CODECS"]

_MAGIC2 = b"SEB2"
_VERSION = 2

_V2_HEAD = struct.Struct("<4sBBH")  # magic, version, flags, reserved
_V2_COUNTS = struct.Struct("<II")  # n_blobs, n_entries
# raw sha, stored sha, offset, stored len, raw len, refcount, codec,
# enc mode, iv
_V2_BLOB = struct.Struct("<32s32sQQQIBB16s")
_V2_NAME = struct.Struct("<H")  # entry name length, then utf-8 bytes
# kind, scheme id, codec, error bound, raw size, content sha, n chunks
_V2_ENTRY = struct.Struct("<BBBdQ32sI")
_V2_FOOT = struct.Struct("<QQ32s4s")  # index offset, len, sha, magic

_DIGEST = 32
_ZERO_IV = bytes(16)

#: Per-blob codec ids (byte values on the wire).
CODECS = {"store": 0, "zlib": 1, "lz77h": 2, "lz77h+zlib": 3}
_CODEC_NAMES = {v: k for k, v in CODECS.items()}

_ENC_NONE, _ENC_CBC, _ENC_CTR = 0, 1, 2
_ENC_BY_MODE = {"cbc": _ENC_CBC, "ctr": _ENC_CTR}

_KIND_RAW, _KIND_FIELD = 0, 1


class ArchiveCorrupt(ValueError):
    """A structural or cryptographic check on the archive failed.

    Raised by the read path (fail closed); :meth:`ArchiveStore.verify`
    reports the same conditions as a list instead of raising.
    """


def _sha(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _encode(chunk: bytes, codec: int) -> bytes:
    if codec == CODECS["store"]:
        return chunk
    if codec == CODECS["zlib"]:
        return lossless.compress(chunk)
    if codec == CODECS["lz77h"]:
        return lz77.compress(chunk)
    if codec == CODECS["lz77h+zlib"]:
        return lossless.compress(lz77.compress(chunk))
    raise ValueError(f"unknown codec id {codec}")


def _decode(payload: bytes, codec: int) -> bytes:
    if codec == CODECS["store"]:
        return payload
    if codec == CODECS["zlib"]:
        return lossless.decompress(payload)
    if codec == CODECS["lz77h"]:
        return lz77.decompress(payload)
    if codec == CODECS["lz77h+zlib"]:
        return lz77.decompress(lossless.decompress(payload))
    raise ArchiveCorrupt(f"unknown codec id {codec}")


@dataclass
class _Blob:
    raw_sha: bytes
    stored_sha: bytes
    offset: int
    stored_len: int
    raw_len: int
    refcount: int
    codec: int
    enc: int
    iv: bytes


@dataclass
class _Entry:
    name: str
    kind: int
    scheme_id: int
    codec: int
    error_bound: float
    raw_size: int
    content_sha: bytes
    chunks: list[bytes] = field(default_factory=list)


class ArchiveStore:
    """A SECB v2 archive on disk.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "a.secb")
    >>> store = ArchiveStore.create(path, key=bytes(range(16)))
    >>> store.add_bytes("log", b"step 1 ok\\n" * 400, codec="lz77h")
    >>> store.add_field("t", np.zeros((8, 8), np.float32),
    ...                 error_bound=1e-3)
    >>> sorted(store.names())
    ['log', 't']
    >>> store.extract_bytes("log")[:10]
    b'step 1 ok\\n'
    >>> store.verify()
    []
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        random_state: np.random.Generator | None = None,
        chunk_bits: int = chunker.DEFAULT_CHUNK_BITS,
        min_chunk: int = chunker.DEFAULT_MIN_SIZE,
        max_chunk: int = chunker.DEFAULT_MAX_SIZE,
    ) -> None:
        if cipher_mode not in _ENC_BY_MODE:
            raise ValueError(f"unknown cipher mode {cipher_mode!r}")
        if key is not None and len(key) != 16:
            raise ValueError("key must be 16 bytes (AES-128)")
        if cipher_mode == "ctr" and random_state is not None:
            raise ValueError(
                "cipher_mode='ctr' with a seeded random_state derives "
                "predictable nonces; CTR nonces must come from OS "
                "entropy (drop random_state or use 'cbc')"
            )
        self._path = os.fspath(path)
        self._key = key
        self._cipher_mode = cipher_mode
        self._rng = random_state
        self._chunk_kwargs = dict(
            chunk_bits=chunk_bits, min_size=min_chunk, max_size=max_chunk
        )
        self._blobs: dict[bytes, _Blob] = {}
        self._entries: dict[str, _Entry] = {}
        self._data_end = _V2_HEAD.size
        self._load()

    @classmethod
    def create(
        cls, path: str | os.PathLike[str], **kwargs
    ) -> "ArchiveStore":
        """Write a fresh empty archive at ``path`` and open it."""
        if os.path.exists(path):
            raise FileExistsError(f"archive already exists: {path!s}")
        head = _V2_HEAD.pack(_MAGIC2, _VERSION, 0, 0)
        index = _V2_COUNTS.pack(0, 0)
        foot = _V2_FOOT.pack(len(head), len(index), _sha(index), _MAGIC2)
        with open(path, "wb") as fh:
            fh.write(head + index + foot)
        return cls(path, **kwargs)

    # -- on-disk index ------------------------------------------------

    def _load(self) -> None:
        with open(self._path, "rb") as fh:
            blob = fh.read()
        floor = _V2_HEAD.size + _V2_COUNTS.size + _V2_FOOT.size
        if len(blob) < floor:
            raise ArchiveCorrupt("archive shorter than its fixed framing")
        magic, version, flags, reserved = _V2_HEAD.unpack_from(blob)
        if magic != _MAGIC2:
            raise ArchiveCorrupt("bad magic; not a SECB v2 archive")
        if version != _VERSION:
            raise ArchiveCorrupt(f"unsupported SECB version {version}")
        if flags or reserved:
            raise ArchiveCorrupt("reserved header bits set")
        index_off, index_len, index_sha, foot_magic = _V2_FOOT.unpack(
            blob[-_V2_FOOT.size:]
        )
        if foot_magic != _MAGIC2:
            raise ArchiveCorrupt("bad footer magic (truncated archive?)")
        if (
            index_off < _V2_HEAD.size
            or index_off + index_len + _V2_FOOT.size != len(blob)
        ):
            raise ArchiveCorrupt("footer index span does not match file")
        index = blob[index_off : index_off + index_len]
        if _sha(index) != index_sha:
            raise ArchiveCorrupt("index digest mismatch")
        self._parse_index(index, file_size=index_off)
        self._data_end = index_off

    def _parse_index(self, index: bytes, *, file_size: int) -> None:
        buf = io.BytesIO(index)

        def take(n: int, what: str) -> bytes:
            got = buf.read(n)
            if len(got) != n:
                raise ArchiveCorrupt(f"index truncated inside {what}")
            return got

        n_blobs, n_entries = _V2_COUNTS.unpack(
            take(_V2_COUNTS.size, "counts")
        )
        blobs: dict[bytes, _Blob] = {}
        for _ in range(n_blobs):
            rec = _Blob(*_V2_BLOB.unpack(take(_V2_BLOB.size, "blob record")))
            if rec.raw_sha in blobs:
                raise ArchiveCorrupt("duplicate blob digest in index")
            if rec.offset < _V2_HEAD.size or (
                rec.offset + rec.stored_len > file_size
            ):
                raise ArchiveCorrupt("blob extent outside the data region")
            if rec.codec not in _CODEC_NAMES:
                raise ArchiveCorrupt(f"unknown codec id {rec.codec}")
            if rec.enc not in (_ENC_NONE, _ENC_CBC, _ENC_CTR):
                raise ArchiveCorrupt(f"unknown enc mode {rec.enc}")
            blobs[rec.raw_sha] = rec
        entries: dict[str, _Entry] = {}
        for _ in range(n_entries):
            (name_len,) = _V2_NAME.unpack(take(_V2_NAME.size, "entry name"))
            try:
                name = take(name_len, "entry name").decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ArchiveCorrupt(
                    f"entry name is not valid UTF-8: {exc}"
                ) from exc
            kind, scheme_id, codec, eb, raw_size, content_sha, n_chunks = (
                _V2_ENTRY.unpack(take(_V2_ENTRY.size, "entry record"))
            )
            digests = take(n_chunks * _DIGEST, "entry digest list")
            if name in entries:
                raise ArchiveCorrupt(f"duplicate entry {name!r}")
            entries[name] = _Entry(
                name=name, kind=kind, scheme_id=scheme_id, codec=codec,
                error_bound=eb, raw_size=raw_size, content_sha=content_sha,
                chunks=[
                    digests[i : i + _DIGEST]
                    for i in range(0, len(digests), _DIGEST)
                ],
            )
        if buf.read(1):
            raise ArchiveCorrupt("trailing bytes after the index")
        self._blobs = blobs
        self._entries = entries

    def _index_bytes(self) -> bytes:
        parts = [_V2_COUNTS.pack(len(self._blobs), len(self._entries))]
        for rec in self._blobs.values():
            parts.append(_V2_BLOB.pack(
                rec.raw_sha, rec.stored_sha, rec.offset, rec.stored_len,
                rec.raw_len, rec.refcount, rec.codec, rec.enc, rec.iv,
            ))
        for ent in self._entries.values():
            encoded = ent.name.encode("utf-8")
            parts.append(_V2_NAME.pack(len(encoded)))
            parts.append(encoded)
            parts.append(_V2_ENTRY.pack(
                ent.kind, ent.scheme_id, ent.codec, ent.error_bound,
                ent.raw_size, ent.content_sha, len(ent.chunks),
            ))
            parts.append(b"".join(ent.chunks))
        return b"".join(parts)

    def _flush(self, fh) -> None:
        """Write index + footer at ``self._data_end`` and truncate."""
        index = self._index_bytes()
        fh.seek(self._data_end)
        fh.write(index)
        fh.write(_V2_FOOT.pack(
            self._data_end, len(index), _sha(index), _MAGIC2
        ))
        fh.truncate()

    # -- sealing ------------------------------------------------------

    def _fresh_iv(self) -> bytes:
        if self._cipher_mode == "ctr":
            return crypto_rng.generate_nonce(self._rng)
        return crypto_rng.generate_iv(self._rng)

    def _seal(self, chunk: bytes, codec: int) -> tuple[_Blob, bytes]:
        payload = _encode(chunk, codec)
        if self._key is not None:
            iv = self._fresh_iv()
            enc = _ENC_BY_MODE[self._cipher_mode]
            payload = AES128(self._key).encrypt(
                payload, mode=self._cipher_mode, iv=iv
            ).ciphertext
        else:
            iv, enc = _ZERO_IV, _ENC_NONE
        rec = _Blob(
            raw_sha=_sha(chunk), stored_sha=_sha(payload), offset=0,
            stored_len=len(payload), raw_len=len(chunk), refcount=1,
            codec=codec, enc=enc, iv=iv,
        )
        return rec, payload

    def _unseal(self, stored: bytes, rec: _Blob) -> bytes:
        if _sha(stored) != rec.stored_sha:
            raise ArchiveCorrupt(
                f"stored blob {rec.raw_sha.hex()[:12]} digest mismatch"
            )
        if rec.enc != _ENC_NONE:
            if self._key is None:
                raise ValueError("archive blob is encrypted; key required")
            mode = "cbc" if rec.enc == _ENC_CBC else "ctr"
            # The 16s wire slot zero-pads CTR's 8-byte nonce.
            iv = rec.iv[:8] if rec.enc == _ENC_CTR else rec.iv
            stored = AES128(self._key).decrypt(stored, iv, mode=mode)
        chunk = _decode(stored, rec.codec)
        if len(chunk) != rec.raw_len or _sha(chunk) != rec.raw_sha:
            raise ArchiveCorrupt(
                f"blob {rec.raw_sha.hex()[:12]} plaintext digest mismatch"
            )
        return chunk

    # -- mutation -----------------------------------------------------

    def _add_entry(
        self, name: str, data: bytes, *, kind: int, scheme_id: int,
        codec: int, error_bound: float,
    ) -> None:
        encoded = name.encode("utf-8")
        if not 1 <= len(encoded) <= 65535:
            raise ValueError(f"bad entry name {name!r}")
        if name in self._entries:
            raise ValueError(f"archive already has an entry {name!r}")
        digests: list[bytes] = []
        fresh: list[tuple[_Blob, bytes]] = []
        pending: dict[bytes, _Blob] = {}
        for chunk in chunker.split(data, **self._chunk_kwargs):
            raw_sha = _sha(chunk)
            digests.append(raw_sha)
            known = self._blobs.get(raw_sha) or pending.get(raw_sha)
            if known is not None:
                known.refcount += 1
                trace.count("archive.chunks_deduped")
                continue
            rec, payload = self._seal(chunk, codec)
            pending[raw_sha] = rec
            fresh.append((rec, payload))
            trace.count("archive.chunks_added")
        with open(self._path, "r+b") as fh:
            # Append-only data region: new blobs overwrite the dead
            # index, then a fresh index + footer go after them.
            fh.seek(self._data_end)
            for rec, payload in fresh:
                rec.offset = self._data_end
                fh.write(payload)
                self._data_end += rec.stored_len
                self._blobs[rec.raw_sha] = rec
            self._entries[name] = _Entry(
                name=name, kind=kind, scheme_id=scheme_id, codec=codec,
                error_bound=error_bound, raw_size=len(data),
                content_sha=_sha(data), chunks=digests,
            )
            self._flush(fh)

    def add_bytes(
        self, name: str, data: bytes, *, codec: str = "zlib"
    ) -> None:
        """Add an opaque byte entry, chunked, coded, and sealed.

        With a key, blobs are encrypted after the codec pass
        (Cmpr-Encr ordering); without one they are stored coded but
        plain, and the entry's scheme records ``none``.
        """
        if codec not in CODECS:
            raise ValueError(
                f"unknown codec {codec!r}; one of {sorted(CODECS)}"
            )
        scheme = "cmpr_encr" if self._key is not None else "none"
        self._add_entry(
            name, data, kind=_KIND_RAW,
            scheme_id=get_scheme(scheme).scheme_id,
            codec=CODECS[codec], error_bound=0.0,
        )

    def add_field(
        self,
        name: str,
        data: np.ndarray,
        *,
        scheme: str = "encr_huffman",
        error_bound: float = 1e-3,
        tracer: trace.Tracer | None = None,
    ) -> None:
        """Add a float field as a SECZ container entry.

        The container carries its own scheme protection, so its chunks
        are stored uncoded and unencrypted (``codec=store``, plain) —
        double-sealing would only hide the dedup opportunity.
        """
        if self._key is None and get_scheme(scheme).requires_key:
            raise ValueError(f"scheme {scheme!r} needs an archive key")
        sc = SecureCompressor(
            scheme, error_bound, key=self._key,
            cipher_mode=self._cipher_mode, random_state=self._rng,
        )
        container = sc.compress(data, tracer=tracer).container
        self._add_entry(
            name, container, kind=_KIND_FIELD,
            scheme_id=get_scheme(scheme).scheme_id,
            codec=CODECS["store"], error_bound=error_bound,
        )

    def remove(self, name: str) -> None:
        """Drop an entry; its blobs stay until :meth:`gc` runs."""
        ent = self._entries.pop(self._require(name).name)
        for digest in ent.chunks:
            rec = self._blobs.get(digest)
            if rec is not None and rec.refcount > 0:
                rec.refcount -= 1
        with open(self._path, "r+b") as fh:
            self._flush(fh)

    def gc(self) -> int:
        """Compact away refcount-zero blobs; returns how many died."""
        dead = [d for d, rec in self._blobs.items() if rec.refcount == 0]
        if not dead:
            return 0
        with open(self._path, "rb") as fh:
            keep: list[tuple[bytes, bytes]] = []
            for digest, rec in self._blobs.items():
                if rec.refcount == 0:
                    continue
                fh.seek(rec.offset)
                keep.append((digest, fh.read(rec.stored_len)))
        for digest in dead:
            del self._blobs[digest]
        offset = _V2_HEAD.size
        with open(self._path, "r+b") as fh:
            fh.seek(offset)
            for digest, stored in keep:
                self._blobs[digest].offset = offset
                fh.write(stored)
                offset += len(stored)
            self._data_end = offset
            self._flush(fh)
        trace.count("archive.blobs_gced", len(dead))
        return len(dead)

    # -- reads --------------------------------------------------------

    def _require(self, name: str) -> _Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"archive has no entry {name!r}; "
                f"entries: {sorted(self._entries)}"
            ) from None

    def _read_blob(self, fh, digest: bytes) -> bytes:
        rec = self._blobs.get(digest)
        if rec is None:
            raise ArchiveCorrupt(
                f"dangling chunk digest {digest.hex()[:12]}"
            )
        fh.seek(rec.offset)
        stored = fh.read(rec.stored_len)
        if len(stored) != rec.stored_len:
            raise ArchiveCorrupt("blob extends past end of data region")
        return self._unseal(stored, rec)

    def extract_bytes(self, name: str) -> bytes:
        """Reassemble a raw entry, failing closed on any mismatch."""
        ent = self._require(name)
        if ent.kind != _KIND_RAW:
            raise ValueError(
                f"entry {name!r} is a field; use extract_field"
            )
        return self._assemble(ent)

    def extract_field(self, name: str) -> np.ndarray:
        """Reassemble and decompress a field entry."""
        ent = self._require(name)
        if ent.kind != _KIND_FIELD:
            raise ValueError(
                f"entry {name!r} is raw bytes; use extract_bytes"
            )
        container = self._assemble(ent)
        sc = SecureCompressor(
            get_scheme(ent.scheme_id).name, ent.error_bound,
            key=self._key, cipher_mode=self._cipher_mode,
        )
        return sc.decompress(container)

    def _assemble(self, ent: _Entry) -> bytes:
        with open(self._path, "rb") as fh:
            parts = [self._read_blob(fh, d) for d in ent.chunks]
        data = b"".join(parts)
        if len(data) != ent.raw_size or _sha(data) != ent.content_sha:
            raise ArchiveCorrupt(
                f"entry {ent.name!r} content digest mismatch"
            )
        return data

    # -- audit --------------------------------------------------------

    def names(self) -> list[str]:
        """Entry names, insertion-ordered."""
        return list(self._entries)

    def entries(self) -> list[dict]:
        """Metadata rows for every entry (for ``secz archive list``)."""
        rows = []
        for ent in self._entries.values():
            stored = sum(
                self._blobs[d].stored_len
                for d in set(ent.chunks) if d in self._blobs
            )
            rows.append({
                "name": ent.name,
                "kind": "field" if ent.kind == _KIND_FIELD else "raw",
                "scheme": get_scheme(ent.scheme_id).name,
                "codec": _CODEC_NAMES.get(ent.codec, "?"),
                "error_bound": ent.error_bound,
                "raw_size": ent.raw_size,
                "stored_size": stored,
                "n_chunks": len(ent.chunks),
            })
        return rows

    def stats(self) -> dict:
        """Store-wide dedup accounting."""
        raw_total = sum(e.raw_size for e in self._entries.values())
        referenced = sum(
            self._blobs[d].raw_len
            for e in self._entries.values() for d in e.chunks
            if d in self._blobs
        )
        stored = sum(r.stored_len for r in self._blobs.values())
        return {
            "entries": len(self._entries),
            "blobs": len(self._blobs),
            "raw_bytes": raw_total,
            "referenced_bytes": referenced,
            "stored_bytes": stored,
            "dedup_ratio": referenced / stored if stored else 0.0,
        }

    def verify(self, *, deep: bool = False) -> list[str]:
        """Audit the archive; returns a list of problems (empty = ok).

        Keyless checks: blob extents, stored-byte digests, refcount
        agreement with the entries, dangling digests.  With ``deep``
        (and a key when blobs are sealed), every chunk is unsealed and
        its plaintext digest plus each entry's content digest checked.
        """
        problems: list[str] = []
        counted: dict[bytes, int] = {d: 0 for d in self._blobs}
        with open(self._path, "rb") as fh:
            for digest, rec in self._blobs.items():
                fh.seek(rec.offset)
                stored = fh.read(rec.stored_len)
                if len(stored) != rec.stored_len:
                    problems.append(
                        f"blob {digest.hex()[:12]}: extent past data end"
                    )
                    continue
                if _sha(stored) != rec.stored_sha:
                    problems.append(
                        f"blob {digest.hex()[:12]}: stored bytes corrupt"
                    )
            for ent in self._entries.values():
                for digest in ent.chunks:
                    if digest in counted:
                        counted[digest] += 1
                    else:
                        problems.append(
                            f"entry {ent.name!r}: dangling chunk digest "
                            f"{digest.hex()[:12]}"
                        )
            for digest, rec in self._blobs.items():
                if rec.refcount != counted[digest]:
                    problems.append(
                        f"blob {digest.hex()[:12]}: refcount says "
                        f"{rec.refcount}, entries reference "
                        f"{counted[digest]}"
                    )
            if deep:
                for ent in self._entries.values():
                    try:
                        self._assemble(ent)
                    except (ValueError, ArchiveCorrupt) as exc:
                        problems.append(f"entry {ent.name!r}: {exc}")
        return problems
