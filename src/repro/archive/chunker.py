"""Content-defined chunking for the v2 archive.

Fixed-size chunking breaks deduplication the moment one byte is
inserted: every later boundary shifts.  Content-defined chunking cuts
where a rolling hash of the *content* hits a mask, so identical runs
of bytes produce identical chunks no matter where they sit in the
stream — which is what makes the store-once blob table catch a
checkpoint shard added twice under different names.

The hash is a gear hash (as in FastCDC): each position mixes the
previous 32 bytes as ``h[i] = sum_{k<32} GEAR[b[i-k]] << k``, with a
fixed random 256-entry table.  A position is a cut candidate when the
low ``chunk_bits`` bits of ``h`` are zero (expected spacing
``2**chunk_bits``); min/max bounds are enforced greedily afterwards so
adversarial content can neither starve nor flood the chunker.

The table is seeded constant: chunk boundaries are part of the
archive's deduplication behaviour and must be stable across runs and
machines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_boundaries", "split"]

#: Default expected chunk size is 4 KiB (2**12)...
DEFAULT_CHUNK_BITS = 12
#: ...bounded to [1 KiB, 32 KiB] regardless of content.
DEFAULT_MIN_SIZE = 1 << 10
DEFAULT_MAX_SIZE = 1 << 15

_WINDOW = 32
_GEAR = np.random.default_rng(0x5EC2).integers(
    0, 1 << 64, size=256, dtype=np.uint64
)


def chunk_boundaries(
    data: bytes,
    *,
    chunk_bits: int = DEFAULT_CHUNK_BITS,
    min_size: int = DEFAULT_MIN_SIZE,
    max_size: int = DEFAULT_MAX_SIZE,
) -> list[int]:
    """Cut points for ``data``, always ending with ``len(data)``.

    A boundary at ``i`` means a chunk ends *after* byte ``i - 1``;
    chunk ``j`` is ``data[cuts[j-1]:cuts[j]]`` (with an implicit 0 at
    the front).
    """
    if chunk_bits < 1 or chunk_bits > 30:
        raise ValueError("chunk_bits must be in [1, 30]")
    if not 0 < min_size <= max_size:
        raise ValueError("need 0 < min_size <= max_size")
    n = len(data)
    if n == 0:
        return [0]
    if n <= min_size:
        return [n]
    b = np.frombuffer(data, dtype=np.uint8)
    g = _GEAR[b]
    h = np.zeros(n, dtype=np.uint64)
    for k in range(_WINDOW):
        h[k:] += g[: n - k] << np.uint64(k)
    mask = np.uint64((1 << chunk_bits) - 1)
    candidates = np.flatnonzero((h & mask) == 0) + 1  # cut AFTER the byte
    cuts: list[int] = []
    start = 0
    idx = 0
    while n - start > max_size:
        idx = np.searchsorted(candidates, start + min_size, side="left")
        cut = int(candidates[idx]) if idx < candidates.size else n
        if cut > start + max_size:
            cut = start + max_size
        cuts.append(cut)
        start = cut
    cuts.append(n)
    return cuts


def split(data: bytes, **kwargs: int) -> list[bytes]:
    """Split ``data`` into content-defined chunks (see
    :func:`chunk_boundaries` for keyword parameters)."""
    cuts = chunk_boundaries(data, **kwargs)
    out = []
    start = 0
    for cut in cuts:
        out.append(data[start:cut])
        start = cut
    return out
