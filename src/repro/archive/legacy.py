"""Multi-field secure archives.

Real simulation outputs are bundles of named fields (the Hurricane
Isabel release alone carries CLOUDf48, Wf48, ...).  A
:class:`SecureArchive` maps field names to SECZ containers inside one
file, each field compressed under its own error bound but one key and
scheme for the bundle — the shape a lab's archival job actually has.

Format::

    'SECB' | u32 field count
    | per field: u16 name length, name utf-8, u64 container length
    | containers back-to-back

The index is plaintext by design (file names rarely need secrecy and
the index enables partial reads); everything sensitive lives inside
the per-field containers, which carry their own scheme protection and
optional authentication.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.pipeline import SecureCompressor
from repro.sz.quantizer import ErrorBound

__all__ = ["SecureArchive"]

_MAGIC = b"SECB"
_HEAD = struct.Struct("<4sI")


class SecureArchive:
    """Bundle many named fields into one protected archive.

    Examples
    --------
    >>> import numpy as np
    >>> arch = SecureArchive(scheme="encr_huffman", key=bytes(16))
    >>> fields = {"t": np.zeros((8, 8), np.float32),
    ...           "q": np.ones((4, 4), np.float32)}
    >>> blob = arch.pack(fields, error_bounds={"t": 1e-3, "q": 1e-4})
    >>> sorted(arch.index(blob))
    ['q', 't']
    >>> arch.unpack_field(blob, "q").shape
    (4, 4)
    """

    def __init__(
        self,
        scheme: str = "encr_huffman",
        *,
        key: bytes | None = None,
        cipher_mode: str = "cbc",
        authenticate: bool = False,
        random_state: np.random.Generator | None = None,
    ) -> None:
        self._kwargs = dict(
            scheme=scheme,
            key=key,
            cipher_mode=cipher_mode,
            authenticate=authenticate,
            random_state=random_state,
        )

    def _compressor(self, eb: float | ErrorBound) -> SecureCompressor:
        return SecureCompressor(
            self._kwargs["scheme"],
            eb,
            key=self._kwargs["key"],
            cipher_mode=self._kwargs["cipher_mode"],
            authenticate=self._kwargs["authenticate"],
            random_state=self._kwargs["random_state"],
        )

    # ------------------------------------------------------------------

    def pack(
        self,
        fields: dict[str, np.ndarray],
        error_bounds: dict[str, float | ErrorBound] | float = 1e-3,
    ) -> bytes:
        """Compress and protect every field into one archive blob.

        ``error_bounds`` is either one bound for all fields or a
        per-field mapping (every field must then be present).
        """
        if not fields:
            raise ValueError("archive needs at least one field")
        if isinstance(error_bounds, dict):
            missing = set(fields) - set(error_bounds)
            if missing:
                raise ValueError(f"missing error bounds for: {sorted(missing)}")
        entries = []
        containers = []
        for name, data in fields.items():
            encoded = name.encode("utf-8")
            if not 1 <= len(encoded) <= 65535:
                raise ValueError(f"bad field name {name!r}")
            eb = (
                error_bounds[name]
                if isinstance(error_bounds, dict)
                else error_bounds
            )
            container = self._compressor(eb).compress(data).container
            entries.append(
                struct.pack("<H", len(encoded)) + encoded
                + struct.pack("<Q", len(container))
            )
            containers.append(container)
        return (
            _HEAD.pack(_MAGIC, len(entries))
            + b"".join(entries)
            + b"".join(containers)
        )

    @staticmethod
    def index(blob: bytes) -> dict[str, tuple[int, int]]:
        """Parse the plaintext index: ``{name: (offset, length)}``."""
        if len(blob) < _HEAD.size:
            raise ValueError("archive shorter than its header")
        magic, count = _HEAD.unpack_from(blob)
        if magic != _MAGIC:
            raise ValueError("bad magic; not a SECB archive")
        offset = _HEAD.size
        names = []
        lengths = []
        for _ in range(count):
            if offset + 2 > len(blob):
                raise ValueError("truncated archive index")
            (name_len,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            name = blob[offset : offset + name_len].decode("utf-8")
            offset += name_len
            if offset + 8 > len(blob):
                raise ValueError("truncated archive index")
            (length,) = struct.unpack_from("<Q", blob, offset)
            offset += 8
            names.append(name)
            lengths.append(length)
        index: dict[str, tuple[int, int]] = {}
        for name, length in zip(names, lengths):
            if name in index:
                raise ValueError(f"duplicate field {name!r}")
            index[name] = (offset, length)
            offset += length
        if offset != len(blob):
            raise ValueError("archive length does not match its index")
        return index

    def unpack_field(self, blob: bytes, name: str) -> np.ndarray:
        """Decompress a single field (partial read: only its bytes)."""
        index = self.index(blob)
        try:
            offset, length = index[name]
        except KeyError:
            raise ValueError(
                f"archive has no field {name!r}; fields: {sorted(index)}"
            ) from None
        container = blob[offset : offset + length]
        # The bound travels inside the container; any placeholder works
        # for the reader configuration.
        return self._compressor(1.0).decompress(container)

    def unpack(self, blob: bytes) -> dict[str, np.ndarray]:
        """Decompress every field."""
        return {name: self.unpack_field(blob, name) for name in self.index(blob)}
