"""Key-space / attack-cost models (paper Sec. V-G).

The paper argues the schemes' security from three quantitative claims:

1. AES-128 has an *effective* key space of 2^64 against the key-expansion
   related analysis of ref. [63] while the nominal space is 2^128;
2. even a supercomputer testing 22x10^19 encryptions/second needs on
   the order of 3.7x10^10 years to brute-force the encrypted data;
3. the best known shortcut, the biclique attack, still costs 2^126.1
   AES evaluations — "not feasible".

:class:`BruteForceModel` turns those constants into a checkable
calculation, and the Sec. V-G benchmark prints paper-quoted versus
computed numbers side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BruteForceModel",
    "biclique_complexity",
    "SECONDS_PER_YEAR",
    "PAPER_TEST_RATE",
]

#: Julian year in seconds.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

#: The paper's hypothetical supercomputer: 22x10^19 encryptions/second.
PAPER_TEST_RATE = 22e19


@dataclass(frozen=True)
class BruteForceModel:
    """Expected exhaustive-search cost for a ``key_bits`` cipher.

    Parameters
    ----------
    key_bits:
        Effective key length in bits (128 nominal for AES-128; 64
        under the paper's ref. [63] reading).
    tests_per_second:
        Attacker throughput in key tests per second.
    """

    key_bits: float
    tests_per_second: float = PAPER_TEST_RATE

    def __post_init__(self) -> None:
        if self.key_bits <= 0:
            raise ValueError("key_bits must be positive")
        if self.tests_per_second <= 0:
            raise ValueError("tests_per_second must be positive")

    @property
    def keyspace(self) -> float:
        """Number of candidate keys, 2**key_bits."""
        return 2.0**self.key_bits

    def seconds_worst_case(self) -> float:
        """Time to sweep the whole key space."""
        return self.keyspace / self.tests_per_second

    def seconds_expected(self) -> float:
        """Expected time (half the space on average)."""
        return self.seconds_worst_case() / 2.0

    def years_worst_case(self) -> float:
        """Worst-case sweep in years (the paper quotes this form)."""
        return self.seconds_worst_case() / SECONDS_PER_YEAR

    def years_expected(self) -> float:
        """Expected search time in years."""
        return self.seconds_expected() / SECONDS_PER_YEAR

    def is_infeasible(self, horizon_years: float = 100.0) -> bool:
        """Whether the expected search exceeds a practical horizon."""
        return self.years_expected() > horizon_years


def biclique_complexity(key_bits: int = 128) -> float:
    """log2 complexity of the best public single-key AES attack.

    2^126.1 for AES-128 (Bogdanov-Khovratovich-Rechberger; the paper's
    ref. [64] discussion) — a 3.8x speedup over brute force, "not
    feasible" in any practical sense.  Values for 192/256-bit keys are
    included for completeness.
    """
    table = {128: 126.1, 192: 189.7, 256: 254.4}
    try:
        return table[key_bits]
    except KeyError:
        raise ValueError(
            f"no published biclique complexity for {key_bits}-bit AES"
        ) from None


def huffman_tree_guess_space(n_symbols: int, max_len: int = 24) -> float:
    """log2 of a loose lower bound on the Huffman-tree search space.

    Recovering Huffman-coded data without the code table is NP-hard
    (paper refs [56], [57]); this gives the log2 count of distinct
    length-limited canonical codes an attacker would have to consider
    (#compositions of symbols into length classes), as a rough
    quantitative companion to the hardness claim.
    """
    if n_symbols < 1:
        raise ValueError("need at least one symbol")
    # Each symbol independently takes one of max_len lengths, subject
    # to Kraft feasibility; counting all assignments is an upper bound,
    # restricting to sorted profiles a lower one.  Use the profile
    # count: C(n_symbols + max_len - 1, max_len - 1) compositions.
    return math.lgamma(n_symbols + max_len) / math.log(2.0) - (
        math.lgamma(n_symbols + 1) + math.lgamma(max_len)
    ) / math.log(2.0)
