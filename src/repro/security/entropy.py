"""Shannon-entropy analysis of byte streams (paper Sec. V-E).

The paper explains Encr-Quant's slowdown through entropy: "The entropy
value of the dataset after applying Encr-Quant is extremely high,
approaching the theoretical maximum value of 8" (bits/byte), while
"Encr-Huffman reduces entropy by 0.01 on average" relative to plain
SZ.  These helpers reproduce those measurements, including the *local*
(block-wise) entropy measure of ref. [55].
"""

from __future__ import annotations

import numpy as np

__all__ = ["shannon_entropy", "local_entropy_profile"]


def shannon_entropy(data: bytes | np.ndarray) -> float:
    """Shannon entropy of a byte stream, in bits per byte (0..8)."""
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(
        data, (bytes, bytearray)
    ) else np.asarray(data, dtype=np.uint8)
    if buf.size == 0:
        raise ValueError("cannot compute entropy of an empty stream")
    counts = np.bincount(buf, minlength=256)
    probs = counts[counts > 0] / buf.size
    return float(-(probs * np.log2(probs)).sum())


def local_entropy_profile(data: bytes | np.ndarray,
                          block_bytes: int = 4096) -> np.ndarray:
    """Block-wise Shannon entropy (the "local entropy" of ref. [55]).

    Returns one entropy value per ``block_bytes`` block (the final
    partial block included when at least 256 bytes long).  The profile
    shows *where* in a stream the AES-randomized sections sit — e.g.
    an Encr-Huffman container has a short ~8 bits/byte plateau (the
    encrypted tree) inside otherwise lower-entropy data.
    """
    if block_bytes < 256:
        raise ValueError("blocks shorter than 256 bytes give meaningless entropy")
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(
        data, (bytes, bytearray)
    ) else np.asarray(data, dtype=np.uint8)
    entropies = []
    for start in range(0, buf.size, block_bytes):
        block = buf[start : start + block_bytes]
        if block.size >= 256:
            entropies.append(shannon_entropy(block))
    return np.asarray(entropies, dtype=np.float64)
