"""Bit-flip corruption harness (paper Sec. III-A motivation).

"Prior work shows that lossy compression cannot withstand the
consequences of bits being corrupted.  Even a single bit-corruption can
result in the complete failure of decompression" (refs [11], [44]).
This module injects single-bit flips into SECZ containers and
classifies the outcome, quantifying that fragility — and showing how
much of the stream is integrity-critical under each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SecureCompressor

__all__ = ["FlipOutcome", "flip_bit", "bit_flip_study"]

#: Outcome classes for one injected flip.
OUTCOMES = ("decode_error", "bound_violated", "silent_corruption", "harmless")


@dataclass(frozen=True)
class FlipOutcome:
    """Classification of one single-bit corruption experiment."""

    bit_index: int
    outcome: str
    max_error: float

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r}")


def flip_bit(blob: bytes, bit_index: int) -> bytes:
    """Return ``blob`` with one bit flipped (MSB-first indexing)."""
    if not 0 <= bit_index < 8 * len(blob):
        raise ValueError(f"bit index {bit_index} out of range")
    buf = bytearray(blob)
    buf[bit_index // 8] ^= 0x80 >> (bit_index % 8)
    return bytes(buf)


def bit_flip_study(
    compressor: SecureCompressor,
    data: np.ndarray,
    *,
    n_flips: int = 64,
    rng: np.random.Generator | None = None,
) -> list[FlipOutcome]:
    """Flip ``n_flips`` random bits of a fresh container, one at a time.

    Outcome classes:

    ``decode_error``
        Decompression raised (the common case: headers, zlib streams
        and Huffman trees are brittle — the paper's "complete failure").
    ``bound_violated``
        Decoded, but some point exceeds the error bound: exactly the
        silent hazard ref. [11] warns about.
    ``silent_corruption``
        Decoded within the bound but not equal to the clean
        decompression (possible in plaintext verbatim sections).
    ``harmless``
        Output identical to the clean decompression (flip hit padding
        or a dont-care byte).
    """
    if rng is None:
        rng = np.random.default_rng()
    result = compressor.compress(data)
    clean = compressor.decompress(result.container)
    eb = compressor.sz.error_bound.resolve(data)
    outcomes: list[FlipOutcome] = []
    total_bits = 8 * len(result.container)
    for bit_index in rng.choice(total_bits, size=min(n_flips, total_bits),
                                replace=False):
        corrupted = flip_bit(result.container, int(bit_index))
        try:
            decoded = compressor.decompress(corrupted)
        except Exception:
            outcomes.append(
                FlipOutcome(int(bit_index), "decode_error", float("inf"))
            )
            continue
        if decoded.shape != data.shape:
            outcomes.append(
                FlipOutcome(int(bit_index), "decode_error", float("inf"))
            )
            continue
        err = float(
            np.max(np.abs(decoded.astype(np.float64) - data.astype(np.float64)))
        )
        if err > eb:
            outcome = "bound_violated"
        elif np.array_equal(decoded, clean):
            outcome = "harmless"
        else:
            outcome = "silent_corruption"
        outcomes.append(FlipOutcome(int(bit_index), outcome, err))
    return outcomes
