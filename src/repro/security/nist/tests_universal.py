"""SP800-22 test 9: Maurer's "universal statistical" test.

Measures the distance between repeated occurrences of L-bit patterns;
compressible sequences have shorter gaps.  L and the init-segment size
Q follow the standard table; streams below the L=6 minimum length
(387,840 bits) are reported as not applicable.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = ["universal_test"]

# (min n, L): SP800-22 Sec. 2.9.7 recommendations.
_L_TABLE = (
    (1059061760, 16),
    (496435200, 15),
    (231669760, 14),
    (107560960, 13),
    (49643520, 12),
    (22753280, 11),
    (10342400, 10),
    (4654080, 9),
    (2068480, 8),
    (904960, 7),
    (387840, 6),
)

# expectedValue, variance per L (SP800-22 Sec. 3.9, L = 6..16).
_EXPECTED = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
    13: (12.168070, 3.410),
    14: (13.167693, 3.416),
    15: (14.167488, 3.419),
    16: (15.167379, 3.421),
}


def universal_test(bits: np.ndarray) -> float:
    """2.9 Universal statistical test (Maurer)."""
    n = bits.size
    length = None
    for min_n, candidate in _L_TABLE:
        if n >= min_n:
            length = candidate
            break
    if length is None:
        return float("nan")
    q = 10 * (1 << length)
    n_blocks = n // length
    k = n_blocks - q
    if k <= 0:
        return float("nan")
    # Block values, vectorized.
    weights = (1 << np.arange(length - 1, -1, -1)).astype(np.int64)
    values = (
        bits[: n_blocks * length].reshape(n_blocks, length).astype(np.int64)
        @ weights
    )
    table = np.zeros(1 << length, dtype=np.int64)
    init = values[:q]
    # Last occurrence of each pattern in the init segment (1-based).
    table[init] = np.arange(1, q + 1)
    total = 0.0
    # The test segment must be scanned in order since each gap depends
    # on the running "last seen" table; chunk the log2 computation to
    # keep the Python-level loop as cheap as possible.
    gaps = np.empty(k, dtype=np.int64)
    tbl = table
    vals = values[q:]
    for i, v in enumerate(vals.tolist(), start=q + 1):
        gaps[i - q - 1] = i - tbl[v]
        tbl[v] = i
    total = float(np.log2(gaps.astype(np.float64)).sum())
    f_n = total / k
    expected, variance = _EXPECTED[length]
    c = 0.7 - 0.8 / length + (4.0 + 32.0 / length) * k ** (-3.0 / length) / 15.0
    sigma = c * math.sqrt(variance / k)
    return float(special.erfc(abs(f_n - expected) / (math.sqrt(2.0) * sigma)))
