"""Bit-level helpers shared by the SP800-22 tests."""

from __future__ import annotations

import numpy as np

__all__ = ["bytes_to_bits", "pattern_counts", "to_pm_ones"]


def bytes_to_bits(data: bytes | np.ndarray) -> np.ndarray:
    """Expand bytes into a ``uint8`` 0/1 array (MSB first)."""
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(
        data, (bytes, bytearray)
    ) else np.asarray(data, dtype=np.uint8)
    return np.unpackbits(buf)


def to_pm_ones(bits: np.ndarray) -> np.ndarray:
    """Map {0,1} to {-1,+1} as int8 (the X_i = 2ε_i − 1 convention)."""
    return (2 * bits.astype(np.int8) - 1).astype(np.int8)


def pattern_counts(bits: np.ndarray, m: int) -> np.ndarray:
    """Occurrences of every overlapping m-bit pattern, with wrap-around.

    Returns an array of length ``2**m``; entry ``v`` counts windows
    whose bits read (MSB first) as the integer ``v``.  The circular
    extension matches the serial / approximate-entropy definitions.
    """
    if m < 1:
        raise ValueError("pattern length must be positive")
    n = bits.size
    if n == 0:
        return np.zeros(1 << m, dtype=np.int64)
    ext = np.concatenate([bits, bits[: m - 1]]) if m > 1 else bits
    # Rolling window value via the standard powers-of-two dot product.
    weights = (1 << np.arange(m - 1, -1, -1)).astype(np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(
        ext.astype(np.int64), m
    )
    values = windows @ weights
    return np.bincount(values, minlength=1 << m).astype(np.int64)
