"""SP800-22 tests 1-4 and 13: frequency, block frequency, runs,
longest-run-of-ones, and cumulative sums.

Each function takes a 0/1 ``uint8`` array and returns a p-value in
[0, 1] (``nan`` when the test's length preconditions are not met).
Section numbers refer to NIST SP800-22 rev. 1a.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

__all__ = [
    "frequency_test",
    "block_frequency_test",
    "runs_test",
    "longest_run_test",
    "cumulative_sums_test",
]


def frequency_test(bits: np.ndarray) -> float:
    """2.1 Frequency (monobit): are ones and zeros balanced?"""
    n = bits.size
    if n < 100:
        return float("nan")
    s = abs(int(bits.sum()) * 2 - n)
    return float(special.erfc(s / math.sqrt(n) / math.sqrt(2.0)))


def block_frequency_test(bits: np.ndarray, block_size: int = 128) -> float:
    """2.2 Block frequency: balance inside M-bit blocks."""
    n = bits.size
    n_blocks = n // block_size
    if n < 100 or n_blocks < 1:
        return float("nan")
    trimmed = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = trimmed.mean(axis=1, dtype=np.float64)
    chi_sq = 4.0 * block_size * float(((proportions - 0.5) ** 2).sum())
    return float(special.gammaincc(n_blocks / 2.0, chi_sq / 2.0))


def runs_test(bits: np.ndarray) -> float:
    """2.3 Runs: number of maximal same-bit runs."""
    n = bits.size
    if n < 100:
        return float("nan")
    pi = float(bits.mean(dtype=np.float64))
    # Pre-test (SP800-22 eq. 2.3.4): frequency must already be sane.
    if abs(pi - 0.5) >= 2.0 / math.sqrt(n):
        return 0.0
    v_n = 1 + int((bits[1:] != bits[:-1]).sum())
    num = abs(v_n - 2.0 * n * pi * (1.0 - pi))
    den = 2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi)
    return float(special.erfc(num / den))


# (M, K, class boundaries, class probabilities) per SP800-22 2.4.4.
_LONGEST_RUN_CONFIGS = (
    # min n, M, boundaries (longest run clipped into [lo, hi]), pi
    (750000, 10000, (10, 16),
     (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727)),
    (6272, 128, (4, 9),
     (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
    (128, 8, (1, 4),
     (0.2148, 0.3672, 0.2305, 0.1875)),
)


def _longest_run_per_block(blocks: np.ndarray) -> np.ndarray:
    """Longest run of ones in each row of a 2-D 0/1 array."""
    n_blocks, m = blocks.shape
    longest = np.zeros(n_blocks, dtype=np.int64)
    current = np.zeros(n_blocks, dtype=np.int64)
    for j in range(m):
        col = blocks[:, j]
        current = (current + 1) * col
        np.maximum(longest, current, out=longest)
    return longest


def longest_run_test(bits: np.ndarray) -> float:
    """2.4 Longest run of ones in a block."""
    n = bits.size
    for min_n, m, (lo, hi), pi in _LONGEST_RUN_CONFIGS:
        if n >= min_n:
            break
    else:
        return float("nan")
    n_blocks = n // m
    blocks = bits[: n_blocks * m].reshape(n_blocks, m)
    longest = np.clip(_longest_run_per_block(blocks), lo, hi)
    counts = np.bincount(longest - lo, minlength=hi - lo + 1).astype(np.float64)
    expected = n_blocks * np.asarray(pi)
    chi_sq = float(((counts - expected) ** 2 / expected).sum())
    k = len(pi) - 1
    return float(special.gammaincc(k / 2.0, chi_sq / 2.0))


def cumulative_sums_test(bits: np.ndarray) -> float:
    """2.13 Cumulative sums (both modes; returns the worse p-value)."""
    n = bits.size
    if n < 100:
        return float("nan")
    x = 2 * bits.astype(np.int64) - 1
    p_values = []
    for mode_bits in (x, x[::-1]):
        s = np.cumsum(mode_bits)
        z = int(np.abs(s).max())
        if z == 0:
            p_values.append(0.0)
            continue
        sqrt_n = math.sqrt(n)
        k_lo = (-n // z + 1) // 4
        k_hi = (n // z - 1) // 4
        term1 = sum(
            stats.norm.cdf((4 * k + 1) * z / sqrt_n)
            - stats.norm.cdf((4 * k - 1) * z / sqrt_n)
            for k in range(k_lo, k_hi + 1)
        )
        k_lo2 = (-n // z - 3) // 4
        k_hi2 = (n // z - 1) // 4
        term2 = sum(
            stats.norm.cdf((4 * k + 3) * z / sqrt_n)
            - stats.norm.cdf((4 * k + 1) * z / sqrt_n)
            for k in range(k_lo2, k_hi2 + 1)
        )
        p_values.append(float(np.clip(1.0 - term1 + term2, 0.0, 1.0)))
    return min(p_values)
