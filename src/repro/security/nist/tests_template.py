"""SP800-22 tests 7-8: non-overlapping and overlapping template matching.

The non-overlapping test counts disjoint occurrences of an aperiodic
template per block; the overlapping test counts (overlapping)
occurrences of the all-ones template and chi-squares the count
distribution against the asymptotic Pi probabilities.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = [
    "non_overlapping_template_test",
    "non_overlapping_multi_template_test",
    "overlapping_template_test",
    "aperiodic_templates",
    "DEFAULT_TEMPLATE",
]

#: The standard example template from SP800-22 (m = 9, aperiodic).
DEFAULT_TEMPLATE = (0, 0, 0, 0, 0, 0, 0, 0, 1)


def _is_aperiodic(value: int, m: int) -> bool:
    """A template is aperiodic iff no proper shift of it matches its own
    prefix — the admissibility condition of SP800-22 Sec. 2.7."""
    for k in range(1, m):
        # Compare B[0 : m-k] against B[k : m].
        if (value >> k) == (value & ((1 << (m - k)) - 1)):
            return False
    return True


def aperiodic_templates(m: int = 9, limit: int | None = None) -> list[tuple[int, ...]]:
    """Enumerate the aperiodic m-bit templates (MSB-first tuples).

    For m = 9 this yields the 148-template set the reference suite
    iterates; ``limit`` caps the list for cheaper sweeps.
    """
    if m < 2 or m > 16:
        raise ValueError("template length must be 2..16")
    templates = []
    for value in range(1 << m):
        if _is_aperiodic(value, m):
            templates.append(
                tuple((value >> (m - 1 - i)) & 1 for i in range(m))
            )
            if limit is not None and len(templates) >= limit:
                break
    return templates


def _window_matches(bits: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Boolean array: does the window starting at i equal the template?"""
    m = template.size
    if bits.size < m:
        return np.zeros(0, dtype=bool)
    windows = np.lib.stride_tricks.sliding_window_view(bits, m)
    return (windows == template).all(axis=1)


def non_overlapping_template_test(
    bits: np.ndarray,
    template: tuple[int, ...] = DEFAULT_TEMPLATE,
    n_blocks: int = 8,
) -> float:
    """2.7 Non-overlapping template matching."""
    n = bits.size
    tmpl = np.asarray(template, dtype=np.uint8)
    m = tmpl.size
    block_size = n // n_blocks
    if block_size < m + 1 or n < 100:
        return float("nan")
    mu = (block_size - m + 1) / 2.0**m
    sigma_sq = block_size * (1.0 / 2.0**m - (2.0 * m - 1.0) / 2.0 ** (2 * m))
    if sigma_sq <= 0:
        return float("nan")
    counts = np.zeros(n_blocks, dtype=np.int64)
    for b in range(n_blocks):
        block = bits[b * block_size : (b + 1) * block_size]
        matches = _window_matches(block, tmpl)
        # Non-overlapping scan: after a hit, skip m positions.
        i = 0
        count = 0
        limit = matches.size
        hits = np.nonzero(matches)[0]
        for pos in hits:
            if pos >= i:
                count += 1
                i = pos + m
            if i >= limit:
                break
        counts[b] = count
    chi_sq = float(((counts - mu) ** 2 / sigma_sq).sum())
    return float(special.gammaincc(n_blocks / 2.0, chi_sq / 2.0))


def non_overlapping_multi_template_test(
    bits: np.ndarray,
    *,
    m: int = 9,
    max_templates: int | None = 16,
    n_blocks: int = 8,
) -> dict[tuple[int, ...], float]:
    """Run the non-overlapping test over many aperiodic templates.

    The reference suite iterates all 148 m=9 templates and reports one
    p-value per template; this driver does the same (``max_templates``
    caps the sweep — the default 16 keeps suite runs fast while still
    sampling diverse patterns).  Returns ``{template: p}``.
    """
    results: dict[tuple[int, ...], float] = {}
    for template in aperiodic_templates(m, limit=max_templates):
        results[template] = non_overlapping_template_test(
            bits, template, n_blocks
        )
    return results


# SP800-22 Sec. 3.8 asymptotic probabilities for m=9, M=1032, K=5.
_OVERLAP_PI = (0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865)
_OVERLAP_M = 1032
_OVERLAP_TEMPLATE_LEN = 9


def overlapping_template_test(bits: np.ndarray) -> float:
    """2.8 Overlapping template matching (all-ones template, m = 9)."""
    n = bits.size
    n_blocks = n // _OVERLAP_M
    if n_blocks < 5 or n < 10000:
        return float("nan")
    m = _OVERLAP_TEMPLATE_LEN
    k = len(_OVERLAP_PI) - 1
    counts = np.zeros(len(_OVERLAP_PI), dtype=np.int64)
    ones = np.ones(m, dtype=np.uint8)
    for b in range(n_blocks):
        block = bits[b * _OVERLAP_M : (b + 1) * _OVERLAP_M]
        hits = int(_window_matches(block, ones).sum())
        counts[min(hits, k)] += 1
    expected = n_blocks * np.asarray(_OVERLAP_PI)
    chi_sq = float(((counts - expected) ** 2 / expected).sum())
    return float(special.gammaincc(k / 2.0, chi_sq / 2.0))
