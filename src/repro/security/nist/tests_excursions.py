"""SP800-22 tests 14-15: random excursions and the variant.

Both analyse the zero-crossing cycles of the +/-1 random walk.  Each
returns the *minimum* p-value over its states so that "pass" requires
every state to pass (the conservative aggregation used for Table VI).
Streams with too few cycles (J < 500) are not applicable.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = ["random_excursions_test", "random_excursions_variant_test"]

_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)
_VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)
_MIN_CYCLES = 500


def _walk_cycles(bits: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """The random walk and its zero-bounded cycles."""
    s = np.cumsum(2 * bits.astype(np.int64) - 1)
    # Cycle boundaries: positions where the walk hits zero, plus the
    # padded start/end zeros of SP800-22's S' sequence.
    zero_positions = np.nonzero(s == 0)[0]
    bounds = np.concatenate([[-1], zero_positions, [s.size - 1]])
    cycles = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            cycles.append(s[a + 1 : b + 1])
    return s, cycles


def _pi_k(x: int, k: int) -> float:
    """P(state x visited exactly k times in one cycle), k clipped at 5."""
    ax = abs(x)
    base = 1.0 - 1.0 / (2.0 * ax)
    if k == 0:
        return base
    if k < 5:
        return (1.0 / (4.0 * ax * ax)) * base ** (k - 1)
    return (1.0 / (2.0 * ax)) * base**4


def random_excursions_test(bits: np.ndarray) -> float:
    """2.14 Random excursions (min p over the 8 states)."""
    if bits.size < 10000:
        return float("nan")
    _, cycles = _walk_cycles(bits)
    j = len(cycles)
    if j < _MIN_CYCLES:
        return float("nan")
    # visits[state][k] = number of cycles visiting `state` exactly k
    # times (k clipped to 5).
    p_values = []
    for x in _STATES:
        counts = np.zeros(6, dtype=np.int64)
        for cycle in cycles:
            k = int((cycle == x).sum())
            counts[min(k, 5)] += 1
        pi = np.array([_pi_k(x, k) for k in range(6)])
        expected = j * pi
        chi_sq = float(((counts - expected) ** 2 / expected).sum())
        p_values.append(float(special.gammaincc(2.5, chi_sq / 2.0)))
    return min(p_values)


def random_excursions_variant_test(bits: np.ndarray) -> float:
    """2.15 Random excursions variant (min p over the 18 states)."""
    if bits.size < 10000:
        return float("nan")
    s, cycles = _walk_cycles(bits)
    j = len(cycles)
    if j < _MIN_CYCLES:
        return float("nan")
    p_values = []
    for x in _VARIANT_STATES:
        xi = int((s == x).sum())
        denom = math.sqrt(2.0 * j * (4.0 * abs(x) - 2.0))
        p_values.append(float(special.erfc(abs(xi - j) / denom)))
    return min(p_values)
