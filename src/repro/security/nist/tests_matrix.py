"""SP800-22 test 5: binary matrix rank.

Disjoint 32x32 bit matrices are ranked over GF(2); the distribution of
{full rank, full-1, lower} is chi-squared against the asymptotic
probabilities.  Rows are packed into uint64 words so elimination works
on whole rows at once.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["binary_matrix_rank_test", "gf2_rank"]

_M = 32
_Q = 32
_BITS_PER_MATRIX = _M * _Q

# P(rank = 32), P(rank = 31), P(rank <= 30) for random 32x32 over GF(2)
# (SP800-22 Sec. 2.5.4 / 3.5).
_P_FULL = 0.2888
_P_FULL_MINUS_1 = 0.5776
_P_REST = 1.0 - _P_FULL - _P_FULL_MINUS_1


def gf2_rank(rows: list[int]) -> int:
    """Rank over GF(2) of a matrix given as row bitmasks."""
    rank = 0
    pivots: list[int] = []
    for row in rows:
        for p in pivots:
            row = min(row, row ^ p)
        if row:
            pivots.append(row)
            pivots.sort(reverse=True)
            rank += 1
    return rank


def _rank_of_block(bits: np.ndarray) -> int:
    rows = np.packbits(bits.reshape(_M, _Q), axis=1)
    row_ints = [
        int.from_bytes(rows[i].tobytes(), "big") for i in range(_M)
    ]
    return gf2_rank(row_ints)


def binary_matrix_rank_test(bits: np.ndarray) -> float:
    """2.5 Binary matrix rank (needs at least 38 matrices)."""
    n = bits.size
    n_matrices = n // _BITS_PER_MATRIX
    if n_matrices < 38:
        return float("nan")
    full = full_minus_1 = 0
    for i in range(n_matrices):
        block = bits[i * _BITS_PER_MATRIX : (i + 1) * _BITS_PER_MATRIX]
        rank = _rank_of_block(block)
        if rank == _M:
            full += 1
        elif rank == _M - 1:
            full_minus_1 += 1
    rest = n_matrices - full - full_minus_1
    chi_sq = (
        (full - _P_FULL * n_matrices) ** 2 / (_P_FULL * n_matrices)
        + (full_minus_1 - _P_FULL_MINUS_1 * n_matrices) ** 2
        / (_P_FULL_MINUS_1 * n_matrices)
        + (rest - _P_REST * n_matrices) ** 2 / (_P_REST * n_matrices)
    )
    return float(special.gammaincc(1.0, chi_sq / 2.0))
