"""NIST SP800-22 rev. 1a statistical test suite (all 15 tests).

The paper evaluates output randomness by splitting the compressed file
into several bitstreams, running each through the suite, and reporting
per-test pass rates (Table VI): a stream passes a test when its
p-value is at least 0.01.

Usage::

    from repro.security.nist import run_suite
    result = run_suite(container_bytes, n_streams=12)
    print(result.format_table())

Each test lives in its own module; :func:`run_all_tests` runs them on
one bit array, returning ``{test name: p-value}`` with ``nan`` for
tests whose applicability preconditions (minimum stream length, cycle
count, ...) the input does not meet — those are excluded from the pass
rate, mirroring how the reference suite reports them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.security.nist.bits import bytes_to_bits
from repro.security.nist.tests_basic import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)
from repro.security.nist.tests_complexity import linear_complexity_test
from repro.security.nist.tests_entropy import (
    approximate_entropy_test,
    serial_test,
)
from repro.security.nist.tests_excursions import (
    random_excursions_test,
    random_excursions_variant_test,
)
from repro.security.nist.tests_matrix import binary_matrix_rank_test
from repro.security.nist.tests_spectral import dft_test
from repro.security.nist.tests_template import (
    non_overlapping_template_test,
    overlapping_template_test,
)
from repro.security.nist.tests_universal import universal_test

__all__ = [
    "TEST_NAMES",
    "ALPHA",
    "run_all_tests",
    "run_suite",
    "NistSuiteResult",
    "bytes_to_bits",
]

#: Significance level: p >= ALPHA passes (paper Sec. V-B).
ALPHA = 0.01

#: Paper Table VI row order.
TEST_NAMES = (
    "frequency",
    "block_frequency",
    "runs",
    "longest_run",
    "binary_matrix_rank",
    "spectral_dft",
    "non_overlapping_template",
    "overlapping_template",
    "universal",
    "linear_complexity",
    "serial",
    "approximate_entropy",
    "cumulative_sums",
    "random_excursions",
    "random_excursions_variant",
)

_DISPATCH = {
    "frequency": frequency_test,
    "block_frequency": block_frequency_test,
    "runs": runs_test,
    "longest_run": longest_run_test,
    "binary_matrix_rank": binary_matrix_rank_test,
    "spectral_dft": dft_test,
    "non_overlapping_template": non_overlapping_template_test,
    "overlapping_template": overlapping_template_test,
    "universal": universal_test,
    "linear_complexity": linear_complexity_test,
    "serial": serial_test,
    "approximate_entropy": approximate_entropy_test,
    "cumulative_sums": cumulative_sums_test,
    "random_excursions": random_excursions_test,
    "random_excursions_variant": random_excursions_variant_test,
}


def run_all_tests(bits: np.ndarray) -> dict[str, float]:
    """Run every SP800-22 test on one 0/1 bit array.

    Returns the worst (minimum) p-value for multi-p tests (serial,
    cumulative sums, the excursion families) so that "pass" means
    *every* sub-statistic passed, matching the conservative reading of
    Table VI.  Not-applicable tests return ``nan``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    return {name: float(fn(bits)) for name, fn in _DISPATCH.items()}


@dataclass(frozen=True)
class NistSuiteResult:
    """Pass rates over the split bitstreams (one Table VI column)."""

    n_streams: int
    stream_bits: int
    p_values: dict[str, tuple[float, ...]]

    def pass_rate(self, test: str) -> float:
        """Fraction of applicable streams passing ``test`` (``nan``
        when the test was not run or never applicable)."""
        ps = [p for p in self.p_values.get(test, ()) if not math.isnan(p)]
        if not ps:
            return float("nan")
        return sum(p >= ALPHA for p in ps) / len(ps)

    def pass_rates(self) -> dict[str, float]:
        """Pass rates for the tests that ran, Table VI order."""
        return {
            name: self.pass_rate(name)
            for name in TEST_NAMES
            if name in self.p_values
        }

    @property
    def all_pass(self) -> bool:
        """True when every applicable stream passed every test."""
        return all(
            math.isnan(r) or r == 1.0 for r in self.pass_rates().values()
        )

    def format_table(self, label: str = "Pass Rate") -> str:
        """Render as an ASCII table shaped like the paper's Table VI."""
        width = max(len(n) for n in TEST_NAMES) + 2
        lines = [f"{'Statistical test':<{width}}{label}"]
        for name in self.pass_rates():
            rate = self.pass_rate(name)
            cell = "n/a" if math.isnan(rate) else f"{100.0 * rate:.2f}%"
            lines.append(f"{name:<{width}}{cell}")
        return "\n".join(lines)


def run_suite(data: bytes, *, n_streams: int = 12,
              tests: tuple[str, ...] = TEST_NAMES) -> NistSuiteResult:
    """Split ``data`` into equal bitstreams and run the suite on each.

    Mirrors the paper's protocol ("the compressed data file is
    separated into several bit streams, each of which is evaluated
    independently").  Twelve streams reproduce Table VI's rate
    granularity (58.33 % = 7/12).
    """
    if n_streams < 1:
        raise ValueError("need at least one stream")
    unknown = set(tests) - set(TEST_NAMES)
    if unknown:
        raise ValueError(f"unknown tests: {sorted(unknown)}")
    all_bits = bytes_to_bits(data)
    stream_len = all_bits.size // n_streams
    if stream_len == 0:
        raise ValueError(
            f"{len(data)} bytes cannot be split into {n_streams} streams"
        )
    p_values: dict[str, list[float]] = {name: [] for name in tests}
    for s in range(n_streams):
        chunk = all_bits[s * stream_len : (s + 1) * stream_len]
        for name in tests:
            p_values[name].append(float(_DISPATCH[name](chunk)))
    return NistSuiteResult(
        n_streams=n_streams,
        stream_bits=stream_len,
        p_values={k: tuple(v) for k, v in p_values.items()},
    )
