"""SP800-22 tests 11-12: serial and approximate entropy.

Both compare the empirical distribution of overlapping m-bit patterns
(with circular extension) against uniformity; vectorized via
:func:`repro.security.nist.bits.pattern_counts`.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.security.nist.bits import pattern_counts

__all__ = ["serial_test", "approximate_entropy_test"]


def _psi_sq(bits: np.ndarray, m: int) -> float:
    """The psi^2_m statistic of SP800-22 Sec. 2.11."""
    if m == 0:
        return 0.0
    n = bits.size
    counts = pattern_counts(bits, m).astype(np.float64)
    return float((counts**2).sum() * (2.0**m) / n - n)


def serial_test(bits: np.ndarray, m: int = 5) -> float:
    """2.11 Serial test (returns the worse of the two p-values)."""
    n = bits.size
    if n < 100 or m < 2 or m > math.log2(n) - 2:
        return float("nan")
    psi_m = _psi_sq(bits, m)
    psi_m1 = _psi_sq(bits, m - 1)
    psi_m2 = _psi_sq(bits, m - 2)
    d1 = psi_m - psi_m1
    d2 = psi_m - 2.0 * psi_m1 + psi_m2
    p1 = float(special.gammaincc(2.0 ** (m - 2), d1 / 2.0))
    p2 = float(special.gammaincc(2.0 ** (m - 3), d2 / 2.0))
    return min(p1, p2)


def _phi(bits: np.ndarray, m: int) -> float:
    """phi_m of SP800-22 Sec. 2.12 (sum of p*log p over m-patterns)."""
    if m == 0:
        return 0.0
    n = bits.size
    counts = pattern_counts(bits, m).astype(np.float64)
    probs = counts[counts > 0] / n
    return float((probs * np.log(probs)).sum())


def approximate_entropy_test(bits: np.ndarray, m: int = 5) -> float:
    """2.12 Approximate entropy."""
    n = bits.size
    if n < 100 or m < 1 or m + 1 > math.log2(n) - 2:
        return float("nan")
    ap_en = _phi(bits, m) - _phi(bits, m + 1)
    chi_sq = 2.0 * n * (math.log(2.0) - ap_en)
    return float(special.gammaincc(2.0 ** (m - 1), chi_sq / 2.0))
