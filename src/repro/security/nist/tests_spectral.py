"""SP800-22 test 6: discrete Fourier transform (spectral).

Periodic features show up as DFT peaks above the 95 % threshold; a
random sequence should have about 95 % of its magnitudes below it.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = ["dft_test"]


def dft_test(bits: np.ndarray) -> float:
    """2.6 Spectral DFT test."""
    n = bits.size
    if n < 1000:
        return float("nan")
    x = 2.0 * bits.astype(np.float64) - 1.0
    spectrum = np.abs(np.fft.rfft(x))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = float((spectrum < threshold).sum())
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    return float(special.erfc(abs(d) / math.sqrt(2.0)))
