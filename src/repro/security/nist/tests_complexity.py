"""SP800-22 test 10: linear complexity.

Each M-bit block is fed to Berlekamp-Massey; the deviation of its LFSR
length from the theoretical mean is bucketed and chi-squared.  The BM
inner loop represents polynomials and the bit window as Python ints so
a discrepancy is one AND + popcount.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["linear_complexity_test", "berlekamp_massey"]

_BLOCK = 500
_PI = (0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833)


def berlekamp_massey(bits: np.ndarray) -> int:
    """Length of the shortest LFSR generating ``bits`` (over GF(2))."""
    n = bits.size
    b = 1  # B(x)
    c = 1  # C(x); bit j is the coefficient of x^j
    l = 0
    m = -1
    window = 0  # bit j of window = s_{i-j}
    bit_list = bits.tolist()
    for i in range(n):
        window = (window << 1) | bit_list[i]
        # d = s_i + sum_{j=1..l} c_j s_{i-j}  (mod 2)
        d = (c & window).bit_count() & 1
        if d:
            t = c
            c ^= b << (i - m)
            if 2 * l <= i:
                l = i + 1 - l
                m = i
                b = t
    return l


def linear_complexity_test(bits: np.ndarray, block_size: int = _BLOCK) -> float:
    """2.10 Linear complexity."""
    n = bits.size
    n_blocks = n // block_size
    if n_blocks < 20:
        return float("nan")
    m = block_size
    mu = (
        m / 2.0
        + (9.0 + (-1.0) ** (m + 1)) / 36.0
        - (m / 3.0 + 2.0 / 9.0) / 2.0**m
    )
    counts = np.zeros(7, dtype=np.int64)
    for blk in range(n_blocks):
        block = bits[blk * m : (blk + 1) * m]
        l_i = berlekamp_massey(block)
        t_i = (-1.0) ** m * (l_i - mu) + 2.0 / 9.0
        if t_i <= -2.5:
            counts[0] += 1
        elif t_i <= -1.5:
            counts[1] += 1
        elif t_i <= -0.5:
            counts[2] += 1
        elif t_i <= 0.5:
            counts[3] += 1
        elif t_i <= 1.5:
            counts[4] += 1
        elif t_i <= 2.5:
            counts[5] += 1
        else:
            counts[6] += 1
    expected = n_blocks * np.asarray(_PI)
    chi_sq = float(((counts - expected) ** 2 / expected).sum())
    return float(special.gammaincc(3.0, chi_sq / 2.0))
