"""Security and randomness analysis (paper Sections V-F and V-G).

* :mod:`repro.security.nist` — the complete NIST SP800-22 statistical
  test suite (all 15 tests), used to reproduce Table VI's pass rates.
* :mod:`repro.security.entropy` — (local) Shannon entropy, the paper's
  Sec. V-E argument for why Encr-Quant slows the zlib stage.
* :mod:`repro.security.keyspace` — brute-force / biclique cost models
  behind the Sec. V-G security claims.
* :mod:`repro.security.attacks` — the bit-flip corruption harness from
  the motivation (Sec. III-A, refs [11], [44]): how lossy-compressed
  streams fail under single-bit perturbation, with and without the
  schemes' protection.
"""

from repro.security.entropy import local_entropy_profile, shannon_entropy
from repro.security.keyspace import BruteForceModel, biclique_complexity
from repro.security.nist import NistSuiteResult, run_all_tests, run_suite

__all__ = [
    "run_suite",
    "run_all_tests",
    "NistSuiteResult",
    "shannon_entropy",
    "local_entropy_profile",
    "BruteForceModel",
    "biclique_complexity",
]
