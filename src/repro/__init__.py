"""repro — secure error-bounded lossy compression for scientific data.

A complete, from-scratch Python reproduction of

    Shan, Di, Calhoun, Cappello.  "Exploring Light-weight Cryptography
    for Efficient and Secure Lossy Data Compression", IEEE CLUSTER 2022.

The package provides:

* :class:`repro.core.SecureCompressor` — the paper's system: the
  SZ-1.4 lossy pipeline with AES-128 interposed at one of three
  stages (``cmpr_encr``, ``encr_quant``, ``encr_huffman``);
* :mod:`repro.sz` — a NumPy SZ-1.4 (prediction, quantization,
  Huffman, zlib);
* :mod:`repro.crypto` — AES-128 (FIPS-197) with CBC/CTR modes;
* :mod:`repro.security` — the NIST SP800-22 randomness suite,
  entropy analysis, key-space models and a bit-flip attack harness;
* :mod:`repro.datasets` — seeded synthetic SDRBench-like fields;
* :mod:`repro.bench` — the harness regenerating every table and
  figure of the paper's evaluation (see EXPERIMENTS.md);
* :mod:`repro.parallel` — chunked multi-process compression.

Quick start
-----------
>>> import numpy as np
>>> from repro import SecureCompressor
>>> sc = SecureCompressor(scheme="encr_huffman", error_bound=1e-3,
...                       key=b"super-secret-16B")
>>> field = np.random.default_rng(0).random((32, 32, 32)).astype(np.float32)
>>> protected = sc.compress(field)
>>> restored = sc.decompress(protected.container)
>>> bool(np.max(np.abs(restored - field)) <= 1e-3)
True
"""

from repro.archive import SecureArchive
from repro.core import SecureCompressor, recommend_scheme
from repro.core.pipeline import CompressResult
from repro.crypto import AES128
from repro.sz import ErrorBound, SZCompressor

__version__ = "1.0.0"

__all__ = [
    "SecureCompressor",
    "SecureArchive",
    "CompressResult",
    "SZCompressor",
    "ErrorBound",
    "AES128",
    "recommend_scheme",
    "__version__",
]
