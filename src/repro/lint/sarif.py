"""SARIF 2.1.0 rendering for ``secz lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning ingests; emitting it lets CI annotate PR
diffs with lint findings instead of burying them in a job log.  Only
the small subset GitHub actually reads is emitted: tool driver with
rule metadata, one ``result`` per finding with a physical location.

Like the JSON report, the output is deterministic: findings are
already sorted by the runner and no timestamps or absolute paths are
stamped in.
"""

from __future__ import annotations

import json

from repro.lint.walker import LintReport, Rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules the runner can emit without a Rule instance.
_SYNTHETIC_RULES = {
    "parse-error": "file does not parse",
    "stale-baseline": (
        "baseline entry no longer matches any finding and must be "
        "removed from .lint-baseline.json"
    ),
}


def to_sarif(report: LintReport, rules: list[Rule] | None = None) -> dict:
    """The SARIF document for one report, as a plain dict.

    ``rules`` supplies rule descriptions; when omitted, the shipped
    rule set filtered to ``report.rules_run`` is used.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        ran = set(report.rules_run)
        rules = [cls() for cls in ALL_RULES if cls.name in ran]
    known = {rule.name: rule.description for rule in rules}
    known.update(_SYNTHETIC_RULES)
    # Rule metadata: every rule that ran plus any finding's rule, in
    # one deterministic order; ruleIndex lets consumers join back.
    ids = sorted(set(known) | {f.rule for f in report.findings})
    index_of = {rule_id: index for index, rule_id in enumerate(ids)}
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, finding.line)},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "docs/LINTING.md",
                    "rules": [
                        {
                            "id": rule_id,
                            "shortDescription": {
                                "text": known.get(rule_id, rule_id),
                            },
                        }
                        for rule_id in ids
                    ],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def format_sarif(report: LintReport, rules: list[Rule] | None = None) -> str:
    return json.dumps(to_sarif(report, rules), indent=2, sort_keys=True)
