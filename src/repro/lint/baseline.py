"""Baseline suppression: triage pre-existing findings without silence.

A new interprocedural rule landing on a mature tree inevitably flags
code that predates it.  Rather than weakening the rule or spraying
pragmas, the engine ships a ``.lint-baseline.json`` at the repo root:
every entry names one known finding (rule, path, message — line
numbers are deliberately excluded so unrelated edits don't churn the
file), the runner subtracts matching findings from the report, and —
crucially — a baseline entry that no longer matches anything becomes
a ``stale-baseline`` finding itself, so fixed code pays down the file
instead of accreting dead suppressions.

File format::

    {
      "schema": "repro-lint-baseline/1",
      "findings": [
        {"rule": "exception-contract", "path": "src/...", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.walker import Finding, LintReport

__all__ = [
    "BASELINE_SCHEMA",
    "BASELINE_FILENAME",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

BASELINE_SCHEMA = "repro-lint-baseline/1"
BASELINE_FILENAME = ".lint-baseline.json"

#: One baseline entry: (rule, path, message).
Entry = tuple[str, str, str]


def load_baseline(path: Path) -> list[Entry]:
    """Parse a baseline file into match entries.

    Raises ``ValueError`` on schema mismatch or malformed entries so a
    corrupted baseline fails the run instead of silently suppressing
    nothing (or everything).
    """
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} schema is {doc.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}"
        )
    entries: list[Entry] = []
    for index, item in enumerate(doc.get("findings", [])):
        if not isinstance(item, dict) or not all(
            isinstance(item.get(field), str)
            for field in ("rule", "path", "message")
        ):
            raise ValueError(
                f"baseline {path} entry {index} must have string "
                "rule/path/message fields"
            )
        entries.append((item["rule"], item["path"], item["message"]))
    return entries


def apply_baseline(
    report: LintReport,
    entries: list[Entry],
    *,
    scanned: set[str] | None = None,
) -> LintReport:
    """Subtract baselined findings; flag entries that match nothing.

    Matching ignores line numbers (they churn with unrelated edits).
    An entry may match several findings (the same escape reported via
    two entry points); all of them are suppressed by the one entry.

    ``scanned`` is the set of relpaths this run actually analysed;
    entries pointing at unscanned files are neither matched nor stale
    (a partial-tree run can't judge them).  ``None`` means everything
    was scanned (full-tree semantics).
    """
    entry_set = set(entries)
    kept: list[Finding] = []
    matched: set[Entry] = set()
    suppressed = 0
    for finding in report.findings:
        key = (finding.rule, finding.path, finding.message)
        if key in entry_set:
            matched.add(key)
            suppressed += 1
        else:
            kept.append(finding)
    for rule, path, message in entries:
        if (rule, path, message) in matched:
            continue
        if scanned is not None and path not in scanned:
            continue
        kept.append(Finding(
            path=path, line=0, rule="stale-baseline",
            message=(
                f"baseline entry for rule {rule!r} no longer matches "
                f"any finding (was: {message!r}); remove it from "
                f"{BASELINE_FILENAME}"
            ),
        ))
    return LintReport(
        findings=sorted(kept),
        files_checked=report.files_checked,
        rules_run=list(report.rules_run),
        profile=dict(report.profile),
        baseline_suppressed=suppressed,
    )


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialise ``findings`` as a fresh baseline (used by
    ``secz lint --write-baseline`` when triaging a new rule)."""
    entries = sorted(
        {(f.rule, f.path, f.message) for f in findings}
    )
    doc = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
