"""Module-qualified call graph over the scanned tree.

PR 5's rules were per-file AST walks; the interprocedural rules
(exception-contract, secret-taint) need to know *who calls whom* so a
``struct.error`` raised three frames below ``parse_container`` is
still attributed to the entry point.  This module builds that graph
from the :class:`~repro.lint.walker.FileContext` objects of one lint
run — no imports are executed; resolution is purely syntactic:

* every ``def`` (module-level or method) becomes a
  :class:`FunctionInfo` keyed by its dotted qualname
  (``repro.sz.huffman.deserialize_tree``,
  ``repro.core.schemes.EncrHuffman.unprotect``);
* calls are resolved through the file's import aliases
  (``from repro.sz import huffman as h; h.decode`` →
  ``repro.sz.huffman.decode``), module-level names, ``self.``/``cls.``
  dispatch (walking in-graph base classes), and bare class
  constructors (``AES128(...)`` → ``...AES128.__init__``);
* unresolvable calls (numpy, stdlib, dynamic dispatch) stay recorded
  with ``callee=None`` so analyses can decide how pessimistic to be.

The graph itself carries no analysis results; rules derive their own
per-function summaries (escaping exception types, taint flows) and
use :meth:`CallGraph.callees` to propagate them to a fixed point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "CallGraph",
    "build_callgraph",
    "get_callgraph",
    "module_name",
    "dotted_name",
]


def module_name(relpath: str) -> str | None:
    """Dotted module name for a ``src/``-rooted relpath.

    ``src/repro/sz/huffman.py`` → ``repro.sz.huffman``;
    ``src/repro/lint/__init__.py`` → ``repro.lint``.  Paths outside a
    ``src/`` root return ``None`` (the graph ignores them).
    """
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/") : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def dotted_name(node: ast.AST) -> str | None:
    """The dotted text of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: Resolved callee qualname, or ``None`` for out-of-graph calls.
    callee: str | None
    #: The dotted source text of the call target (for diagnostics).
    raw: str
    node: ast.Call
    line: int


@dataclass
class FunctionInfo:
    """One function or method plus everything analyses need."""

    qualname: str
    module: str
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Owning class qualname for methods, ``None`` at module level.
    owner: str | None
    #: Positional parameter names, ``self``/``cls`` already stripped
    #: for ordinary methods (kept for staticmethods).
    params: list[str] = field(default_factory=list)
    decorators: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    #: Dotted base-class names as written (resolved through imports).
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)


class _ModuleIndex:
    """Per-module name tables used during resolution."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: local alias -> dotted target ("h" -> "repro.sz.huffman").
        self.aliases: dict[str, str] = {}
        #: module-level def name -> qualname.
        self.functions: dict[str, str] = {}
        #: class name -> ClassInfo.
        self.classes: dict[str, ClassInfo] = {}


class CallGraph:
    """The resolved whole-program graph for one lint run."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._modules: dict[str, _ModuleIndex] = {}

    # -- queries -------------------------------------------------------

    def callees(self, qualname: str) -> list[CallSite]:
        info = self.functions.get(qualname)
        return list(info.calls) if info else []

    def callers(self, qualname: str) -> list[str]:
        return [
            caller for caller, info in self.functions.items()
            if any(site.callee == qualname for site in info.calls)
        ]

    def subclasses_of(self, base: str) -> set[str]:
        """Transitive in-graph subclasses of a (possibly builtin) base.

        ``base`` may be a bare builtin name (``ValueError``) or an
        in-graph class qualname; matching follows resolved base names
        and bare tails so ``class ArchiveCorrupt(ValueError)`` counts.
        """
        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls.qualname in out:
                    continue
                for parent in cls.bases:
                    tail = parent.rsplit(".", 1)[-1]
                    if (
                        parent == base
                        or tail == base.rsplit(".", 1)[-1]
                        or parent in out
                        or any(o.endswith("." + tail) for o in out)
                    ):
                        out.add(cls.qualname)
                        changed = True
                        break
        return out

    def method_resolution(self, cls_qualname: str, attr: str) -> str | None:
        """Find ``attr`` on a class or its in-graph ancestors."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if attr in cls.methods:
                return cls.methods[attr]
            for parent in cls.bases:
                resolved = self._resolve_class(cls.module, parent)
                if resolved is not None:
                    stack.append(resolved)
        return None

    # -- resolution internals -----------------------------------------

    def _resolve_class(self, module: str, dotted: str) -> str | None:
        """A dotted class reference as written → class qualname."""
        if dotted in self.classes:
            return dotted
        index = self._modules.get(module)
        if index is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in index.classes and not rest:
            return index.classes[head].qualname
        target = index.aliases.get(head)
        if target is not None:
            candidate = f"{target}.{rest}" if rest else target
            if candidate in self.classes:
                return candidate
        return None

    def resolve(self, module: str, owner: str | None,
                func: ast.AST) -> str | None:
        """Resolve a call target expression to an in-graph qualname."""
        dotted = dotted_name(func)
        if dotted is None:
            return None
        index = self._modules.get(module)
        if index is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and owner is not None:
            return self.method_resolution(owner, rest) if rest else None
        if not rest:
            if head in index.functions:
                return index.functions[head]
            if head in index.classes:
                cls = index.classes[head]
                return cls.methods.get("__init__")
            target = index.aliases.get(head)
            if target is not None:
                if target in self.functions:
                    return target
                if target in self.classes:
                    return self.classes[target].methods.get("__init__")
            return None
        # Dotted: walk the alias table, then in-graph modules/classes.
        target = index.aliases.get(head)
        base = target if target is not None else head
        candidate = f"{base}.{rest}"
        if candidate in self.functions:
            return candidate
        if candidate in self.classes:
            return self.classes[candidate].methods.get("__init__")
        # One more hop: "mod.Class.method" written through an alias of
        # the *package* ("schemes.EncrHuffman.unprotect").
        resolved_cls = self._resolve_class(module, candidate.rsplit(".", 1)[0])
        if resolved_cls is not None:
            return self.method_resolution(
                resolved_cls, candidate.rsplit(".", 1)[1]
            )
        return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted)
    return names


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 *, method: bool) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    decorators = _decorator_names(node)
    if method and "staticmethod" not in decorators and names:
        names = names[1:]  # drop self/cls
    names += [a.arg for a in args.kwonlyargs]
    return names


def build_callgraph(contexts) -> CallGraph:
    """Build the graph from an iterable of FileContext objects.

    Two passes: declarations (so forward references between modules
    resolve), then call-site resolution.
    """
    graph = CallGraph()
    parsed: list[tuple[str, object]] = []
    for ctx in contexts:
        module = module_name(ctx.relpath)
        if module is None:
            continue
        parsed.append((module, ctx))
        index = _ModuleIndex(module)
        graph._modules[module] = index
        _declare(graph, index, ctx, module)
    for module, ctx in parsed:
        _resolve_calls(graph, ctx, module)
    return graph


def get_callgraph(repo) -> CallGraph:
    """The (cached) call graph for one lint run's scanned contexts.

    Interprocedural rules share a single graph per run; the runner
    stores every parsed :class:`FileContext` on the repo, and the
    first rule to ask pays the build cost.
    """
    graph = repo.state.get("callgraph")
    if graph is None:
        graph = build_callgraph(repo.contexts.values())
        repo.state["callgraph"] = graph
    return graph


def _declare(graph: CallGraph, index: _ModuleIndex, ctx, module: str) -> None:
    for node in ctx.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                index.aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    index.aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_module(module, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                index.aliases[alias.asname or alias.name] = (
                    f"{base}.{alias.name}"
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module}.{node.name}"
            index.functions[node.name] = qualname
            graph.functions[qualname] = FunctionInfo(
                qualname=qualname, module=module, relpath=ctx.relpath,
                node=node, owner=None,
                params=_param_names(node, method=False),
                decorators=_decorator_names(node),
            )
        elif isinstance(node, ast.ClassDef):
            cls_qualname = f"{module}.{node.name}"
            cls = ClassInfo(
                qualname=cls_qualname, module=module, node=node,
                bases=[d for b in node.bases if (d := dotted_name(b))],
            )
            index.classes[node.name] = cls
            graph.classes[cls_qualname] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{cls_qualname}.{item.name}"
                    cls.methods[item.name] = qualname
                    graph.functions[qualname] = FunctionInfo(
                        qualname=qualname, module=module,
                        relpath=ctx.relpath, node=item, owner=cls_qualname,
                        params=_param_names(item, method=True),
                        decorators=_decorator_names(item),
                    )


def _absolute_module(module: str, node: ast.ImportFrom) -> str | None:
    if node.level == 0:
        return node.module
    # Relative import: resolve against the importing module's package.
    parts = module.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - (node.level - 1)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _resolve_calls(graph: CallGraph, ctx, module: str) -> None:
    for info in graph.functions.values():
        if info.module != module or info.relpath != ctx.relpath:
            continue
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func) or "<dynamic>"
            callee = graph.resolve(module, info.owner, node.func)
            info.calls.append(CallSite(
                callee=callee, raw=raw, node=node, line=node.lineno,
            ))
