"""``repro.lint`` — the repo's AST-based invariant linter.

Machine-checks the cross-file invariants the docs promise: counter
keys vs ``trace.KNOWN_COUNTERS`` vs docs/OBSERVABILITY.md, span names
vs the registry and the golden trace fixtures, wire-format constants
vs docs/FORMAT.md, CSPRNG-only randomness in ``repro.crypto``, dtype
discipline on hot allocations, and general hygiene.  Exposed as
``secz lint`` (see docs/LINTING.md) and run over the real tree by
``tests/lint/``.

>>> from pathlib import Path
>>> from repro import lint
>>> report = lint.lint_paths([Path("src")], root=Path("."))
>>> report.exit_code
0
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.rules import ALL_RULES, get_rules, rule_names
from repro.lint.walker import (
    SCHEMA,
    FileContext,
    Finding,
    LintReport,
    LintRunner,
    RepoContext,
    Rule,
    find_repo_root,
)

__all__ = [
    "SCHEMA",
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintReport",
    "LintRunner",
    "RepoContext",
    "Rule",
    "find_repo_root",
    "get_rules",
    "lint_paths",
    "rule_names",
]


def lint_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    enable: list[str] | None = None,
    disable: list[str] | None = None,
) -> LintReport:
    """Lint ``paths`` with the selected rules; the one-call API.

    ``root`` defaults to the repo root found by walking up from the
    first path (the directory holding pyproject.toml) — that anchors
    the doc registries the spec-sync rules compare against.
    """
    if not paths:
        raise ValueError("no paths to lint")
    if root is None:
        root = find_repo_root(Path(paths[0]))
    repo = RepoContext(Path(root))
    runner = LintRunner(get_rules(enable, disable), repo)
    return runner.run([Path(p) for p in paths])
