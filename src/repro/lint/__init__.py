"""``repro.lint`` — the repo's AST-based invariant linter.

Machine-checks the cross-file invariants the docs promise: counter
keys vs ``trace.KNOWN_COUNTERS`` vs docs/OBSERVABILITY.md, span names
vs the registry and the golden trace fixtures, wire-format constants
vs docs/FORMAT.md, CSPRNG-only randomness in ``repro.crypto``, dtype
discipline on hot allocations, and general hygiene.  Exposed as
``secz lint`` (see docs/LINTING.md) and run over the real tree by
``tests/lint/``.

>>> from pathlib import Path
>>> from repro import lint
>>> report = lint.lint_paths([Path("src")], root=Path("."))
>>> report.exit_code
0
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.callgraph import CallGraph, build_callgraph, get_callgraph
from repro.lint.dataflow import ForwardAnalysis
from repro.lint.rules import ALL_RULES, get_rules, rule_names
from repro.lint.sarif import format_sarif, to_sarif
from repro.lint.walker import (
    SCHEMA,
    FileContext,
    Finding,
    LintReport,
    LintRunner,
    RepoContext,
    Rule,
    find_repo_root,
)

__all__ = [
    "SCHEMA",
    "ALL_RULES",
    "BASELINE_FILENAME",
    "CallGraph",
    "FileContext",
    "Finding",
    "ForwardAnalysis",
    "LintReport",
    "LintRunner",
    "RepoContext",
    "Rule",
    "apply_baseline",
    "build_callgraph",
    "find_repo_root",
    "format_sarif",
    "get_callgraph",
    "get_rules",
    "lint_paths",
    "load_baseline",
    "rule_names",
    "to_sarif",
    "write_baseline",
]


def lint_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    enable: list[str] | None = None,
    disable: list[str] | None = None,
    baseline: Path | str | None = "auto",
) -> LintReport:
    """Lint ``paths`` with the selected rules; the one-call API.

    ``root`` defaults to the repo root found by walking up from the
    first path (the directory holding pyproject.toml) — that anchors
    the doc registries the spec-sync rules compare against.

    ``baseline="auto"`` (the default) applies ``.lint-baseline.json``
    at the repo root when it exists; pass an explicit path to use a
    different file, or ``None`` to skip baseline handling entirely.
    """
    if not paths:
        raise ValueError("no paths to lint")
    if root is None:
        root = find_repo_root(Path(paths[0]))
    repo = RepoContext(Path(root))
    runner = LintRunner(get_rules(enable, disable), repo)
    report = runner.run([Path(p) for p in paths])
    if baseline == "auto":
        candidate = Path(root) / BASELINE_FILENAME
        baseline = candidate if candidate.exists() else None
    if baseline is not None:
        report = apply_baseline(
            report, load_baseline(Path(baseline)), scanned=repo.scanned
        )
    return report
