"""Intraprocedural forward dataflow for the interprocedural rules.

A deliberately small abstract interpreter: the state maps local
variable names to frozensets of string *tags* ("param:data",
"secret", "csprng", ...).  Statements are visited in source order;
``if``/``for``/``while``/``try`` branches are analyzed on copies of
the incoming state and joined by union afterwards — a sound
over-approximation for may-analyses (taint, reachability) without
building a CFG.

Rules subclass :class:`ForwardAnalysis` and override

* :meth:`call_tags` — tags produced by a call expression (this is
  where call-graph summaries plug in: a callee whose summary says
  "returns its first argument's taint" propagates tags through the
  call);
* :meth:`visit_expr` — a hook invoked on every loaded expression with
  the current state (sink checks live here);
* :meth:`sanitizes` — calls whose *result* is always untagged
  (``len``, ``hex_digest``...), killing taint along that edge.

Gen/kill is the classic one: an assignment replaces the target's
tags with the right-hand side's (kill), augmented assignment unions
them (the old value still feeds the new one), tuple unpacking smears
the RHS tags across every target.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import dotted_name

__all__ = ["ForwardAnalysis", "name_roots"]

Tags = frozenset


def name_roots(expr: ast.AST) -> set[str]:
    """Every bare Name (including attribute roots) read by ``expr``."""
    out: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.add(node.id)
    return out


class ForwardAnalysis:
    """Forward may-analysis over one function body.

    ``seed`` maps parameter names to their initial tags.  After
    :meth:`run`, :attr:`return_tags` holds the union of tags of every
    ``return`` expression (the function's result summary) and
    :attr:`final_state` the joined exit state.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 seed: dict[str, Tags] | None = None) -> None:
        self.fn = fn
        self.seed = dict(seed or {})
        self.return_tags: Tags = frozenset()
        self.final_state: dict[str, Tags] = {}

    # -- override points ----------------------------------------------

    def call_tags(self, call: ast.Call, state: dict[str, Tags]) -> Tags:
        """Tags of a call's result.  Default: no tags (unknown calls
        produce clean values); subclasses consult summaries/sources."""
        return frozenset()

    def sanitizes(self, call: ast.Call) -> bool:
        """True when the call's result is clean regardless of args."""
        func = dotted_name(call.func)
        tail = func.rsplit(".", 1)[-1] if func else ""
        return tail in ("len", "bool", "type", "id", "isinstance", "range")

    def visit_expr(self, expr: ast.AST, state: dict[str, Tags]) -> None:
        """Hook called once per *evaluated* expression statement/value
        position, before transfer.  Sink checks go here."""

    def visit_stmt(self, stmt: ast.stmt, state: dict[str, Tags]) -> None:
        """Hook called on every statement before its transfer."""

    # -- expression evaluation ----------------------------------------

    def expr_tags(self, expr: ast.AST | None,
                  state: dict[str, Tags]) -> Tags:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            if self.sanitizes(expr):
                return frozenset()
            return self.call_tags(expr, state)
        if isinstance(expr, ast.Attribute):
            # ``x.attr`` carries x's tags (slicing a secret stays
            # secret); unknown roots are clean.
            return self.expr_tags(expr.value, state)
        if isinstance(expr, ast.Subscript):
            return self.expr_tags(expr.value, state) | self.expr_tags(
                expr.slice, state
            )
        if isinstance(expr, ast.BinOp):
            return self.expr_tags(expr.left, state) | self.expr_tags(
                expr.right, state
            )
        if isinstance(expr, ast.UnaryOp):
            return self.expr_tags(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            out: Tags = frozenset()
            for value in expr.values:
                out |= self.expr_tags(value, state)
            return out
        if isinstance(expr, ast.Compare):
            return frozenset()  # comparison results are booleans
        if isinstance(expr, ast.IfExp):
            return self.expr_tags(expr.body, state) | self.expr_tags(
                expr.orelse, state
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in expr.elts:
                out |= self.expr_tags(elt, state)
            return out
        if isinstance(expr, ast.Dict):
            out = frozenset()
            for key, value in zip(expr.keys, expr.values):
                out |= self.expr_tags(key, state)
                out |= self.expr_tags(value, state)
            return out
        if isinstance(expr, ast.JoinedStr):
            out = frozenset()
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    out |= self.expr_tags(part.value, state)
            return out
        if isinstance(expr, ast.FormattedValue):
            return self.expr_tags(expr.value, state)
        if isinstance(expr, ast.Starred):
            return self.expr_tags(expr.value, state)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = frozenset()
            for gen in expr.generators:
                out |= self.expr_tags(gen.iter, state)
            out |= self.expr_tags(expr.elt, state)
            return out
        if isinstance(expr, ast.DictComp):
            out = frozenset()
            for gen in expr.generators:
                out |= self.expr_tags(gen.iter, state)
            return out | self.expr_tags(expr.key, state) | self.expr_tags(
                expr.value, state
            )
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self.expr_tags(expr.value, state)
        if isinstance(expr, ast.Yield):
            return self.expr_tags(expr.value, state) if expr.value else frozenset()
        return frozenset()

    # -- statement transfer -------------------------------------------

    def _assign(self, target: ast.AST, tags: Tags,
                state: dict[str, Tags]) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tags, state)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags, state)
        # Attribute/subscript stores taint the *container* conservatively.
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and tags:
                state[root.id] = state.get(root.id, frozenset()) | tags

    def _walk_exprs(self, stmt: ast.stmt, state: dict[str, Tags]) -> None:
        """Invoke visit_expr on every expression inside ``stmt`` that
        is not part of a nested statement/function."""
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                for sub in ast.walk(node):
                    self.visit_expr(sub, state)

    def _run_body(self, body: list[ast.stmt],
                  state: dict[str, Tags]) -> dict[str, Tags]:
        for stmt in body:
            self.visit_stmt(stmt, state)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are analyzed on their own
            self._walk_exprs(stmt, state)
            if isinstance(stmt, ast.Assign):
                tags = self.expr_tags(stmt.value, state)
                for target in stmt.targets:
                    self._assign(target, tags, state)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._assign(
                        stmt.target, self.expr_tags(stmt.value, state), state
                    )
            elif isinstance(stmt, ast.AugAssign):
                tags = self.expr_tags(stmt.value, state) | self.expr_tags(
                    stmt.target, state
                )
                self._assign(stmt.target, tags, state)
            elif isinstance(stmt, ast.Return):
                self.return_tags |= self.expr_tags(stmt.value, state)
            elif isinstance(stmt, (ast.If,)):
                then_state = dict(state)
                then_state = self._run_body(stmt.body, then_state)
                else_state = dict(state)
                else_state = self._run_body(stmt.orelse, else_state)
                _join_into(state, then_state)
                _join_into(state, else_state)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._assign(
                    stmt.target, self.expr_tags(stmt.iter, state), state
                )
                # Two passes approximate the loop fixed point (tags
                # generated on iteration N feed iteration N+1).
                loop_state = dict(state)
                for _ in range(2):
                    loop_state = self._run_body(stmt.body, loop_state)
                _join_into(state, loop_state)
                state = self._run_body(stmt.orelse, state)
            elif isinstance(stmt, ast.While):
                loop_state = dict(state)
                for _ in range(2):
                    loop_state = self._run_body(stmt.body, loop_state)
                _join_into(state, loop_state)
                state = self._run_body(stmt.orelse, state)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._assign(
                            item.optional_vars,
                            self.expr_tags(item.context_expr, state),
                            state,
                        )
                state = self._run_body(stmt.body, state)
            elif isinstance(stmt, ast.Try):
                try_state = self._run_body(stmt.body, dict(state))
                _join_into(state, try_state)
                for handler in stmt.handlers:
                    handler_state = dict(state)
                    if handler.name:
                        handler_state[handler.name] = frozenset()
                    _join_into(state, self._run_body(handler.body,
                                                     handler_state))
                state = self._run_body(stmt.orelse, state)
                state = self._run_body(stmt.finalbody, state)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        state.pop(target.id, None)
        return state

    def run(self) -> "ForwardAnalysis":
        state: dict[str, Tags] = dict(self.seed)
        self.final_state = self._run_body(list(self.fn.body), state)
        return self


def _join_into(state: dict[str, Tags], other: dict[str, Tags]) -> None:
    for key, tags in other.items():
        state[key] = state.get(key, frozenset()) | tags
