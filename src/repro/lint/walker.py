"""AST walking machinery for the repo linter.

The linter's job is to machine-check the cross-file invariants that
PRs 3-4 left to reviewer discipline: every counter key must exist in
``trace.KNOWN_COUNTERS`` *and* the docs/OBSERVABILITY.md table, every
``struct`` layout must match docs/FORMAT.md, the from-scratch AES must
never touch non-CSPRNG randomness, and so on.  This module provides
the machinery shared by every rule:

* :class:`Finding` — one diagnostic (rule id, path, line, message);
* :class:`FileContext` — a parsed source file: AST, source lines and
  the ``# lint: disable=`` pragma map;
* :class:`Rule` — the base class rules subclass (per-file ``check``
  plus a repo-level ``finalize`` for cross-file invariants);
* :class:`RepoContext` — where the spec-sync rules find their ground
  truth (docs tables, golden trace fixtures, the counter registry);
  every registry is injectable so rule tests can run against tiny
  synthetic specs;
* :class:`LintRunner` — collects files, runs rules, applies pragmas
  and renders text or JSON reports.

Pragma syntax (docs/LINTING.md):

* ``# lint: disable=rule-a,rule-b`` — suppress those rules on that
  line (trailing comment);
* ``# lint: disable-file=rule-a`` — suppress a rule for the whole
  file (conventionally placed near the top).
"""

from __future__ import annotations

import ast
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA",
    "Finding",
    "FileContext",
    "Rule",
    "RepoContext",
    "LintRunner",
    "LintReport",
]

#: Schema identifier stamped into every ``--format json`` report.
SCHEMA = "repro-lint/1"

_PRAGMA = re.compile(r"#\s*lint:\s*(disable|disable-file)=([a-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong."""

    path: str
    line: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """A parsed source file plus everything rules need to inspect it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        #: POSIX path relative to the repo root (what scopes match on).
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._line_pragmas: dict[int, set[str]] = {}
        self._file_pragmas: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = {
                part.strip() for part in match.group(2).split(",") if part.strip()
            }
            if match.group(1) == "disable-file":
                self._file_pragmas |= rules
            else:
                self._line_pragmas.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        """True when a pragma disables ``rule`` at ``line``."""
        if rule in self._file_pragmas or "all" in self._file_pragmas:
            return True
        on_line = self._line_pragmas.get(line, ())
        return rule in on_line or "all" in on_line


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (the kebab-case id used by pragmas and
    ``--enable``/``--disable``) and :attr:`description`, and override
    :meth:`check` for per-file diagnostics.  Rules that enforce
    cross-file invariants (e.g. "every registry entry is used
    somewhere") accumulate state in ``check`` and emit the repo-level
    findings from :meth:`finalize`, which runs once after every file.
    """

    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext, repo: "RepoContext") -> list[Finding]:
        return []

    def finalize(self, repo: "RepoContext") -> list[Finding]:
        return []


# ----------------------------------------------------------------------
# Repo-level ground truth (docs tables, fixtures, registries)
# ----------------------------------------------------------------------

_DOC_COUNTER_ROW = re.compile(r"^\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`\s*\|")
_BACKTICKED_NAME = re.compile(r"`([a-z][a-z0-9_.]*)`")
_DOC_STRUCT = re.compile(r"[`'\"]<([0-9A-Za-z]+)>?[`'\"]")
_DOC_MAGIC = re.compile(r"(?:magic|ASCII)[^\n`'\"]{0,14}[`'\"]([A-Za-z0-9]{4})[`'\"]")


def _section(text: str, heading: str) -> str:
    """The markdown section starting at ``heading`` (to the next ##)."""
    start = text.find(heading)
    if start < 0:
        return ""
    end = text.find("\n## ", start + len(heading))
    return text[start:end] if end > 0 else text[start:]


class RepoContext:
    """Ground truth the spec-sync rules compare code against.

    ``root`` is the repository root (the directory holding ``docs/``
    and ``pyproject.toml``).  Every registry is lazily derived from the
    repo on first access, and every one can be injected through the
    constructor so rule tests run against synthetic specs instead of
    the real tree.
    """

    def __init__(
        self,
        root: Path,
        *,
        known_counters: frozenset[str] | None = None,
        documented_counters: frozenset[str] | None = None,
        documented_spans: frozenset[str] | None = None,
        fixture_spans: frozenset[str] | None = None,
        documented_structs: frozenset[str] | None = None,
        documented_magics: frozenset[str] | None = None,
        exception_contracts: dict | None = None,
        taint_registry: dict | None = None,
        lock_registry: dict | None = None,
    ) -> None:
        self.root = Path(root)
        self._known_counters = known_counters
        self._documented_counters = documented_counters
        self._documented_spans = documented_spans
        self._fixture_spans = fixture_spans
        self._documented_structs = documented_structs
        self._documented_magics = documented_magics
        #: Interprocedural-rule registries; ``None`` means the rule's
        #: shipped default (rules/contracts.py, rules/taint.py,
        #: rules/locks.py).  Injectable like every other registry so
        #: engine tests run against synthetic packages.
        self.exception_contracts = exception_contracts
        self.taint_registry = taint_registry
        self.lock_registry = lock_registry
        #: relpath -> FileContext for every file the runner parsed;
        #: the call-graph builder and finalize-stage pragma filtering
        #: both read this.
        self.contexts: dict[str, FileContext] = {}
        #: Relpaths of every scanned file (set by the runner); rules
        #: use this to decide whether repo-wide "vice versa" checks are
        #: meaningful (they are skipped on partial scans).
        self.scanned: set[str] = set()
        #: Free-form scratch space for rules' cross-file state.
        self.state: dict[str, object] = {}

    # -- doc readers ---------------------------------------------------

    def _read_doc(self, name: str) -> str:
        path = self.root / "docs" / name
        return path.read_text(encoding="utf-8") if path.exists() else ""

    @property
    def known_counters(self) -> frozenset[str]:
        """The code-side counter registry (``trace.KNOWN_COUNTERS``)."""
        if self._known_counters is None:
            from repro.core import trace

            self._known_counters = frozenset(trace.KNOWN_COUNTERS)
        return self._known_counters

    @property
    def documented_counters(self) -> frozenset[str]:
        """Counter names from the docs/OBSERVABILITY.md registry table."""
        if self._documented_counters is None:
            section = _section(
                self._read_doc("OBSERVABILITY.md"), "## Counter registry"
            )
            self._documented_counters = frozenset(
                m.group(1)
                for line in section.splitlines()
                if (m := _DOC_COUNTER_ROW.match(line))
            )
        return self._documented_counters

    @property
    def documented_spans(self) -> frozenset[str]:
        """Span names from the docs/OBSERVABILITY.md span registry.

        Structural names come from the first column of the registry
        table; stage names from the backticked list in the "Stage
        spans" paragraph.
        """
        if self._documented_spans is None:
            section = _section(
                self._read_doc("OBSERVABILITY.md"), "## Span name registry"
            )
            names: set[str] = set()
            for line in section.splitlines():
                if line.startswith("|"):
                    first_cell = line.split("|")[1]
                    names.update(_BACKTICKED_NAME.findall(first_cell))
            stages = section.find("Stage spans")
            if stages >= 0:
                paragraph = section[stages:].split("\n\n", 1)[0]
                names.update(_BACKTICKED_NAME.findall(paragraph))
            self._documented_spans = frozenset(names)
        return self._documented_spans

    @property
    def fixture_spans(self) -> frozenset[str]:
        """Span names pinned by the golden trace fixtures."""
        if self._fixture_spans is None:
            names: set[str] = set()
            fixture_dir = self.root / "tests" / "data" / "traces"
            for path in sorted(fixture_dir.glob("*.trace.json")):
                doc = json.loads(path.read_text())

                def walk(span: dict) -> None:
                    names.add(span["name"])
                    for child in span.get("children", []):
                        walk(child)

                for span_root in doc.get("roots", []):
                    walk(span_root)
            self._fixture_spans = frozenset(names)
        return self._fixture_spans

    @property
    def documented_structs(self) -> frozenset[str]:
        """Normalized struct format bodies quoted in the format docs
        (docs/FORMAT.md for containers, docs/SERVICE.md for SECP)."""
        if self._documented_structs is None:
            text = self._read_doc("FORMAT.md") + self._read_doc("SERVICE.md")
            self._documented_structs = frozenset(_DOC_STRUCT.findall(text))
        return self._documented_structs

    @property
    def documented_magics(self) -> frozenset[str]:
        """Four-byte magic strings named in the format docs."""
        if self._documented_magics is None:
            text = self._read_doc("FORMAT.md") + self._read_doc("SERVICE.md")
            self._documented_magics = frozenset(_DOC_MAGIC.findall(text))
        return self._documented_magics


def find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding pyproject.toml."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start if start.is_dir() else start.parent


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """Every finding from one run, plus rendering helpers."""

    findings: list[Finding]
    files_checked: int
    rules_run: list[str] = field(default_factory=list)
    #: Per-rule wall-clock seconds (``--profile``).  Deliberately NOT
    #: part of :meth:`to_dict` — JSON reports must stay byte-identical
    #: across runs.
    profile: dict[str, float] = field(default_factory=dict)
    #: Findings suppressed by the baseline file (for ``--profile`` /
    #: diagnostics; also excluded from the deterministic report).
    baseline_suppressed: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "schema": SCHEMA,
            "files_checked": self.files_checked,
            "rules_run": sorted(self.rules_run),
            "counts": dict(sorted(counts.items())),
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [f.format() for f in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        summary = (
            f"{len(self.findings)} {noun} in {self.files_checked} files "
            f"({len(self.rules_run)} rules)"
        )
        if self.baseline_suppressed:
            summary += f" [{self.baseline_suppressed} baselined]"
        lines.append(summary)
        return "\n".join(lines)

    def format_profile(self) -> str:
        """Per-rule timing table for ``--profile``."""
        total = sum(self.profile.values())
        lines = ["rule                            seconds"]
        for name, seconds in sorted(
            self.profile.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"{name:<30}  {seconds:8.3f}")
        lines.append(f"{'total':<30}  {total:8.3f}")
        return "\n".join(lines)


class LintRunner:
    """Run a set of rules over the ``*.py`` files below some paths."""

    def __init__(self, rules: list[Rule], repo: RepoContext) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = rules
        self.repo = repo

    def collect(self, paths: list[Path]) -> list[Path]:
        """Every ``*.py`` file under ``paths``, sorted, deduplicated."""
        files: set[Path] = set()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.update(path.rglob("*.py"))
            elif path.suffix == ".py":
                files.add(path)
            else:
                raise ValueError(f"not a Python file or directory: {path}")
        return sorted(files)

    def run(self, paths: list[Path]) -> LintReport:
        files = self.collect(paths)
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        for path in files:
            relpath = self._relpath(path)
            try:
                ctx = FileContext(path, relpath, path.read_text(encoding="utf-8"))
            except SyntaxError as exc:
                findings.append(Finding(
                    path=relpath, line=int(exc.lineno or 0),
                    rule="parse-error", message=f"file does not parse: {exc.msg}",
                ))
                continue
            contexts.append(ctx)
            self.repo.scanned.add(relpath)
            self.repo.contexts[relpath] = ctx
        profile: dict[str, float] = {rule.name: 0.0 for rule in self.rules}
        for ctx in contexts:
            for rule in self.rules:
                start = time.perf_counter()
                checked = rule.check(ctx, self.repo)
                profile[rule.name] += time.perf_counter() - start
                for finding in checked:
                    if not ctx.suppressed(finding.rule, finding.line):
                        findings.append(finding)
        for rule in self.rules:
            start = time.perf_counter()
            finalized = rule.finalize(self.repo)
            profile[rule.name] += time.perf_counter() - start
            for finding in finalized:
                ctx = self.repo.contexts.get(finding.path)
                if ctx is None or not ctx.suppressed(
                    finding.rule, finding.line
                ):
                    findings.append(finding)
        return LintReport(
            findings=sorted(findings),
            files_checked=len(files),
            rules_run=[rule.name for rule in self.rules],
            profile=profile,
        )

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()
