"""Crypto hygiene for the from-scratch AES in ``repro.crypto``.

Three invariants, all load-bearing for the paper's security claims:

1. **CSPRNG only.**  All randomness (keys, IVs, nonces) must come from
   ``repro.crypto.rng`` (which wraps ``os.urandom``).  ``random``,
   ``numpy.random`` and anything time-seeded are forbidden everywhere
   in the package except ``rng.py`` itself.
2. **No secret-dependent control flow.**  Branching on — or indexing
   tables by — key-schedule material leaks timing.  The scalar T-table
   engine (``block.py``) is the one sanctioned table-lookup path; it
   is exempt from the data-flow check.  Everywhere else a name that
   looks secret (``key``/``schedule``/``secret``/``passphrase``) may
   not appear in an ``if``/``while`` test or a subscript index, except
   inside shape checks (``len``/``isinstance``), ``is None`` tests and
   bare-truthiness emptiness tests.
3. **Fresh IVs/nonces.**  Checked across *all* of ``src/`` (callers,
   not just the crypto package): an ``encrypt*`` call may not receive a
   literal IV/nonce (``bytes(16)``, ``b"\\x00" * 16``, ...), and one
   IV/nonce variable may not feed two ``encrypt*`` calls inside the
   same function — CBC IV reuse leaks equal plaintext prefixes, CTR
   nonce reuse leaks the plaintext XOR.  Calibration/doctest code that
   genuinely needs a fixed IV opts out per line with
   ``# lint: disable=crypto-hygiene``.
"""

from __future__ import annotations

import ast
import re

from repro.lint.dataflow import ForwardAnalysis, Tags
from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["CryptoHygieneRule"]

CRYPTO_PACKAGE = "src/repro/crypto/"
#: The sanctioned CSPRNG wrapper — exempt from every check here.
RNG_MODULE = "src/repro/crypto/rng.py"
#: The sanctioned table-lookup engine — exempt from the secret-flow check.
TTABLE_MODULE = "src/repro/crypto/block.py"

_SECRET = re.compile(r"key|schedule|secret|passphrase", re.IGNORECASE)
_FORBIDDEN_MODULES = ("random", "numpy.random")
_TIME_FUNCS = ("time", "time_ns", "monotonic", "monotonic_ns")

#: encrypt-entry-point name -> positional index of its IV/nonce
#: argument (None: keyword-only in practice).  Matches the dotted tail,
#: so ``cipher.encrypt_cbc(...)`` and ``modes.cbc_encrypt(...)`` both
#: resolve.
_ENCRYPT_IV_ARG = {
    "encrypt": None,      # AES128.encrypt(plaintext, *, mode=, iv=)
    "encrypt_cbc": 1,     # AES128.encrypt_cbc(plaintext, iv)
    "encrypt_ctr": 1,     # AES128.encrypt_ctr(plaintext, nonce)
    "cbc_encrypt": 2,     # modes.cbc_encrypt(plaintext, key, iv)
    "ctr_xcrypt": 2,      # modes.ctr_xcrypt(data, key, nonce)
    "ctr_keystream": 1,   # modes.ctr_keystream(key, nonce, n_bytes)
}
_IV_KEYWORDS = ("iv", "nonce")


def _identifier(node: ast.AST) -> str | None:
    """The dotted tail of a Name/Attribute, e.g. ``self.round_keys``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _identifier(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


def _randomness_findings(ctx: FileContext, rule: str) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _FORBIDDEN_MODULES:
                    findings.append(Finding(
                        path=ctx.relpath, line=node.lineno, rule=rule,
                        message=(f"import of {alias.name!r}: only "
                                 "repro.crypto.rng (os.urandom) may "
                                 "produce randomness in repro.crypto"),
                    ))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module in _FORBIDDEN_MODULES or (
                module == "numpy"
                and any(alias.name == "random" for alias in node.names)
            ):
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=(f"import from {module!r}: only "
                             "repro.crypto.rng (os.urandom) may "
                             "produce randomness in repro.crypto"),
                ))
        elif isinstance(node, ast.Attribute):
            dotted = _identifier(node)
            if dotted in ("np.random", "numpy.random"):
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=("numpy.random is not a CSPRNG; use "
                             "repro.crypto.rng"),
                ))
            elif node.attr in _TIME_FUNCS and _identifier(node.value) == "time":
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=("time-derived values must not feed "
                             "randomness in repro.crypto; use "
                             "repro.crypto.rng"),
                ))
    return findings


def _is_shape_check(node: ast.AST) -> bool:
    """True for the sanctioned non-value uses of a secret name."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("len", "isinstance"):
        return True
    if isinstance(node, ast.Compare) and any(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    ):
        return True
    return False


def _secret_names(test: ast.AST, *, allow_bare: bool = False):
    """Secret-looking identifiers used by *value* inside ``test``."""
    if allow_bare:
        # Bare truthiness (`if not self.round_keys:`) is an emptiness
        # test on a container, not a branch on secret bytes.  A bare
        # subscript index (`SBOX[key_byte]`) gets no such pass.
        while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if isinstance(test, (ast.Name, ast.Attribute)):
            return
    shielded: set[int] = set()
    for node in ast.walk(test):
        if _is_shape_check(node):
            shielded.update(id(sub) for sub in ast.walk(node))
    for node in ast.walk(test):
        if id(node) in shielded:
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _identifier(node)
            if dotted is None or not _SECRET.search(dotted):
                continue
            if dotted.rsplit(".", 1)[-1].isupper():
                continue  # ALL_CAPS constants (KEY_BYTES, ...) are public
            yield dotted, node.lineno
            return  # one finding per test is enough


def _is_literal_bytes(node: ast.AST) -> bool:
    """True when ``node`` is a compile-time-constant bytes-ish value."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (bytes, str, int))
    if isinstance(node, ast.Call):
        func = _identifier(node.func)
        if func in ("bytes", "bytearray", "bytes.fromhex") and all(
            _is_literal_bytes(arg) for arg in node.args
        ):
            return True
        return False
    if isinstance(node, ast.BinOp):
        return _is_literal_bytes(node.left) and _is_literal_bytes(node.right)
    if isinstance(node, (ast.JoinedStr,)):
        return True
    return False


def _iv_argument(call: ast.Call) -> ast.AST | None:
    """The IV/nonce argument of an ``encrypt*`` call, if one is passed."""
    func = _identifier(call.func)
    if func is None:
        return None
    tail = func.rsplit(".", 1)[-1]
    if tail not in _ENCRYPT_IV_ARG:
        return None
    for kw in call.keywords:
        if kw.arg in _IV_KEYWORDS:
            return kw.value
    pos = _ENCRYPT_IV_ARG[tail]
    if pos is not None and len(call.args) > pos:
        return call.args[pos]
    return None


def _encrypt_calls_by_scope(tree: ast.AST) -> list[list[ast.Call]]:
    """Encrypt-call lists grouped by nearest enclosing function.

    Nested functions get their own bucket, so a helper closure's calls
    never pollute its parent's reuse accounting.
    """
    scopes: list[list[ast.Call]] = []

    def visit(node: ast.AST, bucket: list[ast.Call]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner: list[ast.Call] = []
                scopes.append(inner)
                visit(child, inner)
                continue
            if isinstance(child, ast.Call) and _iv_argument(child) is not None:
                bucket.append(child)
            visit(child, bucket)

    top: list[ast.Call] = []
    scopes.append(top)
    visit(tree, top)
    return scopes


#: Call tails whose result is sanctioned IV entropy.
_CSPRNG_CALLS = ("generate_iv", "generate_nonce", "token_bytes", "urandom",
                 "random_bytes")
#: Call tails whose result is a deterministic function of their inputs
#: — hashing, packing, counter serialisation.  An IV built from these
#: (and no CSPRNG input) repeats whenever the inputs repeat.
_DETERMINISTIC_CALLS = ("to_bytes", "pack", "digest", "hexdigest",
                        "encode", "fromhex", "zfill")

_CSPRNG_TAG = "csprng"
_DET_TAG = "deterministic"


class _IvOriginPass(ForwardAnalysis):
    """Dataflow pass behind the IV-origin check: tags values as
    CSPRNG-derived or deterministically derived and flags encrypt
    calls whose IV carries the latter without the former.

    This is the interprocedural upgrade of the literal-IV check: a
    literal stuffed through a variable (``iv = b"\\0" * 16``), a
    counter serialisation (``iv = n.to_bytes(16, "big")``) or a hash
    of the plaintext all get caught, while ``iv = generate_iv()`` and
    IVs received as parameters (the caller's responsibility) pass.
    """

    def __init__(self, fn, relpath: str, rule: str) -> None:
        super().__init__(fn)
        self.relpath = relpath
        self.rule = rule
        self.findings: list[Finding] = []
        self._flagged: set[int] = set()

    def call_tags(self, call: ast.Call, state) -> Tags:
        dotted = _identifier(call.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _CSPRNG_CALLS:
            return frozenset((_CSPRNG_TAG,))
        tags: Tags = frozenset()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            tags |= self.expr_tags(arg, state)
        if isinstance(call.func, ast.Attribute):
            # ``sha256(seed).digest()``: the receiver's provenance
            # flows through the method call.
            tags |= self.expr_tags(call.func.value, state)
        if _CSPRNG_TAG not in tags and (
            tail in _DETERMINISTIC_CALLS
            or (tail in ("bytes", "bytearray") and call.args and all(
                isinstance(arg, ast.Constant) for arg in call.args
            ))
        ):
            tags |= frozenset((_DET_TAG,))
        return tags

    def expr_tags(self, expr, state) -> Tags:
        # Only bytes literals seed the deterministic tag: int/str/bool
        # constants appear on every other line (``self._done = True``)
        # and would smear the tag across unrelated containers via
        # attribute stores.
        if isinstance(expr, ast.Constant) and isinstance(expr.value, bytes):
            return frozenset((_DET_TAG,))
        return super().expr_tags(expr, state)

    def visit_expr(self, expr: ast.AST, state) -> None:
        if not isinstance(expr, ast.Call) or id(expr) in self._flagged:
            return
        iv_node = _iv_argument(expr)
        if iv_node is None or _is_literal_bytes(iv_node):
            return  # direct literals are the syntactic check's job
        tags = self.expr_tags(iv_node, state)
        if _DET_TAG in tags and _CSPRNG_TAG not in tags:
            self._flagged.add(id(expr))
            func = _identifier(expr.func)
            tail = func.rsplit(".", 1)[-1] if func else "encrypt"
            self.findings.append(Finding(
                path=self.relpath, line=iv_node.lineno, rule=self.rule,
                message=(f"IV/nonce passed to {tail}() derives from a "
                         "deterministic (non-CSPRNG) source; draw it "
                         "from repro.crypto.rng.generate_iv/"
                         "generate_nonce"),
            ))


def _iv_origin_findings(ctx: FileContext, rule: str) -> list[Finding]:
    findings: list[Finding] = []
    scopes: list[ast.AST] = [ctx.tree]
    scopes.extend(
        node for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    for scope in scopes:
        iv_pass = _IvOriginPass(scope, ctx.relpath, rule)
        iv_pass.run()
        findings.extend(iv_pass.findings)
    return findings


def _iv_findings(ctx: FileContext, rule: str) -> list[Finding]:
    findings = []
    for calls in _encrypt_calls_by_scope(ctx.tree):
        seen: dict[str, int] = {}
        for call in calls:
            iv_node = _iv_argument(call)
            func = _identifier(call.func)
            tail = func.rsplit(".", 1)[-1] if func else "encrypt"
            if _is_literal_bytes(iv_node):
                findings.append(Finding(
                    path=ctx.relpath, line=iv_node.lineno, rule=rule,
                    message=(f"literal IV/nonce passed to {tail}(): draw "
                             "a fresh IV/nonce from repro.crypto.rng per "
                             "encryption"),
                ))
                continue
            dotted = _identifier(iv_node)
            if dotted is None:
                continue
            if dotted in seen:
                findings.append(Finding(
                    path=ctx.relpath, line=iv_node.lineno, rule=rule,
                    message=(f"IV/nonce {dotted!r} reused by a second "
                             f"encrypt call (first at line {seen[dotted]}): "
                             "every encryption needs a fresh IV/nonce — "
                             "reuse leaks plaintext structure"),
                ))
            else:
                seen[dotted] = iv_node.lineno
    return findings


class CryptoHygieneRule(Rule):
    name = "crypto-hygiene"
    description = (
        "repro.crypto must draw randomness only from rng.py and must "
        "not branch on or index by secret values outside the T-table "
        "engine; encrypt* callers anywhere in src/ must pass fresh "
        "IVs/nonces that originate from a CSPRNG (not literals, "
        "counters, hashes, or other deterministic derivations)"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not ctx.relpath.startswith("src/"):
            return []
        if ctx.relpath == RNG_MODULE:
            return []
        findings = _iv_findings(ctx, self.name)
        findings += _iv_origin_findings(ctx, self.name)
        if not ctx.relpath.startswith(CRYPTO_PACKAGE):
            return findings
        findings += _randomness_findings(ctx, self.name)
        if ctx.relpath == TTABLE_MODULE:
            return findings
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.If, ast.While)):
                for dotted, lineno in _secret_names(node.test, allow_bare=True):
                    findings.append(Finding(
                        path=ctx.relpath, line=lineno, rule=self.name,
                        message=(f"branch on secret-looking value "
                                 f"{dotted!r}: secret-dependent control "
                                 "flow leaks timing (T-table path lives "
                                 "in block.py)"),
                    ))
            elif isinstance(node, ast.Subscript):
                for dotted, lineno in _secret_names(node.slice):
                    findings.append(Finding(
                        path=ctx.relpath, line=lineno, rule=self.name,
                        message=(f"table index from secret-looking value "
                                 f"{dotted!r}: secret-dependent lookups "
                                 "outside block.py leak timing"),
                    ))
        return findings
