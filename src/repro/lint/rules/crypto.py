"""Crypto hygiene for the from-scratch AES in ``repro.crypto``.

Two invariants, both load-bearing for the paper's security claims:

1. **CSPRNG only.**  All randomness (keys, IVs, nonces) must come from
   ``repro.crypto.rng`` (which wraps ``os.urandom``).  ``random``,
   ``numpy.random`` and anything time-seeded are forbidden everywhere
   in the package except ``rng.py`` itself.
2. **No secret-dependent control flow.**  Branching on — or indexing
   tables by — key-schedule material leaks timing.  The scalar T-table
   engine (``block.py``) is the one sanctioned table-lookup path; it
   is exempt from the data-flow check.  Everywhere else a name that
   looks secret (``key``/``schedule``/``secret``/``passphrase``) may
   not appear in an ``if``/``while`` test or a subscript index, except
   inside shape checks (``len``/``isinstance``), ``is None`` tests and
   bare-truthiness emptiness tests.
"""

from __future__ import annotations

import ast
import re

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["CryptoHygieneRule"]

CRYPTO_PACKAGE = "src/repro/crypto/"
#: The sanctioned CSPRNG wrapper — exempt from every check here.
RNG_MODULE = "src/repro/crypto/rng.py"
#: The sanctioned table-lookup engine — exempt from the secret-flow check.
TTABLE_MODULE = "src/repro/crypto/block.py"

_SECRET = re.compile(r"key|schedule|secret|passphrase", re.IGNORECASE)
_FORBIDDEN_MODULES = ("random", "numpy.random")
_TIME_FUNCS = ("time", "time_ns", "monotonic", "monotonic_ns")


def _identifier(node: ast.AST) -> str | None:
    """The dotted tail of a Name/Attribute, e.g. ``self.round_keys``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _identifier(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


def _randomness_findings(ctx: FileContext, rule: str) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _FORBIDDEN_MODULES:
                    findings.append(Finding(
                        path=ctx.relpath, line=node.lineno, rule=rule,
                        message=(f"import of {alias.name!r}: only "
                                 "repro.crypto.rng (os.urandom) may "
                                 "produce randomness in repro.crypto"),
                    ))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module in _FORBIDDEN_MODULES or (
                module == "numpy"
                and any(alias.name == "random" for alias in node.names)
            ):
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=(f"import from {module!r}: only "
                             "repro.crypto.rng (os.urandom) may "
                             "produce randomness in repro.crypto"),
                ))
        elif isinstance(node, ast.Attribute):
            dotted = _identifier(node)
            if dotted in ("np.random", "numpy.random"):
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=("numpy.random is not a CSPRNG; use "
                             "repro.crypto.rng"),
                ))
            elif node.attr in _TIME_FUNCS and _identifier(node.value) == "time":
                findings.append(Finding(
                    path=ctx.relpath, line=node.lineno, rule=rule,
                    message=("time-derived values must not feed "
                             "randomness in repro.crypto; use "
                             "repro.crypto.rng"),
                ))
    return findings


def _is_shape_check(node: ast.AST) -> bool:
    """True for the sanctioned non-value uses of a secret name."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("len", "isinstance"):
        return True
    if isinstance(node, ast.Compare) and any(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    ):
        return True
    return False


def _secret_names(test: ast.AST, *, allow_bare: bool = False):
    """Secret-looking identifiers used by *value* inside ``test``."""
    if allow_bare:
        # Bare truthiness (`if not self.round_keys:`) is an emptiness
        # test on a container, not a branch on secret bytes.  A bare
        # subscript index (`SBOX[key_byte]`) gets no such pass.
        while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if isinstance(test, (ast.Name, ast.Attribute)):
            return
    shielded: set[int] = set()
    for node in ast.walk(test):
        if _is_shape_check(node):
            shielded.update(id(sub) for sub in ast.walk(node))
    for node in ast.walk(test):
        if id(node) in shielded:
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _identifier(node)
            if dotted is None or not _SECRET.search(dotted):
                continue
            if dotted.rsplit(".", 1)[-1].isupper():
                continue  # ALL_CAPS constants (KEY_BYTES, ...) are public
            yield dotted, node.lineno
            return  # one finding per test is enough


class CryptoHygieneRule(Rule):
    name = "crypto-hygiene"
    description = (
        "repro.crypto must draw randomness only from rng.py and must "
        "not branch on or index by secret values outside the T-table "
        "engine"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not ctx.relpath.startswith(CRYPTO_PACKAGE):
            return []
        if ctx.relpath == RNG_MODULE:
            return []
        findings = _randomness_findings(ctx, self.name)
        if ctx.relpath == TTABLE_MODULE:
            return findings
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.If, ast.While)):
                for dotted, lineno in _secret_names(node.test, allow_bare=True):
                    findings.append(Finding(
                        path=ctx.relpath, line=lineno, rule=self.name,
                        message=(f"branch on secret-looking value "
                                 f"{dotted!r}: secret-dependent control "
                                 "flow leaks timing (T-table path lives "
                                 "in block.py)"),
                    ))
            elif isinstance(node, ast.Subscript):
                for dotted, lineno in _secret_names(node.slice):
                    findings.append(Finding(
                        path=ctx.relpath, line=lineno, rule=self.name,
                        message=(f"table index from secret-looking value "
                                 f"{dotted!r}: secret-dependent lookups "
                                 "outside block.py leak timing"),
                    ))
        return findings
