"""Secret-taint rule: key material may not flow to observable sinks.

The paper's security argument (and docs/SECURITY.md's) rests on key,
nonce, keystream and round-key material never leaving the cipher
core.  This rule checks that statically: values originating from
secret-named parameters (``key``, ``nonce``, ``iv``, ``keystream``,
``round_keys``...) or from :mod:`repro.crypto.rng` generator calls may
not reach

* exception messages (``raise X(f"bad key {key!r}")``),
* ``print``/``logging`` calls,
* trace span attributes and counters (``tracer.stage(..., key=key)``,
  ``span.annotate``),
* ``repr``/``str`` conversions that feed any of the above,
* file/socket writes outside the sanctioned seal paths.

Sanitizers break the flow: ``len``/``bool``/``type`` results are
clean, and so are the ``encrypt*``/``seal``/``protect`` families —
ciphertext is public by design.  Sources, sinks, and sanitizers live
in an injectable registry (``RepoContext.taint_registry``) so tests
run against synthetic ones.

Propagation is the engine's standard two-level scheme: one dataflow
pass per function computes a summary (which parameters flow to the
return value, whether the function's own result is secret), then a
fixed point over the call graph lets ``derive_round_keys(key)``'s
secret result taint its callers.  Sink checks run in a second pass
with the converged summaries plugged into :meth:`call_tags`.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.lint.callgraph import dotted_name, get_callgraph
from repro.lint.dataflow import ForwardAnalysis, Tags
from repro.lint.walker import Finding, RepoContext, Rule

__all__ = ["SecretTaintRule", "DEFAULT_TAINT"]

_SECRET = "secret"

DEFAULT_TAINT: dict = {
    # Parameter names (exact, after self/cls stripping) treated as
    # secret sources wherever they appear in src/repro.
    "source_params": [
        "key", "nonce", "iv", "keystream", "round_key", "round_keys",
        "master_key", "session_key", "passphrase", "secret",
    ],
    # Call targets whose *result* is secret (dotted-name globs).
    "source_calls": [
        "*.generate_iv", "*.generate_nonce", "*.ctr_keystream",
        "*.derive_round_keys", "*.expand_key", "*.key_schedule",
        "secrets.token_bytes", "os.urandom",
    ],
    # Call targets whose result is clean even over secret arguments.
    "sanitizers": [
        "len", "bool", "type", "id", "isinstance", "range",
        "*.encrypt", "*.encrypt_cbc", "*.encrypt_ctr", "*.cbc_encrypt",
        "*.ctr_xcrypt", "*.seal", "*.protect", "*.hex_digest",
        "*.sha256_digest",
    ],
    # Logging/diagnostic call targets: any secret positional or
    # keyword argument is a finding.
    "log_sinks": [
        "print", "logging.*", "*.logger.*", "log.*", "*.log",
        "warnings.warn",
    ],
    # Span/annotation calls: secret *keyword* values leak into trace
    # exports (the repo convention passes attrs as **kwargs).
    "span_sinks": [
        "*.stage", "*.span", "*.annotate", "*.count", "*.count_many",
    ],
    # Write-method tails flagged outside the allowed paths.
    "write_sinks": ["write", "write_bytes", "write_text", "sendall"],
    # Seal paths: modules allowed to write secret-derived bytes (the
    # container/integrity writers emit sealed material by design).
    "write_allowed": [
        "src/repro/core/container.py",
        "src/repro/core/integrity.py",
        "src/repro/crypto/*",
    ],
}


def _glob_any(name: str, patterns: list[str]) -> bool:
    return any(fnmatch(name, pattern) for pattern in patterns)


class _SummaryPass(ForwardAnalysis):
    """Per-function pass: seed every parameter with ``param:<name>``
    and secret sources with ``secret``; ``return_tags`` afterwards is
    the function's flow summary."""

    def __init__(self, fn, params, registry, summaries, resolve,
                 functions):
        seed = {}
        for param in params:
            tags = {f"param:{param}"}
            if param in registry["source_params"]:
                tags.add(_SECRET)
            seed[param] = frozenset(tags)
        super().__init__(fn, seed)
        self.registry = registry
        self.summaries = summaries
        self.resolve = resolve
        self.functions = functions

    def sanitizes(self, call: ast.Call) -> bool:
        dotted = dotted_name(call.func) or ""
        return _glob_any(dotted, self.registry["sanitizers"]) or _glob_any(
            dotted.rsplit(".", 1)[-1], self.registry["sanitizers"]
        )

    def call_tags(self, call: ast.Call, state) -> Tags:
        dotted = dotted_name(call.func) or ""
        if _glob_any(dotted, self.registry["source_calls"]):
            return frozenset((_SECRET,))
        callee = self.resolve(call.func)
        arg_tags: Tags = frozenset()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            arg_tags |= self.expr_tags(arg, state)
        if callee is None:
            # Unknown callee: assume it passes taint through (a str
            # join, a numpy reshape... all preserve the bytes).
            return arg_tags
        summary = self.summaries.get(callee, frozenset())
        out: set[str] = set()
        if _SECRET in summary:
            out.add(_SECRET)
        # Map "param:<name>" entries in the callee summary back to the
        # argument tags at this call site.
        params = self.callee_params(callee)
        for index, arg in enumerate(call.args):
            if index < len(params) and f"param:{params[index]}" in summary:
                out |= self.expr_tags(arg, state)
        for kw in call.keywords:
            if kw.arg and f"param:{kw.arg}" in summary:
                out |= self.expr_tags(kw.value, state)
        return frozenset(out)

    def callee_params(self, callee: str) -> list[str]:
        info = self.functions.get(callee)
        return info.params if info else []


class _SinkPass(_SummaryPass):
    """Second pass: same transfer, plus sink checks per statement."""

    def __init__(self, fn, params, registry, summaries, resolve,
                 functions, relpath, rule_name):
        super().__init__(fn, params, registry, summaries, resolve,
                         functions)
        self.relpath = relpath
        self.rule_name = rule_name
        self.findings: list[Finding] = []
        self._reported: set[tuple[int, str]] = set()

    def _flag(self, line: int, what: str) -> None:
        if (line, what) in self._reported:
            return
        self._reported.add((line, what))
        self.findings.append(Finding(
            path=self.relpath, line=line, rule=self.rule_name,
            message=f"secret-derived value reaches {what}",
        ))

    def visit_stmt(self, stmt: ast.stmt, state) -> None:
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            if isinstance(stmt.exc, ast.Call):
                for arg in list(stmt.exc.args) + [
                    kw.value for kw in stmt.exc.keywords
                ]:
                    if _SECRET in self.expr_tags(arg, state):
                        self._flag(stmt.lineno, "an exception message")

    def visit_expr(self, expr: ast.AST, state) -> None:
        if not isinstance(expr, ast.Call):
            return
        dotted = dotted_name(expr.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        all_args = list(expr.args) + [kw.value for kw in expr.keywords]
        if _glob_any(dotted, self.registry["log_sinks"]):
            if any(_SECRET in self.expr_tags(a, state) for a in all_args):
                self._flag(expr.lineno, f"a log call ({dotted})")
        if _glob_any(dotted, self.registry["span_sinks"]):
            for kw in expr.keywords:
                if _SECRET in self.expr_tags(kw.value, state):
                    self._flag(
                        expr.lineno,
                        f"a trace span attribute ({dotted}({kw.arg}=...))",
                    )
        if tail == "repr" or dotted == "repr":
            if any(_SECRET in self.expr_tags(a, state) for a in expr.args):
                self._flag(expr.lineno, "repr()")
        if tail in self.registry["write_sinks"] and not _glob_any(
            self.relpath, self.registry["write_allowed"]
        ):
            if any(_SECRET in self.expr_tags(a, state) for a in all_args):
                self._flag(
                    expr.lineno,
                    f"a file/socket write (.{tail}) outside the seal paths",
                )


class SecretTaintRule(Rule):
    name = "secret-taint"
    description = (
        "key/nonce/keystream material must not flow into logs, "
        "exception messages, trace span attrs, repr, or writes "
        "outside the seal paths"
    )

    def finalize(self, repo: RepoContext) -> list[Finding]:
        registry = repo.taint_registry or DEFAULT_TAINT
        graph = get_callgraph(repo)
        if not graph.functions:
            return []
        summaries = self._converge_summaries(graph, registry)
        findings: list[Finding] = []
        for qualname, info in sorted(graph.functions.items()):
            sink_pass = _SinkPass(
                info.node, info.params, registry, summaries,
                lambda func, _m=info.module, _o=info.owner: graph.resolve(
                    _m, _o, func
                ),
                graph.functions, info.relpath, self.name,
            )
            sink_pass.run()
            findings.extend(sink_pass.findings)
        return findings

    def _converge_summaries(self, graph, registry) -> dict[str, Tags]:
        summaries: dict[str, Tags] = {
            qualname: frozenset() for qualname in graph.functions
        }
        for _ in range(10):  # graphs this size converge in 2-3 rounds
            changed = False
            for qualname, info in graph.functions.items():
                summary_pass = _SummaryPass(
                    info.node, info.params, registry, summaries,
                    lambda func, _m=info.module, _o=info.owner:
                        graph.resolve(_m, _o, func),
                    graph.functions,
                )
                summary_pass.run()
                new = summary_pass.return_tags
                if new != summaries[qualname]:
                    summaries[qualname] = new
                    changed = True
            if not changed:
                break
        return summaries
