"""Span-name registry: traced span names must be documented.

Every span name opened under ``src/repro/{core,sz,crypto,parallel}``
(via ``tracer.span(...)``, ``tracer.stage(...)`` or a literal
``trace.Span(name=...)``) must appear in the docs/OBSERVABILITY.md
span-name registry, and every name pinned by the golden trace fixtures
under ``tests/data/traces/`` must be documented too.  A renamed span
otherwise silently breaks ``secz trace`` readers and the Fig. 7 /
Tables III-V stage keys.
"""

from __future__ import annotations

import ast

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["SpanRegistryRule"]

#: Packages whose spans are part of the documented pipeline surface
#: (imagecodec/multilevel keep their own private stage keys).
SPAN_PACKAGES = (
    "src/repro/core/",
    "src/repro/sz/",
    "src/repro/crypto/",
    "src/repro/parallel/",
    "src/repro/service/",
)
FULL_SCAN_PROXY = "src/repro/core/trace.py"


def _span_names(tree: ast.AST):
    """Yield ``(name, lineno)`` for every literal span-name in the file."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("span", "stage"):
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                yield node.args[0].value, node.lineno
        elif (isinstance(func, ast.Name) and func.id == "Span") or (
            isinstance(func, ast.Attribute) and func.attr == "Span"
        ):
            for kw in node.keywords:
                if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    yield kw.value.value, node.lineno


class SpanRegistryRule(Rule):
    name = "span-registry"
    description = (
        "span names under src/repro/{core,sz,crypto,parallel} must be in "
        "the docs/OBSERVABILITY.md span registry, as must every name "
        "pinned by the golden trace fixtures"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not ctx.relpath.startswith(SPAN_PACKAGES):
            return []
        findings = []
        for span_name, lineno in _span_names(ctx.tree):
            if span_name not in repo.documented_spans:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"span {span_name!r} is not in the "
                             "docs/OBSERVABILITY.md span-name registry"),
                ))
        return findings

    def finalize(self, repo: RepoContext) -> list[Finding]:
        if FULL_SCAN_PROXY not in repo.scanned:
            return []
        return [
            Finding(
                path="docs/OBSERVABILITY.md", line=0, rule=self.name,
                message=(f"golden-fixture span {span_name!r} "
                         "(tests/data/traces/) is not in the span-name "
                         "registry"),
            )
            for span_name in sorted(repo.fixture_spans - repo.documented_spans)
        ]
