"""Exception-contract rule: parse paths may only raise contract types.

PR 9's fuzzers found two parser holes *dynamically* — an ``IndexError``
from a Kraft-oversubscribed Huffman table and a ``KeyError`` from a
section-renaming flip — both violations of the documented contract
that untrusted-bytes entry points raise only ``ValueError`` subclasses
(``ArchiveCorrupt``, ``ProtocolError``, ``AuthenticationError``).
That bug class is statically decidable from raise/except structure, so
this rule decides it: for every function reachable from a registered
entry point it computes the set of *raw* exception types that may
escape and propagates them over the call graph to a fixed point.

Modelled raw raisers (beyond explicit ``raise`` statements):

* ``struct.Struct.unpack`` / ``struct.unpack`` on untrusted bytes →
  ``struct.error`` (short-buffer);
* ``.decode(...)`` on untrusted bytes → ``UnicodeDecodeError``;
* subscripting an untrusted value with a string key → ``KeyError``
  (the section-rename shape);
* subscripting an untrusted value with an untrusted, non-constant
  index → ``IndexError`` (the Kraft-table shape).

"Untrusted" is forward dataflow seeded from every parameter of every
reachable function — entry points receive attacker bytes and hand
derived values down the graph.  Guard heuristics keep the model
honest: a raiser enclosed in a ``try`` whose handler catches the type
(directly or via a base class) does not escape, a string-key subscript
is waived when the function membership-tests the same container, and
an index subscript is waived when the function length-checks the same
container.  Residual false positives are what ``.lint-baseline.json``
is for — triaged, not silenced.

The contract itself lives in an injectable registry
(``RepoContext.exception_contracts``) so tests run against synthetic
packages; see :data:`DEFAULT_CONTRACTS` for the real tree's entry
points, including the documented ``RuntimeError`` split for
``service.jobs``/``service.client`` (docs/SERVICE.md §error model).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.lint.callgraph import CallGraph, dotted_name, get_callgraph
from repro.lint.dataflow import ForwardAnalysis, Tags
from repro.lint.walker import Finding, RepoContext, Rule

__all__ = ["ExceptionContractRule", "DEFAULT_CONTRACTS"]

#: The real tree's contract.  ``entry_points`` are qualname globs;
#: ``allowed`` are the contractual escape types (plus their in-graph
#: subclasses, discovered through the call graph); ``raw`` are the
#: leak types the rule hunts.  ``service.jobs.TransitionError`` and
#: ``service.client.ServiceError`` intentionally derive from
#: ``RuntimeError`` — they signal *caller programming errors* and
#: *transport failures*, never untrusted-input shape — so they are
#: contractual for the service layer but must not surface from parse
#: entry points; the registry encodes that by listing them under
#: ``internal`` (allowed to exist, flagged if reachable from an
#: untrusted-bytes entry point's parse path is not required).
DEFAULT_CONTRACTS: dict = {
    "entry_points": [
        "repro.sz.huffman.deserialize_tree",
        "repro.sz.huffman.deserialize_lane_tree",
        "repro.sz.lz77.decompress",
        "repro.sz.lossless.decompress",
        "repro.core.container.parse_container",
        "repro.core.container.unpack_sections",
        "repro.core.integrity.verify_and_strip",
        "repro.core.schemes.*.unprotect",
        "repro.archive.store.ArchiveStore._load",
        "repro.archive.store.ArchiveStore._parse_index",
        "repro.archive.store._decode",
        "repro.service.protocol.unpack_header",
        "repro.service.protocol.unpack_submit",
    ],
    "allowed": [
        "ValueError",
        "ArchiveCorrupt",
        "ProtocolError",
        "AuthenticationError",
    ],
    # RuntimeError family: contractual for the service layer only
    # (documented in docs/SERVICE.md), never for parse entry points.
    "internal": ["ServiceError", "TransitionError", "JobPending"],
    "raw": ["KeyError", "IndexError", "struct.error", "UnicodeDecodeError"],
}

#: Handler types that catch each raw type (Python's own MRO).
_CATCHERS: dict[str, frozenset[str]] = {
    "KeyError": frozenset(
        ("KeyError", "LookupError", "Exception", "BaseException")
    ),
    "IndexError": frozenset(
        ("IndexError", "LookupError", "Exception", "BaseException")
    ),
    "struct.error": frozenset(
        ("struct.error", "error", "Exception", "BaseException")
    ),
    "UnicodeDecodeError": frozenset(
        ("UnicodeDecodeError", "UnicodeError", "ValueError",
         "Exception", "BaseException")
    ),
}

_UNTRUSTED = "untrusted"


def _matches(qualname: str, patterns: list[str]) -> bool:
    return any(
        fnmatch(qualname, pattern) or qualname.endswith("." + pattern)
        for pattern in patterns
    )


class _TaintMap(ForwardAnalysis):
    """Dataflow pass that records, per AST node, whether the values a
    raiser depends on were untrusted at that program point."""

    def __init__(self, fn, seed):
        super().__init__(fn, seed)
        #: id(node) -> True for Subscript/Call/Attribute nodes whose
        #: relevant operand carried the untrusted tag when reached.
        self.tainted_nodes: dict[int, bool] = {}

    def call_tags(self, call: ast.Call, state) -> Tags:
        # A call over untrusted arguments — or a method call on an
        # untrusted receiver (``blob.split``, ``buf.read``) — yields
        # untrusted data: the parse helpers all transform attacker
        # bytes into attacker structure.  Record the taint for the
        # raiser model too.
        tags: Tags = frozenset()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            tags |= self.expr_tags(arg, state)
        if isinstance(call.func, ast.Attribute):
            tags |= self.expr_tags(call.func.value, state)
        self.tainted_nodes[id(call)] = _UNTRUSTED in tags
        return tags

    def visit_expr(self, expr: ast.AST, state) -> None:
        if isinstance(expr, ast.Subscript):
            value_tags = self.expr_tags(expr.value, state)
            slice_tags = self.expr_tags(expr.slice, state)
            self.tainted_nodes[id(expr)] = (
                _UNTRUSTED in value_tags or _UNTRUSTED in slice_tags
            )
        elif isinstance(expr, ast.Call):
            tags: Tags = frozenset()
            for arg in list(expr.args) + [kw.value for kw in expr.keywords]:
                tags |= self.expr_tags(arg, state)
            if isinstance(expr.func, ast.Attribute):
                tags |= self.expr_tags(expr.func.value, state)
            self.tainted_nodes.setdefault(id(expr), _UNTRUSTED in tags)


def _guard_roots(fn: ast.AST) -> tuple[set[str], set[str]]:
    """(membership-tested roots, length-checked roots) in ``fn``.

    A container that the function membership-tests (``if k in d`` /
    ``k not in d``) is treated as KeyError-guarded; one whose length
    feeds a comparison (``if len(buf) < 9``) as IndexError-guarded.
    """
    membership: set[str] = set()
    length: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    root = _root_name(comparator)
                    if root:
                        membership.add(root)
            for side in [node.left, *node.comparators]:
                root = _len_arg_root(side)
                if root:
                    length.add(root)
        elif isinstance(node, ast.Call):
            # d.get(k) is the sanctioned KeyError-free access.
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"):
                root = _root_name(node.func.value)
                if root:
                    membership.add(root)
    return membership, length


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _unpack_buffer_root(call: ast.Call) -> str | None:
    """The buffer argument's root name for an unpack call.

    ``S.unpack(buf)`` / ``S.unpack_from(buf, off)`` take the buffer
    first; module-level ``struct.unpack(fmt, buf)`` takes the format
    string first — a literal/f-string first argument marks that form.
    """
    args = call.args
    if not args:
        return None
    first_is_format = isinstance(args[0], ast.JoinedStr) or (
        isinstance(args[0], ast.Constant) and isinstance(args[0].value, str)
    )
    index = 1 if first_is_format else 0
    return _root_name(args[index]) if len(args) > index else None


def _len_arg_root(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "len" and node.args):
        return _root_name(node.args[0])
    return None


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"BaseException"}
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: set[str] = set()
    for node in types:
        dotted = dotted_name(node)
        if dotted:
            names.add(dotted)
            names.add(dotted.rsplit(".", 1)[-1])
    return names


_LOOKUP_CATCHERS = frozenset(
    ("KeyError", "IndexError", "LookupError", "Exception", "BaseException")
)


def _is_caught(raw_type: str, handler_stack: list[set[str]]) -> bool:
    catchers = _CATCHERS.get(raw_type, frozenset((raw_type, "Exception",
                                                  "BaseException")))
    return any(names & catchers for names in handler_stack)


class _RaiseCollector:
    """Walk one function body tracking enclosing ``try`` handlers and
    collect uncaught raw raises plus uncaught call sites."""

    def __init__(self, rule: "ExceptionContractRule", info,
                 taint: _TaintMap, raw_types: list[str]) -> None:
        self.rule = rule
        self.info = info
        self.taint = taint
        self.raw_types = raw_types
        self.membership, self.length = _guard_roots(info.node)
        #: Call nodes resolved to in-graph functions: their bodies are
        #: analyzed directly, so the implicit-raiser name heuristics
        #: (``.decode`` → UnicodeDecodeError, ``unpack`` →
        #: struct.error) must not fire on them — ``huffman.decode`` is
        #: a Huffman decoder, not ``bytes.decode``.
        self.resolved_calls = {
            id(site.node) for site in info.calls if site.callee is not None
        }
        #: (raw type, line) locally raised and not caught.
        self.raises: set[tuple[str, int]] = set()
        #: (CallSite line, frozenset of handler-name sets) for
        #: propagation — a callee escape is filtered by the handlers
        #: active at its call site.
        self.call_guards: dict[int, list[set[str]]] = {}

    def collect(self) -> None:
        self._walk(self.info.node.body, [])

    def _record(self, raw_type: str, line: int,
                handler_stack: list[set[str]], *,
                lookup: bool = False) -> None:
        if raw_type not in self.raw_types:
            return
        if lookup:
            # Synthesized subscript risks: the model cannot tell a
            # dict from a sequence, so a handler for either lookup
            # error counts as having considered the failure.
            caught = any(
                names & _LOOKUP_CATCHERS for names in handler_stack
            )
        else:
            caught = _is_caught(raw_type, handler_stack)
        if not caught:
            self.raises.add((raw_type, line))

    def _walk(self, body: list[ast.stmt],
              handler_stack: list[set[str]]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                caught = set()
                for handler in stmt.handlers:
                    caught |= _handler_names(handler)
                self._walk(stmt.body, handler_stack + [caught])
                for handler in stmt.handlers:
                    self._walk(handler.body, handler_stack)
                self._walk(stmt.orelse, handler_stack)
                self._walk(stmt.finalbody, handler_stack)
                continue
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                target = stmt.exc
                if isinstance(target, ast.Call):
                    target = target.func
                dotted = dotted_name(target)
                if dotted:
                    self._record(dotted, stmt.lineno, handler_stack)
            # Expressions attached directly to this statement (the
            # nested statement lists recurse below, so nothing is
            # scanned twice or under the wrong handler stack).
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, handler_stack)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, handler_stack)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list):
                    self._walk(sub, handler_stack)

    def _scan_expr(self, expr: ast.AST,
                   handler_stack: list[set[str]]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node, handler_stack)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                self._visit_subscript(node, handler_stack)

    def _visit_call(self, node: ast.Call,
                    handler_stack: list[set[str]]) -> None:
        dotted = dotted_name(node.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        tainted = (
            self.taint.tainted_nodes.get(id(node), False)
            and id(node) not in self.resolved_calls
        )
        if tail in ("unpack", "unpack_from") and tainted:
            # A function that length-checks the buffer it unpacks has
            # done its contract homework; one that doesn't is exactly
            # the short-read hole this rule exists for.
            buffer_root = _unpack_buffer_root(node)
            if buffer_root is None or buffer_root not in self.length:
                self._record("struct.error", node.lineno, handler_stack)
        elif tail == "decode" and tainted and isinstance(
            node.func, ast.Attribute
        ):
            self._record("UnicodeDecodeError", node.lineno, handler_stack)
        # Record handler context for summary propagation.
        self.call_guards.setdefault(node.lineno, []).extend(
            set(s) for s in handler_stack
        )

    def _visit_subscript(self, node: ast.Subscript,
                         handler_stack: list[set[str]]) -> None:
        if not self.taint.tainted_nodes.get(id(node), False):
            return
        root = _root_name(node.value)
        guarded = root in self.membership or root in self.length
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if not guarded:
                self._record("KeyError", node.lineno, handler_stack,
                             lookup=True)
        elif not isinstance(key, (ast.Constant, ast.Slice)):
            if not guarded:
                self._record("IndexError", node.lineno, handler_stack,
                             lookup=True)


class ExceptionContractRule(Rule):
    name = "exception-contract"
    description = (
        "untrusted-bytes parse entry points may only let contractual "
        "error types escape (ValueError subclasses: ArchiveCorrupt, "
        "ProtocolError, AuthenticationError); reachable raw KeyError/"
        "IndexError/struct.error/UnicodeDecodeError are findings"
    )

    def finalize(self, repo: RepoContext) -> list[Finding]:
        contracts = repo.exception_contracts or DEFAULT_CONTRACTS
        graph = get_callgraph(repo)
        entries = [
            qualname for qualname in graph.functions
            if _matches(qualname, contracts["entry_points"])
        ]
        if not entries:
            return []
        reachable = self._reachable(graph, entries)
        raw_types = list(contracts["raw"])
        local: dict[str, _RaiseCollector] = {}
        for qualname in reachable:
            info = graph.functions[qualname]
            taint = _TaintMap(
                info.node,
                {param: frozenset((_UNTRUSTED,)) for param in info.params},
            )
            taint.run()
            collector = _RaiseCollector(self, info, taint, raw_types)
            collector.collect()
            local[qualname] = collector
        escapes = self._fixed_point(graph, reachable, local)
        return self._report(graph, entries, escapes, contracts)

    # -- analysis ------------------------------------------------------

    def _reachable(self, graph: CallGraph, entries: list[str]) -> set[str]:
        seen: set[str] = set()
        stack = list(entries)
        while stack:
            qualname = stack.pop()
            if qualname in seen or qualname not in graph.functions:
                continue
            seen.add(qualname)
            for site in graph.functions[qualname].calls:
                if site.callee is not None:
                    stack.append(site.callee)
        return seen

    def _fixed_point(
        self, graph: CallGraph, reachable: set[str],
        local: dict[str, _RaiseCollector],
    ) -> dict[str, set[tuple[str, str, int]]]:
        """qualname -> {(raw type, origin relpath, origin line)}."""
        escapes: dict[str, set[tuple[str, str, int]]] = {
            qualname: {
                (raw, graph.functions[qualname].relpath, line)
                for raw, line in collector.raises
            }
            for qualname, collector in local.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in reachable:
                info = graph.functions[qualname]
                collector = local[qualname]
                for site in info.calls:
                    if site.callee is None or site.callee not in escapes:
                        continue
                    guards = collector.call_guards.get(site.line, [])
                    for escape in escapes[site.callee]:
                        raw = escape[0]
                        if _is_caught(raw, guards):
                            continue
                        if escape not in escapes[qualname]:
                            escapes[qualname].add(escape)
                            changed = True
        return escapes

    def _report(
        self, graph: CallGraph, entries: list[str],
        escapes: dict[str, set[tuple[str, str, int]]], contracts: dict,
    ) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for entry in sorted(entries):
            for raw, relpath, line in sorted(escapes.get(entry, ())):
                key = (relpath, line, raw)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    path=relpath, line=line, rule=self.name,
                    message=(
                        f"raw {raw} can escape untrusted-bytes entry "
                        f"point {entry}; contract allows only "
                        + "/".join(contracts["allowed"])
                    ),
                ))
        return findings
