"""Lock-discipline rule: guarded module state stays guarded.

The codebase now has real concurrency — the CTR keystream prefetcher,
service workers, and the process-wide codec cache all touch shared
state from multiple threads — and "every access holds the right lock"
was a reviewed-by-hand invariant until this rule.  Two checks:

1. **Declared state is dominated by its lock.**  The registry
   (``RepoContext.lock_registry``) maps a module relpath to
   ``{state_name: lock_name}``; every load or store of a declared
   name inside a function body must sit under a ``with <lock_name>:``
   ancestor in that function.  Module-level initialisation is exempt
   (it happens before threads exist), as is the guard expression
   itself.

2. **Undeclared module-level mutable state.**  A module-level
   ``dict``/``list``/``set``/``OrderedDict``/``defaultdict`` binding
   that any function in the module mutates (subscript-store, ``del``,
   or a mutating method call) without appearing in the registry is a
   finding — shared mutable state must either be declared with its
   guarding lock or rewritten to not be shared.

The default registry covers the two real guarded stores: the Huffman
codec cache and the trace counters.  ALL-CAPS names are treated as
constants and skipped.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import dotted_name
from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["LockDisciplineRule", "DEFAULT_LOCKS"]

#: module relpath -> {module-level state name: guarding lock name}.
DEFAULT_LOCKS: dict[str, dict[str, str]] = {
    "src/repro/sz/huffman.py": {"_codec_cache": "_codec_cache_lock"},
    "src/repro/core/trace.py": {"_counters": "_counters_lock"},
}

_MUTABLE_CTORS = ("dict", "list", "set", "OrderedDict", "defaultdict",
                  "deque", "Counter")
_MUTATORS = frozenset((
    "append", "extend", "add", "update", "pop", "popitem", "clear",
    "remove", "discard", "insert", "setdefault", "move_to_end",
    "appendleft", "popleft",
))


def _is_mutable_init(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func) or ""
        return dotted.rsplit(".", 1)[-1] in _MUTABLE_CTORS
    return False


def _module_level_names(tree: ast.Module):
    """Yield ``(name, value-node, lineno)`` for module-level bindings."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value, node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value, node.lineno


class _AccessWalker:
    """Walk a function body tracking the stack of held ``with`` locks."""

    def __init__(self, guarded: dict[str, str]) -> None:
        self.guarded = guarded
        #: (state name, lineno, lock name) for unguarded accesses.
        self.violations: list[tuple[str, int, str]] = []
        #: state names mutated anywhere in the function.
        self.mutated: set[str] = set()

    def walk(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._walk_body(fn.body, set())

    def _locks_in(self, stmt: ast.With | ast.AsyncWith) -> set[str]:
        names = set()
        for item in stmt.items:
            dotted = dotted_name(item.context_expr)
            if dotted:
                names.add(dotted)
        return names

    def _walk_body(self, body: list[ast.stmt], held: set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held | self._locks_in(stmt)
                for item in stmt.items:
                    self._scan_expr(item.context_expr, held)
                self._walk_body(stmt.body, inner)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, held)
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name):
                        self.mutated.add(root.id)
                        self._check(root.id, stmt.lineno, held)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list):
                    self._walk_body(sub, held)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._walk_body(handler.body, held)

    def _scan_expr(self, expr: ast.AST, held: set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                self._check(node.id, node.lineno, held)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self.mutated.add(node.id)
        # Mutating method calls and subscript stores count as writes.
        for node in ast.walk(expr):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)):
                self.mutated.add(node.func.value.id)
            elif (isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(node.value, ast.Name)):
                self.mutated.add(node.value.id)

    def _check(self, name: str, lineno: int, held: set[str]) -> None:
        lock = self.guarded.get(name)
        if lock is not None and lock not in held:
            self.violations.append((name, lineno, lock))


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "module-level mutable state must be declared with its "
        "guarding lock, and every access must sit under that lock's "
        "with-block"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not ctx.relpath.startswith("src/"):
            return []
        registry = repo.lock_registry or DEFAULT_LOCKS
        guarded = registry.get(ctx.relpath, {})
        module_names = {
            name: (value, lineno)
            for name, value, lineno in _module_level_names(ctx.tree)
        }
        findings: list[Finding] = []
        for state_name, lock_name in sorted(guarded.items()):
            if state_name not in module_names:
                findings.append(Finding(
                    path=ctx.relpath, line=0, rule=self.name,
                    message=(f"registry declares guarded state "
                             f"{state_name!r} but the module does not "
                             "define it"),
                ))
            if lock_name not in module_names:
                findings.append(Finding(
                    path=ctx.relpath, line=0, rule=self.name,
                    message=(f"registry declares lock {lock_name!r} for "
                             f"{state_name!r} but the module does not "
                             "define it"),
                ))
        mutated: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _AccessWalker(guarded)
            walker.walk(node)
            mutated |= walker.mutated
            for state_name, lineno, lock_name in walker.violations:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"access to {state_name!r} is not under "
                             f"'with {lock_name}:'"),
                ))
        # Undeclared module-level mutable state mutated from functions.
        for name, (value, lineno) in sorted(module_names.items()):
            if name in guarded or name.isupper() or not _is_mutable_init(
                value
            ):
                continue
            if name in mutated:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"module-level mutable state {name!r} is "
                             "mutated by functions but has no declared "
                             "guarding lock in the lock registry"),
                ))
        return findings
