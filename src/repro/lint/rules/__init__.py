"""The rule registry for ``secz lint``.

Every rule ships as a :class:`repro.lint.walker.Rule` subclass in one
of the modules below and is listed in :data:`ALL_RULES`.  Adding a
rule is three steps (docs/LINTING.md walks through them): write the
class, register it here, add a passing + failing fixture pair under
``tests/lint/fixtures/``.
"""

from __future__ import annotations

from repro.lint.rules.contracts import ExceptionContractRule
from repro.lint.rules.counters import CounterRegistryRule
from repro.lint.rules.crypto import CryptoHygieneRule
from repro.lint.rules.dtype import DtypeDisciplineRule
from repro.lint.rules.formats import FormatSpecRule
from repro.lint.rules.hygiene import (
    AssertStmtRule,
    BareExceptRule,
    MutableDefaultRule,
    UnusedImportRule,
)
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.spans import SpanRegistryRule
from repro.lint.rules.taint import SecretTaintRule
from repro.lint.walker import Rule

__all__ = ["ALL_RULES", "get_rules", "rule_names"]

#: Every shipped rule class, in reporting order.
ALL_RULES: tuple[type[Rule], ...] = (
    CounterRegistryRule,
    SpanRegistryRule,
    FormatSpecRule,
    CryptoHygieneRule,
    DtypeDisciplineRule,
    BareExceptRule,
    MutableDefaultRule,
    AssertStmtRule,
    UnusedImportRule,
    ExceptionContractRule,
    SecretTaintRule,
    LockDisciplineRule,
)


def rule_names() -> list[str]:
    return [cls.name for cls in ALL_RULES]


def get_rules(
    enable: list[str] | None = None,
    disable: list[str] | None = None,
) -> list[Rule]:
    """Instantiate the selected rules.

    ``enable`` (when given) restricts the set to exactly those names;
    ``disable`` then removes names from whatever is selected.  Unknown
    names raise ``ValueError`` so typos fail loudly instead of
    silently linting nothing.
    """
    known = {cls.name: cls for cls in ALL_RULES}
    for name in (enable or []) + (disable or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r} (known: {', '.join(sorted(known))})"
            )
    selected = list(enable) if enable else list(known)
    dropped = set(disable or [])
    return [known[name]() for name in selected if name not in dropped]
