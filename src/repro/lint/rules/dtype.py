"""Dtype discipline on the hot allocation paths.

``np.zeros`` / ``np.empty`` / ``np.arange`` default to ``float64`` /
platform ``intp``, so an allocation without an explicit ``dtype=``
either doubles the working set or makes the wire format
platform-dependent.  The hot SZ modules (huffman, bitstream,
fastdecode, quantizer) must always say what they allocate.
"""

from __future__ import annotations

import ast

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["DtypeDisciplineRule"]

#: The allocation-heavy modules whose buffers feed the wire format.
HOT_MODULES = frozenset({
    "src/repro/sz/huffman.py",
    "src/repro/sz/bitstream.py",
    "src/repro/sz/fastdecode.py",
    "src/repro/sz/quantizer.py",
})
_ALLOCATORS = ("zeros", "empty", "arange")
#: zeros/empty take dtype as the second positional; arange's extra
#: positionals are stop/step, so only the keyword counts there.
_POSITIONAL_DTYPE_OK = ("zeros", "empty")


class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "np.zeros/np.empty/np.arange in the hot SZ modules must pass "
        "an explicit dtype="
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if ctx.relpath not in HOT_MODULES:
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _ALLOCATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if func.attr in _POSITIONAL_DTYPE_OK and len(node.args) >= 2:
                continue
            findings.append(Finding(
                path=ctx.relpath, line=node.lineno, rule=self.name,
                message=(f"np.{func.attr} without explicit dtype= on a "
                         "hot path (defaults are float64/platform intp)"),
            ))
        return findings
