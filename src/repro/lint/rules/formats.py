"""Format-spec sync: wire-format constants must match docs/FORMAT.md.

The byte-level spec in docs/FORMAT.md is normative: readers in other
languages are written against it.  This rule cross-checks the two
artifacts that define each layout in code — four-byte magic constants
(``MAGIC = b"SECZ"`` and friends) and literal ``struct`` format
strings — against the strings quoted in the spec, in the modules the
spec documents.  Every format must also be explicit little-endian
(``<``): a bare format string would silently follow native alignment.
"""

from __future__ import annotations

import ast

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["FormatSpecRule"]

#: The modules docs/FORMAT.md documents.  Formats elsewhere (e.g. the
#: imagecodec experiments) are not part of the frozen wire surface.
FORMAT_MODULES = frozenset({
    "src/repro/core/container.py",
    "src/repro/core/integrity.py",
    "src/repro/sz/compressor.py",
    "src/repro/sz/bitstream.py",
    "src/repro/sz/huffman.py",
    "src/repro/sz/ieee754.py",
    "src/repro/sz/intcodec.py",
    "src/repro/sz/lz77.py",
    "src/repro/parallel/chunked.py",
    "src/repro/parallel/filestream.py",
    "src/repro/archive/legacy.py",
    "src/repro/archive/store.py",
    "src/repro/service/protocol.py",
})
_STRUCT_FUNCS = (
    "Struct", "pack", "unpack", "pack_into", "unpack_from", "calcsize",
)


def _struct_literals(tree: ast.AST):
    """Yield ``(format_string, lineno)`` for literal struct formats.

    f-string formats (``f"<{ndim}Q"``) carry runtime-sized arrays and
    are out of scope — the spec documents them as patterns, not
    constants.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _STRUCT_FUNCS
                and isinstance(func.value, ast.Name)
                and func.value.id == "struct"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            yield node.args[0].value, node.lineno


def _magic_literals(tree: ast.AST):
    """Yield ``(ascii_magic, lineno)`` from ``*MAGIC* = b"...."``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and "MAGIC" in t.id
                   for t in node.targets):
            continue
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, bytes) \
                and len(value.value) == 4:
            try:
                yield value.value.decode("ascii"), node.lineno
            except UnicodeDecodeError:
                yield repr(value.value), node.lineno


class FormatSpecRule(Rule):
    name = "format-spec"
    description = (
        "magic bytes and struct format strings in the wire-format "
        "modules must match the strings quoted in docs/FORMAT.md"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if ctx.relpath not in FORMAT_MODULES:
            return []
        findings = []
        seen_structs = repo.state.setdefault("formats-structs", set())
        seen_magics = repo.state.setdefault("formats-magics", set())
        for fmt, lineno in _struct_literals(ctx.tree):
            if not fmt.startswith("<"):
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"struct format {fmt!r} must be explicit "
                             "little-endian ('<...')"),
                ))
                continue
            body = fmt[1:]
            seen_structs.add(body)
            if body not in repo.documented_structs:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"struct format {fmt!r} is not documented "
                             "in docs/FORMAT.md"),
                ))
        for magic, lineno in _magic_literals(ctx.tree):
            seen_magics.add(magic)
            if magic not in repo.documented_magics:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"magic {magic!r} is not documented in "
                             "docs/FORMAT.md"),
                ))
        return findings

    def finalize(self, repo: RepoContext) -> list[Finding]:
        if not FORMAT_MODULES <= repo.scanned:
            return []
        findings = []
        seen_structs = repo.state.get("formats-structs", set())
        seen_magics = repo.state.get("formats-magics", set())
        for body in sorted(repo.documented_structs - seen_structs):
            findings.append(Finding(
                path="docs/FORMAT.md", line=0, rule=self.name,
                message=(f"documented struct format '<{body}' is not "
                         "defined by any wire-format module"),
            ))
        for magic in sorted(repo.documented_magics - seen_magics):
            findings.append(Finding(
                path="docs/FORMAT.md", line=0, rule=self.name,
                message=(f"documented magic {magic!r} is not defined by "
                         "any wire-format module"),
            ))
        return findings
