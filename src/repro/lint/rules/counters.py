"""Counter-registry sync: code, registry and docs must agree.

Every counter key literal passed to the :mod:`repro.core.trace`
counting APIs (``trace.count`` / ``trace.count_many``) inside ``src/``
must exist in ``trace.KNOWN_COUNTERS`` *and* in the
docs/OBSERVABILITY.md registry table — and, on a full-tree scan, every
registry entry must be documented and incremented somewhere.  This is
the invariant ROADMAP.md states as "registry + docs table must move
together", previously enforced only by review.
"""

from __future__ import annotations

import ast

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = ["CounterRegistryRule"]

#: The file whose presence in a scan marks it as a full-tree scan;
#: repo-wide "vice versa" checks are meaningless on partial scans.
REGISTRY_FILE = "src/repro/core/trace.py"
_COUNT_FUNCS = ("count", "count_many")


def _counter_calls(ctx: FileContext):
    """Yield ``(key_literal, lineno)`` for every counting-API call."""
    bare_names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "repro.core.trace":
            bare_names.update(
                alias.asname or alias.name
                for alias in node.names
                if alias.name in _COUNT_FUNCS
            )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if not (isinstance(func.value, ast.Name)
                    and func.value.id == "trace"
                    and func.attr in _COUNT_FUNCS):
                continue
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in bare_names:
            name = func.id
        else:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if name == "count":
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                yield first.value, node.lineno
        elif isinstance(first, ast.Dict):
            for key in first.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield key.value, key.lineno


class CounterRegistryRule(Rule):
    name = "counter-registry"
    description = (
        "counter keys passed to trace.count/count_many must exist in "
        "trace.KNOWN_COUNTERS and the docs/OBSERVABILITY.md table "
        "(and, on full scans, vice versa)"
    )

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not ctx.relpath.startswith("src/"):
            return []
        used = repo.state.setdefault("counters-used", set())
        findings = []
        for key, lineno in _counter_calls(ctx):
            used.add(key)
            if key not in repo.known_counters:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=f"counter {key!r} is not in trace.KNOWN_COUNTERS",
                ))
            if key not in repo.documented_counters:
                findings.append(Finding(
                    path=ctx.relpath, line=lineno, rule=self.name,
                    message=(f"counter {key!r} is missing from the "
                             "docs/OBSERVABILITY.md registry table"),
                ))
        return findings

    def finalize(self, repo: RepoContext) -> list[Finding]:
        if REGISTRY_FILE not in repo.scanned:
            return []
        used = repo.state.get("counters-used", set())
        findings = []
        for key in sorted(repo.known_counters - repo.documented_counters):
            findings.append(Finding(
                path="docs/OBSERVABILITY.md", line=0, rule=self.name,
                message=(f"registry counter {key!r} is missing from the "
                         "docs/OBSERVABILITY.md registry table"),
            ))
        for key in sorted(repo.documented_counters - repo.known_counters):
            findings.append(Finding(
                path="docs/OBSERVABILITY.md", line=0, rule=self.name,
                message=(f"documented counter {key!r} is not in "
                         "trace.KNOWN_COUNTERS"),
            ))
        for key in sorted(repo.known_counters - set(used)):
            findings.append(Finding(
                path=REGISTRY_FILE, line=0, rule=self.name,
                message=(f"registry counter {key!r} is never incremented "
                         "anywhere in src/"),
            ))
        return findings
