"""General hygiene rules for library code under ``src/``.

Four small rules, each independently addressable by pragma or
``--disable``:

* ``bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch something narrower (or ``Exception``).
* ``mutable-default`` — a list/dict/set default is shared across
  calls; use ``None`` and allocate inside.
* ``assert-stmt`` — ``assert`` is stripped under ``python -O``;
  runtime validation must ``raise``.
* ``unused-import`` — an import nobody references.

They apply only below ``src/`` — tests may assert and monkeypatch as
they please.
"""

from __future__ import annotations

import ast

from repro.lint.walker import FileContext, Finding, RepoContext, Rule

__all__ = [
    "BareExceptRule",
    "MutableDefaultRule",
    "AssertStmtRule",
    "UnusedImportRule",
]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = ("list", "dict", "set", "bytearray")


def _in_scope(ctx: FileContext) -> bool:
    return ctx.relpath.startswith("src/")


class BareExceptRule(Rule):
    name = "bare-except"
    description = "except: without an exception type in src/"

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not _in_scope(ctx):
            return []
        return [
            Finding(
                path=ctx.relpath, line=node.lineno, rule=self.name,
                message=("bare except: catches KeyboardInterrupt/"
                         "SystemExit; catch a specific exception"),
            )
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]


class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = "mutable default argument values in src/"

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not _in_scope(ctx):
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    findings.append(Finding(
                        path=ctx.relpath, line=default.lineno, rule=self.name,
                        message=(f"mutable default in {node.name}(): the "
                                 "object is shared across calls; default "
                                 "to None and allocate inside"),
                    ))
        return findings


class AssertStmtRule(Rule):
    name = "assert-stmt"
    description = "assert used for runtime validation in src/"

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not _in_scope(ctx):
            return []
        return [
            Finding(
                path=ctx.relpath, line=node.lineno, rule=self.name,
                message=("assert is stripped under python -O; raise "
                         "ValueError/TypeError for runtime validation"),
            )
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Assert)
        ]


def _string_annotation_names(tree: ast.AST) -> set[str]:
    """Names referenced inside quoted annotations (`x: "Foo | None"`)."""
    annotations: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                        args.vararg, args.kwarg):
                if arg is not None and arg.annotation is not None:
                    annotations.append(arg.annotation)
            if node.returns is not None:
                annotations.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
    names: set[str] = set()
    for annotation in annotations:
        if not (isinstance(annotation, ast.Constant)
                and isinstance(annotation.value, str)):
            continue
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            continue
        names.update(
            sub.id for sub in ast.walk(parsed) if isinstance(sub, ast.Name)
        )
    return names


class UnusedImportRule(Rule):
    name = "unused-import"
    description = "imports never referenced in the file (src/ only)"

    def check(self, ctx: FileContext, repo: RepoContext) -> list[Finding]:
        if not _in_scope(ctx):
            return []
        if ctx.path.name == "__init__.py":
            return []  # package __init__ imports are the public surface
        bindings: list[tuple[str, int]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bindings.append((name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings.append((alias.asname or alias.name, node.lineno))
        if not bindings:
            return []
        used = {
            node.id for node in ast.walk(ctx.tree) if isinstance(node, ast.Name)
        }
        used.update(_string_annotation_names(ctx.tree))
        exported: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ) and isinstance(node.value, (ast.List, ast.Tuple)):
                exported.update(
                    el.value for el in node.value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                )
        return [
            Finding(
                path=ctx.relpath, line=lineno, rule=self.name,
                message=f"import {name!r} is never used",
            )
            for name, lineno in bindings
            if name not in used and name not in exported
        ]
