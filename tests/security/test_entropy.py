"""Shannon entropy helpers."""

import numpy as np
import pytest

from repro.security.entropy import local_entropy_profile, shannon_entropy


class TestShannonEntropy:
    def test_constant_stream_zero(self):
        assert shannon_entropy(b"\x00" * 1000) == 0.0

    def test_uniform_stream_eight(self):
        data = bytes(range(256)) * 16
        assert shannon_entropy(data) == pytest.approx(8.0)

    def test_two_symbols_one_bit(self):
        assert shannon_entropy(b"\x00\xff" * 500) == pytest.approx(1.0)

    def test_random_near_eight(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=100_000, dtype=np.uint8)
        assert shannon_entropy(data) > 7.99

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            shannon_entropy(b"")

    def test_encryption_raises_entropy(self, key):
        """Paper Sec. V-E: AES output entropy approaches the maximum 8."""
        from repro.crypto.aes import AES128
        structured = (b"scientific data! " * 4000)
        enc = AES128(key).encrypt_cbc(structured, iv=bytes(16))
        assert shannon_entropy(structured) < 5.0
        assert shannon_entropy(enc.ciphertext) > 7.9


class TestLocalProfile:
    def test_profile_length(self):
        data = bytes(10_000)
        profile = local_entropy_profile(data, block_bytes=1024)
        assert len(profile) == 10  # 9 full + 1 partial >= 256 bytes

    def test_locates_encrypted_region(self, key):
        from repro.crypto.aes import AES128
        low = b"\x11" * 8192
        high = AES128(key).encrypt_cbc(b"\x11" * 8192, iv=bytes(16))
        profile = local_entropy_profile(low + high.ciphertext,
                                        block_bytes=4096)
        assert profile[0] < 1.0
        assert profile[-1] > 7.5

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            local_entropy_profile(bytes(1000), block_bytes=16)
