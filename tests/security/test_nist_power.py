"""Statistical power: each SP800-22 test must actually *catch* the
defect family it was designed for (a suite that never fails is as
broken as one that never passes)."""

import math

import numpy as np
import pytest

from repro.security.nist.bits import bytes_to_bits
from repro.security.nist.tests_basic import (
    block_frequency_test,
    cumulative_sums_test,
    longest_run_test,
)
from repro.security.nist.tests_complexity import linear_complexity_test
from repro.security.nist.tests_entropy import (
    approximate_entropy_test,
    serial_test,
)
from repro.security.nist.tests_excursions import (
    random_excursions_test,
    random_excursions_variant_test,
)
from repro.security.nist.tests_matrix import binary_matrix_rank_test
from repro.security.nist.tests_spectral import dft_test
from repro.security.nist.tests_universal import universal_test


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(97)


class TestDefectDetection:
    def test_block_frequency_catches_drifting_bias(self, rng):
        # Balanced overall, but biased block-by-block.
        blocks = []
        for i in range(200):
            p = 0.4 if i % 2 == 0 else 0.6
            blocks.append((rng.random(128) < p).astype(np.uint8))
        bits = np.concatenate(blocks)
        assert block_frequency_test(bits) < 0.01

    def test_longest_run_catches_clustered_ones(self, rng):
        bits = rng.integers(0, 2, size=100_000).astype(np.uint8)
        # Plant long runs of ones.
        for pos in range(0, bits.size - 30, 1000):
            bits[pos : pos + 25] = 1
        assert longest_run_test(bits) < 0.01

    def test_cusum_catches_slow_drift(self, rng):
        p = np.linspace(0.47, 0.53, 50_000)
        bits = (rng.random(50_000) < p).astype(np.uint8)
        assert cumulative_sums_test(bits) < 0.01

    def test_matrix_rank_catches_linear_structure(self):
        # Repeating 32-bit rows make every matrix rank-deficient.
        row = np.random.default_rng(5).integers(0, 2, 32).astype(np.uint8)
        bits = np.tile(row, 40 * 32)
        assert binary_matrix_rank_test(bits) < 0.01

    def test_dft_catches_periodicity(self, rng):
        bits = rng.integers(0, 2, size=60_000).astype(np.uint8)
        # Superimpose a strong periodic component.
        bits[::8] = 1
        assert dft_test(bits) < 0.01

    def test_universal_catches_compressible(self, rng):
        # Highly repetitive data has short match distances.
        chunk = rng.integers(0, 2, size=64).astype(np.uint8)
        bits = np.tile(chunk, 8000)  # 512k bits, above the L=6 minimum
        p = universal_test(bits)
        assert not math.isnan(p)
        assert p < 0.01

    def test_linear_complexity_catches_lfsr(self):
        # A short LFSR's output has constant, tiny linear complexity.
        state = [1, 0, 0, 1, 1]
        seq = []
        for _ in range(120_000):
            seq.append(state[-1])
            state = [state[0] ^ state[4]] + state[:-1]
        bits = np.array(seq, dtype=np.uint8)
        assert linear_complexity_test(bits) < 0.01

    def test_serial_catches_pair_bias(self, rng):
        # Markov chain favouring repeats: pair frequencies skew.
        n = 60_000
        bits = np.empty(n, dtype=np.uint8)
        bits[0] = 0
        stay = rng.random(n) < 0.6
        for i in range(1, n):
            bits[i] = bits[i - 1] if stay[i] else 1 - bits[i - 1]
        assert serial_test(bits) < 0.01
        assert approximate_entropy_test(bits) < 0.01

    def test_excursions_need_enough_cycles(self, rng):
        # A strongly biased walk rarely returns to zero -> N/A, not a
        # bogus verdict.
        bits = (rng.random(50_000) < 0.65).astype(np.uint8)
        assert math.isnan(random_excursions_test(bits))
        assert math.isnan(random_excursions_variant_test(bits))

    def test_excursions_pass_on_true_random(self, rng):
        bits = rng.integers(0, 2, size=2_000_000).astype(np.uint8)
        p1 = random_excursions_test(bits)
        p2 = random_excursions_variant_test(bits)
        for p in (p1, p2):
            assert math.isnan(p) or p >= 0.01


class TestCiphertextPasses:
    def test_aes_ctr_keystream_passes_core_tests(self, key):
        from repro.crypto.keyschedule import expand_key
        from repro.crypto.modes import ctr_keystream

        ks = ctr_keystream(expand_key(key), b"\x07" * 8, 100_000)
        bits = bytes_to_bits(ks.tobytes())
        assert block_frequency_test(bits) >= 0.01
        assert serial_test(bits) >= 0.01
        assert dft_test(bits) >= 0.01
        assert binary_matrix_rank_test(bits) >= 0.01
