"""Bit-flip corruption harness."""

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.security.attacks import FlipOutcome, bit_flip_study, flip_bit


class TestFlipBit:
    def test_flips_exactly_one_bit(self):
        blob = bytes(16)
        out = flip_bit(blob, 0)
        assert out[0] == 0x80
        assert out[1:] == blob[1:]

    def test_msb_first_indexing(self):
        out = flip_bit(bytes(2), 15)
        assert out == b"\x00\x01"

    def test_involution(self):
        blob = bytes(range(32))
        assert flip_bit(flip_bit(blob, 100), 100) == blob

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(bytes(4), 32)
        with pytest.raises(ValueError):
            flip_bit(bytes(4), -1)


class TestOutcome:
    def test_rejects_unknown_label(self):
        with pytest.raises(ValueError):
            FlipOutcome(0, "fine_probably", 0.0)


class TestStudy:
    def test_flips_are_mostly_not_harmless(self, smooth_field, key):
        """The paper's motivation: lossy-compressed streams are fragile
        — a single flipped bit usually breaks decoding or the bound."""
        sc = SecureCompressor("none", 1e-3)
        outcomes = bit_flip_study(
            sc, smooth_field, n_flips=48, rng=np.random.default_rng(1)
        )
        assert len(outcomes) == 48
        harmful = sum(o.outcome != "harmless" for o in outcomes)
        assert harmful > len(outcomes) // 2

    def test_encrypted_container_also_fragile(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key)
        outcomes = bit_flip_study(
            sc, smooth_field, n_flips=24, rng=np.random.default_rng(2)
        )
        assert any(o.outcome == "decode_error" for o in outcomes)

    def test_outcome_fields(self, smooth_field, key):
        sc = SecureCompressor("none", 1e-3)
        for outcome in bit_flip_study(sc, smooth_field, n_flips=8,
                                      rng=np.random.default_rng(3)):
            assert 0 <= outcome.bit_index
            assert outcome.outcome in (
                "decode_error", "bound_violated", "silent_corruption",
                "harmless",
            )
