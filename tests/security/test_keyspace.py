"""Key-space / brute-force cost models (Sec. V-G numbers)."""

import math

import pytest

from repro.security.keyspace import (
    PAPER_TEST_RATE,
    BruteForceModel,
    biclique_complexity,
    huffman_tree_guess_space,
)


class TestBruteForceModel:
    def test_keyspace(self):
        assert BruteForceModel(8).keyspace == 256.0

    def test_paper_order_of_magnitude(self):
        """Sec. V-G: ~3.7e10 years at 22e19 enc/s.  The exact constant
        depends on rounding; require the same order of magnitude for
        the full 2^128 sweep."""
        model = BruteForceModel(128, PAPER_TEST_RATE)
        years = model.years_worst_case()
        assert 1e10 < years < 1e11

    def test_effective_64bit_space_is_breakable(self):
        """The paper's ref. [63] 2^64 effective space falls in under a
        second at the quoted rate — worth showing explicitly."""
        model = BruteForceModel(64, PAPER_TEST_RATE)
        assert model.seconds_worst_case() < 1.0

    def test_expected_is_half_worst(self):
        model = BruteForceModel(40)
        assert model.seconds_expected() == pytest.approx(
            model.seconds_worst_case() / 2
        )

    def test_infeasibility(self):
        assert BruteForceModel(128).is_infeasible()
        assert not BruteForceModel(24).is_infeasible()

    def test_validation(self):
        with pytest.raises(ValueError):
            BruteForceModel(0)
        with pytest.raises(ValueError):
            BruteForceModel(128, 0)


class TestBiclique:
    def test_aes128(self):
        assert biclique_complexity(128) == 126.1

    def test_still_infeasible(self):
        model = BruteForceModel(biclique_complexity(128), PAPER_TEST_RATE)
        assert model.is_infeasible()

    def test_unknown_width(self):
        with pytest.raises(ValueError):
            biclique_complexity(512)


class TestHuffmanGuessSpace:
    def test_grows_with_alphabet(self):
        assert huffman_tree_guess_space(1000) > huffman_tree_guess_space(10)

    def test_large_alphabet_exceeds_key_space(self):
        # With thousands of symbols, guessing the code profile is
        # already beyond 2^128 work — the NP-hardness claim's flavor.
        assert huffman_tree_guess_space(5000) > 128

    def test_validation(self):
        with pytest.raises(ValueError):
            huffman_tree_guess_space(0)
