"""Template machinery of the SP800-22 non-overlapping test."""

import math

import numpy as np
import pytest

from repro.security.nist.tests_template import (
    DEFAULT_TEMPLATE,
    aperiodic_templates,
    non_overlapping_multi_template_test,
    non_overlapping_template_test,
    overlapping_template_test,
)


class TestAperiodicTemplates:
    def test_m9_has_148_templates(self):
        # The count the reference suite's template file carries.
        assert len(aperiodic_templates(9)) == 148

    def test_small_m_counts(self):
        assert len(aperiodic_templates(2)) == 2
        assert len(aperiodic_templates(3)) == 4
        assert len(aperiodic_templates(4)) == 6

    def test_all_are_aperiodic(self):
        for template in aperiodic_templates(5):
            m = len(template)
            for k in range(1, m):
                assert template[: m - k] != template[k:], template

    def test_periodic_excluded(self):
        # 101010101 is periodic with shift 2 -> must not appear.
        assert (1, 0, 1, 0, 1, 0, 1, 0, 1) not in aperiodic_templates(9)
        assert (1,) * 9 not in aperiodic_templates(9)

    def test_default_template_is_aperiodic(self):
        assert DEFAULT_TEMPLATE in aperiodic_templates(9)

    def test_limit(self):
        assert len(aperiodic_templates(9, limit=5)) == 5

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            aperiodic_templates(1)
        with pytest.raises(ValueError):
            aperiodic_templates(20)


class TestMultiTemplate:
    def test_random_passes_most(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=200_000).astype(np.uint8)
        results = non_overlapping_multi_template_test(bits, max_templates=16)
        assert len(results) == 16
        ps = [p for p in results.values() if not math.isnan(p)]
        passing = sum(p >= 0.01 for p in ps)
        assert passing >= len(ps) - 1

    def test_planted_pattern_fails_its_template(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=120_000).astype(np.uint8)
        template = (0, 0, 0, 0, 0, 0, 0, 0, 1)
        # Plant the template far more often than chance.
        tmpl = np.array(template, dtype=np.uint8)
        for pos in range(0, bits.size - 9, 500):
            bits[pos : pos + 9] = tmpl
        p = non_overlapping_template_test(bits, template)
        assert p < 0.01


class TestOverlappingTemplate:
    def test_random_passes(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=200_000).astype(np.uint8)
        assert overlapping_template_test(bits) >= 0.01

    def test_ones_heavy_fails(self):
        rng = np.random.default_rng(6)
        bits = (rng.random(200_000) < 0.7).astype(np.uint8)
        assert overlapping_template_test(bits) < 0.01

    def test_short_input_not_applicable(self):
        assert math.isnan(
            overlapping_template_test(np.ones(5_000, dtype=np.uint8))
        )
