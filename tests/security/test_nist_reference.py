"""Individual SP800-22 tests against the published reference examples
(NIST SP800-22 rev. 1a worked examples) and structural sanity checks."""

import numpy as np
import pytest

from repro.security.nist.tests_basic import (
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)

#: The 100-bit binary expansion of pi used by several spec examples.
PI_100 = np.array(
    [int(c) for c in
     "11001001000011111101101010100010001000010110100011"
     "00001000110100110001001100011001100010100010111000"],
    dtype=np.uint8,
)

#: SP800-22 Sec. 2.4.8 example input (n = 128).
LONGEST_RUN_128 = np.array(
    [int(c) for c in
     "11001100000101010110110001001100111000000000001001"
     "00110101010001000100111101011010000000110101111100"
     "1100111001101101100010110010"],
    dtype=np.uint8,
)


class TestReferenceValues:
    def test_frequency_pi_example(self):
        assert frequency_test(PI_100) == pytest.approx(0.109599, abs=1e-5)

    def test_runs_pi_example(self):
        assert runs_test(PI_100) == pytest.approx(0.500798, abs=1e-5)

    def test_cusum_pi_example(self):
        # Spec: forward 0.219194, reverse 0.114866; we report the min.
        assert cumulative_sums_test(PI_100) == pytest.approx(0.114866, abs=1e-5)

    def test_longest_run_example(self):
        # The spec's published 0.180609 rounds the class probabilities
        # to four digits; we match to ~1e-4.
        assert longest_run_test(LONGEST_RUN_128) == pytest.approx(
            0.180609, abs=5e-4
        )


class TestApplicabilityGates:
    def test_short_streams_not_applicable(self):
        short = np.ones(50, dtype=np.uint8)
        assert np.isnan(frequency_test(short))
        assert np.isnan(runs_test(short))
        assert np.isnan(longest_run_test(np.ones(100, dtype=np.uint8)))

    def test_biased_stream_fails_frequency(self):
        bits = np.zeros(1000, dtype=np.uint8)
        bits[:100] = 1  # 10% ones
        assert frequency_test(bits) < 0.01

    def test_runs_pretest_short_circuits(self):
        bits = np.zeros(1000, dtype=np.uint8)
        assert runs_test(bits) == 0.0

    def test_alternating_fails_runs(self):
        bits = np.tile(np.array([0, 1], dtype=np.uint8), 500)
        assert runs_test(bits) < 0.01
