"""The full suite driver: known-random input passes, structured input
fails, and the split protocol behaves like the paper's."""

import math

import numpy as np
import pytest

from repro.security.nist import (
    ALPHA,
    TEST_NAMES,
    run_all_tests,
    run_suite,
)


@pytest.fixture(scope="module")
def random_bytes():
    # Note: any fixed seed has a ~1% per-test false-fail rate by design
    # (ALPHA = 0.01); this seed is one that passes all 15.
    return np.random.default_rng(42).integers(
        0, 256, size=150_000, dtype=np.uint8
    ).tobytes()


class TestRunAllTests:
    def test_all_fifteen_present(self, random_bytes):
        from repro.security.nist.bits import bytes_to_bits
        res = run_all_tests(bytes_to_bits(random_bytes))
        assert set(res) == set(TEST_NAMES)
        assert len(TEST_NAMES) == 15

    def test_random_passes_everything(self, random_bytes):
        from repro.security.nist.bits import bytes_to_bits
        res = run_all_tests(bytes_to_bits(random_bytes))
        for name, p in res.items():
            assert math.isnan(p) or p >= ALPHA, f"{name} failed on RNG data"

    def test_constant_fails_badly(self):
        from repro.security.nist.bits import bytes_to_bits
        res = run_all_tests(bytes_to_bits(b"\x00" * 20_000))
        applicable = {k: v for k, v in res.items() if not math.isnan(v)}
        failing = sum(1 for v in applicable.values() if v < ALPHA)
        assert failing >= len(applicable) - 2

    def test_periodic_fails_spectral_and_serial(self):
        from repro.security.nist.bits import bytes_to_bits
        res = run_all_tests(bytes_to_bits(b"\xaa\x55" * 10_000))
        assert res["serial"] < ALPHA
        assert res["approximate_entropy"] < ALPHA


class TestRunSuite:
    def test_random_all_pass(self, random_bytes):
        result = run_suite(random_bytes, n_streams=4)
        assert result.all_pass
        rates = result.pass_rates()
        for name, rate in rates.items():
            assert math.isnan(rate) or rate == 1.0, name

    def test_stream_splitting(self, random_bytes):
        result = run_suite(random_bytes, n_streams=12)
        assert result.n_streams == 12
        assert result.stream_bits == (len(random_bytes) * 8) // 12
        for ps in result.p_values.values():
            assert len(ps) == 12

    def test_pass_rate_granularity(self):
        """Rates are k/n_streams — the paper's 58.33% = 7/12 shape."""
        rng = np.random.default_rng(0)
        # Half-random, half-constant: some streams fail.
        blob = rng.integers(0, 256, 60_000, dtype=np.uint8).tobytes()
        blob += b"\x00" * 60_000
        result = run_suite(blob, n_streams=12,
                           tests=("frequency", "runs"))
        rate = result.pass_rate("frequency")
        assert abs(rate * 12 - round(rate * 12)) < 1e-9
        assert rate <= 0.5 + 1e-9

    def test_subset_of_tests(self, random_bytes):
        result = run_suite(random_bytes, n_streams=2,
                           tests=("frequency", "serial"))
        assert set(result.p_values) == {"frequency", "serial"}

    def test_unknown_test_rejected(self, random_bytes):
        with pytest.raises(ValueError, match="unknown tests"):
            run_suite(random_bytes, tests=("chi_by_eye",))

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            run_suite(b"x", n_streams=12)

    def test_format_table(self, random_bytes):
        result = run_suite(random_bytes, n_streams=2,
                           tests=("frequency",))
        table = result.format_table()
        assert "Statistical test" in table
        assert "frequency" in table
        assert "100.00%" in table


class TestCiphertextVsPlainStream:
    def test_aes_output_random_compressed_not(self, key):
        """The paper's core randomness claim: Cmpr-Encr output passes,
        plain compressed output does not."""
        from repro.core.pipeline import SecureCompressor
        from repro.datasets import generate

        data = generate("q2", size="small")
        encrypted = SecureCompressor(
            "cmpr_encr", 1e-5, key=key,
            random_state=np.random.default_rng(11),
        ).compress(data).container
        plain = SecureCompressor("none", 1e-5).compress(data).container
        tests = ("frequency", "runs", "block_frequency", "serial",
                 "approximate_entropy")
        enc_res = run_suite(encrypted, n_streams=4, tests=tests)
        plain_res = run_suite(plain, n_streams=4, tests=tests)
        enc_rates = [r for r in enc_res.pass_rates().values()
                     if not math.isnan(r)]
        plain_rates = [r for r in plain_res.pass_rates().values()
                       if not math.isnan(r)]
        assert np.mean(enc_rates) > np.mean(plain_rates)
        assert np.mean(enc_rates) == 1.0
