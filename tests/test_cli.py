"""The ``secz`` command-line interface."""

import numpy as np
import pytest

from repro import cli
from repro.datasets import generate, save_field


@pytest.fixture()
def q2_bin(tmp_path):
    path = tmp_path / "q2.bin"
    save_field(path, generate("q2", size="tiny"))
    return str(path)


class TestCompressDecompress:
    def test_roundtrip_bin(self, q2_bin, tmp_path, capsys):
        out = str(tmp_path / "q2.secz")
        restored = str(tmp_path / "q2.npy")
        assert cli.main([
            "compress", q2_bin, out, "--shape", "11,56,56",
            "--eb", "1e-4", "--passphrase", "pw",
        ]) == 0
        assert cli.main([
            "decompress", out, restored, "--passphrase", "pw",
        ]) == 0
        data = generate("q2", size="tiny")
        back = np.load(restored)
        assert np.max(np.abs(back.astype(np.float64) - data)) <= 1e-4
        assert "CR" in capsys.readouterr().out

    def test_roundtrip_npy(self, tmp_path):
        data = np.linspace(0, 1, 512, dtype=np.float32).reshape(8, 8, 8)
        src = tmp_path / "in.npy"
        np.save(src, data)
        out = str(tmp_path / "x.secz")
        back = str(tmp_path / "back.npy")
        key = "00112233445566778899aabbccddeeff"
        assert cli.main(["compress", str(src), out, "--key-hex", key]) == 0
        assert cli.main(["decompress", out, back, "--key-hex", key]) == 0
        assert np.max(np.abs(np.load(back) - data)) <= 1e-3

    def test_scheme_none_needs_no_key(self, q2_bin, tmp_path):
        out = str(tmp_path / "q2.secz")
        assert cli.main([
            "compress", q2_bin, out, "--shape", "11,56,56",
            "--scheme", "none",
        ]) == 0
        assert cli.main(["decompress", out, str(tmp_path / "o.npy")]) == 0

    def test_missing_shape_for_bin(self, q2_bin, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["compress", q2_bin, str(tmp_path / "x"),
                      "--passphrase", "pw"])

    def test_bad_key_hex(self, q2_bin, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["compress", q2_bin, str(tmp_path / "x"),
                      "--shape", "11,56,56", "--key-hex", "abcd"])


class TestInspect:
    def test_inspect_output(self, q2_bin, tmp_path, capsys):
        out = str(tmp_path / "q2.secz")
        cli.main(["compress", q2_bin, out, "--shape", "11,56,56",
                  "--passphrase", "pw"])
        capsys.readouterr()
        assert cli.main(["inspect", out]) == 0
        text = capsys.readouterr().out
        assert "scheme:      encr_huffman" in text
        assert "cipher mode: cbc" in text


class TestNistCommand:
    def test_random_file_passes(self, tmp_path, capsys):
        path = tmp_path / "rand.bin"
        path.write_bytes(
            np.random.default_rng(42).integers(
                0, 256, 150_000, dtype=np.uint8
            ).tobytes()
        )
        rc = cli.main(["nist", str(path), "--streams", "2"])
        assert rc == 0
        assert "frequency" in capsys.readouterr().out

    def test_structured_file_fails(self, tmp_path, capsys):
        path = tmp_path / "zeros.bin"
        path.write_bytes(bytes(100_000))
        assert cli.main(["nist", str(path), "--streams", "2"]) == 1


class TestDatasets:
    def test_listing(self, capsys):
        assert cli.main(["datasets", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("cloudf48", "nyx", "qi"):
            assert name in out

    def test_write(self, tmp_path, capsys):
        assert cli.main(["datasets", "--size", "tiny",
                         "--write", str(tmp_path)]) == 0
        assert (tmp_path / "nyx.bin").exists()


class TestParser:
    def test_shape_parsing(self):
        assert cli._parse_shape("2,3,4") == (2, 3, 4)
        with pytest.raises(Exception):
            cli._parse_shape("2,x")
        with pytest.raises(Exception):
            cli._parse_shape("0,1")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestAdvise:
    def test_advise_output(self, q2_bin, capsys):
        assert cli.main(["advise", q2_bin, "--shape", "11,56,56",
                         "--eb", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "recommended scheme:" in out
        assert "predictable fraction" in out

    def test_advise_randomness_forces_cmpr_encr(self, q2_bin, capsys):
        assert cli.main(["advise", q2_bin, "--shape", "11,56,56",
                         "--randomness"]) == 0
        assert "cmpr_encr" in capsys.readouterr().out


class TestImageCommands:
    def test_image_roundtrip(self, tmp_path, capsys):
        from repro.imagecodec import ImageCodec, synthetic_image

        img = synthetic_image("scene", 64)
        src = tmp_path / "img.npy"
        np.save(src, img)
        out = str(tmp_path / "img.secz")
        back = str(tmp_path / "back.npy")
        assert cli.main(["img-compress", str(src), out,
                         "--quality", "80", "--passphrase", "pw"]) == 0
        assert cli.main(["img-decompress", out, back,
                         "--quality", "80", "--passphrase", "pw"]) == 0
        restored = np.load(back)
        codec = ImageCodec(80)
        sections, _ = codec.encode(img)
        assert np.array_equal(restored, codec.decode(sections))


class TestInspectAuthenticated:
    def test_inspect_shows_tag(self, tmp_path, capsys):
        from repro.core.pipeline import SecureCompressor

        data = np.linspace(0, 1, 512, dtype=np.float32)
        sc = SecureCompressor("encr_huffman", 1e-3, key=bytes(16),
                              authenticate=True)
        path = tmp_path / "a.secz"
        path.write_bytes(sc.compress(data).container)
        assert cli.main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "authenticated: yes" in out


class TestTrace:
    def test_synthetic_roundtrip_writes_valid_schema(self, tmp_path, capsys):
        """Acceptance: `secz trace` output validates against the
        documented repro-trace/1 schema."""
        import json

        from repro.core import trace

        out = tmp_path / "t.trace.json"
        chrome = tmp_path / "t.chrome.json"
        assert cli.main([
            "trace", "--synthetic", "t", "--size", "tiny",
            "--scheme", "encr_huffman", "--eb", "1e-4",
            "--json", str(out), "--chrome", str(chrome),
        ]) == 0
        text = capsys.readouterr().out
        assert "compress" in text and "counters:" in text

        doc = trace.validate(json.loads(out.read_text()))
        names = [root["name"] for root in doc["roots"]]
        assert names == ["compress", "decompress"]
        assert doc["counters"]["aes.blocks_encrypted"] > 0

        events = json.loads(chrome.read_text())["traceEvents"]
        assert all(ev["ph"] == "X" for ev in events)

    def test_file_input_no_decompress(self, tmp_path):
        import json

        src = tmp_path / "f.npy"
        np.save(src, np.linspace(0, 1, 4096, dtype=np.float32))
        out = tmp_path / "f.trace.json"
        assert cli.main([
            "trace", str(src), "--scheme", "none", "--eb", "1e-3",
            "--no-decompress", "--json", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert [r["name"] for r in doc["roots"]] == ["compress"]

    def test_rejects_both_or_neither_input(self, tmp_path, q2_bin):
        with pytest.raises(SystemExit):
            cli.main(["trace"])
        with pytest.raises(SystemExit):
            cli.main(["trace", q2_bin, "--synthetic", "t"])
