"""Multilevel split/merge transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multilevel import transform


class TestSplitMerge:
    def test_roundtrip_1d_even(self):
        u = np.arange(16, dtype=np.float64)
        coarse, detail = transform.split_axis(u, 0)
        assert coarse.shape == (8,)
        assert detail.shape == (8,)
        assert np.allclose(transform.merge_axis(coarse, detail, 0), u)

    def test_roundtrip_1d_odd(self):
        u = np.arange(17, dtype=np.float64)
        coarse, detail = transform.split_axis(u, 0)
        assert coarse.shape == (9,)
        assert detail.shape == (8,)
        assert np.allclose(transform.merge_axis(coarse, detail, 0), u)

    def test_linear_signal_zero_detail(self):
        # Linear interpolation predicts a linear ramp exactly.
        u = np.linspace(0.0, 10.0, 32)
        _, detail = transform.split_axis(u, 0)
        assert np.abs(detail[:-1]).max() < 1e-12

    def test_roundtrip_multiaxis(self):
        rng = np.random.default_rng(0)
        u = rng.random((9, 12, 7))
        for axis in range(3):
            coarse, detail = transform.split_axis(u, axis)
            assert np.allclose(transform.merge_axis(coarse, detail, axis), u)

    def test_interpolation_nonexpansive(self):
        # Perturbing coarse by <= e perturbs the merge by <= e at every
        # reconstructed point (the error-budget cornerstone).
        rng = np.random.default_rng(1)
        u = rng.random(64)
        coarse, detail = transform.split_axis(u, 0)
        e = 1e-3
        noise = rng.uniform(-e, e, coarse.shape)
        perturbed = transform.merge_axis(coarse + noise, detail, 0)
        clean = transform.merge_axis(coarse, detail, 0)
        assert np.abs(perturbed - clean).max() <= e + 1e-12

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 80),
           ndim=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, n, ndim):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(2, max(3, n // ndim + 2), size=ndim))
        u = rng.standard_normal(shape)
        axis = int(rng.integers(0, ndim))
        coarse, detail = transform.split_axis(u, axis)
        assert np.allclose(transform.merge_axis(coarse, detail, axis), u,
                           atol=1e-12)


class TestPlanLevels:
    def test_large_cube(self):
        assert transform.plan_levels((64, 64, 64)) == 4

    def test_small_axis_limits(self):
        assert transform.plan_levels((4, 64, 64)) == 0
        assert transform.plan_levels((8, 64, 64)) == 1

    def test_max_levels_cap(self):
        assert transform.plan_levels((1 << 12,), max_levels=3) == 3

    def test_1d(self):
        assert transform.plan_levels((32,)) == 3
