"""MGARD-like multilevel codec: bound guarantee, sections, schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate
from repro.multilevel import MultilevelCodec, SecureMultilevelCompressor


def _max_err(a, b):
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


class TestBound:
    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-5])
    def test_smooth_field(self, smooth_field, eb):
        codec = MultilevelCodec(eb)
        sections, _ = codec.encode(smooth_field)
        assert _max_err(codec.decode(sections), smooth_field) <= eb

    def test_noisy_field(self, noisy_field):
        codec = MultilevelCodec(1e-3)
        sections, _ = codec.encode(noisy_field)
        assert _max_err(codec.decode(sections), noisy_field) <= 1e-3

    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_dimensionalities(self, rng, ndim):
        shape = (33, 17, 9, 6)[:ndim]
        data = rng.standard_normal(shape).astype(np.float32)
        codec = MultilevelCodec(1e-3)
        sections, _ = codec.encode(data)
        out = codec.decode(sections)
        assert out.shape == data.shape
        assert _max_err(out, data) <= 1e-3

    def test_float64(self, rng):
        data = rng.standard_normal((20, 20))
        codec = MultilevelCodec(1e-10)
        sections, _ = codec.encode(data)
        out = codec.decode(sections)
        assert out.dtype == np.float64
        assert _max_err(out, data) <= 1e-10

    def test_sub_resolution_bound_rejected(self):
        data = (2.0e4 + np.arange(64, dtype=np.float32)).reshape(8, 8)
        with pytest.raises(ValueError, match="resolution"):
            MultilevelCodec(1e-5).encode(data)

    def test_odd_shapes(self, rng):
        data = rng.standard_normal((13, 21, 9)).astype(np.float32)
        codec = MultilevelCodec(1e-2)
        sections, _ = codec.encode(data)
        assert _max_err(codec.decode(sections), data) <= 1e-2

    @given(seed=st.integers(0, 2**32 - 1),
           eb=st.sampled_from([1e-1, 1e-2, 1e-4]))
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, seed, eb):
        gen = np.random.default_rng(seed)
        shape = tuple(gen.integers(2, 24, size=int(gen.integers(1, 4))))
        data = gen.standard_normal(shape).astype(np.float32)
        codec = MultilevelCodec(eb)
        sections, _ = codec.encode(data)
        out = codec.decode(sections)
        assert out.shape == data.shape
        assert _max_err(out, data) <= eb


class TestStructure:
    def test_sections_scheme_compatible(self, smooth_field):
        sections, _ = MultilevelCodec(1e-3).encode(smooth_field)
        assert set(sections) == {
            "meta", "tree", "codes", "unpred", "coeffs", "exact", "aux"
        }

    def test_stats(self, smooth_field):
        _, stats = MultilevelCodec(1e-3).encode(smooth_field)
        assert stats.shape == smooth_field.shape
        assert stats.levels >= 1
        assert stats.n_details > 0
        assert 0.0 <= stats.tree_fraction_of_quant <= 1.0

    def test_multilevel_beats_flat_on_smooth(self, smooth_field):
        """The decomposition's reason to exist: smooth data costs far
        fewer bits than a 0-level flat quantization."""
        full = MultilevelCodec(1e-4)
        flat = MultilevelCodec(1e-4, max_levels=0)
        s_full, _ = full.encode(smooth_field)
        s_flat, _ = flat.encode(smooth_field)
        import zlib
        from repro.core.container import pack_sections
        z_full = len(zlib.compress(pack_sections(s_full)))
        z_flat = len(zlib.compress(pack_sections(s_flat)))
        assert z_full < z_flat

    def test_rejects_bad_input(self):
        codec = MultilevelCodec(1e-3)
        with pytest.raises(TypeError):
            codec.encode(np.zeros(8, dtype=np.int32))
        with pytest.raises(ValueError):
            codec.encode(np.zeros((2,) * 5, dtype=np.float32))
        with pytest.raises(ValueError):
            MultilevelCodec(0.0)

    def test_meta_corruption(self, smooth_field):
        codec = MultilevelCodec(1e-3)
        sections, _ = codec.encode(smooth_field)
        bad = dict(sections)
        bad["meta"] = b"XXXX" + sections["meta"][4:]
        with pytest.raises(ValueError, match="magic"):
            codec.decode(bad)
        short = dict(sections)
        short["unpred"] = sections["unpred"][:12]
        with pytest.raises(ValueError):
            codec.decode(short)


class TestSecurePipeline:
    @pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                        "encr_huffman"])
    def test_schemes(self, scheme, smooth_field, key):
        smc = SecureMultilevelCompressor(scheme, 1e-3, key=key)
        out = smc.decompress(smc.compress(smooth_field))
        assert _max_err(out, smooth_field) <= 1e-3
        assert smc.last_stats is not None

    def test_wrong_key(self, smooth_field, key):
        writer = SecureMultilevelCompressor("encr_huffman", 1e-3, key=key)
        blob = writer.compress(smooth_field)
        reader = SecureMultilevelCompressor("encr_huffman", 1e-3,
                                            key=bytes(16))
        with pytest.raises(ValueError):
            out = reader.decompress(blob)
            if _max_err(out, smooth_field) <= 1e-3:
                raise AssertionError("wrong key decoded the field")

    def test_authenticated(self, smooth_field, key):
        smc = SecureMultilevelCompressor("encr_huffman", 1e-3, key=key,
                                         authenticate=True)
        blob = smc.compress(smooth_field)
        assert _max_err(smc.decompress(blob), smooth_field) <= 1e-3
        tampered = bytearray(blob)
        tampered[10] ^= 1
        with pytest.raises(ValueError):
            smc.decompress(bytes(tampered))

    def test_encr_quant_collapse_transfers(self, key):
        """The paper's Encr-Quant caveat holds for the third codec."""
        data = generate("q2", size="tiny")
        sizes = {}
        for scheme in ("none", "encr_quant", "encr_huffman"):
            smc = SecureMultilevelCompressor(
                scheme, 1e-3, key=key if scheme != "none" else None
            )
            sizes[scheme] = len(smc.compress(data))
        assert sizes["encr_quant"] > 1.3 * sizes["none"]
        assert sizes["encr_huffman"] <= sizes["none"] + 64
