"""The bench harness's modeled-AES timing machinery."""

import numpy as np
import pytest

from repro.bench.harness import (
    MODEL_AES_SZ_RATIO,
    aes_calibration,
    dataset_cache,
    measure_overhead_paired,
    measure_scheme,
    model_aes_mb_s,
    sz_calibration,
)


class TestCalibration:
    def test_sz_rate_positive(self):
        assert sz_calibration() > 0.0

    def test_model_rate_is_ratio(self):
        assert model_aes_mb_s() == pytest.approx(
            MODEL_AES_SZ_RATIO * sz_calibration()
        )

    def test_aes_calibration_sane(self):
        enc, dec = aes_calibration()
        assert enc > 0 and dec > 0
        # The batched decrypt path is faster than sequential encrypt.
        assert dec > enc

    def test_calibrations_cached(self):
        assert sz_calibration() == sz_calibration()
        assert aes_calibration() == aes_calibration()


class TestModeledTimings:
    @pytest.fixture(scope="class")
    def measurement(self, key):
        data = dataset_cache("q2", size="tiny")
        return measure_scheme(data, "cmpr_encr", 1e-4, repeats=2, key=key)

    def test_modeled_encrypt_much_smaller_than_measured(self, measurement):
        measured = measurement.compress_times.seconds["encrypt"]
        assert 0 < measurement.modeled_encrypt_seconds() < measured

    def test_modeled_total_consistent(self, measurement):
        expected = (
            measurement.t_compress
            - measurement.compress_times.seconds["encrypt"]
            + measurement.modeled_encrypt_seconds()
        )
        assert measurement.t_compress_modeled == pytest.approx(expected)

    def test_modeled_bandwidth_not_below_measured(self, measurement):
        assert measurement.compress_bw_modeled >= measurement.compress_bw

    def test_none_scheme_model_is_identity(self):
        data = dataset_cache("q2", size="tiny")
        m = measure_scheme(data, "none", 1e-3, repeats=1)
        assert m.modeled_encrypt_seconds() == 0.0
        assert m.t_compress_modeled == pytest.approx(m.t_compress)


class TestPairedOverhead:
    def test_none_vs_none_is_100(self):
        data = np.asarray(dataset_cache("q2", size="tiny"))
        overhead = measure_overhead_paired(data, "none", 1e-3, repeats=3)
        assert overhead == pytest.approx(100.0, abs=2.0)

    def test_cmpr_encr_above_100(self):
        data = np.asarray(dataset_cache("nyx", size="tiny"))
        # The signal (modeled encrypt, ~1.7 % of base) is close to the
        # per-repeat deflate timing noise (sigma ~2 %), so a median of
        # few repeats flakes below 100; 15 repeats pin the median.
        overhead = measure_overhead_paired(data, "cmpr_encr", 1e-7,
                                           repeats=15)
        assert 100.0 < overhead < 115.0

    def test_rejects_bad_repeats(self):
        data = np.asarray(dataset_cache("q2", size="tiny"))
        with pytest.raises(ValueError):
            measure_overhead_paired(data, "none", 1e-3, repeats=0)
