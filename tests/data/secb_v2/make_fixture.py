"""Regenerate the SECB v2 golden fixture (archive.secb + manifest).

Run from the repo root::

    PYTHONPATH=src python tests/data/secb_v2/make_fixture.py

Everything is seeded (CBC IVs included), so the archive bytes are
reproducible; the manifest pins the archive digest, the plaintext
digests of every entry, and the dedup bookkeeping the tests assert.
"""

import hashlib
import json
import os

import numpy as np

from repro.archive import ArchiveStore

HERE = os.path.dirname(os.path.abspath(__file__))
KEY = bytes(range(16))


def payloads():
    log = b"".join(
        b"2026-08-08T12:%02d:%02d INFO worker-%d step=%d loss=%.4f\n"
        % (i // 60 % 60, i % 60, i % 8, i, 1.0 / (i + 1))
        for i in range(400)
    )
    shard = np.random.default_rng(99).integers(
        0, 256, 20_000, dtype=np.uint8
    ).tobytes()
    field = (
        np.sin(np.linspace(0, 6.0, 2048, dtype=np.float32))
        .reshape(32, 64)
        .astype(np.float32)
    )
    return log, shard, field


def build(path):
    log, shard, field = payloads()
    store = ArchiveStore.create(
        path,
        key=KEY,
        cipher_mode="cbc",
        random_state=np.random.default_rng(42),
        chunk_bits=10,
        min_chunk=256,
        max_chunk=4096,
    )
    store.add_bytes("run.log", log, codec="lz77h")
    store.add_bytes("shard-0", shard, codec="zlib")
    store.add_bytes("shard-1", shard, codec="zlib")  # store-once dedup
    store.add_field("temperature", field, scheme="encr_huffman",
                    error_bound=1e-3)
    return store, log, shard, field


def main():
    path = os.path.join(HERE, "archive.secb")
    if os.path.exists(path):
        os.remove(path)
    store, log, shard, field = build(path)
    with open(path, "rb") as fh:
        blob = fh.read()
    manifest = {
        "archive_sha256": hashlib.sha256(blob).hexdigest(),
        "key_hex": KEY.hex(),
        "cipher_mode": "cbc",
        "chunk_params": {"chunk_bits": 10, "min_chunk": 256,
                         "max_chunk": 4096},
        "stats": store.stats(),
        "entries": {
            "run.log": {
                "kind": "raw", "codec": "lz77h",
                "sha256": hashlib.sha256(log).hexdigest(),
            },
            "shard-0": {
                "kind": "raw", "codec": "zlib",
                "sha256": hashlib.sha256(shard).hexdigest(),
            },
            "shard-1": {
                "kind": "raw", "codec": "zlib",
                "sha256": hashlib.sha256(shard).hexdigest(),
            },
            "temperature": {
                "kind": "field", "scheme": "encr_huffman",
                "error_bound": 1e-3,
                "shape": list(field.shape),
                "dtype": str(field.dtype),
                "decoded_sha256": hashlib.sha256(
                    store.extract_field("temperature").tobytes()
                ).hexdigest(),
            },
        },
    }
    with open(os.path.join(HERE, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path} ({len(blob)} bytes)")
    print(f"archive_sha256 = {manifest['archive_sha256']}")


if __name__ == "__main__":
    main()
