"""Cross-module integration scenarios: the full secure-archive workflow
the paper motivates, across schemes, datasets and configurations."""

import math

import numpy as np
import pytest

from repro import AES128, ErrorBound, SecureCompressor, recommend_scheme
from repro.core.metrics import max_abs_error, normalized_cr
from repro.datasets import generate
from repro.security.entropy import shannon_entropy
from repro.security.nist import run_suite


def _roundtrip(scheme, data, eb, key, **kw):
    sc = SecureCompressor(scheme=scheme, error_bound=eb, key=key, **kw)
    result = sc.compress(data)
    out = sc.decompress(result.container)
    return result, out


class TestPaperHeadlineClaims:
    """The qualitative results the paper's abstract promises, verified
    end-to-end on the synthetic datasets."""

    def test_encr_huffman_retains_99_percent_cr(self, key):
        """Abstract: "Encr-Huffman is able to maintain more than 99% of
        the original compression ratio".

        At the tiny test scale the *fixed* per-container cost (CBC
        padding + zlib wrapper, a few dozen bytes) can be ~1 % of a
        highly-compressed stream, so the assertion allows for that
        constant on top of the paper's 99 % proportional claim.
        """
        for name in ("cloudf48", "q2", "nyx", "t"):
            data = generate(name, size="tiny")
            base, _ = _roundtrip("none", data, 1e-4, None)
            huff, _ = _roundtrip("encr_huffman", data, 1e-4, key)
            assert huff.compressed_bytes <= base.compressed_bytes / 0.99 + 64, name

    def test_cmpr_encr_retains_99_percent_cr(self, key):
        for name in ("cloudf48", "nyx"):
            data = generate(name, size="tiny")
            base, _ = _roundtrip("none", data, 1e-4, None)
            full, _ = _roundtrip("cmpr_encr", data, 1e-4, key)
            ncr = normalized_cr(
                data.nbytes / full.compressed_bytes,
                data.nbytes / base.compressed_bytes,
            )
            assert ncr > 0.99, name

    def test_encr_quant_collapses_compressible_cr(self, key):
        """Fig. 5: Encr-Quant drops to a small fraction of the original
        CR on easy datasets (QI / Q2)."""
        data = generate("qi", size="tiny")
        base, _ = _roundtrip("none", data, 1e-4, None)
        quant, _ = _roundtrip("encr_quant", data, 1e-4, key)
        ncr = normalized_cr(
            data.nbytes / quant.compressed_bytes,
            data.nbytes / base.compressed_bytes,
        )
        assert ncr < 0.6

    def test_encr_quant_fine_on_hard_data(self, key):
        """Fig. 5: on Nyx-like data all three schemes are close."""
        data = generate("nyx", size="tiny")
        base, _ = _roundtrip("none", data, 1e-7, None)
        quant, _ = _roundtrip("encr_quant", data, 1e-7, key)
        ncr = normalized_cr(
            data.nbytes / quant.compressed_bytes,
            data.nbytes / base.compressed_bytes,
        )
        assert ncr > 0.9

    def test_error_bound_under_every_scheme(self, key):
        for scheme in ("none", "cmpr_encr", "encr_quant", "encr_huffman"):
            for name in ("cloudf48", "nyx", "t"):
                data = generate(name, size="tiny")
                _, out = _roundtrip(scheme, data, 1e-5, key)
                assert max_abs_error(data, out) <= 1e-5, (scheme, name)

    def test_encrypted_fraction_tiny_for_encr_huffman(self, key):
        """Fig. 4: the tree is a few percent of the quantization array
        at most."""
        for name in ("q2", "t", "cloudf48"):
            data = generate(name, size="tiny")
            result, _ = _roundtrip("encr_huffman", data, 1e-4, key)
            quant_bytes = result.sz_stats.quant_array_bytes
            assert result.encrypted_bytes <= 0.10 * max(quant_bytes, 1), name


class TestSecurityWorkflow:
    def test_cmpr_encr_stream_is_random(self, key):
        data = generate("q2", size="small")
        sc = SecureCompressor("cmpr_encr", 1e-5, key=key,
                              random_state=np.random.default_rng(2))
        blob = sc.compress(data).container
        result = run_suite(blob, n_streams=4,
                           tests=("frequency", "runs", "serial"))
        assert result.all_pass

    def test_encr_huffman_stream_not_random(self, key):
        """Table VI: Encr-Huffman "fails all randomness tests" — only a
        tiny slice of the stream is ciphertext."""
        data = generate("q2", size="small")
        sc = SecureCompressor("encr_huffman", 1e-3, key=key,
                              random_state=np.random.default_rng(2))
        blob = sc.compress(data).container
        result = run_suite(blob, n_streams=4,
                           tests=("frequency", "runs", "serial"))
        assert not result.all_pass

    def test_entropy_ordering(self, key):
        """Sec. V-E: Cmpr-Encr output entropy ~8; plain SZ lower."""
        data = generate("q2", size="tiny")
        enc, _ = _roundtrip("cmpr_encr", data, 1e-5, key)
        plain, _ = _roundtrip("none", data, 1e-5, None)
        h_enc = shannon_entropy(enc.container)
        h_plain = shannon_entropy(plain.container)
        assert h_enc > 7.9
        assert h_enc >= h_plain - 0.05

    def test_wrong_key_never_leaks_data(self, key):
        data = generate("t", size="tiny")
        for scheme in ("cmpr_encr", "encr_quant", "encr_huffman"):
            sc = SecureCompressor(scheme, 1e-4, key=key)
            blob = sc.compress(data).container
            attacker = SecureCompressor(scheme, 1e-4, key=b"k" * 16)
            with pytest.raises(ValueError):
                out = attacker.decompress(blob)
                # A lucky padding pass must still not reproduce data.
                if np.allclose(out, data, atol=1e-4):
                    raise AssertionError("wrong key decoded the field")


class TestAdvisorIntegration:
    def test_advice_is_followable(self, key):
        data = generate("height", size="tiny")
        rec = recommend_scheme(data, 1e-4)
        sc = SecureCompressor(rec.scheme, 1e-4,
                              key=key if rec.scheme != "none" else None)
        out = sc.decompress(sc.compress(data).container)
        assert max_abs_error(data, out) <= 1e-4


class TestMixedConfigurations:
    @pytest.mark.parametrize("mode", ["cbc", "ctr"])
    @pytest.mark.parametrize("scheme", ["cmpr_encr", "encr_huffman"])
    def test_mode_scheme_matrix(self, mode, scheme, key):
        data = generate("q2", size="tiny")
        _, out = _roundtrip(scheme, data, 1e-4, key, cipher_mode=mode)
        assert max_abs_error(data, out) <= 1e-4

    def test_relative_bound_through_scheme(self, key):
        data = generate("t", size="tiny")
        sc = SecureCompressor("encr_huffman", ErrorBound(1e-4, "rel"),
                              key=key)
        out = sc.decompress(sc.compress(data).container)
        bound = 1e-4 * float(data.max() - data.min())
        assert max_abs_error(data, out) <= bound

    def test_fixed_predictor_through_scheme(self, key):
        data = generate("q2", size="tiny")
        for predictor in ("lorenzo", "mean", "regression"):
            sc = SecureCompressor("encr_huffman", 1e-4, key=key,
                                  predictor=predictor)
            result = sc.compress(np.asarray(data))
            assert result.sz_stats.predictor == predictor
            out = sc.decompress(result.container)
            assert max_abs_error(data, out) <= 1e-4

    def test_aes_object_reuse_across_fields(self, key):
        cipher = AES128(key)
        assert cipher.decrypt_cbc(
            *[(r := cipher.encrypt_cbc(b"payload")).ciphertext, r.iv]
        ) == b"payload"
