"""The AES128 façade."""

import pytest

from repro.crypto.aes import AES128, derive_key


class TestAes128:
    def test_cbc_roundtrip(self, key):
        cipher = AES128(key)
        enc = cipher.encrypt_cbc(b"attack at dawn")
        assert cipher.decrypt_cbc(enc.ciphertext, enc.iv) == b"attack at dawn"
        assert enc.mode == "cbc"
        assert len(enc.iv) == 16

    def test_ctr_roundtrip(self, key):
        cipher = AES128(key)
        enc = cipher.encrypt_ctr(b"attack at dawn")
        assert cipher.decrypt_ctr(enc.ciphertext, enc.iv) == b"attack at dawn"
        assert enc.mode == "ctr"
        assert len(enc.iv) == 8

    def test_generic_dispatch(self, key):
        cipher = AES128(key)
        for mode in ("cbc", "ctr"):
            enc = cipher.encrypt(b"payload", mode=mode)
            assert cipher.decrypt(enc.ciphertext, enc.iv, mode=mode) == b"payload"

    def test_unknown_mode_rejected(self, key):
        cipher = AES128(key)
        with pytest.raises(ValueError, match="mode"):
            cipher.encrypt(b"x", mode="gcm")
        with pytest.raises(ValueError, match="mode"):
            cipher.decrypt(b"x" * 16, bytes(16), mode="gcm")

    def test_explicit_iv_deterministic(self, key):
        cipher = AES128(key)
        iv = bytes(16)
        a = cipher.encrypt_cbc(b"data", iv=iv).ciphertext
        b = cipher.encrypt_cbc(b"data", iv=iv).ciphertext
        assert a == b

    def test_random_iv_differs(self, key):
        cipher = AES128(key)
        a = cipher.encrypt_cbc(b"data")
        b = cipher.encrypt_cbc(b"data")
        assert a.iv != b.iv  # 2^-128 collision chance

    def test_bad_key_length(self):
        with pytest.raises(ValueError, match="16-byte"):
            AES128(bytes(8))

    def test_ciphertext_grows_by_padding_only(self, key):
        cipher = AES128(key)
        enc = cipher.encrypt_cbc(bytes(100), iv=bytes(16))
        assert len(enc.ciphertext) == 112  # 100 -> next 16 multiple


class TestDeriveKey:
    def test_length(self):
        assert len(derive_key("passphrase")) == 16

    def test_deterministic(self):
        assert derive_key("x") == derive_key("x")

    def test_salt_sensitivity(self):
        assert derive_key("x") != derive_key("x", salt=b"other")

    def test_bytes_and_str_agree(self):
        assert derive_key("abc") == derive_key(b"abc")

    def test_distinct_passphrases(self):
        assert derive_key("a") != derive_key("b")
