"""CBC/CTR modes and PKCS#7 against SP 800-38A vectors."""

import numpy as np
import pytest

from repro.core import trace
from repro.crypto import modes
from repro.crypto.keyschedule import expand_key

EK = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
CBC_EXPECTED = (
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7"
)


class TestPkcs7:
    def test_pad_lengths(self):
        for n in range(0, 33):
            padded = modes.pkcs7_pad(bytes(n))
            assert len(padded) % 16 == 0
            assert len(padded) > n  # always at least one pad byte

    def test_pad_unpad_roundtrip(self):
        for n in (0, 1, 15, 16, 17, 31, 32, 100):
            data = bytes(range(256))[:n]
            assert modes.pkcs7_unpad(modes.pkcs7_pad(data)) == data

    def test_exact_multiple_gets_full_block(self):
        padded = modes.pkcs7_pad(bytes(16))
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_rejects_empty(self):
        with pytest.raises(ValueError):
            modes.pkcs7_unpad(b"")

    def test_unpad_rejects_misaligned(self):
        with pytest.raises(ValueError):
            modes.pkcs7_unpad(bytes(17))

    def test_unpad_rejects_bad_length_byte(self):
        with pytest.raises(ValueError, match="padding"):
            modes.pkcs7_unpad(bytes(15) + b"\x00")
        with pytest.raises(ValueError, match="padding"):
            modes.pkcs7_unpad(bytes(15) + b"\x11")

    def test_unpad_rejects_inconsistent_padding(self):
        blob = bytes(13) + b"\x01\x02\x03"
        with pytest.raises(ValueError, match="corrupt"):
            modes.pkcs7_unpad(blob)


class TestCbc:
    def test_sp800_38a_f21(self):
        ct = modes.cbc_encrypt(MSG, EK, IV)
        assert ct[:64].hex() == CBC_EXPECTED

    def test_roundtrip(self):
        for n in (0, 1, 16, 100, 1000):
            msg = bytes((i * 31) % 256 for i in range(n))
            ct = modes.cbc_encrypt(msg, EK, IV)
            assert modes.cbc_decrypt(ct, EK, IV) == msg

    def test_iv_changes_ciphertext(self):
        iv2 = bytes(15) + b"\x01"
        assert modes.cbc_encrypt(MSG, EK, IV) != modes.cbc_encrypt(MSG, EK, iv2)

    def test_chaining(self):
        # Equal plaintext blocks must yield different ciphertext blocks.
        msg = bytes(16) * 4
        ct = modes.cbc_encrypt(msg, EK, IV)
        blocks = [ct[i : i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_rejects_bad_iv(self):
        with pytest.raises(ValueError, match="IV"):
            modes.cbc_encrypt(b"x", EK, bytes(8))
        with pytest.raises(ValueError, match="IV"):
            modes.cbc_decrypt(bytes(16), EK, bytes(8))

    def test_decrypt_rejects_misaligned(self):
        with pytest.raises(ValueError):
            modes.cbc_decrypt(bytes(15), EK, IV)
        with pytest.raises(ValueError):
            modes.cbc_decrypt(b"", EK, IV)

    def test_wrong_key_fails_or_garbles(self):
        ct = modes.cbc_encrypt(MSG, EK, IV)
        other = expand_key(bytes(16))
        try:
            out = modes.cbc_decrypt(ct, other, IV)
        except ValueError:
            return  # padding check caught it
        assert out != MSG


class TestCtr:
    def test_involution(self):
        nonce = b"\x01" * 8
        ct = modes.ctr_xcrypt(MSG, EK, nonce)
        assert modes.ctr_xcrypt(ct, EK, nonce) == MSG

    def test_no_length_change(self):
        for n in (0, 1, 15, 16, 17, 100):
            assert len(modes.ctr_xcrypt(bytes(n), EK, b"12345678")) == n

    def test_keystream_deterministic(self):
        a = modes.ctr_keystream(EK, b"abcdefgh", 100)
        b = modes.ctr_keystream(EK, b"abcdefgh", 100)
        assert (a == b).all()

    def test_keystream_nonce_sensitivity(self):
        a = modes.ctr_keystream(EK, b"abcdefgh", 64)
        b = modes.ctr_keystream(EK, b"abcdefgi", 64)
        assert (a != b).any()

    def test_counter_blocks_distinct(self):
        ks = modes.ctr_keystream(EK, b"\x00" * 8, 16 * 10)
        blocks = [ks[i * 16 : (i + 1) * 16].tobytes() for i in range(10)]
        assert len(set(blocks)) == 10

    def test_rejects_bad_nonce(self):
        with pytest.raises(ValueError, match="nonce"):
            modes.ctr_xcrypt(b"data", EK, bytes(16))


#: SP 800-38A F.5.1 (AES-128 CTR): initial counter block
#: f0f1...feff splits into our nonce (first 8 bytes) and a nonzero
#: 64-bit initial counter (last 8 bytes).
CTR_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7")
CTR_INITIAL = 0xF8F9FAFBFCFDFEFF
CTR_EXPECTED = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


class TestCtrSegmented:
    """The `initial` offset, segmentation, and the overflow guard."""

    def test_sp800_38a_f51_at_nonzero_offset(self):
        ct = modes.ctr_xcrypt(MSG, EK, CTR_NONCE, CTR_INITIAL)
        assert ct == CTR_EXPECTED

    def test_sp800_38a_f51_segment_resume(self):
        # Encrypt the 4 vector blocks one at a time, resuming the
        # counter — must reproduce the published ciphertext exactly.
        out = b"".join(
            modes.ctr_xcrypt(
                MSG[i * 16 : (i + 1) * 16], EK, CTR_NONCE, CTR_INITIAL + i
            )
            for i in range(4)
        )
        assert out == CTR_EXPECTED

    def test_initial_equals_stream_slice(self):
        full = modes.ctr_keystream(EK, b"abcdefgh", 400)
        for skip in (1, 3, 7, 24):
            tail = modes.ctr_keystream(
                EK, b"abcdefgh", 400 - skip * 16, initial=skip
            )
            assert np.array_equal(tail, full[skip * 16 :])

    @pytest.mark.parametrize("n_bytes", [0, 1, 15, 16, 17, 100, 1000, 16 * 13 + 5])
    @pytest.mark.parametrize("segment_blocks", [1, 2, 3, 8, 64])
    def test_segmented_bit_identical_to_monolithic(self, n_bytes, segment_blocks):
        mono = modes.ctr_keystream(
            EK, b"\x07" * 8, n_bytes, segment_blocks=1 << 30
        )
        seg = modes.ctr_keystream(
            EK, b"\x07" * 8, n_bytes, segment_blocks=segment_blocks
        )
        assert np.array_equal(mono, seg)

    def test_concatenated_segments_bit_identical(self):
        nonce = b"seg-cat!"
        full = modes.ctr_keystream(EK, nonce, 16 * 20 + 9)
        for split_blocks in (1, 4, 19):
            head = modes.ctr_keystream(EK, nonce, split_blocks * 16)
            tail = modes.ctr_keystream(
                EK, nonce, 16 * 20 + 9 - split_blocks * 16, initial=split_blocks
            )
            assert np.array_equal(np.concatenate([head, tail]), full)

    def test_segment_counter(self):
        before = trace.counters_snapshot().get("aes.keystream_segments", 0)
        modes.ctr_keystream(EK, bytes(8), 16 * 10, segment_blocks=4)
        after = trace.counters_snapshot()["aes.keystream_segments"]
        assert after - before == 3  # ceil(10 / 4)

    def test_counter_overflow_guard(self):
        with pytest.raises(ValueError, match="overflow"):
            modes.ctr_keystream(EK, bytes(8), 32, initial=2**64 - 1)
        with pytest.raises(ValueError, match="overflow"):
            modes._counter_blocks(bytes(8), 2, initial=2**64 - 1)
        # Validation happens before any segment is emitted.
        with pytest.raises(ValueError, match="overflow"):
            modes.ctr_keystream(
                EK, bytes(8), 16 * 100, initial=2**64 - 50, segment_blocks=10
            )

    def test_counter_space_edge_is_usable(self):
        # The very last counter value must work (no off-by-one).
        ks = modes.ctr_keystream(EK, bytes(8), 16, initial=2**64 - 1)
        blocks = modes._counter_blocks(bytes(8), 1, initial=2**64 - 1)
        assert bytes(blocks[0, 8:]) == b"\xff" * 8
        assert ks.size == 16

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            modes.ctr_keystream(EK, bytes(8), 16, initial=-1)

    def test_bad_segment_blocks_rejected(self):
        with pytest.raises(ValueError, match="segment_blocks"):
            modes.ctr_keystream(EK, bytes(8), 16, segment_blocks=0)

    def test_zero_bytes(self):
        assert modes.ctr_keystream(EK, bytes(8), 0).size == 0
        assert modes.ctr_xcrypt(b"", EK, bytes(8)) == b""
