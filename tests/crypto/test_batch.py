"""Batched ECB engine: equivalence with the scalar cipher."""

import numpy as np
import pytest

from repro.crypto import batch
from repro.crypto.block import decrypt_block, encrypt_block
from repro.crypto.keyschedule import expand_key

EK = expand_key(b"0123456789abcdef")


class TestBlockView:
    def test_to_blocks_shape(self):
        blocks = batch.to_blocks(bytes(64))
        assert blocks.shape == (4, 16)
        assert blocks.dtype == np.uint8

    def test_to_blocks_rejects_misaligned(self):
        with pytest.raises(ValueError, match="multiple of 16"):
            batch.to_blocks(bytes(17))

    def test_from_blocks_roundtrip(self):
        data = bytes(range(48))
        assert batch.from_blocks(batch.to_blocks(data)) == data


class TestBatchEquivalence:
    def test_encrypt_matches_scalar(self):
        rng = np.random.default_rng(7)
        raw = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        enc = batch.encrypt_blocks(raw, EK)
        for i in range(raw.shape[0]):
            assert enc[i].tobytes() == encrypt_block(raw[i].tobytes(), EK)

    def test_decrypt_matches_scalar(self):
        rng = np.random.default_rng(8)
        raw = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        dec = batch.decrypt_blocks(raw, EK)
        for i in range(raw.shape[0]):
            assert dec[i].tobytes() == decrypt_block(raw[i].tobytes(), EK)

    def test_roundtrip_large_batch(self):
        rng = np.random.default_rng(9)
        raw = rng.integers(0, 256, size=(1000, 16), dtype=np.uint8)
        assert np.array_equal(
            batch.decrypt_blocks(batch.encrypt_blocks(raw, EK), EK), raw
        )

    def test_single_block_batch(self):
        pt = np.frombuffer(bytes(range(16)), dtype=np.uint8).reshape(1, 16)
        enc = batch.encrypt_blocks(pt, EK)
        assert enc[0].tobytes() == encrypt_block(bytes(range(16)), EK)

    def test_fips_vector_through_batch(self):
        ek = expand_key(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        pt = batch.to_blocks(bytes.fromhex("00112233445566778899aabbccddeeff"))
        enc = batch.encrypt_blocks(pt, ek)
        assert enc.tobytes().hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_input_not_mutated(self):
        raw = np.zeros((4, 16), dtype=np.uint8)
        before = raw.copy()
        batch.encrypt_blocks(raw, EK)
        assert np.array_equal(raw, before)

    def test_zero_block_batch(self):
        empty = np.empty((0, 16), dtype=np.uint8)
        enc = batch.encrypt_blocks(empty, EK)
        assert enc.shape == (0, 16) and enc.dtype == np.uint8
        dec = batch.decrypt_blocks(empty, EK)
        assert dec.shape == (0, 16) and dec.dtype == np.uint8
        assert batch.from_blocks(enc) == b""
        assert batch.to_blocks(b"").shape == (0, 16)
