"""KeystreamPrefetcher / PrefetchingAES: pipelined CTR fast path.

The invariant under test everywhere: prefetched keystream must be
*bit-identical* to the serial `ctr_keystream` stream for every
(hint, request) shape — over-hint, under-hint, exact, zero — and the
one-shot take() must make (key, nonce) reuse impossible.
"""

import numpy as np
import pytest

from repro.core import trace
from repro.crypto import modes
from repro.crypto.aes import AES128
from repro.crypto.keyschedule import expand_key
from repro.crypto.pipelined import KeystreamPrefetcher, PrefetchingAES

KEY = bytes(range(16))
EK = expand_key(KEY)
NONCE = b"pf-tests"


def _prefetch(hint, need, *, segment_blocks=4, start=True):
    pf = KeystreamPrefetcher(EK, NONCE, hint, segment_blocks=segment_blocks)
    if start:
        pf.start()
    try:
        return pf.take(need)
    finally:
        pf.cancel()


class TestPrefetcher:
    @pytest.mark.parametrize(
        "hint, need",
        [
            (0, 500),      # no prefetch at all: fully synchronous top-up
            (100, 500),    # under-hint: shortfall resumes mid-stream
            (500, 500),    # exact
            (5000, 500),   # over-hint: early stop, surplus discarded
            (500, 0),      # nothing requested
            (0, 0),
            (64, 63),      # sub-block tail
            (64, 65),      # one byte past the hint
        ],
    )
    def test_bit_identical_to_serial(self, hint, need):
        got = _prefetch(hint, need)
        want = modes.ctr_keystream(EK, NONCE, need)
        assert np.array_equal(got, want), (hint, need)

    def test_unstarted_prefetcher_still_serves(self):
        # take() without start() degrades to synchronous generation.
        got = _prefetch(1000, 200, start=False)
        assert np.array_equal(got, modes.ctr_keystream(EK, NONCE, 200))

    def test_take_is_one_shot(self):
        pf = KeystreamPrefetcher(EK, NONCE, 100).start()
        try:
            pf.take(50)
            with pytest.raises(RuntimeError, match="already consumed"):
                pf.take(50)
        finally:
            pf.cancel()

    def test_double_start_rejected(self):
        pf = KeystreamPrefetcher(EK, NONCE, 100).start()
        try:
            with pytest.raises(RuntimeError, match="started"):
                pf.start()
        finally:
            pf.cancel()

    def test_cancel_without_take(self):
        pf = KeystreamPrefetcher(EK, NONCE, 1 << 20, segment_blocks=64).start()
        pf.cancel()
        assert not pf._thread.is_alive()

    def test_stats_and_counter(self):
        before = trace.counters_snapshot().get("aes.keystream_prefetch_ms", 0)
        pf = KeystreamPrefetcher(EK, NONCE, 16 * 64, segment_blocks=8).start()
        try:
            pf.take(16 * 64)
        finally:
            pf.cancel()
        assert pf.stats is not None
        assert pf.stats["prefetched_blocks"] >= 1
        after = trace.counters_snapshot()["aes.keystream_prefetch_ms"]
        assert after > before

    def test_bad_segment_blocks(self):
        with pytest.raises(ValueError, match="segment_blocks"):
            KeystreamPrefetcher(EK, NONCE, 100, segment_blocks=0)


class TestPrefetchingAES:
    def _wrapped(self, hint=10_000):
        cipher = AES128(KEY)
        pf = KeystreamPrefetcher(EK, NONCE, hint).start()
        return PrefetchingAES(cipher, pf), cipher, pf

    def test_ctr_matches_plain_cipher(self):
        wrapped, cipher, pf = self._wrapped()
        try:
            pt = bytes(range(256)) * 5
            got = wrapped.encrypt(pt, mode="ctr", iv=NONCE)
            assert got.ciphertext == cipher.encrypt_ctr(pt, NONCE).ciphertext
            assert got.mode == "ctr" and got.iv == NONCE
        finally:
            pf.cancel()

    def test_second_ctr_encrypt_same_nonce_raises(self):
        # The executable form of the nonce-hygiene audit: no scheme can
        # encrypt two sections under one (key, nonce).
        wrapped, _, pf = self._wrapped()
        try:
            wrapped.encrypt(b"first section", mode="ctr", iv=NONCE)
            with pytest.raises(RuntimeError, match="already consumed"):
                wrapped.encrypt(b"second section", mode="ctr", iv=NONCE)
        finally:
            pf.cancel()

    def test_other_nonce_falls_through(self):
        wrapped, cipher, pf = self._wrapped()
        try:
            other = b"other-nc"
            got = wrapped.encrypt(b"payload", mode="ctr", iv=other)
            assert got.ciphertext == cipher.encrypt_ctr(b"payload", other).ciphertext
        finally:
            pf.cancel()

    def test_cbc_delegates(self):
        wrapped, cipher, pf = self._wrapped()
        try:
            iv = bytes(range(16))
            got = wrapped.encrypt(b"payload", mode="cbc", iv=iv)
            assert got.ciphertext == cipher.encrypt_cbc(b"payload", iv).ciphertext
            # decrypt and attribute access delegate too
            assert wrapped.decrypt(got.ciphertext, iv, mode="cbc") == b"payload"
            assert wrapped.schedule is cipher.schedule
        finally:
            pf.cancel()

    def test_zero_length_ctr(self):
        wrapped, _, pf = self._wrapped(hint=0)
        try:
            assert wrapped.encrypt(b"", mode="ctr", iv=NONCE).ciphertext == b""
        finally:
            pf.cancel()
