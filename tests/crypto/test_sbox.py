"""The GF(2^8) machinery and derived tables against FIPS-197 values."""

import numpy as np
import pytest

from repro.crypto import sbox


class TestGFArithmetic:
    def test_mul_identity(self):
        for a in (0, 1, 0x53, 0xFF):
            assert sbox.gf_mul(a, 1) == a

    def test_mul_zero(self):
        for a in (0, 1, 0x53, 0xFF):
            assert sbox.gf_mul(a, 0) == 0

    def test_mul_commutative(self):
        for a in range(0, 256, 17):
            for b in range(0, 256, 23):
                assert sbox.gf_mul(a, b) == sbox.gf_mul(b, a)

    def test_mul_fips_example(self):
        # FIPS-197 Sec. 4.2: {57} x {83} = {c1}
        assert sbox.gf_mul(0x57, 0x83) == 0xC1

    def test_mul_xtime_chain(self):
        # FIPS-197 Sec. 4.2.1: {57}·{02} = {ae}, ·{04} = {47}, ·{08} = {8e}
        assert sbox.gf_mul(0x57, 0x02) == 0xAE
        assert sbox.gf_mul(0x57, 0x04) == 0x47
        assert sbox.gf_mul(0x57, 0x08) == 0x8E
        assert sbox.gf_mul(0x57, 0x13) == 0xFE

    def test_distributive(self):
        for a, b, c in [(0x57, 0x83, 0x1B), (0xCA, 0x01, 0xFE)]:
            assert sbox.gf_mul(a, b ^ c) == sbox.gf_mul(a, b) ^ sbox.gf_mul(a, c)

    def test_inverse(self):
        for a in range(1, 256):
            assert sbox.gf_mul(a, sbox.gf_inv(a)) == 1

    def test_inverse_of_zero_is_zero(self):
        assert sbox.gf_inv(0) == 0

    def test_pow_matches_repeated_mul(self):
        acc = 1
        for n in range(8):
            assert sbox.gf_pow(0x03, n) == acc
            acc = sbox.gf_mul(acc, 0x03)


class TestSbox:
    def test_known_values(self):
        # FIPS-197 Fig. 7 spot checks.
        assert sbox.SBOX[0x00] == 0x63
        assert sbox.SBOX[0x01] == 0x7C
        assert sbox.SBOX[0x53] == 0xED
        assert sbox.SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(sbox.SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for x in range(256):
            assert sbox.INV_SBOX[sbox.SBOX[x]] == x

    def test_no_fixed_points(self):
        # AES S-box has no fixed points and no anti-fixed points.
        for x in range(256):
            assert sbox.SBOX[x] != x
            assert sbox.SBOX[x] != x ^ 0xFF

    def test_numpy_tables_match(self):
        assert np.array_equal(sbox.SBOX_NP, np.array(sbox.SBOX, dtype=np.uint8))
        assert np.array_equal(
            sbox.INV_SBOX_NP, np.array(sbox.INV_SBOX, dtype=np.uint8)
        )


class TestDerivedTables:
    def test_mul_tables(self):
        for c, table in [(2, sbox.MUL2), (3, sbox.MUL3), (9, sbox.MUL9),
                         (11, sbox.MUL11), (13, sbox.MUL13), (14, sbox.MUL14)]:
            for x in (0, 1, 0x57, 0x80, 0xFF):
                assert int(table[x]) == sbox.gf_mul(c, x)

    def test_rcon(self):
        assert sbox.RCON[:8] == (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80)
        assert sbox.RCON[8] == 0x1B
        assert sbox.RCON[9] == 0x36

    def test_t_tables_consistent(self):
        # T1..T3 are byte rotations of T0.
        for x in (0, 1, 0xAB, 0xFF):
            w = sbox.T0[x]
            rot = ((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF
            assert sbox.T1[x] == rot

    def test_t0_structure(self):
        s = sbox.SBOX[0x42]
        expected = (
            (sbox.gf_mul(2, s) << 24) | (s << 16) | (s << 8) | sbox.gf_mul(3, s)
        )
        assert sbox.T0[0x42] == expected

    def test_shift_rows_permutation(self):
        assert sorted(sbox.SHIFT_ROWS) == list(range(16))
        # Row 0 is untouched: flat indices 0,4,8,12 map to themselves.
        for c in range(4):
            assert sbox.SHIFT_ROWS[4 * c] == 4 * c

    def test_inv_shift_rows_inverts(self):
        for i in range(16):
            assert sbox.INV_SHIFT_ROWS[sbox.SHIFT_ROWS[i]] == i

    def test_shift_rows_row1(self):
        # Row 1 shifts left by one column: out[1 + 4c] = in[1 + 4(c+1 mod 4)]
        for c in range(4):
            assert sbox.SHIFT_ROWS[1 + 4 * c] == 1 + 4 * ((c + 1) % 4)
