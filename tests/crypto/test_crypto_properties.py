"""Property-based tests for the crypto substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import batch, modes
from repro.crypto.block import decrypt_block, encrypt_block
from repro.crypto.keyschedule import expand_key

keys = st.binary(min_size=16, max_size=16)
blocks16 = st.binary(min_size=16, max_size=16)
payloads = st.binary(min_size=0, max_size=512)
ivs = st.binary(min_size=16, max_size=16)
nonces = st.binary(min_size=8, max_size=8)


@given(key=keys, block=blocks16)
@settings(max_examples=50, deadline=None)
def test_block_roundtrip(key, block):
    ek = expand_key(key)
    assert decrypt_block(encrypt_block(block, ek), ek) == block


@given(key=keys, data=payloads, iv=ivs)
@settings(max_examples=50, deadline=None)
def test_cbc_roundtrip(key, data, iv):
    ek = expand_key(key)
    assert modes.cbc_decrypt(modes.cbc_encrypt(data, ek, iv), ek, iv) == data


@given(key=keys, data=payloads, nonce=nonces)
@settings(max_examples=50, deadline=None)
def test_ctr_involution(key, data, nonce):
    ek = expand_key(key)
    assert modes.ctr_xcrypt(modes.ctr_xcrypt(data, ek, nonce), ek, nonce) == data


@given(data=payloads)
@settings(max_examples=100, deadline=None)
def test_pkcs7_roundtrip(data):
    assert modes.pkcs7_unpad(modes.pkcs7_pad(data)) == data


@given(data=payloads)
@settings(max_examples=50, deadline=None)
def test_pkcs7_alignment(data):
    padded = modes.pkcs7_pad(data)
    assert len(padded) % 16 == 0
    assert 1 <= padded[-1] <= 16


@given(key=keys, seed=st.integers(0, 2**32 - 1), n=st.integers(1, 64))
@settings(max_examples=25, deadline=None)
def test_batch_scalar_agreement(key, seed, n):
    ek = expand_key(key)
    raw = np.random.default_rng(seed).integers(0, 256, size=(n, 16),
                                               dtype=np.uint8)
    enc = batch.encrypt_blocks(raw, ek)
    i = seed % n
    assert enc[i].tobytes() == encrypt_block(raw[i].tobytes(), ek)
    assert np.array_equal(batch.decrypt_blocks(enc, ek), raw)


@given(key=keys, data=st.binary(min_size=1, max_size=256), iv=ivs)
@settings(max_examples=30, deadline=None)
def test_cbc_ciphertext_never_equals_plaintext_prefix(key, data, iv):
    # Sanity: the ciphertext should not begin with the plaintext.
    ek = expand_key(key)
    ct = modes.cbc_encrypt(data, ek, iv)
    assert ct[: len(data)] != data
