"""Key expansion against FIPS-197 Appendix A.1."""

import numpy as np
import pytest

from repro.crypto.keyschedule import ExpandedKey, expand_key

FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestExpandKey:
    def test_first_words_are_key(self):
        ek = expand_key(FIPS_KEY)
        assert ek.words[0] == 0x2B7E1516
        assert ek.words[1] == 0x28AED2A6
        assert ek.words[2] == 0xABF71588
        assert ek.words[3] == 0x09CF4F3C

    def test_fips_a1_expansion(self):
        # FIPS-197 Appendix A.1 w[i] values.
        ek = expand_key(FIPS_KEY)
        assert ek.words[4] == 0xA0FAFE17
        assert ek.words[5] == 0x88542CB1
        assert ek.words[9] == 0x7A96B943
        assert ek.words[10] == 0x5935807A
        assert ek.words[20] == 0xD4D1C6F8
        assert ek.words[40] == 0xD014F9A8
        assert ek.words[43] == 0xB6630CA6

    def test_word_count(self):
        assert len(expand_key(FIPS_KEY).words) == 44

    def test_round_keys_layout(self):
        ek = expand_key(FIPS_KEY)
        assert len(ek.round_keys) == 11
        assert all(len(rk) == 16 for rk in ek.round_keys)
        assert ek.round_keys[0] == FIPS_KEY

    def test_round_words(self):
        ek = expand_key(FIPS_KEY)
        assert ek.round_words(0) == tuple(ek.words[:4])
        assert ek.round_words(10) == tuple(ek.words[40:44])

    def test_as_array(self):
        arr = expand_key(FIPS_KEY).as_array()
        assert arr.shape == (11, 16)
        assert arr.dtype == np.uint8
        assert bytes(arr[0]) == FIPS_KEY

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError, match="16-byte"):
            expand_key(b"short")
        with pytest.raises(ValueError, match="16-byte"):
            expand_key(bytes(24))

    def test_distinct_keys_distinct_schedules(self):
        a = expand_key(bytes(16))
        b = expand_key(bytes(15) + b"\x01")
        assert a.words != b.words

    def test_expanded_key_validates_word_count(self):
        with pytest.raises(ValueError, match="44"):
            ExpandedKey(words=(0,) * 10)
