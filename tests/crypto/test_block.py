"""Single-block cipher against FIPS-197 appendices."""

import pytest

from repro.crypto.block import decrypt_block, encrypt_block
from repro.crypto.keyschedule import expand_key


class TestFipsVectors:
    def test_appendix_b(self):
        ek = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ct = encrypt_block(pt, ek)
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_appendix_c1(self):
        ek = expand_key(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        ct = encrypt_block(pt, ek)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_appendix_c1_decrypt(self):
        ek = expand_key(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert decrypt_block(ct, ek).hex() == "00112233445566778899aabbccddeeff"


class TestRoundTrip:
    def test_roundtrip_various_blocks(self):
        ek = expand_key(b"0123456789abcdef")
        for seed in range(20):
            block = bytes((seed * 13 + i * 7) % 256 for i in range(16))
            assert decrypt_block(encrypt_block(block, ek), ek) == block

    def test_all_zero_and_all_ones(self):
        ek = expand_key(bytes(16))
        for block in (bytes(16), bytes([0xFF] * 16)):
            ct = encrypt_block(block, ek)
            assert ct != block  # cipher must not be identity
            assert decrypt_block(ct, ek) == block

    def test_different_keys_differ(self):
        pt = bytes(range(16))
        c1 = encrypt_block(pt, expand_key(bytes(16)))
        c2 = encrypt_block(pt, expand_key(bytes(15) + b"\x01"))
        assert c1 != c2

    def test_avalanche_plaintext(self):
        # Flipping one plaintext bit should change about half the
        # ciphertext bits (allow a generous band).
        ek = expand_key(b"0123456789abcdef")
        pt = bytes(range(16))
        pt2 = bytes([pt[0] ^ 0x01]) + pt[1:]
        c1 = int.from_bytes(encrypt_block(pt, ek), "big")
        c2 = int.from_bytes(encrypt_block(pt2, ek), "big")
        flipped = bin(c1 ^ c2).count("1")
        assert 35 <= flipped <= 93


class TestValidation:
    def test_rejects_short_block(self):
        ek = expand_key(bytes(16))
        with pytest.raises(ValueError, match="16 bytes"):
            encrypt_block(b"short", ek)
        with pytest.raises(ValueError, match="16 bytes"):
            decrypt_block(b"short", ek)
