"""Multi-field secure archives."""

import numpy as np
import pytest

from repro.archive import SecureArchive
from repro.datasets import generate


@pytest.fixture(scope="module")
def fields():
    return {
        "cloud": generate("cloudf48", size="tiny"),
        "wind": generate("wf48", size="tiny"),
        "temp": generate("t", size="tiny"),
    }


class TestSecureArchive:
    def test_pack_unpack_all(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        blob = arch.pack(fields, error_bounds=1e-4)
        out = arch.unpack(blob)
        assert set(out) == set(fields)
        for name, data in fields.items():
            err = np.max(np.abs(out[name].astype(np.float64)
                                - data.astype(np.float64)))
            assert err <= 1e-4, name

    def test_per_field_bounds(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        bounds = {"cloud": 1e-6, "wind": 1e-2, "temp": 1e-3}
        blob = arch.pack(fields, error_bounds=bounds)
        out = arch.unpack(blob)
        for name, eb in bounds.items():
            err = np.max(np.abs(out[name].astype(np.float64)
                                - fields[name].astype(np.float64)))
            assert err <= eb, name

    def test_partial_read(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        blob = arch.pack(fields, error_bounds=1e-3)
        wind = arch.unpack_field(blob, "wind")
        assert wind.shape == fields["wind"].shape

    def test_index_plaintext(self, fields, key):
        arch = SecureArchive("cmpr_encr", key=key)
        blob = arch.pack(fields, error_bounds=1e-3)
        # The index must be readable without any key.
        index = SecureArchive.index(blob)
        assert set(index) == set(fields)

    def test_missing_field(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        blob = arch.pack(fields, error_bounds=1e-3)
        with pytest.raises(ValueError, match="no field"):
            arch.unpack_field(blob, "pressure")

    def test_missing_bound_rejected(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        with pytest.raises(ValueError, match="missing error bounds"):
            arch.pack(fields, error_bounds={"cloud": 1e-3})

    def test_empty_rejected(self, key):
        with pytest.raises(ValueError, match="at least one"):
            SecureArchive("none").pack({})

    def test_corrupt_archive(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key)
        blob = arch.pack(fields, error_bounds=1e-3)
        with pytest.raises(ValueError, match="magic"):
            SecureArchive.index(b"XXXX" + blob[4:])
        with pytest.raises(ValueError):
            SecureArchive.index(blob[:-5])
        with pytest.raises(ValueError):
            SecureArchive.index(blob + b"x")

    def test_wrong_key(self, fields, key):
        writer = SecureArchive("encr_huffman", key=key)
        blob = writer.pack(fields, error_bounds=1e-3)
        reader = SecureArchive("encr_huffman", key=bytes(16))
        with pytest.raises(ValueError):
            out = reader.unpack_field(blob, "temp")
            if np.allclose(out, fields["temp"], atol=1e-3):
                raise AssertionError("wrong key decoded a field")

    def test_authenticated_archive(self, fields, key):
        arch = SecureArchive("encr_huffman", key=key, authenticate=True)
        blob = arch.pack(fields, error_bounds=1e-3)
        assert arch.unpack_field(blob, "cloud").shape == fields["cloud"].shape
        # Flip a bit inside the first container.
        index = SecureArchive.index(blob)
        offset, _ = index["cloud"]
        tampered = bytearray(blob)
        tampered[offset + 50] ^= 1
        with pytest.raises(ValueError):
            arch.unpack_field(bytes(tampered), "cloud")
