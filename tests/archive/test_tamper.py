"""Tamper armor: every injected corruption class must be *detected*.

The threat model gives the attacker the archive file.  For each
corruption class — bit-flipped blob bytes, truncated entries, dangling
digests, refcount lies, index and footer damage — these tests assert
two things:

* ``verify`` reports the damage (and the CLI exits nonzero), and
* ``extract`` fails closed: a clean exception, never wrong bytes.
"""

import os
import struct

import numpy as np
import pytest

from repro.archive import ArchiveCorrupt, ArchiveStore
from repro.archive.store import _V2_BLOB, _V2_COUNTS, _V2_FOOT, _V2_HEAD
from repro.cli import main as cli_main

from tests.fuzz import corpus

KEY = bytes(range(16))


def _build(path):
    store = ArchiveStore.create(path, key=KEY)
    store.add_bytes("log", corpus.build("text_log"), codec="lz77h")
    store.add_bytes("noise", corpus.build("random"), codec="zlib")
    store.add_field(
        "field",
        np.linspace(0, 1, 4096, dtype=np.float32).reshape(64, 64),
        error_bound=1e-3,
    )
    return store


def _rewrite_index(blob, mutate):
    """Parse the footer, let ``mutate`` edit the index bytes, reseal
    with a *consistent* footer hash — modelling an attacker who fixes
    up the integrity metadata they can compute without the key."""
    index_off, index_len, _, magic = _V2_FOOT.unpack(blob[-_V2_FOOT.size:])
    index = bytearray(blob[index_off : index_off + index_len])
    index = bytes(mutate(index))
    import hashlib

    foot = _V2_FOOT.pack(index_off, len(index), hashlib.sha256(index).digest(), magic)
    return blob[:index_off] + index + foot


@pytest.fixture
def archive(tmp_path):
    path = str(tmp_path / "t.secb")
    _build(path)
    with open(path, "rb") as fh:
        blob = fh.read()
    return path, blob


def _write(path, blob):
    with open(path, "wb") as fh:
        fh.write(blob)


def _verify_cli(path, *extra):
    return cli_main(["archive", "verify", path,
                     "--key-hex", KEY.hex(), *extra])


class TestBitFlippedBlobs:
    def test_every_blob_byte_region_is_covered(self, archive):
        """Flip one byte inside each stored blob; verify must name it."""
        path, blob = archive
        store = ArchiveStore(path, key=KEY)
        for rec in store._blobs.values():
            mutated = bytearray(blob)
            mutated[rec.offset + rec.stored_len // 2] ^= 0x01
            _write(path, bytes(mutated))
            fresh = ArchiveStore(path, key=KEY)
            problems = fresh.verify()
            assert any("stored bytes corrupt" in p for p in problems)
            assert _verify_cli(path) == 1
        _write(path, blob)
        assert ArchiveStore(path, key=KEY).verify(deep=True) == []

    def test_extract_fails_closed_on_flipped_blob(self, archive):
        path, blob = archive
        store = ArchiveStore(path, key=KEY)
        rec = next(iter(store._blobs.values()))
        mutated = bytearray(blob)
        mutated[rec.offset] ^= 0x80
        _write(path, bytes(mutated))
        fresh = ArchiveStore(path, key=KEY)
        for name in fresh.names():
            try:
                out = (fresh.extract_bytes(name)
                       if name != "field" else fresh.extract_field(name))
            except (ArchiveCorrupt, ValueError):
                continue
            # Entries not touching the flipped blob may extract; they
            # must extract *correctly*.
            if name == "log":
                assert out == corpus.build("text_log")
            elif name == "noise":
                assert out == corpus.build("noise" and "random")


class TestTruncation:
    def test_truncated_file_rejected_at_open(self, archive):
        path, blob = archive
        for cut in (1, 7, _V2_FOOT.size, len(blob) // 2):
            _write(path, blob[:-cut])
            with pytest.raises(ArchiveCorrupt):
                ArchiveStore(path, key=KEY)

    def test_truncated_entry_record_detected(self, archive):
        """Chop the last entry's digest list out of the index."""
        path, blob = archive

        def chop(index):
            return index[:-16]

        _write(path, _rewrite_index(blob, chop))
        with pytest.raises(ArchiveCorrupt, match="truncated|trailing"):
            ArchiveStore(path, key=KEY)

    def test_blob_extent_past_data_region(self, archive):
        """Grow a blob's stored_len so it reads past the data region."""
        path, blob = archive

        def grow(index):
            off = _V2_COUNTS.size  # first blob record
            rec = list(_V2_BLOB.unpack_from(bytes(index), off))
            rec[3] = rec[3] + 10_000_000
            index[off : off + _V2_BLOB.size] = _V2_BLOB.pack(*rec)
            return index

        _write(path, _rewrite_index(blob, grow))
        with pytest.raises(ArchiveCorrupt, match="extent|outside"):
            ArchiveStore(path, key=KEY)


class TestDanglingDigests:
    def test_missing_blob_detected(self, archive):
        """Delete a blob record the entries still reference."""
        path, blob = archive

        def drop_first_blob(index):
            n_blobs, n_entries = _V2_COUNTS.unpack_from(bytes(index))
            head = _V2_COUNTS.pack(n_blobs - 1, n_entries)
            body = index[_V2_COUNTS.size + _V2_BLOB.size:]
            return bytearray(head) + body

        _write(path, _rewrite_index(blob, drop_first_blob))
        store = ArchiveStore(path, key=KEY)
        problems = store.verify()
        assert any("dangling chunk digest" in p for p in problems)
        assert _verify_cli(path) == 1
        with pytest.raises(ArchiveCorrupt, match="dangling"):
            for name in store.names():
                store.extract_bytes(name) if name != "field" \
                    else store.extract_field(name)


class TestRefcountLies:
    def test_inflated_refcount_detected(self, archive):
        path, blob = archive

        def inflate(index):
            off = _V2_COUNTS.size
            rec = list(_V2_BLOB.unpack_from(bytes(index), off))
            rec[5] += 41  # refcount
            index[off : off + _V2_BLOB.size] = _V2_BLOB.pack(*rec)
            return index

        _write(path, _rewrite_index(blob, inflate))
        store = ArchiveStore(path, key=KEY)
        problems = store.verify()
        assert any("refcount" in p for p in problems)
        assert _verify_cli(path) == 1

    def test_zeroed_refcount_detected_before_gc_eats_data(self, archive):
        """A refcount lied down to zero would make gc drop live data;
        verify must catch the lie first."""
        path, blob = archive

        def zero(index):
            off = _V2_COUNTS.size
            rec = list(_V2_BLOB.unpack_from(bytes(index), off))
            rec[5] = 0
            index[off : off + _V2_BLOB.size] = _V2_BLOB.pack(*rec)
            return index

        _write(path, _rewrite_index(blob, zero))
        store = ArchiveStore(path, key=KEY)
        assert any("refcount" in p for p in store.verify())


class TestFraming:
    def test_flipped_index_without_hash_fixup(self, archive):
        """An index flip the attacker does *not* reseal trips the
        footer digest at open."""
        path, blob = archive
        index_off, _, _, _ = _V2_FOOT.unpack(blob[-_V2_FOOT.size:])
        mutated = bytearray(blob)
        mutated[index_off + 3] ^= 0x10
        _write(path, bytes(mutated))
        with pytest.raises(ArchiveCorrupt, match="index digest"):
            ArchiveStore(path, key=KEY)

    def test_bad_magic_and_version(self, archive):
        path, blob = archive
        _write(path, b"NOPE" + blob[4:])
        with pytest.raises(ArchiveCorrupt, match="magic"):
            ArchiveStore(path, key=KEY)
        _write(path, _V2_HEAD.pack(b"SEB2", 9, 0, 0) + blob[_V2_HEAD.size:])
        with pytest.raises(ArchiveCorrupt, match="version"):
            ArchiveStore(path, key=KEY)

    def test_footer_points_into_header(self, archive):
        path, blob = archive
        bad_foot = _V2_FOOT.pack(0, 2, bytes(32), b"SEB2")
        _write(path, blob[:-_V2_FOOT.size] + bad_foot)
        with pytest.raises(ArchiveCorrupt):
            ArchiveStore(path, key=KEY)


class TestDeepVerify:
    def test_deep_verify_catches_plaintext_swap(self, archive):
        """Swap two same-length sealed blobs *and* their stored hashes:
        structural verify passes the bytes, deep verify (with the key)
        catches the plaintext digest mismatch."""
        path, blob = archive
        store = ArchiveStore(path, key=KEY)
        recs = sorted(store._blobs.values(), key=lambda r: r.offset)
        pair = None
        for i, a in enumerate(recs):
            for b in recs[i + 1:]:
                if a.stored_len == b.stored_len:
                    pair = (a, b)
                    break
            if pair:
                break
        if pair is None:
            pytest.skip("fixture produced no same-length blob pair")
        a, b = pair
        mutated = bytearray(blob)
        mutated[a.offset : a.offset + a.stored_len] = (
            blob[b.offset : b.offset + b.stored_len]
        )

        def swap_hash(index):
            out = bytearray(index)
            off = _V2_COUNTS.size
            n_blobs, _ = _V2_COUNTS.unpack_from(bytes(index))
            for _ in range(n_blobs):
                rec = list(_V2_BLOB.unpack_from(bytes(index), off))
                if rec[2] == a.offset:
                    rec[1] = b.stored_sha
                    out[off : off + _V2_BLOB.size] = _V2_BLOB.pack(*rec)
                off += _V2_BLOB.size
            return out

        _write(path, _rewrite_index(bytes(mutated), swap_hash))
        fresh = ArchiveStore(path, key=KEY)
        structural = fresh.verify()
        assert not any("stored bytes corrupt" in p for p in structural)
        deep = fresh.verify(deep=True)
        assert deep, "deep verify must catch the plaintext swap"
        assert _verify_cli(path, "--deep") == 1


def test_verify_cli_ok_exit_zero(tmp_path):
    path = str(tmp_path / "ok.secb")
    _build(path)
    assert _verify_cli(path, "--deep") == 0


def test_struct_sizes_frozen():
    """The wire layout is normative (FORMAT.md §10.2); a size change
    here is a format break."""
    assert _V2_HEAD.size == 8
    assert _V2_COUNTS.size == 8
    assert _V2_BLOB.size == 110
    assert _V2_FOOT.size == 52
    assert struct.calcsize("<BBBdQ32sI") == 55
