"""SECB v2 store semantics: round-trip, store-once dedup, refcounts,
incremental append, gc compaction, and scheme/codec metadata."""

import os

import numpy as np
import pytest

from repro.archive import ArchiveCorrupt, ArchiveStore
from repro.archive.chunker import chunk_boundaries, split
from repro.core import trace

from tests.fuzz import corpus

KEY = bytes(range(16))


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "a.secb")


def _mixed_store(path, **kwargs):
    store = ArchiveStore.create(path, key=KEY, **kwargs)
    store.add_bytes("log", corpus.build("text_log"), codec="lz77h")
    store.add_bytes("noise", corpus.build("random"), codec="zlib")
    store.add_field("field", np.linspace(0, 1, 4096, dtype=np.float32)
                    .reshape(16, 16, 16), error_bound=1e-3)
    return store


class TestChunker:
    def test_boundaries_tile_the_input(self):
        for name in corpus.names():
            data = corpus.build(name)
            cuts = chunk_boundaries(data)
            assert cuts[-1] == len(data)
            assert all(b > a for a, b in zip(cuts, cuts[1:]))
            assert b"".join(split(data)) == data

    def test_chunking_is_content_defined(self):
        """A prefix insertion must not shift every later boundary."""
        base = corpus.build("text_log") * 3
        shifted = b"X" * 7 + base
        a = set(split(base, chunk_bits=9, min_size=64, max_size=4096))
        b = set(split(shifted, chunk_bits=9, min_size=64, max_size=4096))
        assert len(a & b) >= len(a) // 2

    def test_bounds_enforced(self):
        data = corpus.build("low_entropy")
        cuts = chunk_boundaries(data, chunk_bits=6, min_size=128,
                                max_size=512)
        sizes = np.diff([0] + cuts)
        assert sizes.max() <= 512
        assert (sizes[:-1] >= 128).all()  # the tail may be short

    def test_deterministic(self):
        data = corpus.build("runs")
        assert chunk_boundaries(data) == chunk_boundaries(data)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            chunk_boundaries(b"x", chunk_bits=0)
        with pytest.raises(ValueError):
            chunk_boundaries(b"x", min_size=64, max_size=32)


class TestRoundTrip:
    def test_mixed_corpus(self, path):
        store = _mixed_store(path)
        assert store.extract_bytes("log") == corpus.build("text_log")
        assert store.extract_bytes("noise") == corpus.build("random")
        out = store.extract_field("field")
        assert out.shape == (16, 16, 16)
        assert np.max(np.abs(
            out - np.linspace(0, 1, 4096, dtype=np.float32)
            .reshape(16, 16, 16)
        )) <= 1e-3 * 1.0001
        assert store.verify(deep=True) == []

    @pytest.mark.parametrize("codec", ["store", "zlib", "lz77h",
                                       "lz77h+zlib"])
    @pytest.mark.parametrize("mode", ["cbc", "ctr"])
    def test_every_codec_under_both_modes(self, tmp_path, codec, mode):
        p = str(tmp_path / f"{codec}-{mode}.secb")
        store = ArchiveStore.create(p, key=KEY, cipher_mode=mode)
        data = corpus.build("periodic")
        store.add_bytes("x", data, codec=codec)
        assert store.extract_bytes("x") == data
        reopened = ArchiveStore(p, key=KEY, cipher_mode=mode)
        assert reopened.extract_bytes("x") == data

    def test_keyless_archive(self, path):
        store = ArchiveStore.create(path)
        store.add_bytes("x", corpus.build("runs"), codec="lz77h")
        assert store.extract_bytes("x") == corpus.build("runs")
        assert store.verify(deep=True) == []
        row = store.entries()[0]
        assert row["scheme"] == "none"

    def test_reopen_and_append(self, path):
        _mixed_store(path)
        store = ArchiveStore(path, key=KEY)
        store.add_bytes("later", corpus.build("periodic"))
        assert sorted(store.names()) == ["field", "later", "log", "noise"]
        again = ArchiveStore(path, key=KEY)
        assert again.extract_bytes("later") == corpus.build("periodic")
        assert again.verify(deep=True) == []

    def test_append_does_not_rewrite_blobs(self, path):
        """Incremental append: existing blob bytes stay in place."""
        store = ArchiveStore.create(path, key=KEY)
        store.add_bytes("a", corpus.build("text_log"))
        offsets = {
            rec.offset: rec.stored_sha
            for rec in store._blobs.values()
        }
        store.add_bytes("b", corpus.build("random"))
        for off, sha in offsets.items():
            rec = next(r for r in store._blobs.values()
                       if r.offset == off)
            assert rec.stored_sha == sha

    def test_duplicate_name_rejected(self, path):
        store = ArchiveStore.create(path, key=KEY)
        store.add_bytes("x", b"abc" * 1000)
        with pytest.raises(ValueError, match="already has an entry"):
            store.add_bytes("x", b"def" * 1000)

    def test_kind_mismatch_rejected(self, path):
        store = _mixed_store(path)
        with pytest.raises(ValueError, match="use extract_field"):
            store.extract_bytes("field")
        with pytest.raises(ValueError, match="use extract_bytes"):
            store.extract_field("log")


class TestDedup:
    def test_duplicate_shard_stored_once(self, path):
        """The acceptance criterion: a duplicated checkpoint shard
        costs zero additional stored bytes."""
        shard = corpus.build("random") + corpus.build("periodic")
        store = ArchiveStore.create(path, key=KEY)
        store.add_bytes("shard-1", shard)
        stored_before = store.stats()["stored_bytes"]
        blobs_before = store.stats()["blobs"]
        store.add_bytes("shard-2", shard)
        st = store.stats()
        assert st["stored_bytes"] == stored_before
        assert st["blobs"] == blobs_before
        assert st["dedup_ratio"] > 1.9
        assert store.extract_bytes("shard-2") == shard

    def test_dedup_survives_random_ivs(self, path):
        """Dedup keys on the plaintext digest, so the fresh IV per
        sealed blob must not defeat it."""
        store = ArchiveStore.create(path, key=KEY)
        tr = trace.Tracer()
        store.add_bytes("a", corpus.build("low_entropy"))
        store.add_bytes("b", corpus.build("low_entropy"))
        counters = tr.export()["counters"]
        assert counters.get("archive.chunks_deduped", 0) > 0

    def test_refcounts_tracked(self, path):
        store = ArchiveStore.create(path, key=KEY)
        store.add_bytes("a", corpus.build("runs"))
        store.add_bytes("b", corpus.build("runs"))
        assert all(rec.refcount == 2 for rec in store._blobs.values())
        store.remove("a")
        assert all(rec.refcount == 1 for rec in store._blobs.values())
        assert store.verify(deep=True) == []


class TestGc:
    def test_gc_drops_unreferenced_blobs_and_compacts(self, path):
        store = _mixed_store(path)
        size_before = os.path.getsize(path)
        store.remove("noise")
        assert store.gc() > 0
        assert os.path.getsize(path) < size_before
        assert store.verify(deep=True) == []
        assert store.extract_bytes("log") == corpus.build("text_log")
        reopened = ArchiveStore(path, key=KEY)
        assert reopened.verify(deep=True) == []

    def test_gc_keeps_shared_blobs(self, path):
        store = ArchiveStore.create(path, key=KEY)
        store.add_bytes("a", corpus.build("periodic"))
        store.add_bytes("b", corpus.build("periodic"))
        store.remove("a")
        assert store.gc() == 0
        assert store.extract_bytes("b") == corpus.build("periodic")

    def test_gc_counter(self, path):
        store = _mixed_store(path)
        tr = trace.Tracer()
        store.remove("log")
        store.remove("noise")
        store.gc()
        assert tr.export()["counters"].get("archive.blobs_gced", 0) > 0


class TestConstruction:
    def test_create_refuses_overwrite(self, path):
        ArchiveStore.create(path)
        with pytest.raises(FileExistsError):
            ArchiveStore.create(path)

    def test_open_missing_file(self, path):
        with pytest.raises(FileNotFoundError):
            ArchiveStore(path)

    def test_bad_key_length(self, path):
        with pytest.raises(ValueError, match="16 bytes"):
            ArchiveStore.create(path, key=b"short")

    def test_ctr_with_seeded_rng_refused(self, path):
        with pytest.raises(ValueError, match="nonce"):
            ArchiveStore.create(
                path, key=KEY, cipher_mode="ctr",
                random_state=np.random.default_rng(1),
            )

    def test_wrong_key_fails_closed(self, path):
        _mixed_store(path)
        stranger = ArchiveStore(path, key=bytes(16))
        with pytest.raises((ArchiveCorrupt, ValueError)):
            stranger.extract_bytes("log")

    def test_field_scheme_requires_key(self, path):
        store = ArchiveStore.create(path)
        with pytest.raises(ValueError, match="key"):
            store.add_field("f", np.zeros((8, 8), np.float32))

    def test_invalid_utf8_entry_name_is_archive_corrupt(self, path):
        """A corrupted entry name must surface as ArchiveCorrupt, not a
        raw UnicodeDecodeError (found by the exception-contract sweep)."""
        from repro.archive.store import _V2_COUNTS, _V2_NAME

        store = ArchiveStore.create(path, key=KEY)
        bad_index = _V2_COUNTS.pack(0, 1) + _V2_NAME.pack(2) + b"\xff\xfe"
        with pytest.raises(ArchiveCorrupt, match="not valid UTF-8"):
            store._parse_index(bad_index, file_size=1 << 20)
