"""Shared corpus builders for the fuzz and differential suites.

One seeded builder per payload *shape* the codecs care about: runs,
periodic repetition, structured text, low-entropy symbol soup, and
incompressible noise.  The LZ77 differential suite, the fuzz targets
and the archive tests all draw from the same corpus so a payload class
that breaks one codec is immediately thrown at the others.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CORPUS", "build", "names"]


def _zeros(n: int = 50_000) -> bytes:
    return b"\x00" * n


def _runs(n: int = 60_000) -> bytes:
    rng = np.random.default_rng(11)
    parts = []
    total = 0
    while total < n:
        run = int(rng.integers(1, 400))
        parts.append(bytes([int(rng.integers(0, 256))]) * run)
        total += run
    return b"".join(parts)[:n]


def _periodic(n: int = 64_000) -> bytes:
    return (b"checkpoint-shard " * (n // 17 + 1))[:n]


def _text_log(n_lines: int = 1500) -> bytes:
    return b"".join(
        b"2026-08-08T12:%02d:%02d INFO worker-%d step=%d loss=%.4f\n"
        % (i // 60 % 60, i % 60, i % 8, i, 1.0 / (i + 1))
        for i in range(n_lines)
    )


def _low_entropy(n: int = 50_000) -> bytes:
    rng = np.random.default_rng(23)
    return bytes(rng.integers(0, 4, n, dtype=np.uint8) + 97)


def _random(n: int = 40_000) -> bytes:
    rng = np.random.default_rng(37)
    return rng.integers(0, 256, n, dtype=np.uint8).tobytes()


def _float_field(side: int = 24) -> bytes:
    x = np.linspace(0.0, 4.0, side)
    gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
    field = (np.sin(gx) * np.cos(gy) + 0.1 * gz).astype(np.float32)
    return field.tobytes()


def _tiny(n: int = 40) -> bytes:
    return bytes(range(n))


CORPUS = {
    "zeros": _zeros,
    "runs": _runs,
    "periodic": _periodic,
    "text_log": _text_log,
    "low_entropy": _low_entropy,
    "random": _random,
    "float_field": _float_field,
    "tiny": _tiny,
    "empty": lambda: b"",
}


def names() -> list[str]:
    """Corpus entry names, stable order for parametrize."""
    return sorted(CORPUS)


def build(name: str) -> bytes:
    """Materialize one corpus payload (deterministic per name)."""
    return CORPUS[name]()
