"""Adversarial-input fuzzing: attacker-controlled bytes must produce
clean ``ValueError`` family exceptions — never crashes, hangs, or
foreign exception types.

This matters beyond hygiene: the threat model (paper Sec. III) has the
decompressor consuming data an attacker may have perturbed, and the
bit-flip study classifies "decode_error" outcomes — which is only a
safe outcome if *every* malformed input is caught deliberately.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integrity import AuthenticationError
from repro.core.pipeline import SecureCompressor
from repro.imagecodec import ImageCodec
from repro.security.attacks import flip_bit
from repro.sz import SZCompressor, huffman
from repro.sz.bitstream import PackedBits
from repro.sz.compressor import SECTION_ORDER, SZFrame

KEY = bytes(range(16))

ACCEPTED = (ValueError, AuthenticationError)  # AuthenticationError: subclass


@given(blob=st.binary(max_size=400))
@settings(max_examples=150, deadline=None)
def test_decompress_garbage(blob):
    sc = SecureCompressor("encr_huffman", 1e-3, key=KEY)
    try:
        sc.decompress(blob)
    except ACCEPTED:
        pass


@given(seed=st.integers(0, 2**32 - 1), n_flips=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_decompress_multiflip_containers(seed, n_flips):
    """Multi-bit corruptions of genuine containers either decode to
    *some* array or raise cleanly."""
    rng = np.random.default_rng(seed)
    data = rng.random((6, 8, 8)).astype(np.float32)
    sc = SecureCompressor("none", 1e-3)
    blob = sc.compress(data).container
    for bit in rng.choice(8 * len(blob), size=n_flips, replace=False):
        blob = flip_bit(blob, int(bit))
    try:
        out = sc.decompress(blob)
        assert isinstance(out, np.ndarray)
    except ACCEPTED:
        pass
    except OverflowError:
        # A corrupt meta can claim absurd dims; numpy raises while
        # allocating — also a clean rejection.
        pass


@given(tree=st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_huffman_tree_garbage(tree):
    try:
        huffman.deserialize_tree(tree)
    except ValueError:
        pass


@given(payload=st.binary(min_size=1, max_size=200),
       n_values=st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_huffman_decode_garbage_bits(payload, n_values):
    """Random bits through a real code: decode or ValueError, never a
    hang or index error."""
    values = np.arange(16, dtype=np.int64).repeat(4)
    code = huffman.build_code(*np.unique(values, return_counts=True))
    packed = PackedBits(data=payload, n_bits=8 * len(payload))
    try:
        out = huffman.decode(packed, code, n_values)
        assert out.size == n_values
    except ValueError:
        pass


@given(section=st.sampled_from(SECTION_ORDER),
       blob=st.binary(max_size=120),
       seed=st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_frame_section_substitution(section, blob, seed):
    """Swapping any single frame section for arbitrary bytes must not
    escape the ValueError contract."""
    rng = np.random.default_rng(seed)
    data = rng.random((5, 9)).astype(np.float32)
    comp = SZCompressor(1e-3)
    frame = comp.compress(data)
    sections = dict(frame.sections)
    sections[section] = blob
    try:
        out = comp.decompress(SZFrame(sections=sections, stats=frame.stats))
        assert isinstance(out, np.ndarray)
    except ACCEPTED:
        pass
    except OverflowError:
        pass


@given(blob=st.binary(max_size=300))
@settings(max_examples=80, deadline=None)
def test_image_meta_garbage(blob):
    try:
        ImageCodec.parse_meta(blob)
    except ValueError:
        pass


def test_authenticated_garbage_rejected_fast():
    sc = SecureCompressor("encr_huffman", 1e-3, key=KEY, authenticate=True)
    for blob in (b"", b"SECA", b"SECA" + bytes(31), b"SECA" + bytes(64)):
        with pytest.raises(ACCEPTED):
            sc.decompress(blob)
