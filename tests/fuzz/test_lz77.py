"""LZ77 frame fuzzing: hostile token streams must never escape
``ValueError``.

The LZ7H frame is parsed before any key material is involved, so an
attacker fully controls these bytes.  Decoding must reject (or decode
to *some* bytes) — never hang, overflow an allocation, or throw a
foreign exception type — and genuine frames must survive round-trip
no matter which corpus shape produced them.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import lz77

from tests.fuzz import corpus

_HEADER_SIZE = lz77._LZ_HEADER.size


@given(blob=st.binary(max_size=400))
@settings(max_examples=150, deadline=None)
def test_decompress_garbage(blob):
    try:
        lz77.decompress(blob)
    except ValueError:
        pass


@given(name=st.sampled_from(corpus.names()),
       seed=st.integers(0, 2**32 - 1),
       n_flips=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_bitflipped_frames_fail_closed(name, seed, n_flips):
    """Corrupting a real frame decodes to bytes or raises cleanly."""
    data = corpus.build(name)
    blob = bytearray(lz77.compress(data))
    rng = np.random.default_rng(seed)
    for bit in rng.choice(8 * len(blob), size=min(n_flips, len(blob)),
                          replace=False):
        blob[bit // 8] ^= 1 << (bit % 8)
    try:
        out = lz77.decompress(bytes(blob))
        assert isinstance(out, bytes)
    except ValueError:
        pass


@given(field=st.integers(0, 10), value=st.integers(0, 2**63 - 1))
@settings(max_examples=120, deadline=None)
def test_header_field_substitution(field, value):
    """Rewriting any single header field must not escape ValueError.

    This is the allocation-bomb check: raw_len / n_tokens / bit counts
    are attacker-controlled sizes, and every one must be bounded by
    cross-checks before an array that large is built.
    """
    blob = lz77.compress(corpus.build("text_log"))
    fields = list(lz77._LZ_HEADER.unpack_from(blob))
    # Field widths follow '<4sBBIIQQQQQQ': magic, two bytes, two u32,
    # six u64 — mask the fuzzed value into the field's range.
    if field == 0:
        fields[0] = struct.pack("<Q", value)[:4]
    elif field in (1, 2):
        fields[field] = value % 256
    elif field in (3, 4):
        fields[field] = value % 2**32
    else:
        fields[field] = value
    mutated = lz77._LZ_HEADER.pack(*fields) + blob[_HEADER_SIZE:]
    try:
        out = lz77.decompress(mutated)
        assert isinstance(out, bytes)
    except ValueError:
        pass


@given(name=st.sampled_from(corpus.names()),
       cut=st.integers(0, 300))
@settings(max_examples=60, deadline=None)
def test_truncated_frames_rejected(name, cut):
    blob = lz77.compress(corpus.build(name))
    truncated = blob[: max(0, len(blob) - cut)]
    if truncated == blob:
        assert lz77.decompress(truncated) == corpus.build(name)
        return
    with pytest.raises(ValueError):
        lz77.decompress(truncated)


@given(data=st.binary(max_size=3000))
@settings(max_examples=100, deadline=None)
def test_round_trip_arbitrary_bytes(data):
    assert lz77.decompress(lz77.compress(data)) == data
