"""SECB v2 framing fuzz: hostile archive files must open with
``ArchiveCorrupt`` (a ``ValueError``) or behave — never crash.

The header, footer and index are all parsed keylessly, so every byte
is attacker-controlled.  ``ArchiveStore.__init__`` is the single
parse entry point; these targets throw garbage, mutated headers,
mutated footers and bit-flipped index regions at it.
"""

import os
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive import ArchiveCorrupt, ArchiveStore
from repro.archive.store import _V2_FOOT, _V2_HEAD

from tests.fuzz import corpus

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def archive_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "seed.secb"
    store = ArchiveStore.create(str(path), key=KEY)
    store.add_bytes("log", corpus.build("text_log"), codec="lz77h")
    store.add_bytes("noise", corpus.build("random"), codec="store")
    with open(path, "rb") as fh:
        return fh.read()


def _open(tmp_path, blob):
    path = os.path.join(str(tmp_path), "fuzzed.secb")
    with open(path, "wb") as fh:
        fh.write(blob)
    return ArchiveStore(path, key=KEY)


@given(blob=st.binary(max_size=600))
@settings(max_examples=120, deadline=None)
def test_garbage_files(blob, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("g")
    try:
        _open(tmp, blob)
    except ArchiveCorrupt:
        pass


@given(field=st.integers(0, 3), value=st.integers(0, 2**63 - 1))
@settings(max_examples=80, deadline=None)
def test_footer_field_substitution(field, value, archive_bytes,
                                   tmp_path_factory):
    """Any rewritten footer field (offset, length, digest, magic) must
    be caught before the index is trusted."""
    tmp = tmp_path_factory.mktemp("f")
    fields = list(_V2_FOOT.unpack(archive_bytes[-_V2_FOOT.size:]))
    if field in (0, 1):
        fields[field] = value
    elif field == 2:
        fields[2] = struct.pack("<QQQQ", value, value, value, value)
    else:
        fields[3] = struct.pack("<Q", value)[:4]
    blob = archive_bytes[:-_V2_FOOT.size] + _V2_FOOT.pack(*fields)
    if blob == archive_bytes:
        _open(tmp, blob)  # identity rewrite must still open
        return
    with pytest.raises(ArchiveCorrupt):
        _open(tmp, blob)


@given(head=st.binary(min_size=_V2_HEAD.size, max_size=_V2_HEAD.size))
@settings(max_examples=60, deadline=None)
def test_header_substitution(head, archive_bytes, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("h")
    blob = head + archive_bytes[_V2_HEAD.size:]
    if blob == archive_bytes:
        _open(tmp, blob)
        return
    with pytest.raises(ArchiveCorrupt):
        _open(tmp, blob)


@given(seed=st.integers(0, 2**32 - 1), n_flips=st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_index_bitflips_detected_or_contained(seed, n_flips,
                                              archive_bytes,
                                              tmp_path_factory):
    """Flips inside the index region: either the parse rejects, or the
    parsed store still verifies/extracts defensively."""
    tmp = tmp_path_factory.mktemp("i")
    index_off, index_len, _, _ = _V2_FOOT.unpack(
        archive_bytes[-_V2_FOOT.size:]
    )
    rng = np.random.default_rng(seed)
    blob = bytearray(archive_bytes)
    for bit in rng.choice(index_len * 8, size=n_flips, replace=False):
        blob[index_off + bit // 8] ^= 1 << (bit % 8)
    try:
        store = _open(tmp, bytes(blob))
    except ArchiveCorrupt:
        return  # index digest caught it — the common case
    # Astronomically unlikely (SHA-256 collision), but the contract
    # still holds: reads fail closed rather than return wrong bytes.
    try:
        for name in store.names():
            store.extract_bytes(name)
    except (ArchiveCorrupt, ValueError):
        pass


@given(cut=st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_truncated_archives_rejected(cut, archive_bytes,
                                     tmp_path_factory):
    tmp = tmp_path_factory.mktemp("t")
    with pytest.raises(ArchiveCorrupt):
        _open(tmp, archive_bytes[:-cut])
