"""Run the library's docstring examples so the docs cannot rot."""

import doctest

import pytest

import repro
import repro.archive
import repro.core.pipeline
import repro.core.trace
import repro.crypto.aes
import repro.imagecodec.codec
import repro.imagecodec.pipeline
import repro.multilevel.codec
import repro.multilevel.pipeline
import repro.parallel
import repro.sz.compressor

MODULES = [
    repro,
    repro.archive,
    repro.core.pipeline,
    repro.core.trace,
    repro.crypto.aes,
    repro.imagecodec.codec,
    repro.imagecodec.pipeline,
    repro.multilevel.codec,
    repro.multilevel.pipeline,
    repro.parallel,
    repro.sz.compressor,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"


def test_trace_profile_example_runs(tmp_path):
    """examples/trace_profile.py must stay runnable end to end."""
    import os
    import subprocess
    import sys

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = os.path.join(repo, "examples", "trace_profile.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    proc = subprocess.run(
        [sys.executable, script],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "compress" in proc.stdout
    assert (tmp_path / "trace.json").exists()
    assert (tmp_path / "trace.chrome.json").exists()


def test_serve_client_example_runs(tmp_path):
    """examples/serve_client.py must stay runnable end to end."""
    import os
    import subprocess
    import sys

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = os.path.join(repo, "examples", "serve_client.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    proc = subprocess.run(
        [sys.executable, script, "--fields", "3", "--side", "16"],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "secp-stat/1" in proc.stdout
    assert "round trip max error" in proc.stdout
    assert "hit rate" in proc.stdout
