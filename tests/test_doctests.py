"""Run the library's docstring examples so the docs cannot rot."""

import doctest

import pytest

import repro
import repro.archive
import repro.core.pipeline
import repro.crypto.aes
import repro.imagecodec.codec
import repro.imagecodec.pipeline
import repro.multilevel.codec
import repro.multilevel.pipeline
import repro.parallel
import repro.sz.compressor

MODULES = [
    repro,
    repro.archive,
    repro.core.pipeline,
    repro.crypto.aes,
    repro.imagecodec.codec,
    repro.imagecodec.pipeline,
    repro.multilevel.codec,
    repro.multilevel.pipeline,
    repro.parallel,
    repro.sz.compressor,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
