"""docs/FORMAT.md cross-check: parse real containers with only ``struct``.

These tests re-implement the readers from the byte offsets documented
in docs/FORMAT.md — no repro parsing code — and run them against the
v1 golden fixtures and freshly written v3 frames.  If the code and the
spec ever disagree, one of these fails.
"""

import json
import os
import struct
import zlib

import numpy as np
import pytest

from repro.sz.compressor import SZCompressor

HERE = os.path.dirname(os.path.abspath(__file__))
V1_DIR = os.path.join(HERE, "data", "v1_containers")
FORMAT_MD = os.path.join(HERE, os.pardir, "docs", "FORMAT.md")

with open(os.path.join(V1_DIR, "manifest.json")) as fh:
    MANIFEST = json.load(fh)

# Documented registries (FORMAT.md §1).
SCHEME_IDS = {"none": 0, "cmpr_encr": 1, "encr_quant": 2,
              "encr_huffman": 3, "encr_huffman_raw": 4}
SECTION_NAMES = {0: "meta", 1: "tree", 2: "codes", 3: "unpred",
                 4: "coeffs", 5: "exact", 6: "cipher", 7: "zblob",
                 8: "aux"}

CONTAINER_HEADER = struct.Struct("<4sBBBB16sB")
ENTRY = struct.Struct("<BQ")
FRAME_META = struct.Struct("<4sBBBBBBIdqQQ")
TREE_HEADER = struct.Struct("<IB")
LANE_HEADER = struct.Struct("<4sHII")


def parse_sections(blob, offset, n_sections):
    """Walk a section table + payloads exactly as FORMAT.md documents."""
    table = []
    for _ in range(n_sections):
        sid, length = ENTRY.unpack_from(blob, offset)
        assert sid in SECTION_NAMES, f"undocumented section id {sid}"
        table.append((SECTION_NAMES[sid], length))
        offset += ENTRY.size
    sections = {}
    for name, length in table:
        sections[name] = blob[offset:offset + length]
        offset += length
    return sections, offset


def parse_inner_blob(blob):
    """Parse a pack_sections framing: count byte, table, payloads."""
    (n_sections,) = struct.unpack_from("<B", blob)
    sections, end = parse_sections(blob, 1, n_sections)
    assert end == len(blob), "trailing bytes after inner sections"
    return sections


def parse_frame_meta(meta):
    fields = FRAME_META.unpack_from(meta)
    (magic, version, dtype, predictor, flags, ndim,
     block_size, radius, eb, modal, n_code_bits, n_unpred) = fields
    assert magic == b"SZfr"
    assert 2 <= version <= 3
    assert dtype in (0, 1)
    assert predictor in (0, 1, 2)
    # flags bitfield (FORMAT.md §3): 0x01 = PW_REL, 0x02 = DEPTH_LIMITED
    assert flags & ~0x03 == 0
    shape = struct.unpack_from(f"<{ndim}Q", meta, FRAME_META.size)
    assert len(meta) == FRAME_META.size + 8 * ndim
    return {"version": version, "dtype": dtype, "shape": shape,
            "n_code_bits": n_code_bits, "n_unpred": n_unpred,
            "radius": radius, "eb": eb}


@pytest.mark.parametrize("scheme", sorted(MANIFEST))
def test_v1_container_header_matches_spec(scheme):
    """The 25-byte header fields sit exactly where FORMAT.md says."""
    with open(os.path.join(V1_DIR, f"{scheme}.secz"), "rb") as fh:
        blob = fh.read()
    magic, version, scheme_id, mode_id, iv_len, iv16, n_sections = (
        CONTAINER_HEADER.unpack_from(blob)
    )
    assert magic == b"SECZ"
    assert version == 1  # fixtures predate the multi-lane format
    assert scheme_id == SCHEME_IDS[scheme]
    assert mode_id in (0, 1)
    # The pipeline writes a fresh IV regardless of scheme (unused
    # by `none`, but the header slot is always populated).
    assert iv_len == 16
    # Zero-padding invariant: bytes past iv_len are \x00.
    assert iv16[iv_len:] == b"\x00" * (16 - iv_len)

    # The section table + payloads must account for every byte.
    sections, end = parse_sections(blob, CONTAINER_HEADER.size, n_sections)
    assert end == len(blob)
    # Scheme → emitted sections table from FORMAT.md §1.
    expected = {"cmpr_encr": {"cipher"}}.get(scheme, {"zblob"})
    assert set(sections) == expected


def test_v1_none_scheme_decodes_with_struct_and_zlib_only():
    """Follow the documented layers all the way to the frame meta."""
    with open(os.path.join(V1_DIR, "none.secz"), "rb") as fh:
        blob = fh.read()
    _, _, _, _, _, _, n_sections = CONTAINER_HEADER.unpack_from(blob)
    sections, _ = parse_sections(blob, CONTAINER_HEADER.size, n_sections)

    inner = parse_inner_blob(zlib.decompress(sections["zblob"]))
    # All seven frame sections, names straight from the id registry.
    assert set(inner) == {"meta", "tree", "codes", "unpred", "coeffs",
                          "exact", "aux"}

    info = parse_frame_meta(inner["meta"])
    assert list(info["shape"]) == MANIFEST["none"]["decoded_shape"]
    assert info["dtype"] == 0  # float32, per the manifest
    assert MANIFEST["none"]["decoded_dtype"] == "float32"
    # v1 fixtures carry the single-stream frame: codes byte length is
    # exactly ceil(n_code_bits / 8) (FORMAT.md §6).
    assert len(inner["codes"]) == (info["n_code_bits"] + 7) // 8

    # Bare tree section (§4): header, varints, trailing length bytes.
    n_symbols, max_len = TREE_HEADER.unpack_from(inner["tree"])
    assert 0 < n_symbols <= info["radius"] * 2 + 2
    assert 1 <= max_len <= 24
    lengths = inner["tree"][-n_symbols:]
    assert max(lengths) == max_len
    assert min(lengths) >= 1


def test_v1_encr_huffman_keeps_only_tree_encrypted():
    """§1: encr_huffman's inner blob is cipher + six plaintext sections."""
    with open(os.path.join(V1_DIR, "encr_huffman.secz"), "rb") as fh:
        blob = fh.read()
    _, _, _, _, _, _, n_sections = CONTAINER_HEADER.unpack_from(blob)
    sections, _ = parse_sections(blob, CONTAINER_HEADER.size, n_sections)
    inner = parse_inner_blob(zlib.decompress(sections["zblob"]))
    assert set(inner) == {"cipher", "meta", "codes", "unpred", "coeffs",
                          "exact", "aux"}
    # The plaintext meta still parses — only the tree is ciphertext.
    info = parse_frame_meta(inner["meta"])
    assert list(info["shape"]) == MANIFEST["encr_huffman"]["decoded_shape"]
    # CBC ciphertext: a whole number of AES blocks.
    assert len(inner["cipher"]) % 16 == 0 and len(inner["cipher"]) > 0


def test_fresh_v3_frame_lane_table_matches_spec():
    """Write a multi-lane frame and parse §3/§5/§6 byte-by-byte."""
    rng = np.random.default_rng(7)
    data = np.cumsum(rng.standard_normal((48, 48, 48)), axis=-1)
    data = data.astype(np.float32)
    comp = SZCompressor(error_bound=1e-3, huffman_lanes=8,
                        anchor_stride=64)
    frame = comp.compress(data)

    info = parse_frame_meta(frame.sections["meta"])
    assert info["version"] == 3
    assert info["shape"] == (48, 48, 48)

    tree = frame.sections["tree"]
    magic, n_lanes, stride, varint_len = LANE_HEADER.unpack_from(tree)
    assert magic == b"HLT1"
    assert n_lanes == 8
    assert stride == 64

    off = LANE_HEADER.size
    lane_bits = np.frombuffer(tree, dtype="<i8", offset=off, count=n_lanes)
    off += 8 * n_lanes
    # §6: codes is the byte-padded lane streams, concatenated.
    assert len(frame.sections["codes"]) == int(((lane_bits + 7) // 8).sum())
    # n_code_bits in the meta is the sum of the per-lane bit lengths.
    assert info["n_code_bits"] == int(lane_bits.sum())

    off += varint_len
    # The bare tree (§4) follows the anchor block, verbatim.
    n_symbols, max_len = TREE_HEADER.unpack_from(tree, off)
    assert n_symbols >= 1 and 1 <= max_len <= 24
    lengths = tree[-n_symbols:]
    assert max(lengths) == max_len

    # Lane split rule (§5): np.array_split over the coded values.
    n_values = data.size - info["n_unpred"]
    base, extra = divmod(n_values, n_lanes)
    sizes = np.full(n_lanes, base, dtype=np.int64)
    sizes[:extra] += 1
    # Anchor count per lane: max(0, ceil(size/stride) - 1), all deltas
    # strictly positive varints — just confirm the block is non-empty
    # exactly when an anchor exists.
    expect_anchors = int(np.maximum(0, -(-sizes // stride) - 1).sum())
    assert (varint_len > 0) == (expect_anchors > 0)

    # Round-trip through the real decoder to prove the hand-parse
    # looked at the same bytes the library does.
    out = comp.decompress(frame)
    assert np.max(np.abs(out - data)) <= 1e-3 * 1.0001


def test_fresh_v2_frame_is_single_stream():
    """Small payloads write the legacy v2 frame (§3): bare tree, one
    stream, byte length ceil(n_code_bits/8)."""
    data = np.linspace(0, 1, 4096, dtype=np.float32).reshape(16, 16, 16)
    comp = SZCompressor(error_bound=1e-3)
    frame = comp.compress(data)
    info = parse_frame_meta(frame.sections["meta"])
    assert info["version"] == 2
    assert len(frame.sections["codes"]) == (info["n_code_bits"] + 7) // 8
    n_symbols, max_len = TREE_HEADER.unpack_from(frame.sections["tree"])
    assert n_symbols >= 1 and max_len <= 24


def test_secb_fixture():
    """§10: re-parse the checked-in multi-field SECB archive with only
    struct/zlib — index walk, partial-read offsets, and the per-field
    SECZ containers inside."""
    import hashlib

    secb_dir = os.path.join(HERE, "data", "secb")
    with open(os.path.join(secb_dir, "manifest.json")) as fh:
        manifest = json.load(fh)
    with open(os.path.join(secb_dir, "archive.secb"), "rb") as fh:
        blob = fh.read()
    assert hashlib.sha256(blob).hexdigest() == manifest["archive_sha256"]

    # Header: '<4sI' magic + field count.
    magic, count = struct.unpack_from("<4sI", blob)
    assert magic == b"SECB"
    assert count == len(manifest["fields"])

    # Index walk: u16 name length, name, u64 container length.
    offset = struct.calcsize("<4sI")
    entries = []
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        name = blob[offset:offset + name_len].decode("utf-8")
        offset += name_len
        (length,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        entries.append((name, length))
    assert {name for name, _ in entries} == set(manifest["fields"])

    # Containers back-to-back, accounting for every byte of the blob.
    for name, length in entries:
        container = blob[offset:offset + length]
        offset += length
        # Each field is a full SECZ container (§1) under one scheme.
        (cmagic, version, scheme_id, mode_id, iv_len, iv16,
         n_sections) = CONTAINER_HEADER.unpack_from(container)
        assert cmagic == b"SECZ"
        assert scheme_id == SCHEME_IDS[manifest["scheme"]]
        assert iv_len == 16
        sections, end = parse_sections(
            container, CONTAINER_HEADER.size, n_sections
        )
        assert end == len(container)
        # encr_huffman: plaintext zblob wrapping cipher + six sections,
        # so the field's frame meta parses without the key.
        inner = parse_inner_blob(zlib.decompress(sections["zblob"]))
        info = parse_frame_meta(inner["meta"])
        assert list(info["shape"]) == manifest["fields"][name]["shape"]
    assert offset == len(blob), "archive length must match its index"

    # The real reader agrees with the hand-parse: partial reads
    # reproduce the pinned plaintext digests.
    from repro.archive import SecureArchive

    arch = SecureArchive(
        scheme=manifest["scheme"], key=bytes.fromhex(manifest["key_hex"])
    )
    for name, meta in manifest["fields"].items():
        out = arch.unpack_field(blob, name)
        assert list(out.shape) == meta["shape"]
        assert str(out.dtype) == meta["dtype"]
        digest = hashlib.sha256(
            np.ascontiguousarray(out).tobytes()
        ).hexdigest()
        assert digest == meta["decoded_sha256"]


V2_HEAD = struct.Struct("<4sBBH")
V2_COUNTS = struct.Struct("<II")
V2_BLOB = struct.Struct("<32s32sQQQIBB16s")
V2_ENTRY = struct.Struct("<BBBdQ32sI")
V2_FOOT = struct.Struct("<QQ32s4s")
LZ_HEADER = struct.Struct("<4sBBIIQQQQQQ")


def parse_secb_v2(blob):
    """Walk a SECB v2 archive exactly as FORMAT.md §10.2 documents —
    struct/hashlib only, no repro parsing code."""
    import hashlib

    magic, version, flags, reserved = V2_HEAD.unpack_from(blob)
    assert magic == b"SEB2"
    assert version == 2
    assert flags == reserved == 0
    index_off, index_len, index_sha, foot_magic = V2_FOOT.unpack(
        blob[-V2_FOOT.size:]
    )
    assert foot_magic == b"SEB2"
    assert index_off + index_len + V2_FOOT.size == len(blob)
    index = blob[index_off:index_off + index_len]
    assert hashlib.sha256(index).digest() == index_sha

    n_blobs, n_entries = V2_COUNTS.unpack_from(index)
    off = V2_COUNTS.size
    blobs = {}
    for _ in range(n_blobs):
        rec = V2_BLOB.unpack_from(index, off)
        off += V2_BLOB.size
        (raw_sha, stored_sha, b_off, stored_len, raw_len,
         refcount, codec, enc, iv) = rec
        # Stored bytes hash to the recorded digest — keyless audit.
        stored = blob[b_off:b_off + stored_len]
        assert hashlib.sha256(stored).digest() == stored_sha
        assert codec in (0, 1, 2, 3) and enc in (0, 1, 2)
        blobs[raw_sha] = {"refcount": refcount, "raw_len": raw_len}
    entries = {}
    for _ in range(n_entries):
        (name_len,) = struct.unpack_from("<H", index, off)
        off += 2
        name = index[off:off + name_len].decode("utf-8")
        off += name_len
        (kind, scheme_id, codec, eb, raw_size, content_sha,
         n_chunks) = V2_ENTRY.unpack_from(index, off)
        off += V2_ENTRY.size
        digests = [index[off + i * 32:off + (i + 1) * 32]
                   for i in range(n_chunks)]
        off += 32 * n_chunks
        assert kind in (0, 1)
        assert scheme_id in SCHEME_IDS.values()
        entries[name] = {"kind": kind, "raw_size": raw_size,
                         "digests": digests, "content_sha": content_sha}
    assert off == len(index), "index must account for every byte"
    for name, ent in entries.items():
        for digest in ent["digests"]:
            assert digest in blobs, f"{name}: dangling digest"
        assert sum(blobs[d]["raw_len"] for d in ent["digests"]) == \
            ent["raw_size"]
    refs = {}
    for ent in entries.values():
        for digest in ent["digests"]:
            refs[digest] = refs.get(digest, 0) + 1
    for digest, meta in blobs.items():
        assert meta["refcount"] == refs.get(digest, 0)
    return blobs, entries


def test_fresh_secb_v2_archive_matches_spec(tmp_path):
    """Write a v2 archive with the real store and re-parse it §10.2
    byte-by-byte, including the store-once dedup it promises."""
    from repro.archive import ArchiveStore

    path = str(tmp_path / "fresh.secb")
    store = ArchiveStore.create(path, key=bytes(range(16)))
    # Unique (non-periodic) content: every chunk is distinct, so the
    # only dedup comes from the duplicated entry — refcounts pin at 2.
    shard = np.random.default_rng(5).integers(
        0, 256, 76_800, dtype=np.uint8
    ).tobytes()
    store.add_bytes("a", shard, codec="lz77h")
    store.add_bytes("b", shard, codec="lz77h")  # dedup: same blobs
    with open(path, "rb") as fh:
        blob = fh.read()
    blobs, entries = parse_secb_v2(blob)
    assert set(entries) == {"a", "b"}
    assert entries["a"]["digests"] == entries["b"]["digests"]
    assert all(meta["refcount"] == 2 for meta in blobs.values())


def test_secb_v2_fixture():
    """§10.2: re-parse the checked-in SECB v2 archive with struct and
    hashlib only, then agree with the real reader on every entry."""
    import hashlib

    from repro.archive import ArchiveStore

    v2_dir = os.path.join(HERE, "data", "secb_v2")
    with open(os.path.join(v2_dir, "manifest.json")) as fh:
        manifest = json.load(fh)
    with open(os.path.join(v2_dir, "archive.secb"), "rb") as fh:
        blob = fh.read()
    assert hashlib.sha256(blob).hexdigest() == manifest["archive_sha256"]

    blobs, entries = parse_secb_v2(blob)
    assert set(entries) == set(manifest["entries"])
    # Store-once dedup: the duplicated shard shares every chunk digest,
    # so those blobs carry refcount 2.
    assert entries["shard-0"]["digests"] == entries["shard-1"]["digests"]
    for digest in entries["shard-0"]["digests"]:
        assert blobs[digest]["refcount"] == 2
    stats = manifest["stats"]
    assert len(blobs) == stats["blobs"]
    assert sum(e["raw_size"] for e in entries.values()) == \
        stats["raw_bytes"]

    # The real reader reproduces the pinned plaintext digests.
    store = ArchiveStore(
        os.path.join(v2_dir, "archive.secb"),
        key=bytes.fromhex(manifest["key_hex"]),
        cipher_mode=manifest["cipher_mode"],
    )
    assert store.verify(deep=True) == []
    for name, meta in manifest["entries"].items():
        if meta["kind"] == "field":
            out = store.extract_field(name)
            assert list(out.shape) == meta["shape"]
            assert str(out.dtype) == meta["dtype"]
            digest = hashlib.sha256(out.tobytes()).hexdigest()
            assert digest == meta["decoded_sha256"]
        else:
            digest = hashlib.sha256(store.extract_bytes(name)).hexdigest()
            assert digest == meta["sha256"]


def test_fresh_lz7h_frame_matches_spec():
    """Parse an LZ7H frame header (§11) with struct only and check the
    documented cross-invariants."""
    from repro.sz import lz77

    data = b"the quick brown fox jumps over the lazy dog " * 200
    blob = lz77.compress(data)
    (magic, version, reserved, tok_tree_len, dst_tree_len, raw_len,
     n_tokens, n_matches, tok_bits, dst_bits, extra_bits) = (
        LZ_HEADER.unpack_from(blob)
    )
    assert magic == b"LZ7H"
    assert version == 1 and reserved == 0
    assert raw_len == len(data)
    assert n_matches <= n_tokens
    # Frame length is fully determined by the header (§11).
    expected = (LZ_HEADER.size + tok_tree_len + dst_tree_len
                + (tok_bits + 7) // 8 + (dst_bits + 7) // 8
                + (extra_bits + 7) // 8)
    assert len(blob) == expected
    # Both trees start with the bare tree header (§4).
    n_sym, max_len = TREE_HEADER.unpack_from(blob, LZ_HEADER.size)
    assert n_sym >= 1 and 1 <= max_len <= 24
    assert lz77.decompress(blob) == data


def test_format_md_documents_the_live_constants():
    """The spec must quote the real struct strings, magics and ids."""
    with open(FORMAT_MD) as fh:
        text = fh.read()
    for needle in (
        "<4sBBBB16sB",    # container header
        "<4sBBBBBBIdqQQ", # frame meta
        "<4sHII",         # lane header
        "<IB",            # bare tree header
        "<BQ",            # section entry / byteplane header
        "<4sI",           # SECB v1 archive header
        "<4sBBH",         # SECB v2 header
        "<II",            # SECB v2 index counts
        "<32s32sQQQIBB16s",  # SECB v2 blob record
        "<BBBdQ32sI",     # SECB v2 entry record
        "<QQ32s4s",       # SECB v2 footer
        "<4sBBIIQQQQQQ",  # LZ7H frame header
        "SECZ", "SECA", "SECM", "SECB", "SEB2", "SZfr", "HLT1", "LZ7H",
        "repro.secz/mac-key/v1",
    ):
        assert needle in text, f"FORMAT.md no longer documents {needle!r}"
    # Section and scheme registries, id and name both present.
    for name, sid in SCHEME_IDS.items():
        assert name in text
    for sid, name in SECTION_NAMES.items():
        assert f"`{name}`" in text
