"""DCT / quantization / zigzag building blocks."""

import numpy as np
import pytest

from repro.imagecodec import transform


class TestQualityTable:
    def test_q50_is_annex_k(self):
        assert np.array_equal(transform.quality_scaled_q(50),
                              transform.LUMINANCE_Q)

    def test_lower_quality_coarser(self):
        q20 = transform.quality_scaled_q(20)
        q80 = transform.quality_scaled_q(80)
        assert (q20 >= q80).all()
        assert (q20 > q80).any()

    def test_bounds(self):
        for quality in (1, 100):
            q = transform.quality_scaled_q(quality)
            assert q.min() >= 1.0
            assert q.max() <= 255.0

    def test_rejects_bad_quality(self):
        for bad in (0, 101, -5):
            with pytest.raises(ValueError):
                transform.quality_scaled_q(bad)


class TestBlockify:
    def test_roundtrip_exact_multiple(self):
        img = np.arange(16 * 24, dtype=np.float64).reshape(16, 24)
        blocks, padded = transform.blockify(img)
        assert blocks.shape == (6, 8, 8)
        assert padded == (16, 24)
        back = transform.unblockify(blocks, padded, img.shape)
        assert np.array_equal(back, img)

    def test_roundtrip_with_padding(self):
        img = np.random.default_rng(0).random((13, 19))
        blocks, padded = transform.blockify(img)
        assert padded == (16, 24)
        back = transform.unblockify(blocks, padded, img.shape)
        assert np.allclose(back, img)

    def test_first_block_is_corner(self):
        img = np.arange(64 * 2, dtype=np.float64).reshape(8, 16)
        blocks, _ = transform.blockify(img)
        assert np.array_equal(blocks[0], img[:, :8])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            transform.blockify(np.zeros((4, 4, 4)))


class TestDct:
    def test_orthonormal_roundtrip(self):
        rng = np.random.default_rng(1)
        blocks = rng.random((10, 8, 8))
        back = transform.idct_blocks(transform.dct_blocks(blocks))
        assert np.allclose(back, blocks, atol=1e-12)

    def test_constant_block_is_pure_dc(self):
        blocks = np.full((1, 8, 8), 5.0)
        coeffs = transform.dct_blocks(blocks)
        assert coeffs[0, 0, 0] == pytest.approx(40.0)  # 5 * 8 (ortho norm)
        assert np.abs(coeffs[0].reshape(-1)[1:]).max() < 1e-12

    def test_parseval(self):
        rng = np.random.default_rng(2)
        blocks = rng.random((5, 8, 8))
        coeffs = transform.dct_blocks(blocks)
        assert np.allclose(
            (blocks**2).sum(axis=(1, 2)), (coeffs**2).sum(axis=(1, 2))
        )


class TestZigzag:
    def test_permutation(self):
        assert sorted(transform.ZIGZAG.tolist()) == list(range(64))

    def test_inverse(self):
        arr = np.arange(64)
        assert np.array_equal(arr[transform.ZIGZAG][transform.INV_ZIGZAG], arr)

    def test_jpeg_prefix(self):
        # The canonical first entries of the JPEG zigzag scan.
        flat = transform.ZIGZAG[:10]
        coords = [(int(i) // 8, int(i) % 8) for i in flat]
        assert coords == [
            (0, 0), (0, 1), (1, 0), (2, 0), (1, 1),
            (0, 2), (0, 3), (1, 2), (2, 1), (3, 0),
        ]
