"""SecureImageCompressor: the schemes over the image codec."""

import numpy as np
import pytest

from repro.core.integrity import AuthenticationError
from repro.imagecodec import ImageCodec, SecureImageCompressor, synthetic_image


@pytest.fixture(scope="module")
def image():
    return synthetic_image("scene", 96)


def _reference_decode(image, quality=75):
    codec = ImageCodec(quality)
    sections, _ = codec.encode(image)
    return codec.decode(sections)


class TestSchemesOnImages:
    @pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                        "encr_huffman", "encr_huffman_raw"])
    def test_roundtrip_matches_plain_codec(self, scheme, image, key):
        sic = SecureImageCompressor(scheme, 75, key=key)
        out = sic.decompress(sic.compress(image).container)
        assert np.array_equal(out, _reference_decode(image))

    def test_encrypted_bytes_ordering(self, image, key):
        sizes = {}
        for scheme in ("encr_huffman", "encr_quant", "cmpr_encr"):
            sic = SecureImageCompressor(scheme, 75, key=key)
            sizes[scheme] = sic.compress(image).encrypted_bytes
        assert 0 < sizes["encr_huffman"] < sizes["encr_quant"]
        assert sizes["encr_quant"] <= sizes["cmpr_encr"]

    def test_encr_huffman_encrypts_only_tree(self, image, key):
        sic = SecureImageCompressor("encr_huffman", 75, key=key)
        result = sic.compress(image)
        assert result.encrypted_bytes == result.stats.section_bytes["tree"]

    def test_wrong_key_fails(self, image, key):
        writer = SecureImageCompressor("encr_huffman", 75, key=key)
        blob = writer.compress(image).container
        reader = SecureImageCompressor("encr_huffman", 75, key=bytes(16))
        with pytest.raises(ValueError):
            out = reader.decompress(blob)
            if np.array_equal(out, _reference_decode(image)):
                raise AssertionError("wrong key decoded the image")

    def test_scheme_mismatch_detected(self, image, key):
        writer = SecureImageCompressor("encr_huffman", 75, key=key)
        reader = SecureImageCompressor("cmpr_encr", 75, key=key)
        with pytest.raises(ValueError, match="scheme"):
            reader.decompress(writer.compress(image).container)

    def test_authenticated_image(self, image, key):
        sic = SecureImageCompressor("encr_huffman", 75, key=key,
                                    authenticate=True)
        blob = sic.compress(image).container
        assert np.array_equal(sic.decompress(blob), _reference_decode(image))
        tampered = bytearray(blob)
        tampered[len(blob) // 2] ^= 1
        with pytest.raises((AuthenticationError, ValueError)):
            sic.decompress(bytes(tampered))

    def test_key_required(self):
        with pytest.raises(ValueError, match="key"):
            SecureImageCompressor("encr_huffman", 75)

    def test_ctr_mode(self, image, key):
        sic = SecureImageCompressor("cmpr_encr", 75, key=key,
                                    cipher_mode="ctr")
        out = sic.decompress(sic.compress(image).container)
        assert np.array_equal(out, _reference_decode(image))


class TestEncrQuantImpactOnImages:
    def test_cr_collapse_transfers_to_images(self, key):
        """The paper's Encr-Quant caveat is codec-agnostic: a
        compressible image loses CR when its token stream is encrypted
        before zlib."""
        img = synthetic_image("gradient", 128)
        sizes = {}
        for scheme in ("none", "encr_quant", "encr_huffman"):
            sic = SecureImageCompressor(
                scheme, 75, key=key if scheme != "none" else None
            )
            sizes[scheme] = sic.compress(img).compressed_bytes
        assert sizes["encr_quant"] > 1.2 * sizes["none"]
        # Encr-Huffman pays only the fixed CBC-padding/zlib-wrapper cost
        # (a gradient image compresses to ~166 bytes total here).
        assert sizes["encr_huffman"] <= sizes["none"] + 64
