"""The JPEG-like codec: roundtrips, token machinery, quality behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import psnr
from repro.imagecodec import ImageCodec, synthetic_image
from repro.imagecodec.codec import EOB, ZRL, _detokenize, _tokenize
from repro.imagecodec.testimages import IMAGE_NAMES


class TestTokenizer:
    def test_empty_block_is_just_eob(self):
        ac = np.zeros((1, 63), dtype=np.int64)
        tokens, escapes = _tokenize(ac)
        assert tokens.tolist() == [EOB]
        assert escapes.size == 0

    def test_single_coefficient(self):
        ac = np.zeros((1, 63), dtype=np.int64)
        ac[0, 4] = -7
        tokens, _ = _tokenize(ac)
        assert tokens.tolist() == [(4 << 12) | (-7 + 2048), EOB]

    def test_long_zero_run_uses_zrl(self):
        ac = np.zeros((1, 63), dtype=np.int64)
        ac[0, 40] = 3
        tokens, _ = _tokenize(ac)
        assert tokens.tolist() == [ZRL, ZRL, (8 << 12) | (3 + 2048), EOB]

    def test_escape_for_large_values(self):
        ac = np.zeros((1, 63), dtype=np.int64)
        ac[0, 0] = 100_000
        tokens, escapes = _tokenize(ac)
        assert tokens.tolist() == [0, EOB]  # run 0, value slot 0 = escape
        assert escapes.tolist() == [100_000]

    def test_roundtrip_dense(self):
        rng = np.random.default_rng(0)
        ac = rng.integers(-3000, 3000, size=(20, 63)).astype(np.int64)
        tokens, escapes = _tokenize(ac)
        assert np.array_equal(_detokenize(tokens, escapes, 20), ac)

    def test_roundtrip_sparse(self):
        rng = np.random.default_rng(1)
        ac = np.zeros((50, 63), dtype=np.int64)
        mask = rng.random(ac.shape) > 0.95
        ac[mask] = rng.integers(-100, 100, size=int(mask.sum()))
        tokens, escapes = _tokenize(ac)
        assert np.array_equal(_detokenize(tokens, escapes, 50), ac)

    def test_detokenize_rejects_corruption(self):
        ac = np.zeros((2, 63), dtype=np.int64)
        ac[0, 5] = 1
        tokens, escapes = _tokenize(ac)
        with pytest.raises(ValueError):
            _detokenize(tokens[:-1], escapes, 2)  # missing final EOB
        with pytest.raises(ValueError):
            _detokenize(tokens, escapes, 1)  # extra block in stream
        with pytest.raises(ValueError):
            _detokenize(tokens, np.array([9], dtype=np.int64), 2)

    @given(seed=st.integers(0, 2**32 - 1), n_blocks=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        ac = np.zeros((n_blocks, 63), dtype=np.int64)
        mask = rng.random(ac.shape) > 0.8
        ac[mask] = rng.integers(-5000, 5000, size=int(mask.sum()))
        tokens, escapes = _tokenize(ac)
        assert np.array_equal(_detokenize(tokens, escapes, n_blocks), ac)


class TestCodec:
    @pytest.mark.parametrize("name", IMAGE_NAMES)
    def test_roundtrip_shape_and_range(self, name):
        img = synthetic_image(name, 64)
        codec = ImageCodec(80)
        sections, stats = codec.encode(img)
        out = codec.decode(sections)
        assert out.shape == img.shape
        assert stats.n_blocks == 64
        assert psnr(img, out) > 25.0

    def test_odd_dimensions(self):
        img = synthetic_image("scene", 64)[:53, :47]
        codec = ImageCodec(75)
        sections, _ = codec.encode(img)
        out = codec.decode(sections)
        assert out.shape == (53, 47)

    def test_quality_monotonic_psnr(self):
        img = synthetic_image("scene", 96)
        psnrs = []
        for quality in (20, 60, 95):
            codec = ImageCodec(quality)
            sections, _ = codec.encode(img)
            psnrs.append(psnr(img, codec.decode(sections)))
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_quality_size_tradeoff(self):
        img = synthetic_image("texture", 96)
        sizes = []
        for quality in (20, 95):
            sections, _ = ImageCodec(quality).encode(img)
            sizes.append(sum(len(v) for v in sections.values()))
        assert sizes[0] < sizes[1]

    def test_gradient_compresses_better_than_texture(self):
        codec = ImageCodec(75)
        smooth, _ = codec.encode(synthetic_image("gradient", 96))
        noisy, _ = codec.encode(synthetic_image("texture", 96))
        assert (
            sum(map(len, smooth.values())) < sum(map(len, noisy.values()))
        )

    def test_sections_are_scheme_compatible(self):
        sections, _ = ImageCodec(75).encode(synthetic_image("scene", 64))
        assert set(sections) == {
            "meta", "tree", "codes", "unpred", "coeffs", "exact", "aux"
        }

    def test_rejects_bad_input(self):
        codec = ImageCodec(75)
        with pytest.raises(ValueError):
            codec.encode(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            codec.encode(np.zeros((0, 8)))

    def test_meta_validation(self):
        sections, _ = ImageCodec(75).encode(synthetic_image("scene", 64))
        bad = bytearray(sections["meta"])
        bad[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            ImageCodec.parse_meta(bytes(bad))
        with pytest.raises(ValueError, match="length"):
            ImageCodec.parse_meta(sections["meta"][:-1])

    def test_deterministic(self):
        img = synthetic_image("document", 64)
        a, _ = ImageCodec(75).encode(img)
        b, _ = ImageCodec(75).encode(img)
        assert a == b
