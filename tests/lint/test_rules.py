"""Per-rule fixture tests: every rule passes its good snippet and
fires on its bad one.

Each case copies a fixture from ``tests/lint/fixtures/`` into a tiny
synthetic repo at the relpath the rule scopes to, injects synthetic
doc/fixture registries into :class:`RepoContext`, and runs just that
rule.
"""

from pathlib import Path

import pytest

from repro.lint.rules import ALL_RULES
from repro.lint.rules.counters import CounterRegistryRule
from repro.lint.rules.crypto import CryptoHygieneRule
from repro.lint.rules.dtype import DtypeDisciplineRule
from repro.lint.rules.formats import FormatSpecRule
from repro.lint.rules.hygiene import (
    AssertStmtRule,
    BareExceptRule,
    MutableDefaultRule,
    UnusedImportRule,
)
from repro.lint.rules.spans import SpanRegistryRule
from repro.lint.walker import LintRunner, RepoContext

FIXTURES = Path(__file__).parent / "fixtures"

#: rule class, fixture stem, relpath the snippet lands at, and the
#: RepoContext injections the rule's ground truth comes from.
CASES = [
    (
        CounterRegistryRule, "counter_registry", "src/repro/sz/mod.py",
        dict(
            known_counters=frozenset({"test.known"}),
            documented_counters=frozenset({"test.known"}),
        ),
    ),
    (
        SpanRegistryRule, "span_registry", "src/repro/core/mod.py",
        dict(
            documented_spans=frozenset({"compress", "quantize"}),
            fixture_spans=frozenset({"compress"}),
        ),
    ),
    (
        FormatSpecRule, "format_spec", "src/repro/core/container.py",
        dict(
            documented_structs=frozenset({"IB"}),
            documented_magics=frozenset({"SECZ"}),
        ),
    ),
    (CryptoHygieneRule, "crypto_hygiene", "src/repro/crypto/mod.py", {}),
    (DtypeDisciplineRule, "dtype_discipline", "src/repro/sz/huffman.py", {}),
    (BareExceptRule, "bare_except", "src/repro/io.py", {}),
    (MutableDefaultRule, "mutable_default", "src/repro/io.py", {}),
    (AssertStmtRule, "assert_stmt", "src/repro/io.py", {}),
    (UnusedImportRule, "unused_import", "src/repro/io.py", {}),
]


def make_repo(tmp_path: Path, relpath: str, fixture: str,
              **registries) -> tuple[RepoContext, Path]:
    root = tmp_path / "repo"
    (root / "docs").mkdir(parents=True, exist_ok=True)
    (root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    dest = root / relpath
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text((FIXTURES / fixture).read_text())
    return RepoContext(root, **registries), dest


def run_rule(rule_cls, repo: RepoContext, target: Path):
    return LintRunner([rule_cls()], repo).run([target])


def test_cases_cover_every_shipped_rule():
    assert {cls for cls, *_ in CASES} == set(ALL_RULES)


@pytest.mark.parametrize(
    "rule_cls, stem, relpath, registries", CASES,
    ids=[cls.name for cls, *_ in CASES],
)
def test_good_fixture_passes(rule_cls, stem, relpath, registries, tmp_path):
    repo, target = make_repo(tmp_path, relpath, f"{stem}_good.py", **registries)
    report = run_rule(rule_cls, repo, target)
    assert report.findings == [], report.format_text()
    assert report.exit_code == 0


@pytest.mark.parametrize(
    "rule_cls, stem, relpath, registries", CASES,
    ids=[cls.name for cls, *_ in CASES],
)
def test_bad_fixture_fires(rule_cls, stem, relpath, registries, tmp_path):
    repo, target = make_repo(tmp_path, relpath, f"{stem}_bad.py", **registries)
    report = run_rule(rule_cls, repo, target)
    assert report.findings, f"{rule_cls.name} did not fire on {stem}_bad.py"
    assert report.exit_code == 1
    assert all(f.rule == rule_cls.name for f in report.findings)
    assert all(f.line > 0 for f in report.findings)


def test_crypto_bad_fixture_finds_each_category(tmp_path):
    repo, target = make_repo(
        tmp_path, "src/repro/crypto/mod.py", "crypto_hygiene_bad.py"
    )
    messages = " | ".join(
        f.message for f in run_rule(CryptoHygieneRule, repo, target).findings
    )
    assert "import of 'random'" in messages
    assert "numpy.random" in messages
    assert "branch on secret-looking value" in messages
    assert "table index from secret-looking value" in messages
    assert "literal IV/nonce" in messages
    assert "reused by a second encrypt call" in messages


def test_crypto_iv_check_applies_outside_crypto_package(tmp_path):
    """The literal/reused-IV check covers every src/ caller, not just
    repro.crypto — the randomness/secret-flow checks stay scoped."""
    repo, target = make_repo(
        tmp_path, "src/repro/bench/mod.py", "crypto_hygiene_bad.py"
    )
    messages = [f.message for f in run_rule(CryptoHygieneRule, repo, target).findings]
    assert any("literal IV/nonce" in m for m in messages)
    assert any("reused by a second encrypt call" in m for m in messages)
    # package-scoped checks must NOT fire outside src/repro/crypto/
    assert not any("import of 'random'" in m for m in messages)
    assert not any("branch on secret-looking value" in m for m in messages)


def test_rules_scope_to_their_modules(tmp_path):
    """The same bad code outside a rule's scope produces no findings."""
    repo, target = make_repo(
        tmp_path, "src/repro/datasets/mod.py", "dtype_discipline_bad.py"
    )
    assert run_rule(DtypeDisciplineRule, repo, target).findings == []
    repo, target = make_repo(
        tmp_path, "tools/script.py", "bare_except_bad.py"
    )
    assert run_rule(BareExceptRule, repo, target).findings == []


def test_line_pragma_suppresses(tmp_path):
    source = (FIXTURES / "bare_except_bad.py").read_text().replace(
        "except:", "except:  # lint: disable=bare-except"
    )
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "repro" / "io.py"
    target.write_text(source)
    report = run_rule(BareExceptRule, RepoContext(root), target)
    assert report.findings == []


def test_file_pragma_suppresses(tmp_path):
    source = "# lint: disable-file=assert-stmt\n" + (
        FIXTURES / "assert_stmt_bad.py"
    ).read_text()
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "repro" / "io.py"
    target.write_text(source)
    report = run_rule(AssertStmtRule, RepoContext(root), target)
    assert report.findings == []


def test_syntax_error_reported_not_raised(tmp_path):
    root = tmp_path / "repo"
    (root / "src").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "broken.py"
    target.write_text("def broken(:\n")
    report = run_rule(BareExceptRule, RepoContext(root), target)
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code == 1


def test_counter_finalize_vice_versa(tmp_path):
    """On a full scan, registry/doc/usage drift is reported both ways."""
    root = tmp_path / "repo"
    trace_py = root / "src" / "repro" / "core" / "trace.py"
    trace_py.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    trace_py.write_text("KNOWN_COUNTERS = ('a.used', 'b.unused')\n")
    user = root / "src" / "repro" / "user.py"
    user.write_text(
        "from repro.core import trace\n"
        "trace.count('a.used', 1)\n"
    )
    repo = RepoContext(
        root,
        known_counters=frozenset({"a.used", "b.unused"}),
        documented_counters=frozenset({"a.used", "c.docs_only"}),
    )
    report = LintRunner([CounterRegistryRule()], repo).run([root / "src"])
    messages = " | ".join(f.message for f in report.findings)
    assert "'b.unused' is missing from the docs" in messages
    assert "'c.docs_only' is not in trace.KNOWN_COUNTERS" in messages
    assert "'b.unused' is never incremented" in messages
    assert "'a.used'" not in messages


def test_span_finalize_flags_undocumented_fixture_span(tmp_path):
    root = tmp_path / "repo"
    trace_py = root / "src" / "repro" / "core" / "trace.py"
    trace_py.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    trace_py.write_text("# the full-scan proxy\n")
    repo = RepoContext(
        root,
        documented_spans=frozenset({"compress"}),
        fixture_spans=frozenset({"compress", "renamed_span"}),
    )
    report = LintRunner([SpanRegistryRule()], repo).run([root / "src"])
    assert any("renamed_span" in f.message for f in report.findings)
