"""Per-rule fixture tests: every rule passes its good snippet and
fires on its bad one.

Each case copies a fixture from ``tests/lint/fixtures/`` into a tiny
synthetic repo at the relpath the rule scopes to, injects synthetic
doc/fixture registries into :class:`RepoContext`, and runs just that
rule.
"""

from pathlib import Path

import pytest

from repro.lint.rules import ALL_RULES
from repro.lint.rules.contracts import ExceptionContractRule
from repro.lint.rules.counters import CounterRegistryRule
from repro.lint.rules.crypto import CryptoHygieneRule
from repro.lint.rules.dtype import DtypeDisciplineRule
from repro.lint.rules.formats import FormatSpecRule
from repro.lint.rules.hygiene import (
    AssertStmtRule,
    BareExceptRule,
    MutableDefaultRule,
    UnusedImportRule,
)
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.spans import SpanRegistryRule
from repro.lint.rules.taint import SecretTaintRule
from repro.lint.walker import LintRunner, RepoContext

#: Synthetic registries for the interprocedural rules, mirroring the
#: DEFAULT_* shapes with fixture-sized ground truth.
CONTRACTS = dict(
    entry_points=["repro.sz.mod.parse"],
    allowed=["ValueError", "ArchiveCorrupt", "ProtocolError",
             "AuthenticationError"],
    internal=[],
    raw=["KeyError", "IndexError", "struct.error", "UnicodeDecodeError"],
)
TAINT = dict(
    source_params=["key"],
    source_calls=["*.generate_iv"],
    sanitizers=["len", "bool", "seal", "*.seal"],
    log_sinks=["print", "log.*"],
    span_sinks=["*.annotate"],
    write_sinks=["write"],
    write_allowed=[],
)
LOCKS = {"src/repro/core/mod.py": {"_cache": "_cache_lock"}}

FIXTURES = Path(__file__).parent / "fixtures"

#: rule class, fixture stem, relpath the snippet lands at, and the
#: RepoContext injections the rule's ground truth comes from.
CASES = [
    (
        CounterRegistryRule, "counter_registry", "src/repro/sz/mod.py",
        dict(
            known_counters=frozenset({"test.known"}),
            documented_counters=frozenset({"test.known"}),
        ),
    ),
    (
        SpanRegistryRule, "span_registry", "src/repro/core/mod.py",
        dict(
            documented_spans=frozenset({"compress", "quantize"}),
            fixture_spans=frozenset({"compress"}),
        ),
    ),
    (
        FormatSpecRule, "format_spec", "src/repro/core/container.py",
        dict(
            documented_structs=frozenset({"IB"}),
            documented_magics=frozenset({"SECZ"}),
        ),
    ),
    (CryptoHygieneRule, "crypto_hygiene", "src/repro/crypto/mod.py", {}),
    (
        ExceptionContractRule, "exception_contract", "src/repro/sz/mod.py",
        dict(exception_contracts=CONTRACTS),
    ),
    (
        SecretTaintRule, "secret_taint", "src/repro/crypto/mod.py",
        dict(taint_registry=TAINT),
    ),
    (
        LockDisciplineRule, "lock_discipline", "src/repro/core/mod.py",
        dict(lock_registry=LOCKS),
    ),
    (DtypeDisciplineRule, "dtype_discipline", "src/repro/sz/huffman.py", {}),
    (BareExceptRule, "bare_except", "src/repro/io.py", {}),
    (MutableDefaultRule, "mutable_default", "src/repro/io.py", {}),
    (AssertStmtRule, "assert_stmt", "src/repro/io.py", {}),
    (UnusedImportRule, "unused_import", "src/repro/io.py", {}),
]


def make_repo(tmp_path: Path, relpath: str, fixture: str,
              **registries) -> tuple[RepoContext, Path]:
    root = tmp_path / "repo"
    (root / "docs").mkdir(parents=True, exist_ok=True)
    (root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    dest = root / relpath
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text((FIXTURES / fixture).read_text())
    return RepoContext(root, **registries), dest


def run_rule(rule_cls, repo: RepoContext, target: Path):
    return LintRunner([rule_cls()], repo).run([target])


def test_cases_cover_every_shipped_rule():
    assert {cls for cls, *_ in CASES} == set(ALL_RULES)


@pytest.mark.parametrize(
    "rule_cls, stem, relpath, registries", CASES,
    ids=[cls.name for cls, *_ in CASES],
)
def test_good_fixture_passes(rule_cls, stem, relpath, registries, tmp_path):
    repo, target = make_repo(tmp_path, relpath, f"{stem}_good.py", **registries)
    report = run_rule(rule_cls, repo, target)
    assert report.findings == [], report.format_text()
    assert report.exit_code == 0


@pytest.mark.parametrize(
    "rule_cls, stem, relpath, registries", CASES,
    ids=[cls.name for cls, *_ in CASES],
)
def test_bad_fixture_fires(rule_cls, stem, relpath, registries, tmp_path):
    repo, target = make_repo(tmp_path, relpath, f"{stem}_bad.py", **registries)
    report = run_rule(rule_cls, repo, target)
    assert report.findings, f"{rule_cls.name} did not fire on {stem}_bad.py"
    assert report.exit_code == 1
    assert all(f.rule == rule_cls.name for f in report.findings)
    assert all(f.line > 0 for f in report.findings)


def test_crypto_bad_fixture_finds_each_category(tmp_path):
    repo, target = make_repo(
        tmp_path, "src/repro/crypto/mod.py", "crypto_hygiene_bad.py"
    )
    messages = " | ".join(
        f.message for f in run_rule(CryptoHygieneRule, repo, target).findings
    )
    assert "import of 'random'" in messages
    assert "numpy.random" in messages
    assert "branch on secret-looking value" in messages
    assert "table index from secret-looking value" in messages
    assert "literal IV/nonce" in messages
    assert "reused by a second encrypt call" in messages


def test_crypto_iv_check_applies_outside_crypto_package(tmp_path):
    """The literal/reused-IV check covers every src/ caller, not just
    repro.crypto — the randomness/secret-flow checks stay scoped."""
    repo, target = make_repo(
        tmp_path, "src/repro/bench/mod.py", "crypto_hygiene_bad.py"
    )
    messages = [f.message for f in run_rule(CryptoHygieneRule, repo, target).findings]
    assert any("literal IV/nonce" in m for m in messages)
    assert any("reused by a second encrypt call" in m for m in messages)
    # package-scoped checks must NOT fire outside src/repro/crypto/
    assert not any("import of 'random'" in m for m in messages)
    assert not any("branch on secret-looking value" in m for m in messages)


def test_rules_scope_to_their_modules(tmp_path):
    """The same bad code outside a rule's scope produces no findings."""
    repo, target = make_repo(
        tmp_path, "src/repro/datasets/mod.py", "dtype_discipline_bad.py"
    )
    assert run_rule(DtypeDisciplineRule, repo, target).findings == []
    repo, target = make_repo(
        tmp_path, "tools/script.py", "bare_except_bad.py"
    )
    assert run_rule(BareExceptRule, repo, target).findings == []


def test_line_pragma_suppresses(tmp_path):
    source = (FIXTURES / "bare_except_bad.py").read_text().replace(
        "except:", "except:  # lint: disable=bare-except"
    )
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "repro" / "io.py"
    target.write_text(source)
    report = run_rule(BareExceptRule, RepoContext(root), target)
    assert report.findings == []


def test_file_pragma_suppresses(tmp_path):
    source = "# lint: disable-file=assert-stmt\n" + (
        FIXTURES / "assert_stmt_bad.py"
    ).read_text()
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "repro" / "io.py"
    target.write_text(source)
    report = run_rule(AssertStmtRule, RepoContext(root), target)
    assert report.findings == []


def test_syntax_error_reported_not_raised(tmp_path):
    root = tmp_path / "repo"
    (root / "src").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    target = root / "src" / "broken.py"
    target.write_text("def broken(:\n")
    report = run_rule(BareExceptRule, RepoContext(root), target)
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code == 1


def test_counter_finalize_vice_versa(tmp_path):
    """On a full scan, registry/doc/usage drift is reported both ways."""
    root = tmp_path / "repo"
    trace_py = root / "src" / "repro" / "core" / "trace.py"
    trace_py.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    trace_py.write_text("KNOWN_COUNTERS = ('a.used', 'b.unused')\n")
    user = root / "src" / "repro" / "user.py"
    user.write_text(
        "from repro.core import trace\n"
        "trace.count('a.used', 1)\n"
    )
    repo = RepoContext(
        root,
        known_counters=frozenset({"a.used", "b.unused"}),
        documented_counters=frozenset({"a.used", "c.docs_only"}),
    )
    report = LintRunner([CounterRegistryRule()], repo).run([root / "src"])
    messages = " | ".join(f.message for f in report.findings)
    assert "'b.unused' is missing from the docs" in messages
    assert "'c.docs_only' is not in trace.KNOWN_COUNTERS" in messages
    assert "'b.unused' is never incremented" in messages
    assert "'a.used'" not in messages


def test_exception_contract_reports_both_pr9_bugs(tmp_path):
    """Acceptance: the pre-fix PR 9 code shapes (Kraft IndexError,
    section-rename KeyError) are both reported statically."""
    repo, target = make_repo(
        tmp_path, "src/repro/sz/mod.py", "pr9_prefix_shapes.py",
        exception_contracts=dict(
            CONTRACTS,
            entry_points=["repro.sz.mod.deserialize_tree",
                          "repro.sz.mod.unpack_sections"],
        ),
    )
    report = run_rule(ExceptionContractRule, repo, target)
    raws = {f.message.split()[1] for f in report.findings}
    assert "IndexError" in raws, report.format_text()
    assert "KeyError" in raws, report.format_text()
    # The IndexError originates in the helper, two calls deep.
    index_findings = [f for f in report.findings if "IndexError" in f.message]
    assert any("deserialize_tree" in f.message for f in index_findings)


def test_exception_contract_interprocedural_catch(tmp_path):
    """A raw raise caught at the *call site* does not escape."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "sz" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "def parse(blob):\n"
        "    try:\n"
        "        return _helper(blob)\n"
        "    except KeyError:\n"
        "        raise ValueError('bad section') from None\n"
        "\n"
        "def _helper(sections):\n"
        "    return sections['data']\n"
    )
    repo = RepoContext(root, exception_contracts=CONTRACTS)
    report = LintRunner([ExceptionContractRule()], repo).run([mod])
    assert report.findings == [], report.format_text()


def test_secret_taint_flags_each_sink_kind(tmp_path):
    repo, target = make_repo(
        tmp_path, "src/repro/crypto/mod.py", "secret_taint_bad.py",
        taint_registry=TAINT,
    )
    messages = " | ".join(
        f.message for f in run_rule(SecretTaintRule, repo, target).findings
    )
    assert "a log call (print)" in messages
    assert "a log call (log.debug)" in messages
    assert "a trace span attribute" in messages
    assert "a file/socket write" in messages
    assert "an exception message" in messages


def test_secret_taint_sanitizer_kills_flow(tmp_path):
    """``seal(...)`` is registered as a sanitizer: its result may hit
    any sink even though a secret flowed in."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "crypto" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "def protect(key, data):\n"
        "    sealed = seal(key, data)\n"
        "    print('out:', sealed, len(key))\n"
        "    return sealed\n"
        "\n"
        "def seal(key, data):\n"
        "    return bytes(k ^ d for k, d in zip(key, data))\n"
    )
    repo = RepoContext(root, taint_registry=TAINT)
    report = LintRunner([SecretTaintRule()], repo).run([mod])
    assert report.findings == [], report.format_text()


def test_secret_taint_summary_propagates_through_helper(tmp_path):
    """A helper's secret return taints its caller across the graph."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "crypto" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "def outer(key):\n"
        "    material = middle(key)\n"
        "    print(material)\n"
        "\n"
        "def middle(k):\n"
        "    return inner(k)\n"
        "\n"
        "def inner(k):\n"
        "    return k * 2\n"
    )
    repo = RepoContext(root, taint_registry=TAINT)
    report = LintRunner([SecretTaintRule()], repo).run([mod])
    assert len(report.findings) == 1
    assert "a log call (print)" in report.findings[0].message


def test_lock_discipline_flags_unguarded_and_undeclared(tmp_path):
    repo, target = make_repo(
        tmp_path, "src/repro/core/mod.py", "lock_discipline_bad.py",
        lock_registry=LOCKS,
    )
    messages = " | ".join(
        f.message for f in run_rule(LockDisciplineRule, repo, target).findings
    )
    assert "not under 'with _cache_lock:'" in messages
    assert "no declared guarding lock" in messages


def test_lock_discipline_registry_must_match_module(tmp_path):
    """A registry entry whose state/lock is absent from the module is
    itself a finding — the registry must not drift from the code."""
    repo, target = make_repo(
        tmp_path, "src/repro/core/mod.py", "lock_discipline_good.py",
        lock_registry={"src/repro/core/mod.py": {"_gone": "_gone_lock"}},
    )
    messages = " | ".join(
        f.message for f in run_rule(LockDisciplineRule, repo, target).findings
    )
    assert "does not define it" in messages


def test_crypto_iv_from_deterministic_source_flagged(tmp_path):
    """Satellite: the IV check is flow-aware, not just syntactic — a
    counter serialised through ``to_bytes`` is a deterministic IV."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "bench" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "def run(cipher, counter, data):\n"
        "    iv = counter.to_bytes(16, 'big')\n"
        "    return cipher.encrypt_cbc(data, iv)\n"
    )
    report = run_rule(CryptoHygieneRule, RepoContext(root), mod)
    assert any("deterministic (non-CSPRNG) source" in f.message
               for f in report.findings), report.format_text()


def test_crypto_iv_from_csprng_is_clean(tmp_path):
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "bench" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "from repro.crypto import rng\n"
        "\n"
        "def run(cipher, data):\n"
        "    iv = rng.generate_iv()\n"
        "    return cipher.encrypt_cbc(data, iv)\n"
    )
    report = run_rule(CryptoHygieneRule, RepoContext(root), mod)
    assert report.findings == [], report.format_text()


def test_crypto_iv_mixed_csprng_derivation_is_clean(tmp_path):
    """Hash-of-CSPRNG still carries the csprng tag, so deriving a
    nonce from fresh entropy is not flagged."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "bench" / "mod.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text(
        "import hashlib\n"
        "from repro.crypto import rng\n"
        "\n"
        "def run(cipher, data):\n"
        "    seed = rng.generate_nonce()\n"
        "    iv = hashlib.sha256(seed).digest()[:16]\n"
        "    return cipher.encrypt_cbc(data, iv)\n"
    )
    report = run_rule(CryptoHygieneRule, RepoContext(root), mod)
    assert report.findings == [], report.format_text()


def test_span_finalize_flags_undocumented_fixture_span(tmp_path):
    root = tmp_path / "repo"
    trace_py = root / "src" / "repro" / "core" / "trace.py"
    trace_py.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    trace_py.write_text("# the full-scan proxy\n")
    repo = RepoContext(
        root,
        documented_spans=frozenset({"compress"}),
        fixture_spans=frozenset({"compress", "renamed_span"}),
    )
    report = LintRunner([SpanRegistryRule()], repo).run([root / "src"])
    assert any("renamed_span" in f.message for f in report.findings)
