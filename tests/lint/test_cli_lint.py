"""``secz lint`` CLI: exit codes, JSON stability, rule selection."""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.lint.rules import rule_names
from repro.lint.walker import SCHEMA

FIXTURES = Path(__file__).parent / "fixtures"


def make_repo(tmp_path: Path, *fixtures: str) -> Path:
    """A tiny repo whose src/ holds the named fixtures."""
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    for fixture in fixtures:
        dest = root / "src" / "repro" / fixture
        dest.write_text((FIXTURES / fixture).read_text())
    return root


def lint_argv(root: Path, *extra: str) -> list[str]:
    return ["lint", str(root / "src"), "--root", str(root), *extra]


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_good.py")
    assert cli.main(lint_argv(root)) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_locations(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root)) == 1
    out = capsys.readouterr().out
    assert "[bare-except]" in out
    assert "[assert-stmt]" in out
    assert "src/repro/bare_except_bad.py:8:" in out


def test_json_output_is_stable_and_parseable(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root, "--format", "json")) == 1
    first = capsys.readouterr().out
    assert cli.main(lint_argv(root, "--format", "json")) == 1
    second = capsys.readouterr().out
    assert first == second, "json report must be deterministic"
    doc = json.loads(first)
    assert doc["schema"] == SCHEMA
    assert doc["files_checked"] == 2
    assert doc["counts"] == {"assert-stmt": 1, "bare-except": 1}
    assert [set(f) for f in doc["findings"]] == [
        {"path", "line", "rule", "message"}
    ] * 2
    assert doc["findings"] == sorted(
        doc["findings"], key=lambda f: (f["path"], f["line"], f["rule"])
    )


def test_disable_skips_a_rule(tmp_path):
    root = make_repo(tmp_path, "bare_except_bad.py")
    assert cli.main(lint_argv(root, "--disable", "bare-except")) == 0


def test_enable_restricts_to_named_rules(tmp_path):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root, "--enable", "bare-except")) == 1
    assert cli.main(
        lint_argv(root, "--enable", "mutable-default")
    ) == 0


def test_unknown_rule_fails_loudly(tmp_path):
    root = make_repo(tmp_path, "bare_except_good.py")
    with pytest.raises(SystemExit, match="unknown rule"):
        cli.main(lint_argv(root, "--disable", "no-such-rule"))


def test_list_rules(capsys):
    assert cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out


def test_nonexistent_path_fails_loudly(tmp_path):
    root = make_repo(tmp_path, "bare_except_good.py")
    with pytest.raises(SystemExit):
        cli.main(["lint", str(root / "README.md"), "--root", str(root)])
