"""``secz lint`` CLI: exit codes, JSON stability, rule selection."""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.lint.rules import rule_names
from repro.lint.walker import SCHEMA

FIXTURES = Path(__file__).parent / "fixtures"


def make_repo(tmp_path: Path, *fixtures: str) -> Path:
    """A tiny repo whose src/ holds the named fixtures."""
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    for fixture in fixtures:
        dest = root / "src" / "repro" / fixture
        dest.write_text((FIXTURES / fixture).read_text())
    return root


def lint_argv(root: Path, *extra: str) -> list[str]:
    return ["lint", str(root / "src"), "--root", str(root), *extra]


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_good.py")
    assert cli.main(lint_argv(root)) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_locations(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root)) == 1
    out = capsys.readouterr().out
    assert "[bare-except]" in out
    assert "[assert-stmt]" in out
    assert "src/repro/bare_except_bad.py:8:" in out


def test_json_output_is_stable_and_parseable(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root, "--format", "json")) == 1
    first = capsys.readouterr().out
    assert cli.main(lint_argv(root, "--format", "json")) == 1
    second = capsys.readouterr().out
    assert first == second, "json report must be deterministic"
    doc = json.loads(first)
    assert doc["schema"] == SCHEMA
    assert doc["files_checked"] == 2
    assert doc["counts"] == {"assert-stmt": 1, "bare-except": 1}
    assert [set(f) for f in doc["findings"]] == [
        {"path", "line", "rule", "message"}
    ] * 2
    assert doc["findings"] == sorted(
        doc["findings"], key=lambda f: (f["path"], f["line"], f["rule"])
    )


def test_disable_skips_a_rule(tmp_path):
    root = make_repo(tmp_path, "bare_except_bad.py")
    assert cli.main(lint_argv(root, "--disable", "bare-except")) == 0


def test_enable_restricts_to_named_rules(tmp_path):
    root = make_repo(tmp_path, "bare_except_bad.py", "assert_stmt_bad.py")
    assert cli.main(lint_argv(root, "--enable", "bare-except")) == 1
    assert cli.main(
        lint_argv(root, "--enable", "mutable-default")
    ) == 0


def test_unknown_rule_fails_loudly(tmp_path):
    root = make_repo(tmp_path, "bare_except_good.py")
    with pytest.raises(SystemExit, match="unknown rule"):
        cli.main(lint_argv(root, "--disable", "no-such-rule"))


def test_list_rules(capsys):
    assert cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out


def test_nonexistent_path_fails_loudly(tmp_path):
    root = make_repo(tmp_path, "bare_except_good.py")
    with pytest.raises(SystemExit):
        cli.main(["lint", str(root / "README.md"), "--root", str(root)])


def test_sarif_output_parses_and_names_driver(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py")
    assert cli.main(lint_argv(root, "--format", "sarif")) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
    assert doc["runs"][0]["results"][0]["ruleId"] == "bare-except"


def test_write_baseline_then_clean_run(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py")
    assert cli.main(lint_argv(root, "--write-baseline")) == 0
    assert "wrote" in capsys.readouterr().out
    assert (root / ".lint-baseline.json").exists()
    # The baseline is picked up automatically on the next run...
    assert cli.main(lint_argv(root)) == 0
    assert "[1 baselined]" in capsys.readouterr().out
    # ...unless explicitly ignored.
    assert cli.main(lint_argv(root, "--no-baseline")) == 1


def test_baseline_and_no_baseline_are_exclusive(tmp_path):
    root = make_repo(tmp_path, "bare_except_good.py")
    with pytest.raises(SystemExit, match="exclusive"):
        cli.main(lint_argv(root, "--baseline", "x.json", "--no-baseline"))


def test_profile_prints_per_rule_timings(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_good.py")
    assert cli.main(lint_argv(root, "--profile")) == 0
    captured = capsys.readouterr()
    assert "seconds" in captured.err
    assert "bare-except" in captured.err
    # Timings never contaminate the deterministic report stream.
    assert "seconds" not in captured.out


def test_profile_json_stays_deterministic(tmp_path, capsys):
    root = make_repo(tmp_path, "bare_except_bad.py")
    assert cli.main(lint_argv(root, "--format", "json", "--profile")) == 1
    first = capsys.readouterr()
    assert cli.main(lint_argv(root, "--format", "json", "--profile")) == 1
    second = capsys.readouterr()
    assert first.out == second.out
    assert first.err != ""
