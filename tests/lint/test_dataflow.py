"""Unit tests for the forward-dataflow engine: gen/kill, joins,
loops, container smearing, sanitizers, and the override hooks."""

import ast

from repro.lint.dataflow import ForwardAnalysis, name_roots

TAINT = frozenset({"taint"})


def analyze(source: str, seed=None, cls=ForwardAnalysis):
    fn = ast.parse(source).body[0]
    return cls(fn, seed or {}).run()


def test_assignment_gen():
    result = analyze(
        "def f(data):\n"
        "    copy = data\n"
        "    return copy\n",
        seed={"data": TAINT},
    )
    assert result.final_state["copy"] == TAINT
    assert result.return_tags == TAINT


def test_assignment_kill():
    result = analyze(
        "def f(data):\n"
        "    data = b''\n"
        "    return data\n",
        seed={"data": TAINT},
    )
    assert result.final_state["data"] == frozenset()
    assert result.return_tags == frozenset()


def test_augmented_assignment_unions():
    result = analyze(
        "def f(data, clean):\n"
        "    clean += data\n"
        "    return clean\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_branch_join_is_union():
    result = analyze(
        "def f(data, flag):\n"
        "    out = b''\n"
        "    if flag:\n"
        "        out = data\n"
        "    return out\n",
        seed={"data": TAINT},
    )
    # Either branch may execute: the join keeps the tainted path.
    assert result.return_tags == TAINT


def test_kill_in_one_branch_does_not_clean_the_other():
    result = analyze(
        "def f(data, flag):\n"
        "    if flag:\n"
        "        data = b''\n"
        "    return data\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_loop_carries_tags_across_iterations():
    """Tags generated on iteration N must reach iteration N+1 (the
    two-pass approximation)."""
    result = analyze(
        "def f(data, items):\n"
        "    acc = b''\n"
        "    for _ in items:\n"
        "        prev = acc\n"
        "        acc = acc + data\n"
        "    return prev\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_for_target_gets_iterable_tags():
    result = analyze(
        "def f(rows):\n"
        "    for row in rows:\n"
        "        last = row\n"
        "    return last\n",
        seed={"rows": TAINT},
    )
    assert result.return_tags == TAINT


def test_tuple_unpack_smears():
    result = analyze(
        "def f(pair):\n"
        "    a, b = pair\n"
        "    return b\n",
        seed={"pair": TAINT},
    )
    assert result.return_tags == TAINT


def test_attribute_store_taints_container():
    result = analyze(
        "def f(obj, data):\n"
        "    obj.field = data\n"
        "    return obj\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_clean_attribute_store_does_not_taint_container():
    result = analyze(
        "def f(obj):\n"
        "    obj.done = flag()\n"
        "    return obj\n",
    )
    assert result.return_tags == frozenset()


def test_default_sanitizers_kill():
    result = analyze(
        "def f(data):\n"
        "    n = len(data)\n"
        "    return n\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == frozenset()


def test_fstring_and_binop_propagate():
    result = analyze(
        "def f(data):\n"
        "    msg = f'got {data!r}' + 'x'\n"
        "    return msg\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_compare_result_is_clean():
    result = analyze(
        "def f(data):\n"
        "    ok = data == b''\n"
        "    return ok\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == frozenset()


def test_try_handler_join():
    result = analyze(
        "def f(data):\n"
        "    out = b''\n"
        "    try:\n"
        "        out = data\n"
        "    except ValueError:\n"
        "        out = b''\n"
        "    return out\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_with_binds_context_tags():
    result = analyze(
        "def f(data):\n"
        "    with data as fh:\n"
        "        return fh\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == TAINT


def test_nested_function_bodies_are_skipped():
    result = analyze(
        "def f(data):\n"
        "    def helper():\n"
        "        return data\n"
        "    return b''\n",
        seed={"data": TAINT},
    )
    assert result.return_tags == frozenset()


def test_call_tags_override_plugs_in_summaries():
    class Summarizing(ForwardAnalysis):
        def call_tags(self, call, state):
            if ast.unparse(call.func) == "derive":
                tags = frozenset()
                for arg in call.args:
                    tags |= self.expr_tags(arg, state)
                return tags
            return frozenset()

    result = analyze(
        "def f(key):\n"
        "    material = derive(key)\n"
        "    other = unknown(key)\n"
        "    return material\n",
        seed={"key": TAINT},
        cls=Summarizing,
    )
    assert result.final_state["material"] == TAINT
    assert result.final_state["other"] == frozenset()


def test_visit_expr_hook_sees_every_expression():
    seen = []

    class Recording(ForwardAnalysis):
        def visit_expr(self, expr, state):
            if isinstance(expr, ast.Name):
                seen.append(expr.id)

    analyze(
        "def f(a, b):\n"
        "    c = a + b\n"
        "    return c\n",
        cls=Recording,
    )
    assert {"a", "b", "c"} <= set(seen)


def test_name_roots():
    expr = ast.parse("a.b[c].d + f(g)").body[0].value
    assert name_roots(expr) == {"a", "c", "f", "g"}
