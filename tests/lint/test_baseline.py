"""Baseline semantics: suppression, stale-entry detection, partial
runs, pragma interplay, and file-format validation."""

import json
from pathlib import Path

import pytest

from repro import lint
from repro.lint.baseline import (
    BASELINE_FILENAME,
    BASELINE_SCHEMA,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.walker import Finding, LintReport


def _finding(rule="bare-except", path="src/repro/io.py", line=3,
             message="bare 'except:' swallows everything"):
    return Finding(path=path, line=line, rule=rule, message=message)


def _report(findings):
    return LintReport(findings=findings, files_checked=1,
                      rules_run=["bare-except"])


class TestFileFormat:
    def test_write_then_load_roundtrip(self, tmp_path):
        target = tmp_path / BASELINE_FILENAME
        write_baseline(target, [_finding(), _finding(line=9)])
        entries = load_baseline(target)
        # Line numbers are dropped; identical (rule, path, message)
        # rows collapse to one entry.
        assert entries == [(
            "bare-except", "src/repro/io.py",
            "bare 'except:' swallows everything",
        )]
        assert json.loads(target.read_text())["schema"] == BASELINE_SCHEMA

    def test_load_rejects_bad_json(self, tmp_path):
        target = tmp_path / BASELINE_FILENAME
        target.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(target)

    def test_load_rejects_wrong_schema(self, tmp_path):
        target = tmp_path / BASELINE_FILENAME
        target.write_text(json.dumps({"schema": "other/9", "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(target)

    def test_load_rejects_malformed_entry(self, tmp_path):
        target = tmp_path / BASELINE_FILENAME
        target.write_text(json.dumps({
            "schema": BASELINE_SCHEMA,
            "findings": [{"rule": "x", "path": "y"}],
        }))
        with pytest.raises(ValueError, match="entry 0"):
            load_baseline(target)


class TestApply:
    def test_matching_finding_suppressed(self):
        finding = _finding()
        entries = [(finding.rule, finding.path, finding.message)]
        out = apply_baseline(_report([finding]), entries)
        assert out.findings == []
        assert out.exit_code == 0
        assert out.baseline_suppressed == 1

    def test_match_ignores_line_numbers(self):
        finding = _finding(line=99)
        entries = [(finding.rule, finding.path, finding.message)]
        out = apply_baseline(_report([finding]), entries)
        assert out.findings == []

    def test_unmatched_finding_kept(self):
        finding = _finding()
        out = apply_baseline(_report([finding]), [("other-rule", "a", "b")])
        assert finding in out.findings
        assert out.exit_code == 1

    def test_stale_entry_flagged(self):
        out = apply_baseline(
            _report([]),
            [("bare-except", "src/repro/io.py", "gone finding")],
        )
        assert [f.rule for f in out.findings] == ["stale-baseline"]
        assert "gone finding" in out.findings[0].message
        assert out.exit_code == 1

    def test_unscanned_path_is_not_stale(self):
        """A partial-tree run can't judge entries for files it never
        parsed — they are neither matched nor stale."""
        out = apply_baseline(
            _report([]),
            [("bare-except", "src/repro/other.py", "elsewhere")],
            scanned={"src/repro/io.py"},
        )
        assert out.findings == []

    def test_scanned_path_still_goes_stale(self):
        out = apply_baseline(
            _report([]),
            [("bare-except", "src/repro/io.py", "fixed finding")],
            scanned={"src/repro/io.py"},
        )
        assert [f.rule for f in out.findings] == ["stale-baseline"]


class TestEndToEnd:
    def _repo(self, tmp_path, source):
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "io.py"
        target.parent.mkdir(parents=True)
        (root / "pyproject.toml").write_text("")
        target.write_text(source)
        return root

    BAD = "def f():\n    try:\n        pass\n    except:\n        pass\n"

    def test_auto_baseline_applied_from_root(self, tmp_path):
        root = self._repo(tmp_path, self.BAD)
        dirty = lint.lint_paths([root / "src"], root=root, baseline=None)
        assert dirty.exit_code == 1
        write_baseline(root / BASELINE_FILENAME, dirty.findings)
        clean = lint.lint_paths([root / "src"], root=root)
        assert clean.exit_code == 0
        assert clean.baseline_suppressed == len(dirty.findings)

    def test_fixed_finding_flags_stale_entry(self, tmp_path):
        """Acceptance: a baselined finding that disappears must turn
        into a stale-baseline finding, not silent success."""
        root = self._repo(tmp_path, self.BAD)
        dirty = lint.lint_paths([root / "src"], root=root, baseline=None)
        write_baseline(root / BASELINE_FILENAME, dirty.findings)
        (root / "src" / "repro" / "io.py").write_text(
            "def f():\n    pass\n"
        )
        report = lint.lint_paths([root / "src"], root=root)
        assert [f.rule for f in report.findings] == ["stale-baseline"]
        assert report.exit_code == 1

    def test_pragma_suppression_also_goes_stale(self, tmp_path):
        """Suppressing a baselined finding with a pragma removes it
        from the report, so the baseline entry must go stale — the two
        mechanisms never silently stack."""
        root = self._repo(tmp_path, self.BAD)
        dirty = lint.lint_paths([root / "src"], root=root, baseline=None)
        write_baseline(root / BASELINE_FILENAME, dirty.findings)
        (root / "src" / "repro" / "io.py").write_text(self.BAD.replace(
            "except:", "except:  # lint: disable=bare-except"
        ))
        report = lint.lint_paths([root / "src"], root=root)
        assert [f.rule for f in report.findings] == ["stale-baseline"]

    def test_explicit_baseline_path(self, tmp_path):
        root = self._repo(tmp_path, self.BAD)
        dirty = lint.lint_paths([root / "src"], root=root, baseline=None)
        custom = tmp_path / "custom-baseline.json"
        write_baseline(custom, dirty.findings)
        report = lint.lint_paths([root / "src"], root=root, baseline=custom)
        assert report.exit_code == 0

    def test_baseline_none_skips_existing_file(self, tmp_path):
        root = self._repo(tmp_path, self.BAD)
        dirty = lint.lint_paths([root / "src"], root=root, baseline=None)
        write_baseline(root / BASELINE_FILENAME, dirty.findings)
        report = lint.lint_paths([root / "src"], root=root, baseline=None)
        assert report.exit_code == 1
