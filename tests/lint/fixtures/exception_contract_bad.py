"""Bad case: raw lookup/struct/unicode errors escape the entry point."""

import struct

_HEADER = struct.Struct("<HH")


def parse(blob):
    # No length check: a short blob raises struct.error.
    count, kind = _HEADER.unpack(blob[: _HEADER.size])
    sections = _split(blob[_HEADER.size:], count)
    # Renamed/missing section raises KeyError (the PR 9 flip shape).
    name = sections["name"].decode("utf-8")
    return name, _entry(sections, kind)


def _split(payload, count):
    out = {}
    for i in range(count):
        out[str(i)] = payload[i : i + 1]
    return out


def _entry(sections, kind):
    table = [1, 2, 3]
    # Untrusted index into a fixed table raises IndexError (the
    # Kraft-oversubscription shape).
    return table[kind]
