"""Good case: every cache access sits under the declared lock."""

import threading

_cache = {}
_cache_lock = threading.Lock()


def lookup(key):
    with _cache_lock:
        return _cache.get(key)


def insert(key, value):
    with _cache_lock:
        _cache[key] = value
        while len(_cache) > 64:
            _cache.popitem()


def clear():
    with _cache_lock:
        _cache.clear()
