"""Failing fixture: a bare except."""


def load(path: str):
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except:
        return None
