"""Passing fixture: every import referenced (incl. string annotations)."""
from __future__ import annotations

import struct
from dataclasses import dataclass


def head(fmt: "struct.Struct") -> bytes:
    return fmt.pack()


__all__ = ["head", "dataclass"]
