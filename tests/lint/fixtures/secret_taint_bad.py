"""Bad case: key material reaches logs, exceptions, spans, writes."""

import logging

log = logging.getLogger(__name__)


def protect(key, payload, span, fh):
    print("using key", key)
    schedule = expand_key(key)
    log.debug("schedule %r", schedule)
    span.annotate(key=key)
    fh.write(key)
    if not payload:
        raise ValueError(f"no payload for key {key!r}")
    return bytes(a ^ b for a, b in zip(payload, schedule))


def expand_key(key):
    return key * 4
