"""Failing fixture: assert as runtime validation."""


def checked(n: int) -> int:
    assert n >= 0, "n must be non-negative"
    return n
