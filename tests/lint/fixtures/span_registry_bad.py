"""Failing fixture: 'mystery' is not a documented span name."""


def run(tr, trace):
    with tr.span("mystery"):
        pass
    wrapper = trace.Span(name="also_mystery", attrs={})
    return wrapper
