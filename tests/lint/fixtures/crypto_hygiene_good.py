"""Passing fixture: shape checks and public-constant comparisons only."""
KEY_BYTES = 16


def expand(key: bytes | None):
    if key is None:
        raise ValueError("key required")
    if len(key) != KEY_BYTES:
        raise ValueError("bad key length")
    if not isinstance(key, bytes):
        raise TypeError("key must be bytes")
    return key[0:4]  # slicing INTO the key with public indices is fine


def seal(cipher, rng, quant: bytes, tree: bytes):
    # Fresh IV per encryption, drawn from the sanctioned rng wrapper.
    ct_a = cipher.encrypt(quant, mode="cbc", iv=rng.generate_iv())
    ct_b = cipher.encrypt(tree, mode="cbc", iv=rng.generate_iv())
    return ct_a, ct_b
