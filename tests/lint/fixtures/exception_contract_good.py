"""Good case: the parse entry point only lets ValueError escape."""

import struct

_HEADER = struct.Struct("<HH")


def parse(blob):
    if len(blob) < _HEADER.size:
        raise ValueError("truncated header")
    count, kind = _HEADER.unpack(blob[: _HEADER.size])
    return _sections(blob[_HEADER.size:], count)


def _sections(payload, count):
    out = {}
    pos = 0
    for _ in range(count):
        if pos >= len(payload):
            raise ValueError("truncated section")
        out[payload[pos]] = payload[pos + 1 : pos + 2]
        pos += 2
    if "data" in out:
        return out["data"]
    try:
        return _lookup(out)
    except KeyError:
        raise ValueError("missing section") from None


def _lookup(sections):
    return sections["meta"]
