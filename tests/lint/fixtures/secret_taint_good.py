"""Good case: secrets feed ciphers and sanitizers, never sinks."""


def protect(key, payload):
    round_keys = expand_key(key)
    ciphertext = seal(round_keys, payload)
    print("sealed", len(key), "key bytes ->", len(ciphertext))
    return ciphertext


def expand_key(key):
    return key * 4


def seal(round_keys, payload):
    return bytes(a ^ b for a, b in zip(payload, round_keys))


def describe(payload):
    print("payload head:", payload[:4])
    return repr(payload)
