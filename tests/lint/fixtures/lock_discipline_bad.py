"""Bad case: unguarded access to declared state, plus undeclared
module-level mutable state mutated from functions."""

import threading

_cache = {}
_cache_lock = threading.Lock()

_stats = {"hits": 0}


def lookup(key):
    # Missing the with-block: torn reads under concurrent inserts.
    return _cache.get(key)


def insert(key, value):
    with _cache_lock:
        _cache[key] = value
    _stats["hits"] += 1


def clear():
    with _cache_lock:
        _cache.clear()
