"""Failing fixture: forbidden randomness and secret-dependent flow."""
import random

import numpy as np

SBOX = list(range(256))


def leaky(key: bytes, key_byte: int):
    iv = bytes(random.randrange(256) for _ in range(16))
    noise = np.random.bytes(16)
    if key[0] & 1:
        iv = noise
    return SBOX[key_byte], iv


def fixed_iv(cipher, payload: bytes):
    return cipher.encrypt_cbc(payload, iv=bytes(16))


def fixed_nonce(schedule, payload: bytes):
    from repro.crypto import modes
    return modes.ctr_xcrypt(payload, schedule, b"\x00" * 8)


def reused_iv(cipher, rng, quant: bytes, tree: bytes):
    iv = rng.generate_iv()
    ct_a = cipher.encrypt(quant, mode="cbc", iv=iv)
    ct_b = cipher.encrypt(tree, mode="cbc", iv=iv)
    return ct_a, ct_b
