"""Failing fixture: forbidden randomness and secret-dependent flow."""
import random

import numpy as np

SBOX = list(range(256))


def leaky(key: bytes, key_byte: int):
    iv = bytes(random.randrange(256) for _ in range(16))
    noise = np.random.bytes(16)
    if key[0] & 1:
        iv = noise
    return SBOX[key_byte], iv
