"""PR 9's two fuzz-discovered parser holes, preserved pre-fix.

Shape 1: a Kraft-oversubscribed Huffman table walks an untrusted code
length past the first-code table — ``IndexError``.  Shape 2: a
section-renaming flip looks up a hardcoded section name in an
attacker-shaped dict — ``KeyError``.  Both violated the contract that
parse entry points raise only ``ValueError`` subclasses; the
exception-contract rule must report both statically.
"""

import struct

_HEADER = struct.Struct("<BB")
_MAX_CODE_LEN = 15


def deserialize_tree(blob):
    if len(blob) < _HEADER.size:
        raise ValueError("truncated tree header")
    n_symbols, _flags = _HEADER.unpack(blob[: _HEADER.size])
    lengths = list(blob[_HEADER.size : _HEADER.size + n_symbols])
    return _canonical_table(lengths)


def _canonical_table(lengths):
    # Pre-fix: no Kraft-sum validation, so an oversubscribed table
    # indexes first_code past _MAX_CODE_LEN.
    first_code = [0] * (_MAX_CODE_LEN + 1)
    codewords = []
    for code_len in lengths:
        codewords.append(first_code[code_len])
        first_code[code_len] += 1
    return codewords


def unpack_sections(blob):
    sections = _split_sections(blob)
    # Pre-fix: a renamed section raises KeyError, not ValueError.
    return sections["quantized"], sections["huffman_tree"]


def _split_sections(blob):
    out = {}
    pos = 0
    while pos + 2 <= len(blob):
        name_len = blob[pos]
        name = blob[pos + 1 : pos + 1 + name_len].decode("latin-1")
        out[name] = blob[pos + 1 + name_len :]
        pos += 1 + name_len
    return out
