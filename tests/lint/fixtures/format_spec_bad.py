"""Failing fixture: native-endian format, undocumented format, bad magic."""
import struct

_MAGIC = b"XXXX"
_HEADER = struct.Struct("IB")


def pack(a: int, b: int) -> bytes:
    return struct.pack("<QQ", a, b)
