"""Failing fixture: shared list/dict defaults."""


def collect(item, into=[], *, index={}):
    into.append(item)
    index[item] = len(into)
    return into
