"""Failing fixture: 'test.unknown' is in neither registry nor docs."""
from repro.core import trace


def work(n: int) -> None:
    trace.count("test.unknown", n)
