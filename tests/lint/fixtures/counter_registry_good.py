"""Passing fixture: every counter key is registered and documented."""
from repro.core import trace


def work(n: int) -> None:
    trace.count("test.known", n)
    trace.count_many({"test.known": n})
    trace.count_many(dict_built_elsewhere())  # non-literal args are skipped


def dict_built_elsewhere() -> dict:
    return {}
