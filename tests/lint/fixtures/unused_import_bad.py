"""Failing fixture: math is imported and never used."""
import math
import struct


def head() -> bytes:
    return struct.pack("<B", 0)
