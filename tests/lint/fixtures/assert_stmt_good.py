"""Passing fixture: runtime validation raises."""


def checked(n: int) -> int:
    if n < 0:
        raise ValueError("n must be non-negative")
    return n
