"""Failing fixture: defaulted dtypes on the hot path."""
import numpy as np


def buffers(n: int):
    a = np.zeros(n)
    b = np.arange(n)
    return a, b
