"""Passing fixture: None default, allocated inside."""


def collect(item, into=None, *, tags=()):
    if into is None:
        into = []
    into.append((item, tags))
    return into
