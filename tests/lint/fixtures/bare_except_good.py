"""Passing fixture: a typed except."""


def load(path: str):
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except OSError:
        return None
