"""Passing fixture: documented magic and struct format."""
import struct

MAGIC = b"SECZ"
_HEADER = struct.Struct("<IB")
