"""Passing fixture: only documented span names."""


def run(tr, data):
    with tr.span("compress", bytes_in=data.nbytes):
        with tr.stage("quantize"):
            pass
