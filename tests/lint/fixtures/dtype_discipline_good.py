"""Passing fixture: every hot allocation states its dtype."""
import numpy as np


def buffers(n: int):
    a = np.zeros(n, dtype=np.uint64)
    b = np.empty(n, np.uint8)  # positional dtype counts for zeros/empty
    c = np.arange(n, dtype=np.int64)
    return a, b, c
