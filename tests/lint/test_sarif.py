"""SARIF output: structural validity (via jsonschema against a
trimmed SARIF 2.1.0 schema), determinism, and rule metadata joins."""

import json
from pathlib import Path

import jsonschema
import pytest

from repro import lint
from repro.lint.sarif import SARIF_VERSION, format_sarif, to_sarif
from repro.lint.walker import Finding, LintReport

#: The subset of the OASIS SARIF 2.1.0 schema that GitHub code
#: scanning actually validates: top-level shape, tool driver with rule
#: metadata, results with physical locations.  Trimmed from the full
#: schema so the test has no network dependency.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _report(findings):
    return LintReport(
        findings=findings, files_checked=3,
        rules_run=["bare-except", "exception-contract"],
    )


FINDINGS = [
    Finding(path="src/repro/io.py", line=4, rule="bare-except",
            message="bare 'except:' swallows everything"),
    Finding(path="src/repro/sz/mod.py", line=17, rule="exception-contract",
            message="raw KeyError can escape entry point parse"),
    Finding(path="src/repro/gone.py", line=0, rule="stale-baseline",
            message="baseline entry no longer matches"),
]


def test_document_validates_against_schema():
    doc = to_sarif(_report(FINDINGS))
    jsonschema.validate(doc, SARIF_SCHEMA)


def test_empty_report_validates():
    jsonschema.validate(to_sarif(_report([])), SARIF_SCHEMA)


def test_version_and_driver():
    doc = to_sarif(_report(FINDINGS))
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_rule_index_joins_back_to_rules_array():
    doc = to_sarif(_report(FINDINGS))
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_synthetic_rules_have_metadata():
    doc = to_sarif(_report(FINDINGS))
    ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert "stale-baseline" in ids


def test_line_zero_clamped_to_one():
    doc = to_sarif(_report(FINDINGS))
    lines = [
        r["locations"][0]["physicalLocation"]["region"]["startLine"]
        for r in doc["runs"][0]["results"]
    ]
    assert min(lines) >= 1


def test_output_is_deterministic():
    assert format_sarif(_report(FINDINGS)) == format_sarif(_report(FINDINGS))


def test_real_tree_sarif_validates():
    """Acceptance: `secz lint src/` emits schema-valid SARIF for the
    actual repository (baseline applied, so zero results)."""
    repo_root = Path(__file__).resolve().parents[2]
    report = lint.lint_paths([repo_root / "src"], root=repo_root)
    doc = json.loads(lint.format_sarif(report))
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["runs"][0]["results"] == []
    rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert {"exception-contract", "secret-taint", "lock-discipline"} <= \
        rule_ids
