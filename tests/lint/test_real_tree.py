"""The tier-1 bridge: the linter must pass over the real ``src/`` tree,
and the doc/fixture registry parsers must see the real ground truth.

This is the test that makes a broken invariant — an unregistered
counter key, an edited magic byte, an undocumented span — fail the
ordinary test suite, not just ``secz lint``.
"""

from pathlib import Path

from repro import lint
from repro.core import trace

REPO = Path(__file__).resolve().parents[2]


def test_repo_root_detected():
    assert lint.find_repo_root(Path(__file__)) == REPO
    assert (REPO / "pyproject.toml").exists()


def test_src_tree_is_lint_clean():
    """Clean modulo the checked-in baseline: zero live findings, and
    every baseline entry still matches (none stale)."""
    report = lint.lint_paths([REPO / "src"], root=REPO)
    assert report.findings == [], "\n" + report.format_text()
    assert report.files_checked > 50
    assert len(report.rules_run) >= 6


def test_baseline_only_holds_triaged_exception_contract_rows():
    """The baseline is a triage record, not a mute button: every entry
    is an exception-contract row on the numpy-heavy decode internals,
    and the live run really is suppressing each one."""
    entries = lint.load_baseline(REPO / lint.BASELINE_FILENAME)
    assert entries, "baseline must not be empty while findings exist"
    assert {rule for rule, _, _ in entries} == {"exception-contract"}
    assert all(path.startswith("src/repro/sz/") for _, path, _ in entries)
    report = lint.lint_paths([REPO / "src"], root=REPO)
    assert report.baseline_suppressed >= len(entries)


def test_full_repo_analysis_fits_time_budget():
    """Acceptance: whole-program analysis over src/ stays under the
    30 s CI budget, and the profile accounts for every rule."""
    import time

    start = time.monotonic()
    report = lint.lint_paths([REPO / "src"], root=REPO)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, f"full-repo lint took {elapsed:.1f}s"
    assert set(report.profile) >= set(report.rules_run)
    assert all(seconds >= 0.0 for seconds in report.profile.values())


def test_documented_counters_match_registry():
    repo = lint.RepoContext(REPO)
    assert repo.documented_counters == frozenset(trace.KNOWN_COUNTERS)
    assert "predict.sample_points" in repo.documented_counters
    assert "quantize.repair_passes" in repo.documented_counters


def test_documented_spans_cover_fixture_spans():
    repo = lint.RepoContext(REPO)
    assert {"compress", "sz.compress", "quantize", "huffman_decode",
            "slab"} <= repo.documented_spans
    assert repo.fixture_spans <= repo.documented_spans
    assert "compress" in repo.fixture_spans


def test_documented_formats_parsed():
    repo = lint.RepoContext(REPO)
    assert {"4sBBBB16sB", "BQ", "4sBBBBBBIdqQQ", "IB", "4sHII", "4sI",
            "QB", "B", "H", "Q", "4sBBH8sI", "BBBBdB",
            "4sBBH", "II", "32s32sQQQIBB16s", "BBBdQ32sI", "QQ32s4s",
            "4sBBIIQQQQQQ"} <= repo.documented_structs
    assert repo.documented_magics == {
        "SECZ", "SECA", "SECB", "SECM", "SECP", "SZfr", "HLT1",
        "SEB2", "LZ7H",
    }


def test_breaking_an_invariant_is_caught(tmp_path):
    """An unregistered counter key in src/ must produce findings."""
    root = tmp_path / "repo"
    offender = root / "src" / "repro" / "offender.py"
    offender.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    offender.write_text(
        "from repro.core import trace\n"
        "trace.count('rogue.counter', 1)\n"
    )
    repo = lint.RepoContext(
        root,
        known_counters=frozenset(trace.KNOWN_COUNTERS),
        documented_counters=lint.RepoContext(REPO).documented_counters,
    )
    runner = lint.LintRunner(lint.get_rules(enable=["counter-registry"]), repo)
    report = runner.run([root / "src"])
    assert report.exit_code == 1
    assert any("rogue.counter" in f.message for f in report.findings)
