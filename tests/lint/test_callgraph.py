"""Call-graph resolution over a synthetic package: methods, aliased
imports, decorators, relative imports, constructors, subclassing."""

from pathlib import Path

import pytest

from repro.lint import LintRunner, RepoContext
from repro.lint.callgraph import (
    build_callgraph,
    dotted_name,
    get_callgraph,
    module_name,
)
from repro.lint.walker import FileContext

PKG = {
    "src/repro/pkg/__init__.py": "",
    "src/repro/pkg/codec.py": (
        "from repro.pkg import util as u\n"
        "from repro.pkg.util import checksum as ck\n"
        "\n"
        "class Codec:\n"
        "    def __init__(self, table):\n"
        "        self.table = table\n"
        "\n"
        "    def encode(self, data):\n"
        "        return self.pack(data) + ck(data)\n"
        "\n"
        "    def pack(self, data):\n"
        "        return u.swap(data)\n"
        "\n"
        "class WideCodec(Codec):\n"
        "    def encode(self, data):\n"
        "        return self.pack(data)\n"
        "\n"
        "def make(table):\n"
        "    return Codec(table)\n"
    ),
    "src/repro/pkg/util.py": (
        "import functools\n"
        "\n"
        "def swap(data):\n"
        "    return data[::-1]\n"
        "\n"
        "@functools.lru_cache(maxsize=8)\n"
        "def checksum(data):\n"
        "    return sum(data) & 0xFF\n"
        "\n"
        "def chained(data):\n"
        "    from repro.pkg import codec\n"
        "    return checksum(swap(data))\n"
    ),
}


@pytest.fixture
def graph(tmp_path):
    root = tmp_path / "repo"
    (root / "docs").mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    contexts = []
    for relpath, source in PKG.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        contexts.append(FileContext(target, relpath, source))
    return build_callgraph(contexts)


def test_module_name_mapping():
    assert module_name("src/repro/sz/huffman.py") == "repro.sz.huffman"
    assert module_name("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name("tests/lint/test_rules.py") is None


def test_declarations(graph):
    assert "repro.pkg.util.swap" in graph.functions
    assert "repro.pkg.codec.Codec.encode" in graph.functions
    assert "repro.pkg.codec.make" in graph.functions
    info = graph.functions["repro.pkg.codec.Codec.encode"]
    assert info.owner == "repro.pkg.codec.Codec"
    assert info.params == ["data"]  # self stripped


def test_decorated_function_declared_with_decorator(graph):
    info = graph.functions["repro.pkg.util.checksum"]
    assert "functools.lru_cache" in info.decorators


def test_self_method_resolution(graph):
    encode = graph.functions["repro.pkg.codec.Codec.encode"]
    callees = {site.callee for site in encode.calls}
    assert "repro.pkg.codec.Codec.pack" in callees


def test_inherited_self_dispatch(graph):
    """WideCodec.encode calls self.pack, found on the base class."""
    encode = graph.functions["repro.pkg.codec.WideCodec.encode"]
    callees = {site.callee for site in encode.calls}
    assert "repro.pkg.codec.Codec.pack" in callees


def test_aliased_module_import_resolution(graph):
    pack = graph.functions["repro.pkg.codec.Codec.pack"]
    assert {site.callee for site in pack.calls} == {"repro.pkg.util.swap"}


def test_aliased_function_import_resolution(graph):
    encode = graph.functions["repro.pkg.codec.Codec.encode"]
    assert "repro.pkg.util.checksum" in {s.callee for s in encode.calls}


def test_constructor_resolves_to_init(graph):
    make = graph.functions["repro.pkg.codec.make"]
    assert "repro.pkg.codec.Codec.__init__" in {
        site.callee for site in make.calls
    }


def test_module_local_calls_resolve(graph):
    chained = graph.functions["repro.pkg.util.chained"]
    callees = {site.callee for site in chained.calls}
    assert {"repro.pkg.util.checksum", "repro.pkg.util.swap"} <= callees


def test_unresolved_calls_keep_raw_name(graph):
    checksum = graph.functions["repro.pkg.util.checksum"]
    unresolved = [s for s in checksum.calls if s.callee is None]
    assert any(s.raw == "sum" for s in unresolved)


def test_subclasses_of(graph):
    assert graph.subclasses_of("repro.pkg.codec.Codec") == {
        "repro.pkg.codec.WideCodec"
    }


def test_callers_query(graph):
    assert set(graph.callers("repro.pkg.util.swap")) == {
        "repro.pkg.codec.Codec.pack", "repro.pkg.util.chained"
    }


def test_dotted_name():
    import ast

    expr = ast.parse("a.b.c(1)").body[0].value
    assert dotted_name(expr.func) == "a.b.c"
    assert dotted_name(ast.parse("f()").body[0].value.func) == "f"
    assert dotted_name(ast.parse("(x or y)()").body[0].value.func) is None


def test_get_callgraph_cached_per_run(tmp_path):
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "m.py"
    mod.parent.mkdir(parents=True)
    (root / "pyproject.toml").write_text("")
    mod.write_text("def f():\n    return g()\n\ndef g():\n    return 1\n")
    repo = RepoContext(root)
    LintRunner([], repo).run([mod])
    graph = get_callgraph(repo)
    assert graph is get_callgraph(repo)
    assert "repro.m.f" in graph.functions
