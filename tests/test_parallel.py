"""Chunked multi-process compression."""

import numpy as np
import pytest

from repro.parallel import ChunkedSecureCompressor


def _max_err(a, b):
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


@pytest.fixture(scope="module")
def field():
    return np.random.default_rng(0).random((16, 20, 20)).astype(np.float32)


class TestChunked:
    @pytest.mark.parametrize("scheme", ["none", "encr_huffman", "encr_quant",
                                        "cmpr_encr"])
    def test_roundtrip_inprocess(self, scheme, field, key):
        csc = ChunkedSecureCompressor(
            scheme=scheme, error_bound=1e-3, key=key,
            n_chunks=4, n_workers=1, base_seed=7,
        )
        out = csc.decompress(csc.compress(field))
        assert out.shape == field.shape
        assert _max_err(out, field) <= 1e-3

    def test_roundtrip_multiprocess(self, field, key):
        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            n_chunks=4, n_workers=2, base_seed=7,
        )
        out = csc.decompress(csc.compress(field))
        assert _max_err(out, field) <= 1e-3

    def test_uneven_chunks(self, field, key):
        csc = ChunkedSecureCompressor(
            scheme="none", error_bound=1e-3,
            n_chunks=5, n_workers=1,  # 16 rows into 5 slabs: 4,3,3,3,3
        )
        out = csc.decompress(csc.compress(field))
        assert _max_err(out, field) <= 1e-3

    def test_chunk_ivs_differ(self, field, key):
        """CBC IV reuse across slabs would be a real vulnerability."""
        from repro.core.container import parse_container
        import struct

        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            n_chunks=4, n_workers=1,
        )
        blob = csc.compress(field)
        _, n = struct.unpack_from("<4sI", blob)
        lengths = struct.unpack_from(f"<{n}Q", blob, 8)
        ivs = []
        offset = 8 + 8 * n
        for length in lengths:
            ivs.append(parse_container(blob[offset : offset + length]).iv)
            offset += length
        assert len(set(ivs)) == n

    def test_single_chunk_blob(self, field, key):
        # n_chunks=1 is a degenerate but valid SECM framing: one length
        # entry, one container, still round-trips.
        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            n_chunks=1, n_workers=1,
        )
        blob = csc.compress(field)
        import struct
        _, n = struct.unpack_from("<4sI", blob)
        assert n == 1
        assert _max_err(csc.decompress(blob), field) <= 1e-3

    def test_ctr_roundtrip_and_slab_nonce_uniqueness(self, field, key):
        from repro.core.container import parse_container
        import struct

        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            cipher_mode="ctr", n_chunks=4, n_workers=1,
        )
        blob = csc.compress(field)
        assert _max_err(csc.decompress(blob), field) <= 1e-3
        _, n = struct.unpack_from("<4sI", blob)
        lengths = struct.unpack_from(f"<{n}Q", blob, 8)
        nonces = []
        offset = 8 + 8 * n
        for length in lengths:
            nonces.append(parse_container(blob[offset : offset + length]).iv)
            offset += length
        assert len(set(nonces)) == n  # nonce reuse would leak slab XORs

    def test_seeded_ctr_refused_by_default(self, key):
        with pytest.raises(ValueError, match="nonce"):
            ChunkedSecureCompressor(
                scheme="encr_huffman", error_bound=1e-3, key=key,
                cipher_mode="ctr", base_seed=7,
            )

    def test_seeded_ctr_with_optin_is_deterministic(self, field, key):
        def run():
            return ChunkedSecureCompressor(
                scheme="encr_huffman", error_bound=1e-3, key=key,
                cipher_mode="ctr", n_chunks=4, n_workers=1,
                base_seed=7, allow_nonce_reuse=True,
            ).compress(field)

        a, b = run(), run()
        assert a == b

    def test_too_many_chunks_rejected(self, key):
        csc = ChunkedSecureCompressor(scheme="none", n_chunks=50)
        with pytest.raises(ValueError, match="split"):
            csc.compress(np.zeros((4, 8, 8), dtype=np.float32))

    def test_bad_params(self, key):
        with pytest.raises(ValueError):
            ChunkedSecureCompressor(n_chunks=0)
        with pytest.raises(ValueError):
            ChunkedSecureCompressor(n_workers=0)

    def test_corrupt_framing_rejected(self, field, key):
        csc = ChunkedSecureCompressor(scheme="none", n_chunks=2, n_workers=1)
        blob = csc.compress(field)
        with pytest.raises(ValueError, match="magic"):
            csc.decompress(b"XXXX" + blob[4:])
        with pytest.raises(ValueError):
            csc.decompress(blob[:20])
        with pytest.raises(ValueError, match="trailing"):
            csc.decompress(blob + b"x")


class TestAuthenticatedChunks:
    def test_per_slab_tags(self, field, key):
        from repro.core import integrity
        import struct

        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            authenticate=True, n_chunks=3, n_workers=1, base_seed=1,
        )
        blob = csc.compress(field)
        out = csc.decompress(blob)
        assert _max_err(out, field) <= 1e-3
        # Every slab carries its own SECA tag.
        _, n = struct.unpack_from("<4sI", blob)
        lengths = struct.unpack_from(f"<{n}Q", blob, 8)
        offset = 8 + 8 * n
        for length in lengths:
            assert blob[offset : offset + 4] == integrity.MAGIC
            offset += length

    def test_tampered_slab_detected(self, field, key):
        csc = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=key,
            authenticate=True, n_chunks=3, n_workers=1, base_seed=1,
        )
        blob = bytearray(csc.compress(field))
        blob[len(blob) // 2] ^= 1
        with pytest.raises(ValueError):
            csc.decompress(bytes(blob))
