"""LZ77 differential armor: pin ``lz77h`` against zlib and the raw
truth on every corpus shape.

zlib is the reference implementation of the same LZ77+Huffman idea;
both codecs must restore identical bytes from identical inputs, and on
repetitive payloads the vectorized matcher must actually find the
matches (compressed size far below raw).  The suite also pins the
token-stream invariants the wire format relies on and the composition
with AES — ``lz77h`` blobs must survive CBC and CTR sealing bit-exact,
which is the Cmpr-Encr ordering of the paper applied to the LZ stage.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto import rng as crypto_rng
from repro.sz import lz77

from tests.fuzz import corpus

KEY = bytes(range(16))


@pytest.mark.parametrize("name", corpus.names())
def test_round_trip_matches_zlib_on_corpus(name):
    data = corpus.build(name)
    via_lz = lz77.decompress(lz77.compress(data))
    via_zlib = zlib.decompress(zlib.compress(data))
    assert via_lz == via_zlib == data


@pytest.mark.parametrize("name", ["zeros", "runs", "periodic", "text_log"])
def test_repetitive_payloads_actually_compress(name):
    data = corpus.build(name)
    blob = lz77.compress(data)
    assert len(blob) < len(data) // 4, (
        f"{name}: lz77h produced {len(blob)} bytes from {len(data)} — "
        "the matcher is not finding matches"
    )


def test_compression_ratio_tracks_zlib_on_periodic_data():
    """On long periodic payloads the hash-chain matcher must be in
    zlib's league (within 2x), not degenerate to literals."""
    data = corpus.build("periodic") * 4
    lz = len(lz77.compress(data))
    z = len(zlib.compress(data, 6))
    assert lz <= 2 * z


def test_incompressible_overhead_is_bounded():
    data = corpus.build("random")
    blob = lz77.compress(data)
    assert len(blob) <= len(data) + len(data) // 64 + 256


@given(data=st.binary(max_size=4096))
@settings(max_examples=120, deadline=None)
def test_round_trip_differential_hypothesis(data):
    assert lz77.decompress(lz77.compress(data)) == data
    assert zlib.decompress(zlib.compress(data)) == data


@given(pattern=st.binary(min_size=1, max_size=64),
       repeats=st.integers(2, 400))
@settings(max_examples=80, deadline=None)
def test_round_trip_periodic_hypothesis(pattern, repeats):
    data = pattern * repeats
    assert lz77.decompress(lz77.compress(data)) == data


@pytest.mark.parametrize("name", corpus.names())
def test_tokenize_invariants(name):
    """Token streams must tile the input exactly: literals are single
    bytes, matches are >= MIN_MATCH with in-window distances."""
    data = corpus.build(name)
    tokens, lengths, distances, n_lit = lz77.tokenize(data)
    assert n_lit + int(lengths.sum()) == len(data)
    if lengths.size:
        assert int(lengths.min()) >= lz77.MIN_MATCH
        assert int(lengths.max()) <= lz77.MAX_MATCH
        assert int(distances.min()) >= 1
        assert int(distances.max()) <= lz77.WINDOW
    n_matches = int((tokens >= 256).sum())
    assert n_matches == lengths.size == distances.size


@pytest.mark.parametrize("mode", ["cbc", "ctr"])
@pytest.mark.parametrize("name", ["text_log", "periodic", "random"])
def test_lz77h_bit_exact_under_aes(mode, name):
    """Cmpr-Encr over the LZ stage: compress, seal, unseal, decompress
    must be the identity under both cipher modes."""
    data = corpus.build(name)
    blob = lz77.compress(data)
    aes = AES128(KEY)
    iv = (crypto_rng.generate_nonce() if mode == "ctr"
          else crypto_rng.generate_iv())
    sealed = aes.encrypt(blob, mode=mode, iv=iv)
    assert sealed.ciphertext != blob
    opened = aes.decrypt(sealed.ciphertext, iv, mode=mode)
    assert opened == blob
    assert lz77.decompress(opened) == data


def test_trace_counters_fire():
    from repro.core import trace

    tr = trace.Tracer()
    lz77.compress(corpus.build("periodic"))
    counters = tr.export()["counters"]
    assert counters.get("lz.matches", 0) > 0
    assert counters.get("lz.match_bytes", 0) > 0


def test_empty_and_single_byte():
    for data in (b"", b"a", b"ab", b"abc"):
        assert lz77.decompress(lz77.compress(data)) == data
