"""Point-wise relative error-bound mode (extension; SZ supports it via
the standard logarithmic pre-transform)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import SecureCompressor
from repro.sz import SZCompressor
from repro.sz.quantizer import ErrorBound


def _mixed_field(seed=0, shape=(20, 20, 20), zero_count=300):
    rng = np.random.default_rng(seed)
    data = (
        rng.standard_normal(shape)
        * np.exp(rng.uniform(-8.0, 8.0, shape))
    ).astype(np.float32)
    flat = data.reshape(-1)
    flat[rng.choice(flat.size, zero_count, replace=False)] = 0.0
    return data


def _max_rel(original, decompressed):
    nz = original != 0
    a = original[nz].astype(np.float64)
    b = decompressed[nz].astype(np.float64)
    return float(np.max(np.abs(b - a) / np.abs(a)))


class TestPwRelBound:
    @pytest.mark.parametrize("r", [1e-1, 1e-2, 1e-4])
    def test_relative_bound_holds(self, r):
        data = _mixed_field()
        comp = SZCompressor(ErrorBound(r, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        assert _max_rel(data, out) <= r

    def test_zeros_restored_exactly(self):
        data = _mixed_field()
        comp = SZCompressor(ErrorBound(1e-2, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        zeros = data == 0
        assert np.array_equal(out[zeros], data[zeros])

    def test_signs_preserved(self):
        data = _mixed_field(seed=1)
        comp = SZCompressor(ErrorBound(1e-2, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        assert np.array_equal(np.sign(out), np.sign(data))

    def test_wide_dynamic_range(self):
        # 20+ orders of magnitude: the whole point of pw_rel over abs.
        rng = np.random.default_rng(2)
        data = (10.0 ** rng.uniform(-12, 12, 4096)).astype(np.float64)
        comp = SZCompressor(ErrorBound(1e-3, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        assert _max_rel(data, out) <= 1e-3

    def test_float64(self):
        rng = np.random.default_rng(3)
        data = np.exp(rng.uniform(-40, 40, (16, 16)))
        comp = SZCompressor(ErrorBound(1e-9, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        assert out.dtype == np.float64
        assert _max_rel(data, out) <= 1e-9

    def test_all_zero_field(self):
        data = np.zeros((8, 8), dtype=np.float32)
        comp = SZCompressor(ErrorBound(1e-2, "pw_rel"))
        out = comp.decompress(comp.compress(data))
        assert np.array_equal(out, data)

    def test_better_cr_than_abs_on_wide_range(self):
        # On data spanning many decades, pw_rel at a modest target
        # beats the absolute bound needed to match its small-value
        # fidelity.
        rng = np.random.default_rng(4)
        data = (10.0 ** rng.uniform(-6, 6, (24, 24, 24))).astype(np.float32)
        pw = SZCompressor(ErrorBound(1e-2, "pw_rel")).compress(data)
        # An abs bound protecting the smallest values to 1% would be
        # ~1e-8 — far more bits than the log-domain representation.
        ab = SZCompressor(ErrorBound(1e-8, "abs")).compress(data)
        assert pw.payload_bytes < ab.payload_bytes

    def test_aux_corruption_detected(self):
        data = _mixed_field(seed=5)
        comp = SZCompressor(ErrorBound(1e-2, "pw_rel"))
        frame = comp.compress(data)
        frame.sections["aux"] = frame.sections["aux"][:-3]
        with pytest.raises(ValueError):
            comp.decompress(frame)

    def test_through_schemes(self, key):
        data = _mixed_field(seed=6)
        for scheme in ("none", "cmpr_encr", "encr_huffman"):
            sc = SecureCompressor(
                scheme, ErrorBound(1e-3, "pw_rel"),
                key=key if scheme != "none" else None,
            )
            out = sc.decompress(sc.compress(data).container)
            assert _max_rel(data, out) <= 1e-3, scheme


@given(
    seed=st.integers(0, 2**32 - 1),
    r=st.sampled_from([1e-1, 1e-2, 1e-3]),
)
@settings(max_examples=25, deadline=None)
def test_pw_rel_property(seed, r):
    rng = np.random.default_rng(seed)
    data = (
        rng.standard_normal(400) * 10.0 ** rng.uniform(-5, 5, 400)
    ).astype(np.float32)
    comp = SZCompressor(ErrorBound(r, "pw_rel"))
    out = comp.decompress(comp.compress(data))
    assert _max_rel(data, out) <= r
    zeros = data == 0
    assert np.array_equal(out[zeros], data[zeros])
